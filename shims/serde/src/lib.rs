//! Offline stand-in for serde: the marker traits plus no-op derive macros.
//!
//! No code in this workspace serializes through serde (manifests and CSVs are
//! written by hand), but many types carry `#[derive(Serialize, Deserialize)]`
//! so they are ready for a real serializer the day the registry is reachable.
//! Like real serde, the trait names and the derive-macro names coexist: the
//! derives come from the sibling `serde_derive` proc-macro crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker half of `serde::Serialize`.
pub trait Serialize {}

/// Marker half of `serde::Deserialize`.
pub trait Deserialize<'de> {}
