//! Offline stand-in for `bytes::Bytes`: an immutable, cheaply clonable byte
//! buffer. Clones share one allocation through `Arc`, which is the property
//! the snapshot path relies on (a grid snapshot is cloned into the writer
//! and the codec without copying the payload).

use std::ops::Deref;
use std::sync::Arc;

#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            offset: 0,
            len: 0,
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            offset: 0,
            len: data.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zero-copy sub-view sharing the parent allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            offset: self.offset + range.start,
            len: range.end - range.start,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == &other[..]
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            offset: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn clones_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b as *const [u8], &*c as *const [u8]);
        assert_eq!(&c[..], &[1, 2, 3]);
    }

    #[test]
    fn slices_are_zero_copy_views() {
        let b = Bytes::from((0u8..10).collect::<Vec<_>>());
        let s = b.slice(2..7);
        assert_eq!(&s[..], &[2, 3, 4, 5, 6]);
        assert_eq!(s.slice(1..3), Bytes::from(vec![3u8, 4]));
        assert_eq!(s.len(), 5);
    }
}
