//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` backing the
//! offline serde shim. The workspace only ever *derives* the traits (no call
//! site serializes anything — there is no serializer crate in the tree), so
//! an empty expansion keeps every annotated type compiling unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
