//! Offline stand-in for criterion.
//!
//! Keeps the `criterion_group!` / `criterion_main!` bench targets compiling
//! and *useful*: each benchmark runs `sample_size` timed samples around the
//! closure and prints min / median / max wall-clock per iteration. No
//! statistics engine, no HTML reports — but enough signal to catch a 2×
//! regression from a terminal.

use std::time::Instant;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.criterion.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time the closure. One warm-up call, then one timed call per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let t = Instant::now();
        std::hint::black_box(f());
        self.samples_ns.push(t.elapsed().as_nanos() as f64);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut samples_ns = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            samples_ns: Vec::new(),
        };
        f(&mut b);
        samples_ns.extend(b.samples_ns);
    }
    if samples_ns.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let fmt = |ns: f64| {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.0} ns")
        }
    };
    println!(
        "{id:<48} [{} {} {}]",
        fmt(samples_ns[0]),
        fmt(samples_ns[samples_ns.len() / 2]),
        fmt(samples_ns[samples_ns.len() - 1]),
    );
}

/// Re-export so `criterion::black_box` call sites keep working.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
