//! Offline stand-in for the slice of `rand` 0.8 this workspace uses.
//!
//! `SmallRng` is xoshiro256++ seeded through SplitMix64, the same generator
//! real `rand` 0.8 uses for `SmallRng` on 64-bit targets, so the raw `u64`
//! stream matches upstream for a given `seed_from_u64`. The `gen_range`
//! mappings are simpler than upstream's (lemire / canonical-float details
//! differ), so *derived* values are deterministic but not bit-identical to
//! real `rand`; tests that pin noisy values carry their own tolerances.

use std::ops::Range;

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling within a half-open range, the only distribution the workspace
/// draws from.
pub trait SampleUniform: Sized {
    fn sample(rng: &mut dyn FnMut() -> u64, range: &Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn FnMut() -> u64, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u128;
                // 128-bit multiply-shift keeps the modulo bias below 2^-64,
                // far under anything observable in these simulations.
                let x = ((rng() as u128 * span) >> 64) as $t;
                range.start + x
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn FnMut() -> u64, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let x = ((rng() as u128 * span) >> 64) as i128;
                (range.start as i128 + x) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn FnMut() -> u64, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                // 53 effective mantissa bits give a canonical uniform in [0, 1).
                let unit = (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = range.start as f64 + unit * (range.end as f64 - range.start as f64);
                // Guard the open upper bound against rounding at the edge.
                if v as $t >= range.end { range.start } else { v as $t }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// The sampling interface (`rand::Rng`), provided for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let mut draw = || self.next_u64();
        T::sample(&mut draw, &range)
    }

    /// Uniform draws for the handful of types the workspace asks for.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types drawable "from the standard distribution" (`rng.gen()`).
pub trait Standard {
    fn from_u64(bits: u64) -> Self;
}

impl Standard for bool {
    fn from_u64(bits: u64) -> Self {
        bits & 1 == 1
    }
}
impl Standard for u64 {
    fn from_u64(bits: u64) -> Self {
        bits
    }
}
impl Standard for f64 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the algorithm behind real `rand` 0.8's 64-bit `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for u64 seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bins hit: {seen:?}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
