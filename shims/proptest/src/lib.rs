//! Offline stand-in for the slice of proptest this workspace uses.
//!
//! A strategy is a pure sampler: `Strategy::sample(&mut TestRng) -> Value`.
//! The `proptest!` macro expands each property into an ordinary `#[test]`
//! that draws `cases` inputs from a generator seeded by the test's name, so
//! failures reproduce exactly across runs and machines. There is **no
//! shrinking**: a failing case reports its case index and seed instead of a
//! minimized input. Supported surface: range / tuple / `prop_map` / `Just` /
//! `prop_oneof!` / `collection::vec` / `sample::select` strategies,
//! `any::<T>()`, `num::f64::ANY`, `prop_assert*`, and
//! `#![proptest_config(ProptestConfig::with_cases(n))]`.

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic per-test generator, seeded from the test's name.
    pub struct TestRng {
        inner: SmallRng,
        pub seed: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> TestRng {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                inner: SmallRng::seed_from_u64(h),
                seed: h,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// Runner configuration; only the case count is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

use test_runner::TestRng;

/// A deterministic value sampler.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy, the currency of `prop_oneof!`.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the given value.
#[allow(non_snake_case)]
pub fn Just<T: Clone>(value: T) -> JustStrategy<T> {
    JustStrategy { value }
}

pub struct JustStrategy<T> {
    value: T,
}

impl<T: Clone> Strategy for JustStrategy<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.value.clone()
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + ((rng.next_u64() as u128 * span) >> 64) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128 * span) >> 64) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                if v as $t >= self.end { self.start } else { v as $t }
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a default "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns: covers subnormals, infinities, and NaN, like
        // real proptest's f64 ANY.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

pub struct AnyStrategy<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T> {
        options: Vec<T>,
    }

    /// `prop::sample::select(options)` — uniform pick from a fixed set.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty set");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[(rng.next_u64() % self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod num {
    pub mod f64 {
        use crate::{Strategy, TestRng};

        pub struct AnyF64;

        /// `prop::num::f64::ANY` — arbitrary bit patterns.
        pub const ANY: AnyF64 = AnyF64;

        impl Strategy for AnyF64 {
            type Value = f64;
            fn sample(&self, rng: &mut TestRng) -> f64 {
                f64::from_bits(rng.next_u64())
            }
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let seed = rng.seed;
                for case in 0..config.cases {
                    let ($($arg,)+) =
                        ($($crate::Strategy::sample(&($strat), &mut rng),)+);
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        move || $body
                    ));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest shim: property '{}' failed at case {}/{} (name-seed {:#x}); \
                             re-run reproduces it deterministically",
                            stringify!($name), case + 1, config.cases, seed,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, Strategy,
    };

    /// The `prop::` module path used by test files (`prop::collection::vec`,
    /// `prop::num::f64::ANY`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let s = crate::collection::vec(0u8..255, 1..20);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.0..2.0f64, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            let _ = b;
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u8..4).prop_map(|x| x as u32),
            Just(9u32),
        ]) {
            prop_assert!(v < 4 || v == 9);
        }
    }
}
