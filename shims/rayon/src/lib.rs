//! Offline stand-in for rayon with **sequential** semantics.
//!
//! `into_par_iter()` and `par_chunks_mut()` hand back the ordinary std
//! iterators, so every adaptor chain written against rayon's prelude
//! compiles and runs unchanged — on one thread, in deterministic order.
//! That trade is deliberate: the solver and rasterizer loops stay correct
//! and bit-stable, while *cross-job* parallelism (the part that moves
//! wall-clock for the paper grid) lives in `greenness_core::sweep`, which
//! is written directly against `std::thread` and needs nothing from here.

pub mod prelude {
    /// `into_par_iter()` — sequential: forwards to `IntoIterator`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// `par_iter()` / `par_iter_mut()` — sequential slice views.
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_chunks(&self, chunk: usize) -> std::slice::Chunks<'_, T>;
    }
    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, chunk: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk)
        }
    }

    /// `par_chunks_mut()` — sequential mutable chunking.
    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk: usize) -> std::slice::ChunksMut<'_, T>;
    }
    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, chunk: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk)
        }
    }
}

/// Builder-compatible stand-in; the built pool just runs closures inline.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    _num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self._num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool)
    }
}

#[derive(Debug)]
pub struct ThreadPool;

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (shim: infallible)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_adapters_match_sequential_results() {
        let doubled: Vec<i32> = [1, 2, 3].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);

        let mut buf = [0u8; 6];
        buf.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, c)| c.fill(i as u8));
        assert_eq!(buf, [0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn pool_install_runs_inline() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 41 + 1), 42);
    }
}
