//! Domain scenario: in-situ visualization of a heat-transfer run, producing
//! a real image sequence.
//!
//! Runs the in-situ pipeline over a 256×256 plate with two hot sources,
//! keeps the rendered frames, overlays isocontours, and writes the PPM
//! sequence to `./heat_movie/` on the *host* filesystem so you can open it
//! (e.g. `ffmpeg -i heat_movie/frame%04d.ppm movie.mp4`). Also prints the
//! run's green metrics.
//!
//! ```sh
//! cargo run --release --example insitu_heat_movie
//! ```

use greenness_core::{experiment, pipeline::PipelineKind, PipelineConfig};
use greenness_heatsim::Grid;
use greenness_viz::contour::{contour_lines, draw_contours, ContourSegment};
use greenness_viz::{encode_ppm, Colormap, Framebuffer};

fn main() -> std::io::Result<()> {
    let mut cfg = PipelineConfig::case_study(1);
    cfg.label = "heat movie (256x256, 40 steps)".into();
    cfg.grid_nx = 256;
    cfg.grid_ny = 256;
    cfg.timesteps = 40;
    cfg.solver = PipelineConfig::default_solver(256, 256);
    cfg.render.width = 256;
    cfg.render.height = 256;
    cfg.keep_frames = true;

    println!("running the in-situ pipeline ({} steps)...", cfg.timesteps);
    let report = experiment::run(
        PipelineKind::InSitu,
        &cfg,
        &experiment::ExperimentSetup::default(),
    )
    .expect("run ok");

    std::fs::create_dir_all("heat_movie")?;
    let mut written = 0usize;
    for frame in &report.output.frames {
        let mut image = frame.image.clone();
        let segs = mid_luminance_contours(&image);
        draw_contours(&mut image, &segs, [255, 255, 255]);
        std::fs::write(
            format!("heat_movie/frame{:04}.ppm", frame.step),
            encode_ppm(&image),
        )?;
        written += 1;
    }

    println!("wrote {written} frames to ./heat_movie/");
    println!(
        "virtual run: {:.1} s, {:.1} W avg, {:.1} kJ",
        report.metrics.execution_time_s,
        report.metrics.average_power_w,
        report.metrics.energy_j / 1000.0
    );
    println!("power profile: {}", report.profile.ascii_sparkline(60));
    Ok(())
}

/// Treat the frame's luminance as a scalar field and extract its
/// mid-level isocontour — a cheap way to outline the heat plume on the
/// already-rendered image.
fn mid_luminance_contours(image: &Framebuffer) -> Vec<ContourSegment> {
    let g = Grid::from_fn(image.width(), image.height(), |x, y| {
        let px = ((x * image.width() as f64) as usize).min(image.width() - 1);
        let py = ((y * image.height() as f64) as usize).min(image.height() - 1);
        Colormap::luminance(image.get(px, py))
    });
    contour_lines(&g, 0.5 * (g.min() + g.max()))
}
