//! Quickstart: reproduce the paper's headline result.
//!
//! Runs case study 1 (I/O + visualization every iteration, §IV-C) with both
//! pipelines on the simulated Table I node and prints the Figure 7–11
//! quantities plus the headline energy saving (paper: 43%).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use greenness_core::{report, CaseComparison, ExperimentSetup};

fn main() {
    let setup = ExperimentSetup::default();
    println!("node under test : {}", setup.spec.name);
    println!("static power    : {:.1} W", setup.spec.static_w());
    println!();

    println!("running case study 1 (50 timesteps, 2 MiB snapshots, I/O every step)...");
    let cmp = CaseComparison::run_case(1, &setup).expect("case runs");

    let rows = vec![
        vec![
            "Execution time (s)".to_string(),
            report::f(cmp.insitu.metrics.execution_time_s, 1),
            report::f(cmp.post.metrics.execution_time_s, 1),
        ],
        vec![
            "Average power (W)".to_string(),
            report::f(cmp.insitu.metrics.average_power_w, 1),
            report::f(cmp.post.metrics.average_power_w, 1),
        ],
        vec![
            "Peak power (W)".to_string(),
            report::f(cmp.insitu.metrics.peak_power_w, 1),
            report::f(cmp.post.metrics.peak_power_w, 1),
        ],
        vec![
            "Energy (kJ)".to_string(),
            report::f(cmp.insitu.metrics.energy_j / 1000.0, 1),
            report::f(cmp.post.metrics.energy_j / 1000.0, 1),
        ],
        vec![
            "Efficiency (normalized)".to_string(),
            report::f(1.0, 2),
            report::f(
                cmp.post.metrics.normalized_efficiency(&cmp.insitu.metrics),
                2,
            ),
        ],
    ];
    println!();
    print!(
        "{}",
        report::render_table(
            "Case study 1 — in-situ vs post-processing",
            &["Metric", "In-situ", "Traditional"],
            &rows
        )
    );
    println!();
    println!(
        "in-situ saves {} energy while drawing {} more average power",
        report::pct(cmp.energy_savings_pct()),
        report::pct(cmp.power_increase_pct()),
    );
    println!("(the paper reports 43% energy savings at ~8% higher average power)");
    println!();
    println!("post-processing time split (Figure 4):");
    for row in cmp.post.phase_rows() {
        println!(
            "  {:<14} {:>5.1}%  ({})",
            row.phase.to_string(),
            row.time_pct,
            row.duration
        );
    }
}
