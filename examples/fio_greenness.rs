//! The storage-side story: Table III and the §V-D reorganization argument.
//!
//! 1. Runs the four fio jobs (sequential/random × read/write, 4 GiB) and
//!    prints the Table III rows.
//! 2. Prints the §V-D what-if: a random-I/O application keeps exploratory
//!    analysis *and* most of the in-situ energy benefit by reorganizing its
//!    data layout.
//! 3. Demonstrates the reorganization pass end-to-end on a deliberately
//!    fragmented file in the simulated filesystem.
//!
//! ```sh
//! cargo run --release --example fio_greenness
//! ```

use greenness_core::whatif::WhatIfAnalysis;
use greenness_core::{report, ExperimentSetup};
use greenness_platform::{HardwareSpec, Node, Phase};
use greenness_storage::{reorganize, AllocMode, FileSystem, FsConfig, MemBlockDevice};

fn main() {
    let setup = ExperimentSetup::default();

    println!("running the four fio jobs (4 GiB each)...\n");
    let analysis = WhatIfAnalysis::run(&setup, 4 * 1024 * 1024 * 1024).expect("fio matrix");

    let headers = ["Metric", "Seq Read", "Rand Read", "Seq Write", "Rand Write"];
    let col = |f: &dyn Fn(&greenness_storage::FioResult) -> String| -> Vec<String> {
        analysis.fio.iter().map(f).collect()
    };
    let mut rows = Vec::new();
    for (name, vals) in [
        (
            "Execution time (s)",
            col(&|r| report::f(r.execution_time_s, 1)),
        ),
        (
            "Full-system power (W)",
            col(&|r| report::f(r.full_system_power_w, 1)),
        ),
        (
            "Disk dynamic power (W)",
            col(&|r| report::f(r.disk_dyn_power_w, 1)),
        ),
        (
            "Disk dynamic energy (kJ)",
            col(&|r| report::f(r.disk_dyn_energy_kj, 1)),
        ),
        (
            "Full-system energy (kJ)",
            col(&|r| report::f(r.full_system_energy_kj, 1)),
        ),
    ] {
        let mut row = vec![name.to_string()];
        row.extend(vals);
        rows.push(row);
    }
    print!(
        "{}",
        report::render_table("Table III — fio tests", &headers, &rows)
    );

    println!();
    println!(
        "random-I/O application: in-situ would save {:.1} kJ per pass pair",
        analysis.random_io_energy_kj
    );
    println!(
        "with data reorganization it loses only {:.1} kJ ({:.1}% of that) while keeping exploration",
        analysis.reorganized_io_energy_kj,
        analysis.retained_fraction() * 100.0
    );

    // --- end-to-end reorganization demo ---
    println!("\nreorganization demo on a fragmented 8 MiB file:");
    let mut node = Node::new(HardwareSpec::table1());
    let mut fs = FileSystem::format(
        MemBlockDevice::with_capacity_bytes(128 * 1024 * 1024),
        FsConfig::default(),
    );
    fs.set_alloc_mode(AllocMode::Scattered { seed: 2015 });
    let data: Vec<u8> = (0..8 * 1024 * 1024u32).map(|i| (i % 251) as u8).collect();
    fs.write(&mut node, "field.dat", 0, &data, Phase::Write)
        .expect("device sized");
    fs.sync(&mut node, Phase::CacheControl);
    fs.drop_caches();

    let t0 = node.now();
    fs.read(&mut node, "field.dat", 0, data.len() as u64, Phase::Read)
        .expect("exists");
    let fragmented_s = (node.now() - t0).as_secs_f64();
    fs.drop_caches();

    fs.set_alloc_mode(AllocMode::Contiguous);
    let r = reorganize(&mut node, &mut fs, "field.dat", Phase::Other).expect("reorg");
    let t1 = node.now();
    fs.read(&mut node, "field.dat", 0, data.len() as u64, Phase::Read)
        .expect("exists");
    let sequential_s = (node.now() - t1).as_secs_f64();

    println!("  layout: {} runs -> {} runs", r.runs_before, r.runs_after);
    println!(
        "  one-time reorganization cost: {:.1} s / {:.2} kJ",
        r.seconds,
        r.energy_j / 1000.0
    );
    println!(
        "  cold read of the file: {fragmented_s:.1} s fragmented -> {sequential_s:.2} s sequential"
    );
}
