//! Future-work study: does in-situ still pay off on SSD / NVRAM storage?
//!
//! The paper's future-work list (§VI-A) includes "evaluation on systems
//! using RAID disks, solid-state drives, and other flash-based devices such
//! as NVRAM". This example reruns case study 1 with the Table I node's HDD
//! swapped for a SATA SSD and for NVRAM-class storage, showing how the
//! in-situ advantage shrinks as the I/O bottleneck disappears.
//!
//! ```sh
//! cargo run --release --example ssd_study
//! ```

use greenness_core::{report, CaseComparison, ExperimentSetup, PipelineConfig};
use greenness_platform::HardwareSpec;

fn main() {
    let cfg = PipelineConfig::case_study(1);
    let variants = [
        ("7200rpm HDD (Table I)", HardwareSpec::table1()),
        ("SATA SSD", HardwareSpec::table1_with_ssd()),
        ("NVRAM", HardwareSpec::table1_with_nvram()),
    ];

    let mut rows = Vec::new();
    for (name, spec) in variants {
        println!("running case study 1 on {name}...");
        let setup = ExperimentSetup {
            spec,
            ..ExperimentSetup::default()
        };
        let cmp = CaseComparison::run_config(1, &cfg, &setup).expect("case runs");
        rows.push(vec![
            name.to_string(),
            report::f(cmp.post.metrics.execution_time_s, 1),
            report::f(cmp.insitu.metrics.execution_time_s, 1),
            report::f(cmp.post.metrics.energy_j / 1000.0, 1),
            report::f(cmp.insitu.metrics.energy_j / 1000.0, 1),
            report::pct(cmp.energy_savings_pct()),
        ]);
    }

    println!();
    print!(
        "{}",
        report::render_table(
            "Case study 1 across storage technologies",
            &[
                "Device",
                "T_post (s)",
                "T_insitu (s)",
                "E_post (kJ)",
                "E_insitu (kJ)",
                "Savings"
            ],
            &rows
        )
    );
    println!();
    println!("faster storage shrinks the post-processing I/O penalty, and with it");
    println!("the in-situ energy advantage — the trend the paper anticipated.");
}
