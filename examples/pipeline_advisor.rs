//! The runtime advisor (the paper's §VI-A future-work system) in action.
//!
//! Feeds several workload profiles to the advisor — which estimates I/O
//! energy from access count, size, and pattern using the calibrated disk
//! model — and prints its recommendations.
//!
//! ```sh
//! cargo run --release --example pipeline_advisor
//! ```

use greenness_core::advisor::{recommend, IoBehavior, Technique, WorkloadProfile};
use greenness_core::report;
use greenness_platform::units::{GIB, KIB, MIB};
use greenness_platform::HardwareSpec;

fn technique_name(t: Technique) -> String {
    match t {
        Technique::InSitu => "in-situ".into(),
        Technique::Reorganize => "reorganize layout".into(),
        Technique::DataSampling { keep_fraction } => {
            format!("sample (keep {:.0}%)", keep_fraction * 100.0)
        }
        Technique::KeepPostProcessing => "keep post-processing".into(),
    }
}

fn main() {
    let spec = HardwareSpec::table1();
    let workloads = [
        (
            "monitoring dashboard (no exploration)",
            WorkloadProfile {
                pass_bytes: 2 * GIB,
                passes: 10,
                behavior: IoBehavior::Random { op_bytes: 4 * KIB },
                needs_exploration: false,
                min_keep_fraction: 1.0,
            },
        ),
        (
            "random-access exploratory analysis (the §V-D case)",
            WorkloadProfile {
                pass_bytes: 4 * GIB,
                passes: 3,
                behavior: IoBehavior::Random { op_bytes: 4 * KIB },
                needs_exploration: true,
                min_keep_fraction: 1.0,
            },
        ),
        (
            "streaming checkpoint analysis",
            WorkloadProfile {
                pass_bytes: 4 * GIB,
                passes: 4,
                behavior: IoBehavior::Sequential,
                needs_exploration: true,
                min_keep_fraction: 1.0,
            },
        ),
        (
            "statistics over a decimatable field",
            WorkloadProfile {
                pass_bytes: 8 * GIB,
                passes: 12,
                behavior: IoBehavior::Sequential,
                needs_exploration: true,
                min_keep_fraction: 0.05,
            },
        ),
        (
            "tiny metadata stream",
            WorkloadProfile {
                pass_bytes: 4 * MIB,
                passes: 2,
                behavior: IoBehavior::Sequential,
                needs_exploration: true,
                min_keep_fraction: 1.0,
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, w) in workloads {
        let a = recommend(&spec, &w);
        rows.push(vec![
            name.to_string(),
            report::f(a.current_io_j / 1000.0, 2),
            report::f(a.insitu_io_j / 1000.0, 2),
            report::f(
                (a.reorg_cost_j + a.reorg_pass_j * w.passes as f64) / 1000.0,
                2,
            ),
            technique_name(a.technique),
        ]);
    }
    print!(
        "{}",
        report::render_table(
            "Advisor recommendations (energies in kJ over the data lifetime)",
            &[
                "Workload",
                "As-is",
                "In-situ",
                "Reorganized",
                "Recommendation"
            ],
            &rows
        )
    );
}
