//! Multi-node study (the paper's §VI-A future work): in-situ vs
//! post-processing vs in-transit on a cluster with a striped parallel
//! filesystem, plus a compute-node scaling sweep.
//!
//! ```sh
//! cargo run --release --example cluster_study
//! ```

use greenness_cluster::{run_cluster, ClusterConfig, ClusterKind};
use greenness_core::report;

fn main() {
    let cfg = ClusterConfig::small(4, 2);
    println!(
        "cluster: {} compute nodes + {} PFS servers + 1 viz node, {} steps\n",
        cfg.compute_nodes, cfg.io_servers, cfg.timesteps
    );

    let mut rows = Vec::new();
    for kind in [
        ClusterKind::PostProcessing,
        ClusterKind::InSitu,
        ClusterKind::InTransit,
    ] {
        let r = run_cluster(kind, &cfg).expect("example cluster fits its PFS");
        rows.push(vec![
            format!("{kind:?}"),
            report::f(r.makespan_s, 2),
            report::f(r.total_energy_j / 1000.0, 2),
            report::f(r.compute_energy_j / 1000.0, 2),
            report::f(r.io_energy_j / 1000.0, 2),
            report::f(r.viz_energy_j / 1000.0, 2),
            report::f(r.average_power_w, 0),
        ]);
    }
    print!(
        "{}",
        report::render_table(
            "Distributed pipelines (energies in kJ)",
            &[
                "Pipeline",
                "Makespan (s)",
                "Total",
                "Compute",
                "PFS",
                "Viz",
                "Avg W"
            ],
            &rows
        )
    );

    println!("\ncompute-node scaling (post-processing):");
    let mut rows = Vec::new();
    for nodes in [2usize, 4, 8] {
        let mut c = ClusterConfig::small(nodes, 2);
        c.timesteps = 8;
        let r = run_cluster(ClusterKind::PostProcessing, &c).expect("example cluster fits its PFS");
        rows.push(vec![
            format!("{nodes} nodes"),
            report::f(r.makespan_s, 2),
            report::f(r.total_energy_j / 1000.0, 2),
            report::f(r.efficiency() * 1000.0, 2),
        ]);
    }
    print!(
        "{}",
        report::render_table(
            "Scaling sweep",
            &["Cluster", "Makespan (s)", "Energy (kJ)", "Cell-updates/mJ"],
            &rows
        )
    );
    println!("\nfaster makespans, but aggregate energy grows with the node count —");
    println!("the static-power effect the paper identified, amplified by scale.");
}
