//! Reproducibility guarantees: the whole experiment stack is deterministic.

use greenness_core::{experiment, pipeline::PipelineKind, ExperimentSetup, PipelineConfig};
use greenness_power::WattsupMeter;

#[test]
fn identical_runs_produce_identical_reports() {
    let cfg = PipelineConfig::small(1);
    let setup = ExperimentSetup::default(); // noisy meter, fixed seed
    let a = experiment::run(PipelineKind::PostProcessing, &cfg, &setup).expect("run ok");
    let b = experiment::run(PipelineKind::PostProcessing, &cfg, &setup).expect("run ok");
    assert_eq!(a.metrics.execution_time_s, b.metrics.execution_time_s);
    assert_eq!(a.metrics.energy_j, b.metrics.energy_j);
    assert_eq!(a.profile.samples, b.profile.samples);
    assert_eq!(a.timeline.len(), b.timeline.len());
}

#[test]
fn meter_seed_changes_profile_but_not_truth() {
    let cfg = PipelineConfig::small(1);
    let s1 = ExperimentSetup::default();
    let s2 = ExperimentSetup {
        meter: WattsupMeter {
            seed: 77,
            ..WattsupMeter::default()
        },
        ..ExperimentSetup::default()
    };
    let a = experiment::run(PipelineKind::InSitu, &cfg, &s1).expect("run ok");
    let b = experiment::run(PipelineKind::InSitu, &cfg, &s2).expect("run ok");
    // The underlying physics is identical...
    assert_eq!(a.metrics.energy_j, b.metrics.energy_j);
    assert_eq!(a.metrics.execution_time_s, b.metrics.execution_time_s);
    // ...but the instrument's accuracy noise differs.
    assert_ne!(a.profile.samples, b.profile.samples);
}

#[test]
fn noiseless_profile_integrates_to_timeline_energy() {
    let cfg = PipelineConfig::small(2);
    let r = experiment::run(
        PipelineKind::PostProcessing,
        &cfg,
        &ExperimentSetup::noiseless(),
    )
    .expect("run ok");
    // Integer-watt rounding plus the dropped partial final interval bound
    // the integration error.
    let covered = r.profile.len() as f64 * r.profile.period_s;
    let truth = r.timeline.energy_between(
        greenness_platform::SimTime::ZERO,
        greenness_platform::SimTime::from_secs_f64(covered),
    );
    assert!((r.profile.energy_j() - truth.system_j()).abs() <= 0.5 * r.profile.len() as f64 + 1e-6);
}

#[test]
fn all_pipelines_are_deterministic() {
    let cfg = PipelineConfig::small(2);
    let setup = ExperimentSetup::noiseless();
    for kind in [
        PipelineKind::PostProcessing,
        PipelineKind::InSitu,
        PipelineKind::InTransit,
    ] {
        let a = experiment::run(kind, &cfg, &setup).expect("run ok");
        let b = experiment::run(kind, &cfg, &setup).expect("run ok");
        assert_eq!(a.metrics.energy_j, b.metrics.energy_j, "{kind:?}");
        assert_eq!(a.output.bytes_written, b.output.bytes_written, "{kind:?}");
    }
}

/// The cluster sweep's emitted artifacts — manifest, journal, metrics —
/// are byte-identical for any worker count and for repeated runs of the
/// same fault seed: per-job fault schedules derive from job *keys*, never
/// from worker identity or completion order.
#[test]
fn cluster_sweep_artifacts_are_byte_identical_across_workers_and_reruns() {
    use greenness_core::{cluster_sweep, sweep};
    use greenness_faults::FaultPlan;
    let setup = cluster_sweep::ClusterSetup {
        faults: Some(FaultPlan::with_seed(5)),
        trace: true,
        ..cluster_sweep::ClusterSetup::default()
    };
    let run = |workers: usize| {
        let results = cluster_sweep::run_cluster_sweep(
            cluster_sweep::cluster_jobs(None),
            &setup,
            workers,
            &sweep::silent_progress(),
        )
        .expect("cluster sweep runs");
        (
            cluster_sweep::cluster_manifest_json(&setup, &results),
            cluster_sweep::cluster_journal(&results).expect("traced sweep has a journal"),
            cluster_sweep::cluster_metrics_json(&results).expect("traced sweep has metrics"),
        )
    };
    let serial = run(1);
    let wide = run(8);
    let again = run(8);
    assert_eq!(serial.0, wide.0, "manifest depends on worker count");
    assert_eq!(serial.1, wide.1, "journal depends on worker count");
    assert_eq!(serial.2, wide.2, "metrics depend on worker count");
    assert_eq!(
        wide.0, again.0,
        "manifest not reproducible for a fixed seed"
    );
    assert_eq!(wide.1, again.1, "journal not reproducible for a fixed seed");
    assert_eq!(wide.2, again.2, "metrics not reproducible for a fixed seed");
}
