//! End-to-end fleet tests: replay byte-identity across `--jobs` and shard
//! counts, chaos (churn + drops) over many seeds with the "no acked result
//! lost" guarantee, and `RetryClient` failover through the live router.

use std::sync::Arc;

use greenness_faults::FaultPlan;
use greenness_fleet::{fleet_workload, run_fleet_replay, Fleet, FleetConfig, FleetServer};
use greenness_serve::RetryClient;

/// A response's identity, id stripped: everything from `"ok":` on. Two
/// requests for the same cache key must agree on this byte-for-byte no
/// matter which shard answered or when.
fn ack_body(line: &str) -> &str {
    let at = line.find("\"ok\":").expect("response has an ok field");
    &line[at..]
}

/// A request's cache identity: the line minus its `"id":<n>,` member (ids
/// never enter the content address).
fn request_key(line: &str) -> String {
    let start = line.find("\"id\":").expect("request has an id");
    let end = start + line[start..].find(',').expect("id is not last") + 1;
    format!("{}{}", &line[..start], &line[end..])
}

#[test]
fn fleet_replay_is_byte_identical_across_jobs_under_faults() {
    let requests = fleet_workload(120, 32, 1.1, 42);
    let base = FleetConfig {
        jobs: 1,
        faults: Some(FaultPlan::with_seed(7)),
        ..FleetConfig::default()
    };
    let a = run_fleet_replay(base, &requests, 20_000.0);
    let b = run_fleet_replay(FleetConfig { jobs: 8, ..base }, &requests, 20_000.0);
    assert_eq!(
        a.responses, b.responses,
        "jobs must not leak into responses"
    );
    assert_eq!(
        a.fleet_metrics, b.fleet_metrics,
        "jobs must not leak into metrics"
    );
    assert_eq!(a.report, b.report, "jobs must not leak into the report");
    assert_eq!(a.reroutes, b.reroutes);
    assert!(
        a.reroutes > 0,
        "seed 7 must drop at least one shard connection"
    );
}

#[test]
fn fleet_replay_is_byte_identical_across_shard_counts() {
    // The fault-free, eviction-free regime: same ring seed, same workload —
    // the response log and the router's fleet.* registry cannot see the
    // shard count. (Per-shard debug metrics and the report's per-shard
    // sections legitimately can.)
    let requests = fleet_workload(200, 64, 1.1, 42);
    let narrow = run_fleet_replay(
        FleetConfig {
            shards: 2,
            ..FleetConfig::default()
        },
        &requests,
        20_000.0,
    );
    let wide = run_fleet_replay(
        FleetConfig {
            shards: 4,
            ..FleetConfig::default()
        },
        &requests,
        20_000.0,
    );
    assert_eq!(
        narrow.responses, wide.responses,
        "shard count must not leak into responses"
    );
    assert_eq!(
        narrow.fleet_metrics, wide.fleet_metrics,
        "shard count must not leak into fleet metrics"
    );
}

#[test]
fn chaos_churn_loses_no_acked_result_over_many_seeds() {
    let mut any_lost = 0u64;
    for seed in 0..24u64 {
        let requests = fleet_workload(120, 24, 1.1, seed);
        let fleet = Fleet::new(FleetConfig {
            faults: Some(FaultPlan {
                // Churn hard enough that most seeds kill at least once.
                fleet_churn_rate: 0.10,
                ..FaultPlan::with_seed(seed)
            }),
            ..FleetConfig::default()
        });
        // First ack per cache key; every later ack must match it.
        let mut acked: std::collections::HashMap<String, String> = std::collections::HashMap::new();
        for request in &requests {
            let out = fleet.handle_line(request);
            if !out.line.contains("\"ok\":true") {
                continue;
            }
            let key = request_key(request);
            let body = ack_body(&out.line).to_string();
            if let Some(first) = acked.get(&key) {
                assert_eq!(
                    first, &body,
                    "seed {seed}: an acked result changed under churn for {key}"
                );
            } else {
                acked.insert(key, body);
            }
        }
        // Post-churn audit: every previously acked result is still
        // retrievable, byte-for-byte, through whatever topology survived.
        for (i, request) in requests.iter().enumerate() {
            let key = request_key(request);
            let Some(first) = acked.get(&key) else {
                continue;
            };
            let reask = request.replacen(
                &format!("\"id\":{i},"),
                &format!("\"id\":{},", 1_000_000 + i),
                1,
            );
            let out = fleet.handle_line(&reask);
            assert!(
                out.line.contains("\"ok\":true"),
                "seed {seed}: acked key no longer answers: {}",
                out.line
            );
            assert_eq!(
                first,
                ack_body(&out.line),
                "seed {seed}: acked result lost or changed after churn"
            );
        }
        let m = fleet.metrics_clone();
        any_lost += m.counter("fleet.shard.lost");
        // Accounting never double-counts: every routed request is exactly
        // one of ok / err.
        assert_eq!(
            m.counter("fleet.ok") + m.counter("fleet.err"),
            m.counter("fleet.requests"),
            "seed {seed}"
        );
    }
    assert!(
        any_lost > 0,
        "24 chaos seeds at churn 0.10 must kill at least one shard somewhere"
    );
}

#[test]
fn retry_client_fails_over_through_the_router_without_double_counting() {
    // Shard connections drop (seed 3 fires several), but churn is off so
    // the topology holds still; the router must absorb every drop by
    // rerouting to a replica — the client never reconnects, no error is
    // ever surfaced, and reroutes land under retries.* only.
    let fleet = Arc::new(Fleet::new(FleetConfig {
        faults: Some(FaultPlan {
            fleet_churn_rate: 0.0,
            serve_drop_rate: 0.25,
            ..FaultPlan::with_seed(3)
        }),
        ..FleetConfig::default()
    }));
    let server = FleetServer::start("127.0.0.1:0", Arc::clone(&fleet)).expect("bind");
    let addr = server.addr().to_string();
    let mut client = RetryClient::new(&addr, 8);
    for (i, request) in fleet_workload(40, 16, 1.1, 9).iter().enumerate() {
        let response = client.roundtrip(request).expect("roundtrip");
        assert!(
            response.contains("\"ok\":true"),
            "request {i} failed: {response}"
        );
    }
    let m = fleet.metrics_clone();
    assert!(
        m.counter("retries.fleet.reroute") > 0,
        "drop rate 0.25 over 40 requests must reroute at least once"
    );
    assert_eq!(
        client.retries, 0,
        "the router must absorb shard drops; the client never saw one"
    );
    assert_eq!(m.counter("fleet.err"), 0, "reroutes are not errors");
    assert_eq!(
        m.counter("fleet.ok"),
        m.counter("fleet.requests"),
        "every request acked exactly once"
    );
    server.shutdown();
    server.join();
}
