//! Determinism suite for the placement sweep: the journal, the metrics
//! file, and the manifest are *byte-identical* regardless of worker count,
//! and repeated runs under the same fault seed reproduce exactly. This is
//! the property that makes the committed placement goldens meaningful —
//! any nondeterminism (thread scheduling, ambient randomness, wall-clock
//! leakage) would show up here as a single flipped byte.

use greenness_core::placement::{
    self, PlacementJob, PlacementScale, PlacementSetup, PlacementWorkload, PolicyKind,
};
use greenness_core::sweep;
use greenness_faults::FaultPlan;

fn traced_setup(fault_seed: Option<u64>) -> PlacementSetup {
    PlacementSetup {
        trace: true,
        faults: fault_seed.map(FaultPlan::with_seed),
        ..PlacementSetup::default()
    }
}

fn artifacts(setup: &PlacementSetup, workers: usize) -> (String, String, String) {
    let results = placement::run_placement(
        placement::placement_grid(),
        setup,
        workers,
        &sweep::silent_progress(),
    )
    .expect("placement grid runs");
    (
        placement::placement_journal(&results).expect("journal recorded"),
        placement::placement_metrics_json(&results).expect("metrics recorded"),
        placement::placement_manifest_json(PlacementScale::Small, &results),
    )
}

/// Worker-count invariance: `--jobs 1` and `--jobs 8` produce the same
/// journal, metrics, and manifest, byte for byte.
#[test]
fn artifacts_are_worker_count_invariant() {
    let setup = traced_setup(None);
    let (j1, m1, man1) = artifacts(&setup, 1);
    let (j8, m8, man8) = artifacts(&setup, 8);
    assert_eq!(j1, j8, "journal must not depend on worker count");
    assert_eq!(m1, m8, "metrics must not depend on worker count");
    assert_eq!(man1, man8, "manifest must not depend on worker count");
}

/// Fault-seed reproducibility: the same seed gives byte-identical
/// artifacts across repeated runs *and* across worker counts, and a
/// different seed genuinely changes the outcome (the suite would be
/// vacuous if the injectors never fired).
#[test]
fn fault_seeded_runs_reproduce_exactly() {
    let setup = traced_setup(Some(42));
    let (j_a, m_a, man_a) = artifacts(&setup, 8);
    let (j_b, m_b, man_b) = artifacts(&setup, 3);
    assert_eq!(j_a, j_b, "same seed, different schedule: journal diverged");
    assert_eq!(m_a, m_b, "same seed, different schedule: metrics diverged");
    assert_eq!(
        man_a, man_b,
        "same seed, different schedule: manifest diverged"
    );

    let (_, _, man_other) = artifacts(&traced_setup(Some(43)), 8);
    assert_ne!(
        man_a, man_other,
        "a different fault seed must perturb the run"
    );
}

/// Tracing is observation, not perturbation: energies and virtual times
/// are bit-identical with and without the tracer attached.
#[test]
fn tracing_does_not_perturb_the_run() {
    let jobs = vec![
        PlacementJob {
            workload: PlacementWorkload::RandomAccess,
            policy: PolicyKind::FreqRecency,
        },
        PlacementJob {
            workload: PlacementWorkload::SeqScan,
            policy: PolicyKind::Noop,
        },
    ];
    let traced = placement::run_placement(
        jobs.clone(),
        &traced_setup(None),
        2,
        &sweep::silent_progress(),
    )
    .expect("traced run");
    let untraced = placement::run_placement(
        jobs,
        &PlacementSetup::default(),
        2,
        &sweep::silent_progress(),
    )
    .expect("untraced run");
    for (t, u) in traced.iter().zip(untraced.iter()) {
        assert_eq!(t.key, u.key);
        assert_eq!(
            t.energy_j.to_bits(),
            u.energy_j.to_bits(),
            "{}: tracing changed the energy",
            t.key
        );
        assert_eq!(
            t.end_ns, u.end_ns,
            "{}: tracing changed virtual time",
            t.key
        );
        assert_eq!(
            t.read_energy_j.to_bits(),
            u.read_energy_j.to_bits(),
            "{}: tracing changed read-phase energy",
            t.key
        );
    }
}

/// Per-job seeds depend on the workload only, never the policy: every
/// policy must face the identical access stream, or the policy comparison
/// measures luck instead of placement.
#[test]
fn access_seed_is_policy_blind() {
    for w in PlacementWorkload::ALL {
        let seeds: Vec<u64> = PolicyKind::ALL
            .iter()
            .map(|&p| {
                PlacementJob {
                    workload: w,
                    policy: p,
                }
                .access_seed()
            })
            .collect();
        assert!(
            seeds.windows(2).all(|s| s[0] == s[1]),
            "{}: access seed varies by policy",
            w.label()
        );
    }
}
