//! Property tests for the consistent-hash ring: load balance within bounds
//! across shard counts, and provably minimal key movement under add /
//! remove — the invariants the fleet's "no acked result lost" story leans
//! on.

use greenness_fleet::{Ring, DEFAULT_VNODES};
use proptest::prelude::*;

fn keys(n: u64) -> impl Iterator<Item = Vec<u8>> {
    (0..n).map(|i| format!("fleet/key/{i}").into_bytes())
}

/// Route `n` keys and tally per-shard counts.
fn tally(ring: &Ring, n: u64) -> std::collections::BTreeMap<u32, u64> {
    let mut counts = std::collections::BTreeMap::new();
    for key in keys(n) {
        let shard = ring.route(&key).expect("non-empty ring routes");
        *counts.entry(shard).or_insert(0) += 1;
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every shard's share of a large key set stays within a constant
    /// factor of the fair share, for any seed and fleet size.
    #[test]
    fn key_distribution_stays_within_bounds(
        seed in 0u64..10_000,
        shards in 2u32..9,
    ) {
        let ring = Ring::new(seed, shards, DEFAULT_VNODES);
        let n = 4_000u64;
        let counts = tally(&ring, n);
        prop_assert_eq!(counts.len(), shards as usize, "every shard owns keys");
        let fair = n as f64 / shards as f64;
        for (&shard, &c) in &counts {
            prop_assert!(
                (c as f64) > fair / 4.0 && (c as f64) < fair * 2.5,
                "shard {} owns {} of {} keys (fair share {})",
                shard, c, n, fair
            );
        }
    }

    /// Adding one shard moves only keys that land on the new shard — every
    /// other key keeps its owner — and the moved fraction is near the new
    /// shard's fair share.
    #[test]
    fn adding_a_shard_moves_only_minimal_ranges(
        seed in 0u64..10_000,
        shards in 2u32..8,
    ) {
        let before = Ring::new(seed, shards, DEFAULT_VNODES);
        let mut after = before.clone();
        after.add(shards); // new shard id = old count
        let n = 4_000u64;
        let mut moved = 0u64;
        for key in keys(n) {
            let old = before.route(&key).unwrap();
            let new = after.route(&key).unwrap();
            if old != new {
                prop_assert_eq!(
                    new, shards,
                    "a moved key must move TO the new shard, not between old ones"
                );
                moved += 1;
            }
        }
        let fair = n as f64 / f64::from(shards + 1);
        prop_assert!(
            (moved as f64) < fair * 2.5,
            "added shard pulled {} keys; fair share is {}",
            moved, fair
        );
        prop_assert!(moved > 0, "the new shard must take some load");
    }

    /// Removing one shard moves only that shard's keys — everyone else's
    /// mapping is untouched (this is what bounds rebalance traffic under
    /// churn).
    #[test]
    fn removing_a_shard_strands_no_other_keys(
        seed in 0u64..10_000,
        shards in 2u32..9,
        victim_pick in 0u32..8,
    ) {
        let before = Ring::new(seed, shards, DEFAULT_VNODES);
        let victim = victim_pick % shards;
        let mut after = before.clone();
        after.remove(victim);
        for key in keys(2_000) {
            let old = before.route(&key).unwrap();
            let new = after.route(&key).unwrap();
            if old != victim {
                prop_assert_eq!(old, new, "non-victim keys must not move");
            } else {
                prop_assert_ne!(new, victim, "victim keys must be re-homed");
            }
        }
    }

    /// Replica candidate lists are distinct shards, primary-first, and
    /// consistent with `route`.
    #[test]
    fn replica_lists_are_distinct_and_primary_first(
        seed in 0u64..10_000,
        shards in 2u32..9,
        k in 1usize..5,
    ) {
        let ring = Ring::new(seed, shards, DEFAULT_VNODES);
        for key in keys(200) {
            let reps = ring.replicas(&key, k);
            prop_assert_eq!(reps.len(), k.min(shards as usize));
            prop_assert_eq!(Some(reps[0]), ring.route(&key));
            let distinct: std::collections::BTreeSet<u32> = reps.iter().copied().collect();
            prop_assert_eq!(distinct.len(), reps.len(), "replicas must be distinct");
        }
    }
}
