//! The observability layer's built-in consistency audit, end to end: the
//! per-phase power/energy table `trace summarize` reconstructs from a run's
//! event journal must match the simulator's own `Timeline::phase_energy`
//! accounting within 1e-9 J, on all three case studies and both pipelines.

use greenness_core::{experiment, ExperimentSetup, PipelineConfig, PipelineKind};
use greenness_platform::Phase;
use greenness_trace::journal_header;
use greenness_trace::summarize::summarize;

#[test]
fn journal_reconstruction_matches_timeline_on_all_case_studies() {
    let setup = ExperimentSetup {
        trace: true,
        ..ExperimentSetup::noiseless()
    };
    for case in 1..=3 {
        let cfg = PipelineConfig::case_study(case);
        for kind in [PipelineKind::InSitu, PipelineKind::PostProcessing] {
            let r = experiment::run(kind, &cfg, &setup).expect("run ok");
            let journal = format!(
                "{}{}",
                journal_header(),
                r.journal.as_deref().expect("traced run records a journal")
            );
            let s = summarize(&journal).expect("journal parses");
            assert!(
                s.audit_ok(),
                "case {case} {kind:?} audit: {:?}",
                s.audit_errors
            );
            assert!(
                s.phases_checked > 0,
                "case {case} {kind:?} cross-checked nothing"
            );
            for phase in Phase::ALL {
                let want = r.timeline.phase_energy(phase).system_j();
                match s.rows.iter().find(|row| row.phase == phase.label()) {
                    Some(row) => {
                        assert!(
                            (row.energy_j - want).abs() <= 1e-9,
                            "case {case} {kind:?} {}: reconstructed {} J, timeline {want} J",
                            phase.label(),
                            row.energy_j
                        );
                        assert!(
                            (row.time_s - r.timeline.phase_duration(phase).as_secs_f64()).abs()
                                <= 1e-12,
                            "case {case} {kind:?} {} time",
                            phase.label()
                        );
                    }
                    None => {
                        assert!(
                            r.timeline.phase_duration(phase).is_zero(),
                            "case {case} {kind:?}: phase {} ran but has no row",
                            phase.label()
                        );
                    }
                }
            }
            let total: f64 = Phase::ALL
                .iter()
                .map(|p| r.timeline.phase_energy(*p).system_j())
                .sum();
            assert!(
                (s.total_energy_j - total).abs() <= 1e-6,
                "case {case} {kind:?} total: {} vs {total}",
                s.total_energy_j
            );
        }
    }
}
