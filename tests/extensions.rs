//! End-to-end tests of the future-work extensions: cluster pipelines,
//! pipeline variants, storage technologies, RAID, and model fitting.

use greenness_cluster::{run_cluster, ClusterConfig, ClusterKind};
use greenness_core::variants::{run_variant, CodecChoice, Variant};
use greenness_core::{experiment, pipeline::PipelineKind, ExperimentSetup, PipelineConfig};
use greenness_platform::{AccessPattern, Activity, HardwareSpec, Node};
use greenness_power::{DiskAccessFeatures, DiskEnergyModel};

#[test]
fn cluster_reproduces_the_single_node_conclusion() {
    // The paper's headline survives distribution: in-situ saves energy on a
    // 4-node cluster with a 2-server PFS.
    let mut cfg = ClusterConfig::small(4, 2);
    cfg.timesteps = 8;
    let post = run_cluster(ClusterKind::PostProcessing, &cfg).unwrap();
    let insitu = run_cluster(ClusterKind::InSitu, &cfg).unwrap();
    assert!(post.verified);
    let savings = (1.0 - insitu.total_energy_j / post.total_energy_j) * 100.0;
    assert!(savings > 10.0, "cluster in-situ saved only {savings:.1}%");
    // The network becomes a real cost: compute nodes spent energy on NICs.
    assert!(insitu.compute_energy_j > 0.0 && post.io_energy_j > 0.0);
}

#[test]
fn cluster_scaling_shifts_energy_to_static_overheads() {
    // More compute nodes: faster makespan, but more hardware idling behind
    // the same I/O — aggregate energy rises.
    let mut small = ClusterConfig::small(2, 2);
    small.timesteps = 6;
    let mut large = ClusterConfig::small(8, 2);
    large.timesteps = 6;
    let two = run_cluster(ClusterKind::PostProcessing, &small).unwrap();
    let eight = run_cluster(ClusterKind::PostProcessing, &large).unwrap();
    assert!(
        eight.makespan_s < two.makespan_s,
        "{} vs {}",
        eight.makespan_s,
        two.makespan_s
    );
    assert!(eight.total_energy_j > two.total_energy_j);
}

#[test]
fn variants_rank_sensibly_against_the_baselines() {
    let mut cfg = PipelineConfig::small(1);
    cfg.timesteps = 8;
    let setup = ExperimentSetup {
        monitoring_overhead_w: 0.0,
        ..ExperimentSetup::noiseless()
    };
    let post = experiment::run(PipelineKind::PostProcessing, &cfg, &setup).expect("run ok");
    let insitu = experiment::run(PipelineKind::InSitu, &cfg, &setup).expect("run ok");

    let mut node = Node::new(HardwareSpec::table1());
    let sampled = run_variant(Variant::SampledPost { stride: 4 }, &mut node, &cfg);
    let mut node = Node::new(HardwareSpec::table1());
    let quant = run_variant(
        Variant::CompressedPost {
            codec: CodecChoice::Quantized,
        },
        &mut node,
        &cfg,
    );

    // Both data-reduction variants keep exploration and beat raw
    // post-processing. Note that aggressive sampling can even undercut
    // in-situ — a stride-4 snapshot (1/16 of the data) is smaller than the
    // rendered images in-situ must write — so we only bound them against
    // the raw baseline and sanity-check proximity to in-situ.
    for (name, v) in [("sampled", &sampled), ("quantized", &quant)] {
        assert!(v.verified, "{name} failed verification");
        assert!(
            v.energy_j < post.metrics.energy_j,
            "{name}: {} !< {}",
            v.energy_j,
            post.metrics.energy_j
        );
        let ratio = v.energy_j / insitu.metrics.energy_j;
        assert!(
            (0.8..=1.5).contains(&ratio),
            "{name}: ratio to in-situ {ratio}"
        );
    }
}

#[test]
fn dvfs_sweep_has_an_interior_energy_optimum_or_monotone_gain() {
    // Slowing the clock cuts dynamic power cubically but stretches static
    // time; the energy curve over the sweep must not be flat.
    let mut cfg = PipelineConfig::small(1);
    cfg.timesteps = 6;
    let energies: Vec<f64> = [1.0, 0.8, 0.6, 0.4]
        .iter()
        .map(|&s| {
            let mut node = Node::new(HardwareSpec::table1());
            run_variant(Variant::DvfsSim { freq_scale: s }, &mut node, &cfg).energy_j
        })
        .collect();
    let spread = energies.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - energies.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        spread > 0.01 * energies[0],
        "DVFS sweep is flat: {energies:?}"
    );
    // At very low clocks static time dominates: 0.4 must be worse than 0.8.
    assert!(energies[3] > energies[1], "{energies:?}");
}

#[test]
fn raid0_speeds_streaming_but_not_fsync_bound_pipelines() {
    let mut spec = HardwareSpec::table1();
    spec.disk = spec.disk.raid0(4);

    // Streaming benefits ~4x...
    let base = Node::new(HardwareSpec::table1());
    let raid_node = Node::new(spec.clone());
    let act = Activity::DiskRead {
        bytes: 1024 * 1024 * 1024,
        pattern: AccessPattern::Sequential,
        buffered: false,
    };
    let (t_base, _) = base.cost_of(act);
    let (t_raid, _) = raid_node.cost_of(act);
    assert!(t_raid < t_base / 3.0, "{t_raid} vs {t_base}");

    // ...but the pipeline's chunked-fsync I/O is positioning-bound, so the
    // in-situ advantage barely moves (a finding, not a bug: RAID-0 does not
    // help journal-commit-dominated workloads).
    let cfg = PipelineConfig::small(1);
    let hdd = greenness_core::CaseComparison::run_config(1, &cfg, &ExperimentSetup::noiseless())
        .expect("case runs");
    let raid = greenness_core::CaseComparison::run_config(
        1,
        &cfg,
        &ExperimentSetup {
            spec,
            ..ExperimentSetup::noiseless()
        },
    )
    .expect("case runs");
    let delta = (raid.energy_savings_pct() - hdd.energy_savings_pct()).abs();
    assert!(delta < 3.0, "savings moved by {delta} points");
}

#[test]
fn full_scale_burst_buffer_beats_even_insitu_while_keeping_raw_data() {
    // The ref-[26] headline at §IV-C scale: staging snapshots in NVRAM and
    // draining sequentially removes both the fsync storm and the cold
    // chunked reads — post-processing keeps all raw data yet lands *below*
    // in-situ energy.
    let cfg = PipelineConfig::case_study(1);
    let setup = ExperimentSetup {
        monitoring_overhead_w: 0.0,
        ..ExperimentSetup::noiseless()
    };
    let insitu = experiment::run(PipelineKind::InSitu, &cfg, &setup).expect("run ok");
    let mut node = Node::new(HardwareSpec::table1());
    let bb = run_variant(
        Variant::BurstBufferPost {
            buffer_bytes: 256 * 1024 * 1024,
        },
        &mut node,
        &cfg,
    );
    assert!(bb.verified);
    assert_eq!(bb.bytes_written, bb.raw_bytes);
    assert!(
        bb.energy_j < insitu.metrics.energy_j,
        "burst-buffered post {} J vs in-situ {} J",
        bb.energy_j,
        insitu.metrics.energy_j
    );
}

#[test]
fn fitted_disk_model_predicts_unseen_transfers() {
    // Train the §VI-A disk-energy model on observed transfers from the
    // calibrated disk, then predict a held-out configuration.
    let node = Node::new(HardwareSpec::table1());
    let idle_w = node.spec().disk.idle_w;
    let observe = |bytes: u64, pattern: AccessPattern| -> (DiskAccessFeatures, f64) {
        let (secs, draw) = node.cost_of(Activity::DiskRead {
            bytes,
            pattern,
            buffered: false,
        });
        let energy = (draw.disk_w - idle_w) * secs;
        let (ops, position_s) = match pattern {
            AccessPattern::Sequential => (1.0, 12.67e-3),
            AccessPattern::Chunked { op_bytes } => {
                let n = bytes.div_ceil(op_bytes) as f64;
                (n, n * 5.17e-3)
            }
            AccessPattern::Random {
                op_bytes,
                queue_depth,
            } => {
                let n = bytes.div_ceil(op_bytes) as f64;
                let ncq = 1.0 + (queue_depth as f64).log2();
                (n, n * 12.67e-3 / ncq)
            }
        };
        (
            DiskAccessFeatures {
                ops,
                bytes: bytes as f64,
                position_s,
            },
            energy,
        )
    };

    let mut train = Vec::new();
    for mb in [1u64, 8, 64, 512] {
        let bytes = mb * 1024 * 1024;
        train.push(observe(bytes, AccessPattern::Sequential));
        train.push(observe(
            bytes,
            AccessPattern::Chunked { op_bytes: 8 * 1024 },
        ));
        train.push(observe(
            bytes,
            AccessPattern::Random {
                op_bytes: 4096,
                queue_depth: 32,
            },
        ));
        train.push(observe(
            bytes,
            AccessPattern::Random {
                op_bytes: 4096,
                queue_depth: 1,
            },
        ));
    }
    let model = DiskEnergyModel::fit(&train).expect("fit");
    assert!(
        model.r_squared(&train) > 0.98,
        "R² {}",
        model.r_squared(&train)
    );

    // Held-out: 256 MiB random with queue depth 8.
    let (f, truth) = observe(
        256 * 1024 * 1024,
        AccessPattern::Random {
            op_bytes: 4096,
            queue_depth: 8,
        },
    );
    let pred = model.predict_j(f);
    assert!(
        (pred - truth).abs() < 0.15 * truth.abs().max(1.0),
        "predicted {pred} vs {truth}"
    );
}
