//! Steering-session regression suite: the 24-seed chaos sweep, the
//! cached-delta exactness audit, and the drain/resume guarantee.
//!
//! These pin the three behaviors the steering subsystem promises:
//!
//! 1. A scripted attach/adjust/render/detach session routed through the
//!    fleet converges to bit-identical reply bytes under connection drops
//!    and shard churn, for every fault seed — the client never observes a
//!    fault, only the clean transcript.
//! 2. What-if deltas answered from the content-addressed cache (or from
//!    schedule replay) match a full recompute — real stencil, real
//!    renderer — to within 1e-9 J, while doing zero additional solver
//!    work.
//! 3. A drain mid-session refuses the op *before* mutating anything,
//!    hands back a resume token instead of a torn frame, and the session
//!    re-derived on another instance reproduces the clean transcript.

use greenness_core::steering::Adjustment;
use greenness_faults::FaultPlan;
use greenness_fleet::{Fleet, FleetConfig};
use greenness_serve::{Service, ServiceConfig, SCHEMA};
use greenness_steer::{AttachSpec, EngineConfig, SessionEngine};

/// The scripted session: attach, three adjust/render rounds, a mid-session
/// re-attach (resume), a final render, detach. Mirrors `greenness steer`.
fn script(session: &str) -> Vec<String> {
    [
        format!(r#""op":"steer.attach","params":{{"session":"{session}","interval":2,"timesteps":12}}"#),
        format!(r#""op":"steer.render","params":{{"session":"{session}","seq":1,"steps":3}}"#),
        format!(
            r#""op":"steer.adjust","params":{{"session":"{session}","seq":2,"kind":"io_interval","io_interval":3}}"#
        ),
        format!(r#""op":"steer.render","params":{{"session":"{session}","seq":3,"steps":3}}"#),
        format!(
            r#""op":"steer.adjust","params":{{"session":"{session}","seq":4,"kind":"resolution","width":96,"height":96}}"#
        ),
        format!(r#""op":"steer.render","params":{{"session":"{session}","seq":5,"steps":2}}"#),
        format!(
            r#""op":"steer.adjust","params":{{"session":"{session}","seq":6,"kind":"camera","colormap":"viridis","range":[0.0,0.3]}}"#
        ),
        format!(r#""op":"steer.attach","params":{{"session":"{session}","interval":2,"timesteps":12}}"#),
        format!(r#""op":"steer.render","params":{{"session":"{session}","seq":7,"steps":4}}"#),
        format!(r#""op":"steer.detach","params":{{"session":"{session}","seq":8}}"#),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, body)| format!("{{\"schema\":\"{SCHEMA}\",\"id\":{},{body}}}", i + 1))
    .collect()
}

fn run_script_through(fleet: &Fleet, session: &str) -> Vec<String> {
    script(session)
        .iter()
        .map(|line| {
            let out = fleet.handle_line(line);
            assert!(
                out.line.contains("\"ok\":true"),
                "script op failed\n  request: {line}\n  reply:   {}",
                out.line
            );
            out.line
        })
        .collect()
}

#[test]
fn chaos_sweep_converges_to_clean_transcripts_for_24_seeds() {
    let clean = run_script_through(&Fleet::new(FleetConfig::default()), "chaos");
    for seed in 0..24 {
        let fleet = Fleet::new(FleetConfig {
            faults: Some(FaultPlan {
                serve_drop_rate: 0.25,
                fleet_churn_rate: 0.35,
                ..FaultPlan::quiet(seed)
            }),
            ..FleetConfig::default()
        });
        let faulted = run_script_through(&fleet, "chaos");
        assert_eq!(
            clean, faulted,
            "seed {seed}: faulted session diverged from the clean transcript"
        );
        // The sweep is only meaningful if the fault machinery actually
        // fired somewhere across the sweep; check per-seed activity via
        // the router registry (drops retried, shards re-homed).
        let m = fleet.metrics_clone();
        let exercised =
            m.counter("retries.fleet.session.resume") + m.counter("fleet.session.rehomed");
        if seed == 0 {
            // Deterministic per seed: seed 0 is known-active at these
            // rates; a rate regression that silences it should fail loud.
            assert!(exercised > 0, "seed 0 no longer exercises any fault");
        }
    }
}

#[test]
fn cached_deltas_match_full_recompute_within_1e9_joules() {
    let mut engine = SessionEngine::new(EngineConfig::default());
    let spec = AttachSpec {
        interval: 2,
        timesteps: 12,
    };
    engine.attach("a", &spec).expect("attach a");
    engine.attach("b", &spec).expect("attach b");
    engine.render("a", 1, 3).expect("render a");
    engine.render("b", 1, 3).expect("render b");

    let adj = Adjustment::IoInterval(4);
    // Ground truth *before* anything is applied: clone the live pipeline
    // and actually run the remaining steps — real stencil, real
    // rasterization — under both configurations.
    let pipe = engine.pipeline("b").expect("live session").clone();
    let solver_steps_before = pipe.solver_steps();
    let baseline_truth = pipe.full_recompute_remaining_j(pipe.config());
    let adjusted_truth = {
        let mut trial = pipe.clone();
        trial.adjust(&adj).expect("valid adjustment");
        pipe.full_recompute_remaining_j(trial.config())
    };

    let computed = engine.adjust("a", 2, &adj).expect("adjust a");
    let cached = engine.adjust("b", 2, &adj).expect("adjust b");
    assert!(computed.0.contains("cached=false"), "{}", computed.0);
    assert!(cached.0.contains("cached=true"), "{}", cached.0);

    let field = |line: &str, key: &str| -> f64 {
        line.split(&format!(" {key}="))
            .nth(1)
            .and_then(|rest| rest.split(' ').next())
            .unwrap_or_else(|| panic!("missing {key} in: {line}"))
            .parse()
            .unwrap_or_else(|e| panic!("bad {key} in: {line}: {e}"))
    };
    for reply in [&computed.0, &cached.0] {
        assert!(
            (field(reply, "baseline_j") - baseline_truth).abs() <= 1e-9,
            "baseline drifted from full recompute: {reply}\n  truth: {baseline_truth}"
        );
        assert!(
            (field(reply, "adjusted_j") - adjusted_truth).abs() <= 1e-9,
            "adjusted drifted from full recompute: {reply}\n  truth: {adjusted_truth}"
        );
    }
    // The live answer cost no solver work: session b's solver has not
    // advanced a single step for either what-if.
    let after = engine.pipeline("b").expect("live session").solver_steps();
    assert_eq!(solver_steps_before, after, "what-if ran the solver");
    let count = |name: &str| {
        engine
            .counters()
            .iter()
            .find(|(n, _)| *n == name)
            .expect("known counter")
            .1
    };
    assert_eq!(count("steer.delta.computed"), 1);
    assert_eq!(count("steer.delta.cached"), 1);
}

#[test]
fn drain_mid_session_hands_back_a_resume_token_then_reattach_elsewhere_converges() {
    let lines = script("d");
    let run_all = |svc: &Service| -> Vec<String> {
        lines
            .iter()
            .map(|l| {
                let out = svc.handle_line(l);
                assert!(out.line().contains("\"ok\":true"), "{}", out.line());
                out.line()
            })
            .collect()
    };
    let clean = run_all(&Service::new(ServiceConfig::default()));

    // A second instance drains halfway through the same session.
    let draining = Service::new(ServiceConfig::default());
    for l in &lines[..5] {
        assert!(draining.handle_line(l).line().contains("\"ok\":true"));
    }
    let down = draining.handle_line(&format!(
        "{{\"schema\":\"{SCHEMA}\",\"id\":90,\"op\":\"shutdown\"}}"
    ));
    assert!(down.shutdown, "shutdown op must be granted");
    let refused = draining.handle_line(&lines[5]).line();
    assert!(
        refused.contains("\"code\":\"shutting_down\""),
        "steer op during drain must be refused: {refused}"
    );
    assert!(
        refused.contains("token "),
        "the refusal must carry a resume token: {refused}"
    );
    assert!(
        !refused.contains("frame "),
        "a drained render must never emit a (torn) frame: {refused}"
    );

    // "Elsewhere": a fresh instance. Re-deriving the session from the
    // client's op log converges to the clean transcript, byte for byte —
    // including the ops the drained instance had already applied.
    let elsewhere = run_all(&Service::new(ServiceConfig::default()));
    assert_eq!(clean, elsewhere, "re-derived session diverged");
}
