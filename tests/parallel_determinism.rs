//! The sweep executor's headline guarantee: results are bit-identical for
//! any worker count, because every job's RNG seed derives from its key —
//! never from worker identity or execution order.

use greenness_core::sweep::{self, JobResult, SweepJob};
use greenness_core::{ExperimentSetup, PipelineConfig};

/// A small but non-trivial grid: three cases × two pipelines, six jobs.
fn small_grid(setup: &ExperimentSetup) -> Vec<SweepJob> {
    let configs: Vec<_> = [(1u32, 1u64), (2, 2), (3, 8)]
        .into_iter()
        .map(|(n, interval)| (n, PipelineConfig::small(interval)))
        .collect();
    sweep::config_grid(setup, &configs)
}

fn run_with(workers: usize, setup: &ExperimentSetup) -> Vec<JobResult> {
    sweep::run_sweep(small_grid(setup), workers, &sweep::silent_progress()).expect("sweep ok")
}

/// Every numeric field that could conceivably drift under reordering.
fn fingerprint(results: &[JobResult]) -> Vec<(usize, String, u64, [u64; 5], usize)> {
    results
        .iter()
        .map(|r| {
            (
                r.id,
                r.key.clone(),
                r.seed,
                [
                    r.report.metrics.execution_time_s.to_bits(),
                    r.report.metrics.average_power_w.to_bits(),
                    r.report.metrics.peak_power_w.to_bits(),
                    r.report.metrics.energy_j.to_bits(),
                    r.report.metrics.work_units as u64,
                ],
                r.report.profile.len(),
            )
        })
        .collect()
}

#[test]
fn results_are_bit_identical_across_worker_counts() {
    // The default setup has a *noisy* meter — the strongest test: the noise
    // stream itself must be schedule-independent.
    let setup = ExperimentSetup::default();
    let serial = run_with(1, &setup);
    let baseline = fingerprint(&serial);
    for workers in [2usize, 4, 8] {
        let parallel = run_with(workers, &setup);
        assert_eq!(
            baseline,
            fingerprint(&parallel),
            "results diverged between 1 and {workers} workers"
        );
        // Profiles (the noisy sampled power traces) must match sample by
        // sample, not just in the aggregate.
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(
                a.report.profile.samples, b.report.profile.samples,
                "{}",
                a.key
            );
        }
    }
}

#[test]
fn manifest_is_byte_identical_across_worker_counts() {
    let setup = ExperimentSetup::default();
    let serial = sweep::manifest_json(&run_with(1, &setup));
    for workers in [2usize, 4, 8] {
        let parallel = sweep::manifest_json(&run_with(workers, &setup));
        assert_eq!(
            serial.as_bytes(),
            parallel.as_bytes(),
            "manifest diverged at {workers} workers"
        );
    }
}

#[test]
fn traced_journals_and_metrics_are_byte_identical_across_worker_counts() {
    // The observability layer inherits the guarantee: the assembled sweep
    // journal and metrics registry are byte-for-byte schedule-independent.
    let setup = ExperimentSetup {
        trace: true,
        ..ExperimentSetup::default()
    };
    let serial = run_with(1, &setup);
    let journal = sweep::sweep_journal(&serial).expect("traced sweep has a journal");
    let metrics = sweep::sweep_metrics_json(&serial).expect("traced sweep has metrics");
    assert!(journal.starts_with("{\"schema\":\"greenness-trace/v1\"}\n"));
    for workers in [2usize, 8] {
        let parallel = run_with(workers, &setup);
        assert_eq!(
            journal.as_bytes(),
            sweep::sweep_journal(&parallel).expect("journal").as_bytes(),
            "journal diverged at {workers} workers"
        );
        assert_eq!(
            metrics.as_bytes(),
            sweep::sweep_metrics_json(&parallel)
                .expect("metrics")
                .as_bytes(),
            "metrics diverged at {workers} workers"
        );
    }
}

#[test]
fn comparisons_preserve_submission_order() {
    let setup = ExperimentSetup::noiseless();
    for workers in [1usize, 4] {
        let cases = sweep::comparisons(&run_with(workers, &setup));
        assert_eq!(
            cases.iter().map(|c| c.case).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }
}

#[test]
fn oversubscription_and_excess_workers_are_safe() {
    // More workers than jobs must clamp, not deadlock or skew results.
    let setup = ExperimentSetup::noiseless();
    let few =
        sweep::run_sweep(small_grid(&setup), 64, &sweep::silent_progress()).expect("sweep ok");
    assert_eq!(fingerprint(&few), fingerprint(&run_with(1, &setup)));
}

#[test]
fn parallel_executor_matches_direct_sequential_runs() {
    // The executor must reproduce exactly what a plain `experiment::run`
    // loop would produce with per-job reseeding — no hidden coupling.
    let setup = ExperimentSetup::noiseless();
    let results = run_with(4, &setup);
    for r in &results {
        // Re-run the same job alone in a one-job, one-worker sweep.
        let same = small_grid(&setup)
            .into_iter()
            .find(|j| j.key() == r.key)
            .expect("job exists");
        let direct = sweep::run_sweep(vec![same], 1, &sweep::silent_progress())
            .expect("sweep ok")
            .remove(0);
        assert_eq!(direct.seed, r.seed, "{}", r.key);
        assert_eq!(
            direct.report.metrics.energy_j.to_bits(),
            r.report.metrics.energy_j.to_bits(),
            "{}",
            r.key
        );
    }
}
