//! Golden-value regression suite: pins the simulator's headline numbers to
//! the paper's published tables so calibration drift is caught immediately.
//!
//! Tolerances are explicit and deliberately tight — tighter than the
//! behavioural tests elsewhere. If one of these trips after an intentional
//! recalibration, update the pinned value *and* EXPERIMENTS.md together.

use greenness_core::breakdown::CaseBreakdown;
use greenness_core::{probes, CaseComparison, ExperimentSetup};
use greenness_platform::Node;
use greenness_storage::{fio, FioJob, FioKind, NullBlockDevice};

/// Relative error, guarded for small denominators.
fn rel(got: f64, want: f64) -> f64 {
    (got - want).abs() / want.abs().max(1e-9)
}

// ---------------------------------------------------------------- Table II

#[test]
fn golden_table2_nnread_power() {
    // Table II, nnread column: 115.1 W total, 10.3 W dynamic. Pinned to
    // ±0.5 % — the probe is deterministic, so any drift is a real
    // calibration change, not noise.
    let r = probes::nnread(&ExperimentSetup::noiseless(), 128 * 1024, 50.0).expect("probe ok");
    assert!(
        rel(r.avg_total_w, 115.1) < 0.005,
        "nnread total {:.2} W (paper 115.1)",
        r.avg_total_w
    );
    assert!(
        rel(r.avg_dynamic_w, 10.3) < 0.05,
        "nnread dyn {:.2} W (paper 10.3)",
        r.avg_dynamic_w
    );
}

#[test]
fn golden_table2_nnwrite_power() {
    // Table II, nnwrite column: 114.8 W total, 10.0 W dynamic.
    let r = probes::nnwrite(&ExperimentSetup::noiseless(), 128 * 1024, 50.0).expect("probe ok");
    assert!(
        rel(r.avg_total_w, 114.8) < 0.005,
        "nnwrite total {:.2} W (paper 114.8)",
        r.avg_total_w
    );
    assert!(
        rel(r.avg_dynamic_w, 10.0) < 0.05,
        "nnwrite dyn {:.2} W (paper 10.0)",
        r.avg_dynamic_w
    );
}

#[test]
fn golden_section5c_energy_split() {
    // §V-C: in-situ's case-1 saving decomposes into static and dynamic
    // parts. Paper: 12.8 kJ + 1.2 kJ; our reproduction measures 11.26 kJ +
    // 1.09 kJ (EXPERIMENTS.md) — the 91 % / 9 % *split*, the paper's
    // headline, matches exactly. Pin the reproduced values at ±2 % and the
    // share at ±1 point.
    let setup = ExperimentSetup::noiseless();
    let cmp = CaseComparison::run_case(1, &setup).expect("case runs");
    let b = CaseBreakdown::analyze(&cmp, &setup, 128 * 1024, 50.0).expect("probes ok");
    let static_kj = b.savings.static_j / 1000.0;
    let dynamic_kj = b.savings.dynamic_j / 1000.0;
    assert!(
        rel(static_kj, 11.26) < 0.02,
        "static {static_kj:.2} kJ (measured 11.26, paper 12.8)"
    );
    assert!(
        rel(dynamic_kj, 1.09) < 0.02,
        "dynamic {dynamic_kj:.2} kJ (measured 1.09, paper 1.2)"
    );
    assert!(
        (b.savings.static_pct() - 91.0).abs() < 1.0,
        "static share {:.1} % (paper 91 %)",
        b.savings.static_pct()
    );
}

// --------------------------------------------------------------- Table III

fn table3(kind: FioKind) -> greenness_storage::FioResult {
    let setup = ExperimentSetup::noiseless();
    let mut node = Node::new(setup.spec.clone());
    let mut dev = NullBlockDevice::with_capacity_bytes(4 * 1024 * 1024 * 1024);
    fio::run(&mut node, &mut dev, &FioJob::table3(kind)).unwrap()
}

#[test]
fn golden_table3_sequential_vs_random_energy() {
    // Table III full-system energies: sequential read 4.2 kJ vs random
    // read 238.6 kJ; sequential write 3.1 kJ vs random write 3.6 kJ.
    // The read-side gap (≈57×) is the paper's central §V-D argument.
    let sr = table3(FioKind::SequentialRead);
    let rr = table3(FioKind::RandomRead);
    let sw = table3(FioKind::SequentialWrite);
    let rw = table3(FioKind::RandomWrite);
    assert!(
        rel(sr.full_system_energy_kj, 4.2) < 0.03,
        "seq read {:.2} kJ",
        sr.full_system_energy_kj
    );
    assert!(
        rel(rr.full_system_energy_kj, 238.6) < 0.03,
        "rand read {:.1} kJ",
        rr.full_system_energy_kj
    );
    assert!(
        rel(sw.full_system_energy_kj, 3.1) < 0.03,
        "seq write {:.2} kJ",
        sw.full_system_energy_kj
    );
    assert!(
        rel(rw.full_system_energy_kj, 3.6) < 0.03,
        "rand write {:.2} kJ",
        rw.full_system_energy_kj
    );
    let ratio = rr.full_system_energy_kj / sr.full_system_energy_kj;
    assert!(
        (50.0..=65.0).contains(&ratio),
        "random/sequential read ratio {ratio:.1} (paper ≈57)"
    );
}

#[test]
fn golden_table3_sequential_write_typo_correction() {
    // The paper prints the sequential-write disk dynamic energy as
    // "2.9 kJ", but its own row arithmetic gives 10.9 W × 27.0 s ≈ 0.29 kJ
    // — a factor-of-10 typo (EXPERIMENTS.md, inconsistency #2). We pin the
    // *corrected* value and assert the row stays self-consistent.
    let r = table3(FioKind::SequentialWrite);
    assert!(
        rel(r.disk_dyn_energy_kj, 0.29) < 0.10,
        "seq write disk energy {:.3} kJ (corrected paper value 0.29, printed as 2.9)",
        r.disk_dyn_energy_kj
    );
    // Self-consistency: energy column == power column × time column.
    let implied_kj = r.disk_dyn_power_w * r.execution_time_s / 1000.0;
    assert!(
        rel(r.disk_dyn_energy_kj, implied_kj) < 0.02,
        "row arithmetic broken"
    );
    // And the printed 2.9 kJ is definitively NOT what the model produces.
    assert!(
        rel(r.disk_dyn_energy_kj, 2.9) > 0.5,
        "typo value should not reproduce"
    );
}

#[test]
fn golden_table3_times_and_powers() {
    // Time and full-system power columns, all four rows, ±2 %.
    let expect = [
        (FioKind::SequentialRead, 35.9, 118.0),
        (FioKind::RandomRead, 2230.0, 107.0),
        (FioKind::SequentialWrite, 27.0, 115.4),
        (FioKind::RandomWrite, 31.0, 117.9),
    ];
    for (kind, t_s, sys_w) in expect {
        let r = table3(kind);
        assert!(
            rel(r.execution_time_s, t_s) < 0.02,
            "{kind:?} time {:.1} s",
            r.execution_time_s
        );
        assert!(
            rel(r.full_system_power_w, sys_w) < 0.01,
            "{kind:?} power {:.1} W",
            r.full_system_power_w
        );
    }
}

// -------------------------------------------------- headline case studies

#[test]
fn golden_case1_headline_numbers() {
    // Figure 10 / §V-A: case 1 post-processing burns ≈30 kJ and in-situ
    // saves ≈43 % (we reproduce ≈41 %, see EXPERIMENTS.md).
    let cmp = CaseComparison::run_case(1, &ExperimentSetup::noiseless()).expect("case runs");
    assert!(
        rel(cmp.post.metrics.energy_j, 30_000.0) < 0.07,
        "post energy {:.1} kJ (paper ≈30)",
        cmp.post.metrics.energy_j / 1000.0
    );
    let savings = cmp.energy_savings_pct();
    assert!(
        (39.0..=45.0).contains(&savings),
        "savings {savings:.1} % (paper 43 %)"
    );
}

// ------------------------------------------------- Placement sweep goldens

/// Run the full placement grid once and index results by key.
fn placement_by_key(
) -> std::collections::BTreeMap<String, greenness_core::placement::PlacementResult> {
    use greenness_core::{placement, sweep};
    placement::run_placement(
        placement::placement_grid(),
        &placement::PlacementSetup::default(),
        8,
        &sweep::silent_progress(),
    )
    .expect("placement grid runs")
    .into_iter()
    .map(|r| (r.key.clone(), r))
    .collect()
}

#[test]
fn golden_placement_grid_values() {
    // Pinned from the committed small-scale run (see EXPERIMENTS.md,
    // "Placement and the reorganization argument"): (virtual seconds,
    // total joules, read-phase joules) per grid cell, ±2 %. The runs are
    // deterministic, so any drift is a real cost-model change.
    let want: &[(&str, f64, f64, f64)] = &[
        ("case1/noop", 3.541, 421.57, 199.648),
        ("case1/freq-recency", 3.548, 422.42, 0.705),
        ("case1/energy-greedy", 3.541, 421.57, 199.648),
        ("case2/noop", 1.809, 215.31, 99.824),
        ("case2/freq-recency", 1.812, 215.67, 0.326),
        ("case2/energy-greedy", 1.809, 215.31, 99.824),
        ("case3/noop", 0.769, 91.56, 39.93),
        ("case3/freq-recency", 0.769, 91.57, 0.008),
        ("case3/energy-greedy", 0.769, 91.56, 39.93),
        ("seqscan/noop", 3.283, 392.12, 42.48),
        ("seqscan/freq-recency", 5.652, 672.99, 3.659),
        ("seqscan/energy-greedy", 3.283, 392.12, 42.48),
        ("random/noop", 13.662, 1627.39, 1277.748),
        ("random/freq-recency", 5.637, 671.07, 1.737),
        ("random/energy-greedy", 7.491, 891.94, 542.291),
    ];
    let got = placement_by_key();
    assert_eq!(got.len(), want.len(), "grid changed shape");
    for &(key, time_s, energy_j, read_j) in want {
        let r = got.get(key).unwrap_or_else(|| panic!("missing {key}"));
        assert!(r.verified, "{key}: read-back verification failed");
        assert!(
            rel(r.time_s, time_s) < 0.02,
            "{key}: time {:.3} s (golden {time_s})",
            r.time_s
        );
        assert!(
            rel(r.energy_j, energy_j) < 0.02,
            "{key}: energy {:.1} J (golden {energy_j})",
            r.energy_j
        );
        // Near-zero read energies (a fully promoted working set) get an
        // absolute floor instead of a relative one.
        assert!(
            rel(r.read_energy_j, read_j) < 0.05 || (r.read_energy_j - read_j).abs() < 0.02,
            "{key}: read energy {:.3} J (golden {read_j})",
            r.read_energy_j
        );
    }
}

#[test]
fn golden_placement_cliff_ratios() {
    // The Table III sequential-vs-random cliff, restated as read-phase
    // energy on equal byte volumes: ~30x under noop (nothing reorganized),
    // collapsing below 1x under freq-recency and to ~13x under the more
    // conservative energy-greedy policy. The noop ratio is the regression
    // anchor — the cliff must survive unchanged when no policy intervenes.
    use greenness_core::placement;
    let results: Vec<_> = placement_by_key().into_values().collect();
    let noop = placement::noop_gap_ratio(&results).expect("noop ratio");
    assert!(
        (25.0..35.0).contains(&noop),
        "noop cliff ratio {noop:.1}x drifted (golden 30.1x)"
    );
    let freq = placement::gap_ratio_under(&results, "freq-recency").expect("freq ratio");
    assert!(
        freq < 1.5,
        "freq-recency must close the cliff, got {freq:.1}x"
    );
    let greedy = placement::gap_ratio_under(&results, "energy-greedy").expect("greedy ratio");
    assert!(
        greedy < noop * 0.6,
        "energy-greedy must narrow the cliff: {greedy:.1}x vs noop {noop:.1}x"
    );
}

#[test]
fn golden_placement_energy_greedy_is_conservative() {
    // Energy-greedy only moves blocks when projected savings beat the
    // migration cost with hysteresis — on the sequential case studies it
    // must be bit-identical to doing nothing at all.
    let got = placement_by_key();
    for case in ["case1", "case2", "case3", "seqscan"] {
        let noop = &got[&format!("{case}/noop")];
        let greedy = &got[&format!("{case}/energy-greedy")];
        assert_eq!(
            greedy.energy_j.to_bits(),
            noop.energy_j.to_bits(),
            "{case}: energy-greedy should not have intervened"
        );
        assert_eq!(greedy.promotes, 0, "{case}: unexpected promotions");
    }
}

// --------------------------------------------------- cluster case studies

/// Run one full-scale cluster case study.
fn cluster_case(
    kind: greenness_cluster::ClusterKind,
    case: u32,
    tweak: impl FnOnce(&mut greenness_cluster::ClusterConfig),
) -> greenness_cluster::ClusterReport {
    let mut cfg = greenness_cluster::ClusterConfig::case_study(case);
    tweak(&mut cfg);
    greenness_cluster::run_cluster(kind, &cfg).expect("case study runs")
}

#[test]
fn golden_cluster_three_way_case_studies() {
    // Pinned from the committed case-study sweep (see EXPERIMENTS.md,
    // "In-transit staging and the overlap argument"): (virtual seconds,
    // total joules) per (case, pipeline) at the default staging config
    // (1 staging node, queue depth 2, no wire codec), ±2 %. The runs are
    // deterministic, so any drift is a real cost-model change. The ordering
    // insitu < intransit < post must hold on every case study: staging
    // overlaps the transfer but still ships full snapshots over the NIC.
    use greenness_cluster::ClusterKind::{InSitu, InTransit, PostProcessing};
    let want: &[(u32, greenness_cluster::ClusterKind, f64, f64, u64)] = &[
        (1, PostProcessing, 39.253, 30403.45, 0),
        (1, InSitu, 13.481, 11115.06, 0),
        (1, InTransit, 25.088, 19801.01, 8_388_608),
        (2, PostProcessing, 22.941, 18116.98, 0),
        (2, InSitu, 10.054, 8472.78, 0),
        (2, InTransit, 13.284, 10925.35, 4_194_304),
        (3, PostProcessing, 10.706, 8902.12, 0),
        (3, InSitu, 7.485, 6491.07, 0),
        (3, InTransit, 8.505, 7260.31, 1_048_576),
    ];
    for &(case, kind, makespan_s, energy_j, fabric_bytes) in want {
        let r = cluster_case(kind, case, |_| {});
        assert!(r.verified, "case{case}/{kind:?}: verification failed");
        assert!(
            rel(r.makespan_s, makespan_s) < 0.02,
            "case{case}/{kind:?}: makespan {:.3} s (golden {makespan_s})",
            r.makespan_s
        );
        assert!(
            rel(r.total_energy_j, energy_j) < 0.02,
            "case{case}/{kind:?}: energy {:.1} J (golden {energy_j})",
            r.total_energy_j
        );
        assert_eq!(
            r.fabric_bytes, fabric_bytes,
            "case{case}/{kind:?}: staged wire bytes changed"
        );
        assert_eq!(
            r.bytes_out,
            r.fabric_bytes + r.pfs_bytes,
            "case{case}/{kind:?}: bytes_out must stay the documented sum"
        );
    }
}

#[test]
fn golden_cluster_overlap_beats_serialized_staging() {
    // The tentpole claim, pinned: on case study 1 the overlapped in-transit
    // path (queue depth 2) finishes in 25.09 virtual seconds where the
    // serialized implementation (queue depth 0: every compute node blocks
    // until its snapshot is staged, decoded, and rendered) takes 33.85 s.
    // Overlap must stay a strict win, and must not change the images.
    use greenness_cluster::ClusterKind::InTransit;
    let overlapped = cluster_case(InTransit, 1, |c| c.staging.queue_depth = 2);
    let serialized = cluster_case(InTransit, 1, |c| c.staging.queue_depth = 0);
    assert!(
        rel(overlapped.makespan_s, 25.088) < 0.02,
        "overlapped makespan {:.3} s (golden 25.088)",
        overlapped.makespan_s
    );
    assert!(
        rel(serialized.makespan_s, 33.854) < 0.02,
        "serialized makespan {:.3} s (golden 33.854)",
        serialized.makespan_s
    );
    assert!(
        overlapped.makespan_s < serialized.makespan_s,
        "overlap must be a strict makespan win: {:.3} vs {:.3}",
        overlapped.makespan_s,
        serialized.makespan_s
    );
    assert_eq!(
        overlapped.image_hash, serialized.image_hash,
        "queue depth is a scheduling knob, not an image knob"
    );
}

#[test]
fn golden_cluster_wire_compression_flips_case2() {
    // Compression-on-the-wire changes the pipeline *ordering*, not just the
    // margins: on case study 2 uncompressed in-transit loses to in-situ
    // (10925 J vs 8473 J), but the 8:1 quantizing codec drops the staged
    // traffic enough that in-transit wins (7142 J). Pinned ±2 %.
    use greenness_cluster::{ClusterKind, WireCodec};
    let insitu = cluster_case(ClusterKind::InSitu, 2, |_| {});
    let raw = cluster_case(ClusterKind::InTransit, 2, |_| {});
    let packed = cluster_case(ClusterKind::InTransit, 2, |c| {
        c.staging.wire_codec = WireCodec::Quant8;
    });
    assert!(
        rel(packed.total_energy_j, 7141.63) < 0.02,
        "quant8 in-transit energy {:.1} J (golden 7141.63)",
        packed.total_energy_j
    );
    assert!(
        raw.total_energy_j > insitu.total_energy_j,
        "uncompressed in-transit must lose to in-situ on case 2: {:.1} vs {:.1} J",
        raw.total_energy_j,
        insitu.total_energy_j
    );
    assert!(
        packed.total_energy_j < insitu.total_energy_j,
        "compressed in-transit must beat in-situ on case 2: {:.1} vs {:.1} J",
        packed.total_energy_j,
        insitu.total_energy_j
    );
    assert_eq!(
        packed.fabric_bytes, 525_072,
        "quant8 staged wire volume drifted"
    );
    assert!(
        packed.fabric_bytes * 7 < raw.fabric_bytes,
        "the quantizer must stay better than 7:1 on the smooth heat field"
    );
}
