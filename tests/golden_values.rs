//! Golden-value regression suite: pins the simulator's headline numbers to
//! the paper's published tables so calibration drift is caught immediately.
//!
//! Tolerances are explicit and deliberately tight — tighter than the
//! behavioural tests elsewhere. If one of these trips after an intentional
//! recalibration, update the pinned value *and* EXPERIMENTS.md together.

use greenness_core::breakdown::CaseBreakdown;
use greenness_core::{probes, CaseComparison, ExperimentSetup};
use greenness_platform::Node;
use greenness_storage::{fio, FioJob, FioKind, NullBlockDevice};

/// Relative error, guarded for small denominators.
fn rel(got: f64, want: f64) -> f64 {
    (got - want).abs() / want.abs().max(1e-9)
}

// ---------------------------------------------------------------- Table II

#[test]
fn golden_table2_nnread_power() {
    // Table II, nnread column: 115.1 W total, 10.3 W dynamic. Pinned to
    // ±0.5 % — the probe is deterministic, so any drift is a real
    // calibration change, not noise.
    let r = probes::nnread(&ExperimentSetup::noiseless(), 128 * 1024, 50.0).expect("probe ok");
    assert!(
        rel(r.avg_total_w, 115.1) < 0.005,
        "nnread total {:.2} W (paper 115.1)",
        r.avg_total_w
    );
    assert!(
        rel(r.avg_dynamic_w, 10.3) < 0.05,
        "nnread dyn {:.2} W (paper 10.3)",
        r.avg_dynamic_w
    );
}

#[test]
fn golden_table2_nnwrite_power() {
    // Table II, nnwrite column: 114.8 W total, 10.0 W dynamic.
    let r = probes::nnwrite(&ExperimentSetup::noiseless(), 128 * 1024, 50.0).expect("probe ok");
    assert!(
        rel(r.avg_total_w, 114.8) < 0.005,
        "nnwrite total {:.2} W (paper 114.8)",
        r.avg_total_w
    );
    assert!(
        rel(r.avg_dynamic_w, 10.0) < 0.05,
        "nnwrite dyn {:.2} W (paper 10.0)",
        r.avg_dynamic_w
    );
}

#[test]
fn golden_section5c_energy_split() {
    // §V-C: in-situ's case-1 saving decomposes into static and dynamic
    // parts. Paper: 12.8 kJ + 1.2 kJ; our reproduction measures 11.26 kJ +
    // 1.09 kJ (EXPERIMENTS.md) — the 91 % / 9 % *split*, the paper's
    // headline, matches exactly. Pin the reproduced values at ±2 % and the
    // share at ±1 point.
    let setup = ExperimentSetup::noiseless();
    let cmp = CaseComparison::run_case(1, &setup);
    let b = CaseBreakdown::analyze(&cmp, &setup, 128 * 1024, 50.0).expect("probes ok");
    let static_kj = b.savings.static_j / 1000.0;
    let dynamic_kj = b.savings.dynamic_j / 1000.0;
    assert!(
        rel(static_kj, 11.26) < 0.02,
        "static {static_kj:.2} kJ (measured 11.26, paper 12.8)"
    );
    assert!(
        rel(dynamic_kj, 1.09) < 0.02,
        "dynamic {dynamic_kj:.2} kJ (measured 1.09, paper 1.2)"
    );
    assert!(
        (b.savings.static_pct() - 91.0).abs() < 1.0,
        "static share {:.1} % (paper 91 %)",
        b.savings.static_pct()
    );
}

// --------------------------------------------------------------- Table III

fn table3(kind: FioKind) -> greenness_storage::FioResult {
    let setup = ExperimentSetup::noiseless();
    let mut node = Node::new(setup.spec.clone());
    let mut dev = NullBlockDevice::with_capacity_bytes(4 * 1024 * 1024 * 1024);
    fio::run(&mut node, &mut dev, &FioJob::table3(kind)).unwrap()
}

#[test]
fn golden_table3_sequential_vs_random_energy() {
    // Table III full-system energies: sequential read 4.2 kJ vs random
    // read 238.6 kJ; sequential write 3.1 kJ vs random write 3.6 kJ.
    // The read-side gap (≈57×) is the paper's central §V-D argument.
    let sr = table3(FioKind::SequentialRead);
    let rr = table3(FioKind::RandomRead);
    let sw = table3(FioKind::SequentialWrite);
    let rw = table3(FioKind::RandomWrite);
    assert!(
        rel(sr.full_system_energy_kj, 4.2) < 0.03,
        "seq read {:.2} kJ",
        sr.full_system_energy_kj
    );
    assert!(
        rel(rr.full_system_energy_kj, 238.6) < 0.03,
        "rand read {:.1} kJ",
        rr.full_system_energy_kj
    );
    assert!(
        rel(sw.full_system_energy_kj, 3.1) < 0.03,
        "seq write {:.2} kJ",
        sw.full_system_energy_kj
    );
    assert!(
        rel(rw.full_system_energy_kj, 3.6) < 0.03,
        "rand write {:.2} kJ",
        rw.full_system_energy_kj
    );
    let ratio = rr.full_system_energy_kj / sr.full_system_energy_kj;
    assert!(
        (50.0..=65.0).contains(&ratio),
        "random/sequential read ratio {ratio:.1} (paper ≈57)"
    );
}

#[test]
fn golden_table3_sequential_write_typo_correction() {
    // The paper prints the sequential-write disk dynamic energy as
    // "2.9 kJ", but its own row arithmetic gives 10.9 W × 27.0 s ≈ 0.29 kJ
    // — a factor-of-10 typo (EXPERIMENTS.md, inconsistency #2). We pin the
    // *corrected* value and assert the row stays self-consistent.
    let r = table3(FioKind::SequentialWrite);
    assert!(
        rel(r.disk_dyn_energy_kj, 0.29) < 0.10,
        "seq write disk energy {:.3} kJ (corrected paper value 0.29, printed as 2.9)",
        r.disk_dyn_energy_kj
    );
    // Self-consistency: energy column == power column × time column.
    let implied_kj = r.disk_dyn_power_w * r.execution_time_s / 1000.0;
    assert!(
        rel(r.disk_dyn_energy_kj, implied_kj) < 0.02,
        "row arithmetic broken"
    );
    // And the printed 2.9 kJ is definitively NOT what the model produces.
    assert!(
        rel(r.disk_dyn_energy_kj, 2.9) > 0.5,
        "typo value should not reproduce"
    );
}

#[test]
fn golden_table3_times_and_powers() {
    // Time and full-system power columns, all four rows, ±2 %.
    let expect = [
        (FioKind::SequentialRead, 35.9, 118.0),
        (FioKind::RandomRead, 2230.0, 107.0),
        (FioKind::SequentialWrite, 27.0, 115.4),
        (FioKind::RandomWrite, 31.0, 117.9),
    ];
    for (kind, t_s, sys_w) in expect {
        let r = table3(kind);
        assert!(
            rel(r.execution_time_s, t_s) < 0.02,
            "{kind:?} time {:.1} s",
            r.execution_time_s
        );
        assert!(
            rel(r.full_system_power_w, sys_w) < 0.01,
            "{kind:?} power {:.1} W",
            r.full_system_power_w
        );
    }
}

// -------------------------------------------------- headline case studies

#[test]
fn golden_case1_headline_numbers() {
    // Figure 10 / §V-A: case 1 post-processing burns ≈30 kJ and in-situ
    // saves ≈43 % (we reproduce ≈41 %, see EXPERIMENTS.md).
    let cmp = CaseComparison::run_case(1, &ExperimentSetup::noiseless());
    assert!(
        rel(cmp.post.metrics.energy_j, 30_000.0) < 0.07,
        "post energy {:.1} kJ (paper ≈30)",
        cmp.post.metrics.energy_j / 1000.0
    );
    let savings = cmp.energy_savings_pct();
    assert!(
        (39.0..=45.0).contains(&savings),
        "savings {savings:.1} % (paper 43 %)"
    );
}
