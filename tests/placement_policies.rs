//! Policy-oracle suite for the multi-tier storage hierarchy.
//!
//! The contract a placement policy must honor is *data honesty*: a policy
//! decides **where** bytes live and **what** they cost, never **what** they
//! are. Every test here runs the same operation schedule against a
//! `FileSystem<TieredStore>` and a plain single-device reference
//! `FileSystem<MemBlockDevice>`, then demands bit-identical read-back —
//! across every tier stack, every policy, fault injection, crashes, and
//! randomized proptest schedules. A policy that loses or corrupts a byte to
//! win energy is cheating, and this suite is the referee.

use greenness_faults::{FaultPlan, Site};
use greenness_platform::{DiskModel, HardwareSpec, Node, Phase};
use greenness_storage::{
    BlockState, EnergyGreedyPolicy, FileSystem, FreqRecencyPolicy, FsConfig, MemBlockDevice, Move,
    NoopPolicy, PlacementPolicy, TierSpec, TierUsage, TieredStore,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

const MIB: u64 = 1024 * 1024;

/// The tier stacks under test, fastest first. Stack 0 is the degenerate
/// single-HDD hierarchy — the configuration that must be indistinguishable
/// from the paper's flat testbed.
fn stack(kind: usize) -> Vec<TierSpec> {
    match kind {
        0 => vec![TierSpec::new(
            "hdd",
            DiskModel::seagate_7200rpm_500gb(),
            64 * MIB,
        )],
        1 => vec![
            TierSpec::new("dram", DiskModel::dram_tier_32gb(), MIB),
            TierSpec::new("hdd", DiskModel::seagate_7200rpm_500gb(), 64 * MIB),
        ],
        _ => vec![
            TierSpec::new("dram", DiskModel::dram_tier_32gb(), MIB),
            TierSpec::new("nvme", DiskModel::nvme_ssd_1tb(), 4 * MIB),
            TierSpec::new("hdd", DiskModel::seagate_7200rpm_500gb(), 64 * MIB),
        ],
    }
}

fn policy(kind: usize) -> Box<dyn PlacementPolicy> {
    match kind {
        0 => Box::new(NoopPolicy),
        1 => Box::new(FreqRecencyPolicy::default()),
        _ => Box::new(EnergyGreedyPolicy::default()),
    }
}

fn policy_label(kind: usize) -> &'static str {
    ["noop", "freq-recency", "energy-greedy"][kind]
}

fn payload(tag: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64 * 7 + tag * 131 + 11) % 251) as u8)
        .collect()
}

/// A scripted filesystem operation, applied identically to the tiered
/// store and the flat reference.
#[derive(Debug, Clone)]
enum Op {
    Write {
        file: u8,
        offset: u16,
        len: u16,
    },
    Read {
        file: u8,
        offset: u16,
        len: u16,
    },
    Fsync {
        file: u8,
    },
    Sync,
    DropCaches,
    EndEpoch,
    /// `sync` then crash + journal recovery on both sides: after a clean
    /// sync, a crash must lose nothing anywhere in the hierarchy.
    SyncCrash,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u16..40_000, 1u16..12_000).prop_map(|(file, offset, len)| Op::Write {
            file,
            offset,
            len
        }),
        (0u8..4, 0u16..40_000, 1u16..12_000).prop_map(|(file, offset, len)| Op::Read {
            file,
            offset,
            len
        }),
        (0u8..4).prop_map(|file| Op::Fsync { file }),
        Just(Op::Sync),
        Just(Op::DropCaches),
        Just(Op::EndEpoch),
        Just(Op::SyncCrash),
    ]
}

/// Drive one schedule through both filesystems and assert byte equality of
/// every file at the end. Returns the tiered node for energy inspection.
fn run_oracle(
    stack_kind: usize,
    policy_kind: usize,
    fault_seed: Option<u64>,
    ops: &[Op],
) -> (Node, FileSystem<TieredStore>) {
    let mut store = TieredStore::new(stack(stack_kind), policy(policy_kind));
    if let Some(seed) = fault_seed {
        let plan = FaultPlan {
            tier_io_rate: 0.25,
            tier_migration_rate: 0.5,
            ..FaultPlan::with_seed(seed)
        };
        store.set_fault_injectors(
            Some(plan.injector(Site::TierIo, 0)),
            Some(plan.injector(Site::TierMigration, 0)),
        );
    }
    let mut tiered_node = Node::new(HardwareSpec::table1());
    let mut tiered = FileSystem::format(store, FsConfig::default());
    let mut flat_node = Node::new(HardwareSpec::table1());
    let mut flat = FileSystem::format(
        MemBlockDevice::with_capacity_bytes(64 * MIB),
        FsConfig::default(),
    );

    let mut tag = 0u64;
    for op in ops {
        match *op {
            Op::Write { file, offset, len } => {
                tag += 1;
                let name = format!("f{file}");
                let data = payload(tag, len as usize);
                tiered
                    .write(&mut tiered_node, &name, offset as u64, &data, Phase::Write)
                    .expect("tiered write");
                flat.write(&mut flat_node, &name, offset as u64, &data, Phase::Write)
                    .expect("flat write");
            }
            Op::Read { file, offset, len } => {
                let name = format!("f{file}");
                let t = tiered.read(
                    &mut tiered_node,
                    &name,
                    offset as u64,
                    len as u64,
                    Phase::Read,
                );
                let f = flat.read(
                    &mut flat_node,
                    &name,
                    offset as u64,
                    len as u64,
                    Phase::Read,
                );
                match (t, f) {
                    (Ok(tb), Ok(fb)) => assert_eq!(tb, fb, "read divergence on {name}"),
                    (Err(_), Err(_)) => {}
                    (t, f) => panic!("read outcome divergence on {name}: {t:?} vs {f:?}"),
                }
            }
            Op::Fsync { file } => {
                let name = format!("f{file}");
                if tiered.exists(&name) {
                    tiered
                        .fsync(&mut tiered_node, &name, Phase::Write)
                        .expect("tiered fsync");
                    flat.fsync(&mut flat_node, &name, Phase::Write)
                        .expect("flat fsync");
                }
            }
            Op::Sync => {
                tiered.sync(&mut tiered_node, Phase::CacheControl);
                flat.sync(&mut flat_node, Phase::CacheControl);
            }
            Op::DropCaches => {
                tiered.drop_caches();
                flat.drop_caches();
            }
            Op::EndEpoch => {
                // Only the hierarchy has epochs; the reference is static.
                tiered
                    .device_mut()
                    .end_epoch(&mut tiered_node, Phase::CacheControl);
            }
            Op::SyncCrash => {
                tiered.sync(&mut tiered_node, Phase::CacheControl);
                flat.sync(&mut flat_node, Phase::CacheControl);
                let lost_t = tiered.crash_and_recover();
                let lost_f = flat.crash_and_recover();
                assert_eq!(lost_t, 0, "crash after sync lost tiered pages");
                assert_eq!(lost_f, 0, "crash after sync lost flat pages");
            }
        }
    }

    // Final oracle: every file reads back bit-identically, cold (no page
    // cache help) and at full length.
    tiered.drop_caches();
    flat.drop_caches();
    let mut names = tiered.list();
    names.sort();
    let mut flat_names = flat.list();
    flat_names.sort();
    assert_eq!(names, flat_names, "file sets diverged");
    for name in &names {
        let size = tiered.size(name).expect("size");
        assert_eq!(size, flat.size(name).expect("size"), "{name} size");
        let tb = tiered
            .read(&mut tiered_node, name, 0, size, Phase::Read)
            .expect("tiered read-back");
        let fb = flat
            .read(&mut flat_node, name, 0, size, Phase::Read)
            .expect("flat read-back");
        assert_eq!(tb, fb, "{name} bytes diverged");
    }
    (tiered_node, tiered)
}

/// A fixed, migration-heavy schedule: write four files, rescan one of them
/// hot across several epochs so freq-recency and energy-greedy actually
/// move blocks, then overwrite and rescan.
fn migration_heavy_schedule() -> Vec<Op> {
    let mut ops = Vec::new();
    for file in 0..4u8 {
        ops.push(Op::Write {
            file,
            offset: 0,
            len: 30_000,
        });
        ops.push(Op::Fsync { file });
    }
    ops.push(Op::Sync);
    for epoch in 0..6 {
        for _ in 0..4 {
            ops.push(Op::Read {
                file: 0,
                offset: 0,
                len: 30_000,
            });
            ops.push(Op::DropCaches);
        }
        if epoch == 3 {
            ops.push(Op::Write {
                file: 0,
                offset: 5_000,
                len: 10_000,
            });
            ops.push(Op::Fsync { file: 0 });
        }
        ops.push(Op::EndEpoch);
    }
    ops.push(Op::SyncCrash);
    ops.push(Op::Read {
        file: 0,
        offset: 0,
        len: 30_000,
    });
    ops
}

/// Exhaustive data-honesty oracle: every stack × every policy, no faults.
#[test]
fn every_stack_and_policy_reads_back_identical() {
    for stack_kind in 0..3 {
        for policy_kind in 0..3 {
            let (_, fs) = run_oracle(stack_kind, policy_kind, None, &migration_heavy_schedule());
            assert_eq!(
                fs.device().policy_label(),
                policy_label(policy_kind),
                "stack {stack_kind}"
            );
        }
    }
}

/// The same, under aggressive per-tier fault injection (25% transient I/O,
/// 50% torn migrations): faults cost energy, never bytes.
#[test]
fn faults_cost_energy_but_never_bytes() {
    for seed in 0..8u64 {
        for policy_kind in 0..3 {
            let (node, fs) = run_oracle(2, policy_kind, Some(seed), &migration_heavy_schedule());
            let _ = node;
            if policy_kind > 0 {
                // The active policies must have attempted migrations for
                // the 50% torn rate to have bitten anything.
                assert!(
                    fs.device().promotes() + fs.device().migration_faults() > 0,
                    "seed {seed}: schedule never exercised migration"
                );
            }
        }
    }
}

/// An active policy never charges *less* than the work requires: the
/// degenerate single-HDD stack costs the same under every policy, because
/// with one tier there is nowhere to move.
#[test]
fn single_tier_is_policy_invariant() {
    let schedule = migration_heavy_schedule();
    let baseline = run_oracle(0, 0, None, &schedule).0;
    let base_e = baseline.into_timeline().total_energy_j();
    for policy_kind in 1..3 {
        let node = run_oracle(0, policy_kind, None, &schedule).0;
        let e = node.into_timeline().total_energy_j();
        assert_eq!(
            e.to_bits(),
            base_e.to_bits(),
            "{} diverged on a single tier",
            policy_label(policy_kind)
        );
    }
}

/// Policies are pure functions of (epoch, access stats, occupancy): the
/// same inputs produce the same plan, on the same instance and on a fresh
/// one. This is the determinism contract the sweep's byte-identical
/// journals rest on.
#[test]
fn plans_are_pure_functions_of_epoch_and_stats() {
    let tiers: Vec<TierUsage> = stack(2)
        .iter()
        .enumerate()
        .map(|(i, s)| TierUsage {
            name: s.name.clone(),
            model: s.model.clone(),
            capacity_blocks: s.capacity_blocks,
            used_blocks: [12, 40, 300][i],
        })
        .collect();
    let mut blocks: BTreeMap<u64, BlockState> = BTreeMap::new();
    for b in 0..352u64 {
        blocks.insert(
            b,
            BlockState {
                tier: if b < 12 {
                    0
                } else if b < 52 {
                    1
                } else {
                    2
                },
                score: ((b * 37 + 5) % 17) as f64 / 3.0,
            },
        );
    }
    for policy_kind in 0..3 {
        let a = policy(policy_kind);
        let b = policy(policy_kind);
        for epoch in [0u64, 1, 7, 1_000] {
            let p1: Vec<Move> = a.plan(epoch, &blocks, &tiers);
            let p2: Vec<Move> = a.plan(epoch, &blocks, &tiers);
            let p3: Vec<Move> = b.plan(epoch, &blocks, &tiers);
            assert_eq!(p1, p2, "{} replans differently", policy_label(policy_kind));
            assert_eq!(
                p1,
                p3,
                "{} differs across instances",
                policy_label(policy_kind)
            );
        }
        for logical in [0u64, 51, 351, 9_999] {
            assert_eq!(
                a.place_new(logical, &tiers),
                b.place_new(logical, &tiers),
                "{} place_new differs",
                policy_label(policy_kind)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized schedules over every stack × policy, with and without
    /// per-tier faults: the tiered store always reads back bit-identical
    /// to the flat reference.
    #[test]
    fn random_schedules_read_back_identical(
        ops in proptest::collection::vec(arb_op(), 1..40),
        stack_kind in 0usize..3,
        policy_kind in 0usize..3,
        seed in 0u64..1_000,
        faulty in any::<bool>(),
    ) {
        let fault_seed = if faulty { Some(seed) } else { None };
        run_oracle(stack_kind, policy_kind, fault_seed, &ops);
    }
}
