//! Bench-trajectory suite: the `greenness bench` harness must stay
//! reproducible for its numbers to mean anything across commits.
//!
//! Five properties are pinned here:
//!
//! * the emitted `BENCH_7.json` is parseable, schema-tagged
//!   `greenness-bench/v1`, and structurally complete;
//! * workload counters (checksums + work tallies) are identical across
//!   `--jobs` values — only wall-clock may vary between runs;
//! * the fast stencil path (including the row-parallel step at any `jobs`
//!   value) is bit-for-bit the naive reference on arbitrary grids,
//!   including the thinnest legal slabs;
//! * the blocked single-pass transpose encoder is bit-for-bit the retained
//!   strided reference on arbitrary payloads;
//! * an invalid solver config handed to either binary is a *usage* error:
//!   exit 2 with a structured message, before any work runs.

use std::process::Command;

use greenness_bench::perf::{run_suite, suite_json, BenchConfig};
use greenness_codec::transpose::TransposeRle;
use greenness_codec::Codec;
use greenness_core::PipelineConfig;
use greenness_heatsim::{Boundary, Grid, HeatSolver};
use greenness_serve::json::Json;
use proptest::prelude::*;

fn quick() -> BenchConfig {
    BenchConfig {
        reps: 1,
        quick: true,
        jobs: 1,
    }
}

#[test]
fn bench_json_is_schema_valid_and_complete() {
    let cfg = quick();
    let suite = run_suite(&cfg).expect("quick suite completes");
    let text = suite_json(&cfg, &suite);
    let doc = Json::parse(&text).expect("bench output is valid JSON");

    assert_eq!(
        doc.get("schema"),
        Some(&Json::Str("greenness-bench/v1".into()))
    );
    assert_eq!(doc.get("bench_id"), Some(&Json::Str("BENCH_7".into())));
    let Some(Json::Arr(benches)) = doc.get("benches") else {
        panic!("benches must be an array");
    };
    assert_eq!(
        benches.len(),
        10,
        "5 stencil + 2 codec + 1 serve + 2 fleet workloads"
    );
    for b in benches {
        for key in ["name", "workload", "median_wall_s", "throughput", "unit"] {
            assert!(b.get(key).is_some(), "bench entry missing {key}");
        }
        let Some(Json::Obj(counters)) = b.get("counters") else {
            panic!("counters must be an object");
        };
        assert!(
            counters.iter().any(|(k, _)| k == "checksum"),
            "every workload must checksum its output"
        );
    }
    // The trajectory's headline numbers: the fast stencil must actually be
    // faster than the retained naive reference on the same workload.
    for key in ["stencil_speedup_dirichlet", "stencil_speedup_neumann"] {
        let speedup = doc
            .get("derived")
            .and_then(|d| d.get(key))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("derived.{key} missing"));
        assert!(speedup > 1.0, "{key} = {speedup}");
    }
    // The threaded-scaling ratio only needs to exist and be sane: on a
    // 1-core CI host thread overhead can push it below 1.0, and that is an
    // honest number, not a regression.
    let scaling = doc
        .get("derived")
        .and_then(|d| d.get("stencil_threaded_scaling"))
        .and_then(Json::as_f64)
        .expect("derived.stencil_threaded_scaling missing");
    assert!(scaling.is_finite() && scaling > 0.0, "scaling = {scaling}");
}

#[test]
fn counters_are_identical_across_jobs_values() {
    let a = run_suite(&quick()).expect("suite completes at jobs=1");
    let b = run_suite(&BenchConfig { jobs: 8, ..quick() }).expect("suite completes at jobs=8");
    for (ma, mb) in a.benches.iter().zip(&b.benches) {
        assert_eq!(ma.name, mb.name);
        assert_eq!(
            ma.counters, mb.counters,
            "{}: counters must not depend on --jobs",
            ma.name
        );
    }
}

proptest! {
    /// The interior fast path + boundary peeling in `HeatSolver::step` must
    /// reproduce the naive reference exactly — same expression tree, same
    /// rounding — on every shape, boundary, and step count. `Grid` requires
    /// at least one interior cell (>= 3x3), so the thinnest slabs exercised
    /// are 3xN and Nx3: every interior cell is then also boundary-adjacent,
    /// the shape most likely to expose a peeling bug.
    #[test]
    fn fast_stencil_matches_reference_bit_for_bit(shape in any::<u64>(), steps_seed in any::<u64>()) {
        let m = 3 + (shape >> 8) as usize % 10;
        let n = 3 + (shape >> 16) as usize % 10;
        let (nx, ny) = match shape % 3 {
            0 => (3, n),
            1 => (m, 3),
            _ => (m, n),
        };
        let boundary = if shape & 8 == 0 {
            Boundary::Dirichlet(0.25)
        } else {
            Boundary::Neumann
        };
        let steps = 1 + steps_seed % 4;

        let mut cfg = PipelineConfig::default_solver(nx, ny);
        cfg.boundary = boundary;
        let field = Grid::from_fn(nx, ny, |x, y| {
            0.5 + 0.25 * (x * 6.0).sin() * (y * 4.0).cos()
        });
        let mut fast = HeatSolver::new(field.clone(), cfg.clone()).expect("stable config");
        let mut threaded = HeatSolver::new(field.clone(), cfg.clone()).expect("stable config");
        threaded.set_jobs(8);
        let mut naive = HeatSolver::new(field, cfg).expect("stable config");
        for _ in 0..steps {
            fast.step();
            threaded.step();
            naive.step_reference();
        }
        prop_assert_eq!(
            &fast.grid().to_bytes()[..],
            &naive.grid().to_bytes()[..],
            "divergence on {}x{} after {} step(s)", nx, ny, steps
        );
        prop_assert_eq!(
            &threaded.grid().to_bytes()[..],
            &naive.grid().to_bytes()[..],
            "jobs=8 divergence on {}x{} after {} step(s)", nx, ny, steps
        );
    }

    /// The cache-blocked single-pass transpose in `TransposeRle::encode`
    /// must emit the exact bytes of the retained strided reference — the
    /// pinned energy goldens hash these streams — at every length,
    /// including lengths that are not a multiple of the 8-value tile.
    #[test]
    fn blocked_transpose_matches_reference_bit_for_bit(values in proptest::collection::vec(-1e12f64..1e12, 0..200)) {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let codec = TransposeRle;
        let fast = codec.encode(&bytes);
        let reference = codec.encode_reference(&bytes).expect("aligned input");
        prop_assert_eq!(&fast, &reference);
        prop_assert_eq!(codec.decode(&fast).expect("round trip"), bytes);
    }
}

/// Drive the real binaries: a CFL-violating or non-finite solver override
/// must be rejected as a usage error (exit 2, structured message) by both
/// front ends, without running the workload.
#[test]
fn invalid_solver_config_is_a_usage_error_in_both_binaries() {
    let cases: [(&str, &[&str]); 3] = [
        (
            env!("CARGO_BIN_EXE_greenness"),
            &["case", "1", "--alpha", "nan"],
        ),
        (
            env!("CARGO_BIN_EXE_greenness"),
            &["case", "2", "--dt", "1e9"],
        ),
        (env!("CARGO_BIN_EXE_repro"), &["--alpha", "-1.0", "table1"]),
    ];
    for (bin, args) in cases {
        let out = Command::new(bin).args(args).output().expect("binary runs");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{bin} {args:?} must exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("invalid solver config"),
            "{bin} {args:?} stderr: {stderr}"
        );
    }
}
