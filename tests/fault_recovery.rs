//! Chaos suite: seeded fault injection with retry/recovery across the
//! storage, cluster, and serve layers.
//!
//! The properties under test are the ones the paper's energy argument
//! depends on: a degraded run costs *more time and energy* (retries and
//! backoff are real static power) but never changes *what* was computed —
//! and with no fault plan configured, nothing changes at all.

use greenness_cluster::{run_cluster, run_cluster_with_faults, ClusterConfig, ClusterKind};
use greenness_core::{experiment, ExperimentSetup, PipelineConfig, PipelineKind};
use greenness_faults::{FaultPlan, Site};
use greenness_platform::{DiskModel, HardwareSpec, Node, Phase};
use greenness_serve::{replay_workload, run_replay, ServiceConfig};
use greenness_storage::{
    FileSystem, FreqRecencyPolicy, FsConfig, FsError, MemBlockDevice, TierSpec, TieredStore,
};

fn fresh_fs() -> (Node, FileSystem<MemBlockDevice>) {
    let node = Node::new(HardwareSpec::table1());
    let fs = FileSystem::format(
        MemBlockDevice::with_capacity_bytes(64 * 1024 * 1024),
        FsConfig::default(),
    );
    (node, fs)
}

fn payload(seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64 * 31 + seed * 17) % 251) as u8)
        .collect()
}

/// The core durability property: any write whose `fsync` was acknowledged
/// (within the retry budget) survives a crash plus journal replay, for
/// every fault seed. Unacknowledged files promise nothing and are skipped.
#[test]
fn acknowledged_fsyncs_survive_crash_and_recovery() {
    for seed in 0..24u64 {
        let (mut node, mut fs) = fresh_fs();
        let plan = FaultPlan {
            storage_fsync_rate: 0.5,
            ..FaultPlan::with_seed(seed)
        };
        fs.set_fault_injector(Some(plan.injector(Site::StorageFsync, 0)));
        let mut acked = Vec::new();
        for f in 0..4 {
            let name = format!("snap{f}");
            let data = payload(seed + f, 200_000 + f as usize * 777);
            fs.write(&mut node, &name, 0, &data, Phase::Write)
                .expect("write buffers in cache");
            match fs.fsync_with_retry(&mut node, &name, Phase::Write) {
                Ok(()) => acked.push((name, data)),
                // Budget exhausted (p ≈ 0.5^9 per file): durability was
                // never acknowledged, so the property says nothing.
                Err(FsError::TransientIo { .. }) => {}
                Err(e) => panic!("unexpected fsync error: {e}"),
            }
        }
        fs.crash_and_recover();
        for (name, data) in &acked {
            let back = fs
                .read(&mut node, name, 0, data.len() as u64, Phase::Read)
                .expect("acknowledged file survives the crash");
            assert_eq!(&back, data, "seed {seed}: {name} lost acknowledged bytes");
        }
    }
}

/// A crash before the fsync is acknowledged may lose the dirty pages — and
/// `crash_and_recover` reports how many. This pins the negative space of
/// the property above: the suite would be vacuous if nothing were ever at
/// risk.
#[test]
fn unsynced_writes_are_genuinely_at_risk() {
    let (mut node, mut fs) = fresh_fs();
    let data = payload(7, 300_000);
    fs.write(&mut node, "volatile", 0, &data, Phase::Write)
        .expect("write buffers in cache");
    let lost = fs.crash_and_recover();
    assert!(lost > 0, "dirty pages must be discarded by the crash");
}

/// A faulted cluster run converges to the fault-free result: same bytes
/// shipped, same useful work, same verification verdict — only slower and
/// hungrier. Same seed twice is bit-identical.
#[test]
fn faulted_cluster_converges_to_the_fault_free_image() {
    let cfg = ClusterConfig::small(4, 2);
    for kind in [
        ClusterKind::PostProcessing,
        ClusterKind::InSitu,
        ClusterKind::InTransit,
    ] {
        let clean = run_cluster(kind, &cfg).expect("fault-free run fits its PFS");
        let (faulted, summary) =
            run_cluster_with_faults(kind, &cfg, Some(FaultPlan::with_seed(11)))
                .expect("degraded run completes within the retry budget");
        assert_eq!(faulted.bytes_out, clean.bytes_out, "{kind:?}");
        assert_eq!(
            faulted.work_units.to_bits(),
            clean.work_units.to_bits(),
            "{kind:?}"
        );
        assert_eq!(faulted.verified, clean.verified, "{kind:?}");
        if summary.total_faults() > 0 {
            assert!(
                faulted.makespan_s > clean.makespan_s,
                "{kind:?}: retries are real time"
            );
            assert!(
                faulted.total_energy_j > clean.total_energy_j,
                "{kind:?}: degraded I/O is real static energy"
            );
        }
        let (again, summary2) = run_cluster_with_faults(kind, &cfg, Some(FaultPlan::with_seed(11)))
            .expect("rerun completes");
        assert_eq!(faulted.makespan_s.to_bits(), again.makespan_s.to_bits());
        assert_eq!(
            faulted.total_energy_j.to_bits(),
            again.total_energy_j.to_bits()
        );
        assert_eq!(summary, summary2, "{kind:?}: same seed, same schedule");
    }
}

/// At least one cluster pipeline must actually absorb faults at the default
/// rates, or the convergence test above proves nothing.
#[test]
fn default_fault_rates_actually_fire_in_the_cluster() {
    let cfg = ClusterConfig::small(4, 2);
    let total: u64 = [
        ClusterKind::PostProcessing,
        ClusterKind::InSitu,
        ClusterKind::InTransit,
    ]
    .into_iter()
    .map(|kind| {
        run_cluster_with_faults(kind, &cfg, Some(FaultPlan::with_seed(11)))
            .expect("degraded run completes")
            .1
            .total_faults()
    })
    .sum();
    assert!(total > 0, "seed 11 must inject at least one fault");
}

/// A quiet plan (all rates zero) is indistinguishable from no plan at all:
/// the golden outputs stay byte-identical. This is the "no plan configured
/// → nothing changes" guarantee, exercised through the whole core pipeline.
#[test]
fn quiet_fault_plan_leaves_golden_outputs_untouched() {
    let cfg = PipelineConfig::small(1);
    let baseline = experiment::run(
        PipelineKind::PostProcessing,
        &cfg,
        &ExperimentSetup {
            trace: true,
            ..ExperimentSetup::noiseless()
        },
    )
    .expect("run ok");
    let quiet = experiment::run(
        PipelineKind::PostProcessing,
        &cfg,
        &ExperimentSetup {
            trace: true,
            faults: Some(FaultPlan::quiet(99)),
            ..ExperimentSetup::noiseless()
        },
    )
    .expect("run ok");
    assert_eq!(
        baseline.metrics.energy_j.to_bits(),
        quiet.metrics.energy_j.to_bits()
    );
    assert_eq!(
        baseline.metrics.execution_time_s.to_bits(),
        quiet.metrics.execution_time_s.to_bits()
    );
    assert_eq!(baseline.journal, quiet.journal, "journals byte-identical");
}

/// Core pipeline runs under default fault rates keep their data invariants
/// across a sweep of seeds: all reads verify, byte counts match the clean
/// run, and cost only ever goes up.
#[test]
fn faulted_pipeline_output_is_intact_across_seeds() {
    let cfg = PipelineConfig::small(1);
    let clean = experiment::run(
        PipelineKind::PostProcessing,
        &cfg,
        &ExperimentSetup::noiseless(),
    )
    .expect("run ok");
    for seed in [1u64, 2, 3] {
        let faulted = experiment::run(
            PipelineKind::PostProcessing,
            &cfg,
            &ExperimentSetup {
                faults: Some(FaultPlan {
                    storage_fsync_rate: 0.3,
                    ..FaultPlan::with_seed(seed)
                }),
                ..ExperimentSetup::noiseless()
            },
        )
        .expect("run ok");
        assert!(faulted.output.verified, "seed {seed}");
        assert_eq!(faulted.output.bytes_written, clean.output.bytes_written);
        assert_eq!(faulted.output.bytes_read, clean.output.bytes_read);
        assert!(faulted.metrics.energy_j >= clean.metrics.energy_j);
    }
}

/// Faulted serve replay is schedule-independent: responses, metrics, and
/// the retry count are byte-identical across `--jobs` values, for several
/// seeds.
#[test]
fn faulted_replay_is_schedule_independent() {
    let requests = replay_workload(12);
    for seed in [5u64, 7, 13] {
        let faults = Some(FaultPlan::with_seed(seed));
        let narrow = run_replay(
            ServiceConfig {
                jobs: 1,
                faults,
                ..ServiceConfig::default()
            },
            &requests,
        );
        let wide = run_replay(
            ServiceConfig {
                jobs: 8,
                faults,
                ..ServiceConfig::default()
            },
            &requests,
        );
        assert_eq!(narrow.responses, wide.responses, "seed {seed}");
        assert_eq!(narrow.metrics, wide.metrics, "seed {seed}");
        assert_eq!(narrow.retries, wide.retries, "seed {seed}");
    }
}

/// A tiered DRAM → NVMe → HDD filesystem with hostile per-tier fault
/// rates, used by the hierarchy chaos tests below.
fn tiered_fs(seed: u64) -> (Node, FileSystem<TieredStore>) {
    let mib = 1024 * 1024;
    let mut store = TieredStore::new(
        vec![
            TierSpec::new("dram", DiskModel::dram_tier_32gb(), mib),
            TierSpec::new("nvme", DiskModel::nvme_ssd_1tb(), 4 * mib),
            TierSpec::new("hdd", DiskModel::seagate_7200rpm_500gb(), 64 * mib),
        ],
        Box::new(FreqRecencyPolicy::default()),
    );
    let plan = FaultPlan {
        storage_fsync_rate: 0.5,
        tier_io_rate: 0.25,
        tier_migration_rate: 0.5,
        ..FaultPlan::with_seed(seed)
    };
    store.set_fault_injectors(
        Some(plan.injector(Site::TierIo, 0)),
        Some(plan.injector(Site::TierMigration, 0)),
    );
    let node = Node::new(HardwareSpec::table1());
    let mut fs = FileSystem::format(store, FsConfig::default());
    fs.set_fault_injector(Some(plan.injector(Site::StorageFsync, 0)));
    (node, fs)
}

/// The durability property, on the hierarchy: an acknowledged fsync
/// survives a crash even when epoch boundaries between the writes keep
/// migrating (and half-tearing) the very blocks being persisted. Torn
/// promotions abandon the copy in flight; they must never touch the one
/// the journal acknowledged.
#[test]
fn acked_fsyncs_survive_crash_mid_migration() {
    for seed in 0..24u64 {
        let (mut node, mut fs) = tiered_fs(seed);
        let mut acked = Vec::new();
        for f in 0..4 {
            let name = format!("snap{f}");
            let data = payload(seed + f, 150_000 + f as usize * 777);
            fs.write(&mut node, &name, 0, &data, Phase::Write)
                .expect("write buffers in cache");
            let synced = match fs.fsync_with_retry(&mut node, &name, Phase::Write) {
                Ok(()) => true,
                Err(FsError::TransientIo { .. }) => false,
                Err(e) => panic!("unexpected fsync error: {e}"),
            };
            // Rescan what's there so the policy has heat to act on, then
            // force a migration epoch *between* the acked fsyncs.
            for done in &acked {
                let (n, d): &(String, Vec<u8>) = done;
                let back = fs
                    .read(&mut node, n, 0, d.len() as u64, Phase::Read)
                    .expect("interleaved read");
                assert_eq!(&back, d, "seed {seed}: {n} corrupted before crash");
            }
            fs.device_mut().end_epoch(&mut node, Phase::CacheControl);
            if synced {
                acked.push((name, data));
            }
        }
        fs.crash_and_recover();
        for (name, data) in &acked {
            let back = fs
                .read(&mut node, name, 0, data.len() as u64, Phase::Read)
                .expect("acknowledged file survives the crash");
            assert_eq!(&back, data, "seed {seed}: {name} lost acknowledged bytes");
        }
    }
}

/// A torn promotion never loses the only copy: with every migration
/// guaranteed to fault (rate 1.0), every block stays where it was, every
/// byte reads back, and the store counted the carnage.
#[test]
fn torn_promotions_never_lose_the_only_copy() {
    let mib = 1024 * 1024;
    let mut store = TieredStore::new(
        vec![
            TierSpec::new("dram", DiskModel::dram_tier_32gb(), mib),
            TierSpec::new("hdd", DiskModel::seagate_7200rpm_500gb(), 64 * mib),
        ],
        Box::new(FreqRecencyPolicy::default()),
    );
    let plan = FaultPlan {
        tier_migration_rate: 1.0,
        ..FaultPlan::with_seed(99)
    };
    store.set_fault_injectors(None, Some(plan.injector(Site::TierMigration, 0)));
    let mut node = Node::new(HardwareSpec::table1());
    let mut fs = FileSystem::format(store, FsConfig::default());
    let data = payload(3, 200_000);
    fs.write(&mut node, "hot", 0, &data, Phase::Write)
        .expect("write");
    fs.fsync(&mut node, "hot", Phase::Write).expect("fsync");
    for _ in 0..4 {
        let back = fs
            .read(&mut node, "hot", 0, data.len() as u64, Phase::Read)
            .expect("read");
        assert_eq!(back, data);
        fs.drop_caches();
        fs.device_mut().end_epoch(&mut node, Phase::CacheControl);
    }
    assert!(
        fs.device().migration_faults() > 0,
        "rate-1.0 plan must tear every attempted move"
    );
    assert_eq!(
        fs.device().promotes() + fs.device().demotes(),
        0,
        "no migration may commit when every copy is torn"
    );
    let back = fs
        .read(&mut node, "hot", 0, data.len() as u64, Phase::Read)
        .expect("final read");
    assert_eq!(back, data, "torn promotions lost the only copy");
}

/// The in-transit chaos sweep: 24 fault seeds, alternating the wire codec,
/// with staged-slab drops retransmitting from the still-live send buffer
/// and torn staging renders re-rendering from the assembled slabs. Every
/// degraded run must converge bit-identically to the fault-free frame
/// images (same chained image hash), and across the sweep both fault
/// classes must actually fire — otherwise the convergence proves nothing.
#[test]
fn intransit_chaos_sweep_converges_to_fault_free_images() {
    use greenness_cluster::WireCodec;
    let mut clean_hash = std::collections::BTreeMap::new();
    for codec in [WireCodec::None, WireCodec::DeltaRle] {
        let mut cfg = ClusterConfig::small(4, 2);
        cfg.staging.wire_codec = codec;
        let clean = run_cluster(ClusterKind::InTransit, &cfg).expect("clean run");
        clean_hash.insert(codec.label(), (clean.image_hash, clean.bytes_out));
    }
    let (mut staged_faults, mut torn_renders) = (0u64, 0u64);
    for seed in 0..24u64 {
        let codec = if seed % 2 == 0 {
            WireCodec::None
        } else {
            WireCodec::DeltaRle
        };
        let mut cfg = ClusterConfig::small(4, 2);
        cfg.staging.wire_codec = codec;
        let plan = FaultPlan {
            fabric_fault_rate: 0.15,
            staging_render_rate: 0.15,
            ..FaultPlan::with_seed(seed)
        };
        let (faulted, summary) = run_cluster_with_faults(ClusterKind::InTransit, &cfg, Some(plan))
            .unwrap_or_else(|e| panic!("seed {seed}: degraded run must recover: {e}"));
        let &(hash, bytes) = &clean_hash[codec.label()];
        assert_eq!(
            faulted.image_hash,
            hash,
            "seed {seed} ({}): degraded frames must be bit-identical",
            codec.label()
        );
        assert_eq!(
            faulted.bytes_out, bytes,
            "seed {seed}: output volume changed"
        );
        assert!(faulted.verified, "seed {seed}: verification failed");
        staged_faults += summary.fabric_drops + summary.fabric_delays;
        torn_renders += summary.staging_torn_renders;
    }
    assert!(staged_faults > 0, "no staged transfer ever faulted");
    assert!(torn_renders > 0, "no staging render was ever torn");
}

/// Regression for the untraced-terminal-drop bug: every injected fabric or
/// staging fault — drops, delays, torn renders, including the *terminal*
/// drop that exhausts the retry budget — must land in the journal as a
/// `fault.injected` instant, in lockstep with the summary counters.
#[test]
fn fault_journal_instants_match_the_summary_counters() {
    use greenness_cluster::run_cluster_traced;
    use greenness_trace::{EventKind, Tracer};
    let cfg = ClusterConfig::small(4, 2);
    let plan = FaultPlan {
        fabric_fault_rate: 0.15,
        staging_render_rate: 0.15,
        ..FaultPlan::with_seed(7)
    };
    let (tracer, handle) = Tracer::memory();
    let (_, summary) = run_cluster_traced(ClusterKind::InTransit, &cfg, Some(plan), &tracer)
        .expect("degraded run recovers");
    let injected = summary.fabric_drops + summary.fabric_delays + summary.staging_torn_renders;
    assert!(injected > 0, "seed 7 must inject at least one fabric fault");
    let instants = handle
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::Instant && e.name == "fault.injected")
        .count() as u64;
    assert_eq!(
        instants, injected,
        "journal fault.injected instants must match the summary counters"
    );
}

/// The terminal drop itself is traced: when the retry budget is exhausted
/// the final drop must still emit its `fault.injected` instant before the
/// structured error surfaces, so `fault_counts()` and the journal agree.
#[test]
fn terminal_fabric_drop_still_lands_in_the_journal() {
    use greenness_cluster::{ClusterError, Fabric};
    use greenness_platform::NetModel;
    use greenness_trace::{EventKind, Tracer};
    let plan = FaultPlan {
        fabric_fault_rate: 1.0,
        max_retries: 0,
        ..FaultPlan::with_seed(3)
    };
    let mut fabric = Fabric::new(NetModel::ten_gbe());
    fabric.set_fault_injector(Some(plan.injector(Site::FabricTransfer, 0)));
    let (tracer, handle) = Tracer::memory();
    let mut src = Node::new(HardwareSpec::table1());
    src.set_tracer(tracer.clone());
    let mut dst = Node::new(HardwareSpec::table1());
    // Every transfer faults; with a zero retry budget the first drop is
    // terminal. Delays (odd entropy) recover on their own, so push until
    // the budget actually exhausts.
    let err = loop {
        match fabric.transfer_reliable(&mut src, &mut dst, 4096, 1, Phase::Network) {
            Ok(_) => continue,
            Err(e) => break e,
        }
    };
    assert!(
        matches!(err, ClusterError::FabricExhausted { attempts: 1, .. }),
        "zero retry budget must exhaust on the first drop: {err}"
    );
    let (drops, delays, _) = fabric.fault_counts();
    assert!(drops > 0, "a drop must have occurred");
    let instants = handle
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::Instant && e.name == "fault.injected")
        .count() as u64;
    assert_eq!(
        instants,
        drops + delays,
        "the terminal drop must be journaled like every other injected fault"
    );
}
