//! The §V-C analysis end-to-end: Table II probes + the static/dynamic
//! savings decomposition, at full §IV-C scale.

use greenness_core::breakdown::CaseBreakdown;
use greenness_core::probes;
use greenness_core::{CaseComparison, ExperimentSetup};

#[test]
fn table2_probe_powers_match_the_paper() {
    let setup = ExperimentSetup::noiseless();
    let read = probes::nnread(&setup, 128 * 1024, 50.0).expect("probe ok");
    let write = probes::nnwrite(&setup, 128 * 1024, 50.0).expect("probe ok");
    // Table II: nnread 115.1 W total / 10.3 W dynamic;
    //           nnwrite 114.8 W total / 10.0 W dynamic.
    assert!(
        (read.avg_total_w - 115.1).abs() < 0.7,
        "nnread total {}",
        read.avg_total_w
    );
    assert!(
        (read.avg_dynamic_w - 10.3).abs() < 0.7,
        "nnread dyn {}",
        read.avg_dynamic_w
    );
    assert!(
        (write.avg_total_w - 114.8).abs() < 0.7,
        "nnwrite total {}",
        write.avg_total_w
    );
    assert!(
        (write.avg_dynamic_w - 10.0).abs() < 0.7,
        "nnwrite dyn {}",
        write.avg_dynamic_w
    );
}

#[test]
fn case1_savings_are_mostly_static() {
    // §V-C headline: ≈12.8 kJ static vs ≈1.2 kJ dynamic — 91% / 9%.
    let setup = ExperimentSetup::noiseless();
    let cmp = CaseComparison::run_case(1, &setup).expect("case runs");
    let b = CaseBreakdown::analyze(&cmp, &setup, 128 * 1024, 50.0).expect("probes ok");

    let static_kj = b.savings.static_j / 1000.0;
    let dynamic_kj = b.savings.dynamic_j / 1000.0;
    assert!(
        (85.0..=95.0).contains(&b.savings.static_pct()),
        "static share {:.1}% (paper: 91%)",
        b.savings.static_pct()
    );
    assert!(
        (0.8..=1.6).contains(&dynamic_kj),
        "dynamic {dynamic_kj:.2} kJ (paper: 1.2)"
    );
    assert!(
        (10.0..=14.0).contains(&static_kj),
        "static {static_kj:.2} kJ (paper: 12.8)"
    );
}

#[test]
fn probe_profiles_look_like_figure6() {
    // Figure 6 shows flat ≈115 W traces for both probes over ~50 s.
    let setup = ExperimentSetup::noiseless();
    let read = probes::nnread(&setup, 128 * 1024, 30.0).expect("probe ok");
    let profile = greenness_power::PowerProfile::measure_noiseless(&read.timeline);
    assert!(profile.len() >= 29);
    for s in &profile.samples {
        assert!(
            (105.0..=125.0).contains(&s.system_w),
            "sample at {}s: {} W outside the Fig. 6 band",
            s.t_s,
            s.system_w
        );
    }
}
