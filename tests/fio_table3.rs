//! Table III end-to-end: the fio engine against the paper's rows, plus a
//! verified real-data pass.

use greenness_core::ExperimentSetup;
use greenness_platform::Node;
use greenness_storage::{fio, FioJob, FioKind, MemBlockDevice, NullBlockDevice};

const GIB4: u64 = 4 * 1024 * 1024 * 1024;

fn run_table3(kind: FioKind) -> greenness_storage::FioResult {
    let setup = ExperimentSetup::noiseless();
    let mut node = Node::new(setup.spec.clone());
    let mut dev = NullBlockDevice::with_capacity_bytes(GIB4);
    fio::run(&mut node, &mut dev, &FioJob::table3(kind)).unwrap()
}

#[test]
fn table3_rows_match_the_paper() {
    // (kind, time s, system W, disk dyn W, disk dyn kJ, full kJ); the
    // sequential-write disk-dynamic-energy entry follows the row arithmetic
    // (10.9 W × 27 s = 0.29 kJ), not the paper's inconsistent 2.9 (see
    // EXPERIMENTS.md).
    let expect = [
        (FioKind::SequentialRead, 35.9, 118.0, 13.5, 0.4, 4.2),
        (FioKind::RandomRead, 2230.0, 107.0, 2.5, 5.5, 238.6),
        (FioKind::SequentialWrite, 27.0, 115.4, 10.9, 0.29, 3.1),
        (FioKind::RandomWrite, 31.0, 117.9, 13.4, 0.4, 3.6),
    ];
    for (kind, t, sys_w, dyn_w, dyn_kj, full_kj) in expect {
        let r = run_table3(kind);
        let rel = |got: f64, want: f64| (got - want).abs() / want.max(0.1);
        assert!(
            rel(r.execution_time_s, t) < 0.02,
            "{kind:?} time {}",
            r.execution_time_s
        );
        assert!(
            rel(r.full_system_power_w, sys_w) < 0.01,
            "{kind:?} power {}",
            r.full_system_power_w
        );
        assert!(
            rel(r.disk_dyn_power_w, dyn_w) < 0.06,
            "{kind:?} disk W {}",
            r.disk_dyn_power_w
        );
        assert!(
            rel(r.disk_dyn_energy_kj, dyn_kj) < 0.25,
            "{kind:?} disk kJ {}",
            r.disk_dyn_energy_kj
        );
        assert!(
            rel(r.full_system_energy_kj, full_kj) < 0.03,
            "{kind:?} full kJ {}",
            r.full_system_energy_kj
        );
    }
}

#[test]
fn random_read_dominates_everything() {
    // The §V-D premise: random reads are two orders of magnitude worse.
    let rr = run_table3(FioKind::RandomRead);
    for kind in [
        FioKind::SequentialRead,
        FioKind::SequentialWrite,
        FioKind::RandomWrite,
    ] {
        let other = run_table3(kind);
        assert!(
            rr.full_system_energy_kj > 50.0 * other.full_system_energy_kj,
            "{kind:?}"
        );
    }
}

#[test]
fn verified_jobs_round_trip_real_bytes() {
    // 32 MiB with verification: every byte moved through the device is
    // pattern-checked inside the engine (mismatch surfaces as an Err).
    let setup = ExperimentSetup::noiseless();
    let mut node = Node::new(setup.spec.clone());
    let mut dev = MemBlockDevice::with_capacity_bytes(32 * 1024 * 1024);
    for kind in FioKind::ALL {
        let job = FioJob {
            kind,
            total_bytes: 32 * 1024 * 1024,
            block_bytes: 4096,
            queue_depth: 32,
            verify: true,
        };
        let r = fio::run(&mut node, &mut dev, &job).unwrap();
        assert!(r.execution_time_s > 0.0);
        assert!(r.full_system_power_w > node.spec().static_w());
    }
}

#[test]
fn queue_depth_sweep_shows_ncq_benefit() {
    let setup = ExperimentSetup::noiseless();
    let mut prev = f64::INFINITY;
    for qd in [1u32, 4, 32] {
        let mut node = Node::new(setup.spec.clone());
        let mut dev = NullBlockDevice::with_capacity_bytes(GIB4);
        let job = FioJob {
            queue_depth: qd,
            ..FioJob::table3(FioKind::RandomRead)
        };
        let r = fio::run(&mut node, &mut dev, &job).unwrap();
        assert!(r.execution_time_s < prev, "qd {qd} did not help");
        prev = r.execution_time_s;
    }
}
