//! §V-D and the future-work advisor, end-to-end.

use greenness_core::advisor::{recommend, IoBehavior, Technique, WorkloadProfile};
use greenness_core::whatif::WhatIfAnalysis;
use greenness_core::ExperimentSetup;
use greenness_platform::{HardwareSpec, Node, Phase};
use greenness_storage::{reorganize, AllocMode, FileSystem, FsConfig, MemBlockDevice};

const GIB: u64 = 1024 * 1024 * 1024;

#[test]
fn section5d_numbers() {
    let w = WhatIfAnalysis::run(&ExperimentSetup::noiseless(), 4 * GIB).unwrap();
    // Paper: adopting in-situ saves 242.2 kJ; reorganization retains
    // exploration at only 7.3 kJ.
    assert!(
        (w.random_io_energy_kj - 242.2).abs() < 10.0,
        "{}",
        w.random_io_energy_kj
    );
    assert!(
        (w.reorganized_io_energy_kj - 7.3).abs() < 0.4,
        "{}",
        w.reorganized_io_energy_kj
    );
    assert!(w.retained_fraction() < 0.05);
}

#[test]
fn advisor_reproduces_the_papers_decision_logic() {
    let spec = HardwareSpec::table1();
    // No exploration needed → in-situ (§V conclusion).
    let a = recommend(
        &spec,
        &WorkloadProfile {
            pass_bytes: 4 * GIB,
            passes: 1,
            behavior: IoBehavior::Random { op_bytes: 4096 },
            needs_exploration: false,
            min_keep_fraction: 1.0,
        },
    );
    assert_eq!(a.technique, Technique::InSitu);

    // Exploration + random I/O → reorganize (§V-D).
    let b = recommend(
        &spec,
        &WorkloadProfile {
            pass_bytes: 4 * GIB,
            passes: 2,
            behavior: IoBehavior::Random { op_bytes: 4096 },
            needs_exploration: true,
            min_keep_fraction: 1.0,
        },
    );
    assert_eq!(b.technique, Technique::Reorganize);
    // Its numbers echo §V-D: random passes cost ~2 orders more than
    // sequential ones.
    assert!(b.current_io_j > 10.0 * (b.reorg_cost_j + 2.0 * b.reorg_pass_j));
}

#[test]
fn advisor_estimates_match_whatif_scale() {
    // The advisor's per-pass estimate for the §V-D workload should be in the
    // same ballpark as the fio-derived 242 kJ figure.
    let spec = HardwareSpec::table1();
    let a = recommend(
        &spec,
        &WorkloadProfile {
            pass_bytes: 4 * GIB,
            passes: 1,
            behavior: IoBehavior::Random { op_bytes: 4096 },
            needs_exploration: true,
            min_keep_fraction: 1.0,
        },
    );
    let pass_kj = a.current_io_j / 1000.0;
    // fio uses queue depth 32; the buffered app model uses depth 1, so the
    // app-level estimate must be at least the fio figure.
    assert!(pass_kj > 240.0, "per-pass {pass_kj} kJ");
}

#[test]
fn reorganization_pays_back_within_one_pass_for_the_5d_workload() {
    // End-to-end on the real storage stack (smaller volume): the one-time
    // reorganization cost is below the per-pass saving it produces.
    let mut node = Node::new(HardwareSpec::table1());
    let mut fs = FileSystem::format(
        MemBlockDevice::with_capacity_bytes(64 * 1024 * 1024),
        FsConfig::default(),
    );
    fs.set_alloc_mode(AllocMode::Scattered { seed: 5 });
    let data = vec![0x5du8; 4 * 1024 * 1024];
    fs.write(&mut node, "f", 0, &data, Phase::Write).unwrap();
    fs.sync(&mut node, Phase::CacheControl);
    fs.drop_caches();

    // Cost of one fragmented pass.
    let t0 = node.now();
    fs.read(&mut node, "f", 0, data.len() as u64, Phase::Read)
        .unwrap();
    let fragmented_pass_s = (node.now() - t0).as_secs_f64();
    fs.drop_caches();

    fs.set_alloc_mode(AllocMode::Contiguous);
    let r = reorganize(&mut node, &mut fs, "f", Phase::Other).unwrap();

    let t1 = node.now();
    fs.read(&mut node, "f", 0, data.len() as u64, Phase::Read)
        .unwrap();
    let sequential_pass_s = (node.now() - t1).as_secs_f64();

    let per_pass_saving = fragmented_pass_s - sequential_pass_s;
    assert!(
        r.seconds < 2.0 * per_pass_saving,
        "reorg cost {:.2}s vs per-pass saving {per_pass_saving:.2}s",
        r.seconds
    );
}
