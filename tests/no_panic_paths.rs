//! Panic-sweep audit: no `.unwrap()` / `.expect(` on request-reachable
//! paths.
//!
//! Every op the query service exposes (`run`, `compare`, `whatif`,
//! `advisor`, `sweep`, `steer.*`) executes inside `crates/core` and
//! `crates/serve`; a panic there tears down a worker mid-request instead of
//! producing a structured error envelope. This test walks the non-test
//! source of both crates and fails on any surviving panic site, so a
//! future `.unwrap()` cannot sneak back in without showing up here.
//!
//! Allowlisted: CLI-only table drivers that are never linked into a serve
//! op (`greenness cluster` / `greenness placement` and the repro binary's
//! variant grids). Their expects document impossible states in fixed,
//! library-built workloads and print tables straight to a terminal.

use std::path::{Path, PathBuf};

/// CLI-only modules in `crates/core` that no serve op calls into. Keep this
/// list short and justified — anything reachable from `Service::handle_line`
/// must not be here.
const ALLOWLIST: [&str; 3] = ["cluster_sweep.rs", "placement.rs", "variants.rs"];

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|entry| entry.expect("dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

/// Panic sites in the non-test, non-comment portion of `path`, as
/// `line_number: line` strings.
fn panic_sites(path: &Path) -> Vec<String> {
    let src =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let mut hits = Vec::new();
    for (i, line) in src.lines().enumerate() {
        // Everything below the first `#[cfg(test)]` is test code; these
        // crates keep their test modules at the bottom of each file.
        if line.contains("#[cfg(test)]") {
            break;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue;
        }
        if trimmed.contains(".unwrap()") || trimmed.contains(".expect(") {
            hits.push(format!("{}: {}", i + 1, trimmed));
        }
    }
    hits
}

#[test]
fn no_unwrap_or_expect_on_request_reachable_paths() {
    // CARGO_MANIFEST_DIR is crates/serve (this test is attached there), so
    // the workspace crates live one directory up.
    let crates = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("crates dir");
    let mut files = Vec::new();
    rs_files(&crates.join("core").join("src"), &mut files);
    rs_files(&crates.join("serve").join("src"), &mut files);
    assert!(
        files.len() >= 10,
        "suspiciously few source files ({}) — did the layout move?",
        files.len()
    );
    let mut violations = Vec::new();
    let mut allowlist_used = [false; ALLOWLIST.len()];
    for path in &files {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("utf-8 file name");
        let sites = panic_sites(path);
        if let Some(slot) = ALLOWLIST.iter().position(|a| *a == name) {
            allowlist_used[slot] = !sites.is_empty();
            continue;
        }
        for site in sites {
            violations.push(format!("{}:{site}", path.display()));
        }
    }
    assert!(
        violations.is_empty(),
        "panic sites on request-reachable paths (return a structured error \
         instead, or move the code under #[cfg(test)]):\n{}",
        violations.join("\n")
    );
    // Prune the allowlist when a module comes clean, so it never shadows a
    // future regression.
    for (used, name) in allowlist_used.iter().zip(ALLOWLIST) {
        assert!(
            used,
            "{name} no longer has panic sites — remove it from ALLOWLIST"
        );
    }
}
