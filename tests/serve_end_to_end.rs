//! End-to-end coverage of the `greenness-serve` stack: every request type
//! over real TCP, warm-vs-cold byte identity, deterministic load shedding,
//! graceful drain, and replay determinism across `--jobs`.

use greenness_faults::FaultPlan;
use greenness_serve::json::Json;
use greenness_serve::{
    query, replay_workload, run_replay, Client, RetryClient, Server, Service, ServiceConfig, SCHEMA,
};

fn request(body: &str) -> String {
    format!("{{\"schema\":\"{SCHEMA}\",{body}}}")
}

fn parsed(line: &str) -> Json {
    Json::parse(line).unwrap_or_else(|e| panic!("response must parse ({e}): {line}"))
}

fn is_ok(doc: &Json) -> bool {
    doc.get("ok").and_then(Json::as_bool) == Some(true)
}

fn error_code(doc: &Json) -> String {
    doc.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .expect("error code present")
        .to_string()
}

#[test]
fn every_request_type_answers_over_tcp() {
    let server = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let bodies = [
        r#""id":1,"op":"run","params":{"pipeline":"insitu","case":1}"#,
        r#""id":2,"op":"compare","params":{"case":2}"#,
        r#""id":3,"op":"whatif","params":{"bytes":1073741824}"#,
        r#""id":4,"op":"advisor","params":{"pass_bytes":4294967296,"pattern":"random"}"#,
        r#""id":5,"op":"sweep","params":{"cases":[1,2]}"#,
    ];
    for (i, body) in bodies.iter().enumerate() {
        let line = client.roundtrip(&request(body)).expect("roundtrip");
        let doc = parsed(&line);
        assert!(is_ok(&doc), "request {body} failed: {line}");
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(i as u64 + 1));
    }
    // The sweep result carries the paper's headline direction: in-situ saves
    // energy on both cases.
    let sweep_line = client
        .roundtrip(&request(r#""id":6,"op":"sweep","params":{"cases":[1,2]}"#))
        .expect("roundtrip");
    let doc = parsed(&sweep_line);
    let comps = doc
        .get("result")
        .and_then(|r| r.get("comparisons"))
        .and_then(Json::as_arr)
        .expect("comparisons array");
    assert_eq!(comps.len(), 2);
    for c in comps {
        let savings = c
            .get("energy_savings_pct")
            .and_then(Json::as_f64)
            .expect("savings");
        assert!(savings > 0.0, "in-situ must save energy: {sweep_line}");
    }
    server.shutdown();
    server.join();
}

#[test]
fn warm_responses_are_byte_identical_and_hits_show_in_metrics() {
    let server = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let req = request(r#""id":42,"op":"compare","params":{"case":1}"#);
    let cold = client.roundtrip(&req).expect("cold");
    let warm = client.roundtrip(&req).expect("warm");
    assert_eq!(cold, warm, "warm response must be byte-identical to cold");
    // A retry with a different id and a deadline still hits (non-semantic
    // fields are stripped from the cache key) — only the echoed id differs.
    let retry = client
        .roundtrip(&request(
            r#""id":"retry","deadline_ms":5000,"op":"compare","params":{"case":1}"#,
        ))
        .expect("retry");
    let cold_doc = parsed(&cold);
    let retry_doc = parsed(&retry);
    assert_eq!(
        cold_doc.get("result").map(Json::to_string_raw),
        retry_doc.get("result").map(Json::to_string_raw)
    );
    let metrics = query(&addr, &request(r#""op":"metrics""#)).expect("metrics");
    let doc = parsed(&metrics);
    let counter = |name: &str| {
        doc.get("result")
            .and_then(|r| r.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    assert_eq!(counter("serve.cache.hits"), 2);
    assert_eq!(counter("serve.cache.misses"), 1);
    server.shutdown();
    server.join();
}

#[test]
fn load_is_shed_deterministically_when_slots_are_exhausted() {
    // Hold the only execution slot directly, so the shed path needs no
    // timing assumptions at all.
    let service = Service::new(ServiceConfig {
        slots: 1,
        queue_depth: 0,
        ..ServiceConfig::default()
    });
    let permit = service.gate().admit(None).expect("take the only slot");
    let shed = service.handle_line(&request(r#""id":1,"op":"run","params":{}"#));
    let doc = parsed(&shed.line());
    assert!(!is_ok(&doc));
    assert_eq!(error_code(&doc), "overloaded");
    drop(permit);
    let ok = service.handle_line(&request(r#""id":2,"op":"run","params":{}"#));
    assert!(is_ok(&parsed(&ok.line())), "freed slot must admit again");
}

#[test]
fn queued_requests_respect_their_deadline() {
    let service = Service::new(ServiceConfig {
        slots: 1,
        queue_depth: 4,
        ..ServiceConfig::default()
    });
    let _permit = service.gate().admit(None).expect("take the only slot");
    let out = service.handle_line(&request(
        r#""id":1,"deadline_ms":30,"op":"run","params":{}"#,
    ));
    let doc = parsed(&out.line());
    assert_eq!(error_code(&doc), "deadline_exceeded");
    let m = service.metrics_clone();
    assert_eq!(m.counter("serve.shed.deadline"), 1);
}

#[test]
fn draining_service_refuses_new_work_but_still_serves_cache_hits() {
    let service = Service::new(ServiceConfig::default());
    let req = request(r#""id":1,"op":"compare","params":{"case":3}"#);
    let cold = service.handle_line(&req);
    assert!(is_ok(&parsed(&cold.line())));
    service.gate().shutdown();
    // Warm request: answered from cache without touching the gate.
    let warm = service.handle_line(&req);
    assert_eq!(cold.line(), warm.line());
    // Cold request: turned away with the structured drain error.
    let fresh = service.handle_line(&request(r#""id":2,"op":"run","params":{"case":2}"#));
    assert_eq!(error_code(&parsed(&fresh.line())), "shutting_down");
}

#[test]
fn shutdown_op_drains_the_server_to_completion() {
    let server = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let ok = client
        .roundtrip(&request(r#""id":1,"op":"run","params":{}"#))
        .expect("work before drain");
    assert!(is_ok(&parsed(&ok)));
    let reply = client
        .roundtrip(&request(r#""id":2,"op":"shutdown""#))
        .expect("shutdown is acknowledged before the drain");
    assert!(is_ok(&parsed(&reply)));
    // join() returning proves the accept loop and all connection threads
    // exited; the test would hang here otherwise.
    server.join();
}

#[test]
fn dropped_connections_are_retried_transparently_over_tcp() {
    let server = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            faults: Some(FaultPlan::with_seed(3)),
            ..ServiceConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();
    let mut client = RetryClient::new(&addr, 8);
    for i in 0..25 {
        let reply = client
            .roundtrip(&request(&format!(
                r#""id":{i},"op":"advisor","params":{{}}"#
            )))
            .expect("retry client recovers from injected drops");
        assert!(is_ok(&parsed(&reply)), "{reply}");
    }
    assert!(
        client.retries > 0,
        "seed 3 must drop at least one connection"
    );
    server.shutdown();
    server.join();
}

#[test]
fn replay_logs_and_metrics_are_schedule_independent() {
    let requests = replay_workload(15);
    let narrow = run_replay(
        ServiceConfig {
            jobs: 1,
            ..ServiceConfig::default()
        },
        &requests,
    );
    let wide = run_replay(
        ServiceConfig {
            jobs: 8,
            ..ServiceConfig::default()
        },
        &requests,
    );
    assert_eq!(narrow.responses, wide.responses);
    assert_eq!(narrow.metrics, wide.metrics);
    assert!(narrow.metrics.contains("greenness-metrics/v1"));
    assert!(narrow.metrics.contains("serve.virtual_s"));
}
