//! End-to-end reproduction of the paper's three case studies
//! (Figures 4, 7, 8, 9, 10, 11).
//!
//! Case study 1 runs at full §IV-C scale and is checked against the paper's
//! published values; the cross-case orderings are checked at reduced scale
//! (identical structure and calibration, faster to run).

use greenness_core::{CaseComparison, ExperimentSetup, PipelineConfig};
use greenness_platform::Phase;

fn small_cases() -> Vec<CaseComparison> {
    let setup = ExperimentSetup::noiseless();
    [(1u32, 1u64), (2, 2), (3, 8)]
        .into_iter()
        .map(|(n, interval)| {
            let mut cfg = PipelineConfig::small(interval);
            cfg.timesteps = 16;
            CaseComparison::run_config(n, &cfg, &setup).expect("case runs")
        })
        .collect()
}

#[test]
fn full_scale_case_study_1_matches_the_paper() {
    let cmp = CaseComparison::run_case(1, &ExperimentSetup::noiseless()).expect("case runs");

    // Figure 4: time split ≈ 33 / 30 / 27 / 10 % (sim/write/read/viz).
    let sim = cmp.post.time_pct(Phase::Simulation);
    let write = cmp.post.time_pct(Phase::Write);
    let read = cmp.post.time_pct(Phase::Read);
    let viz = cmp.post.time_pct(Phase::Visualization);
    assert!((sim - 33.0).abs() < 2.0, "sim {sim}%");
    assert!((write - 30.0).abs() < 2.0, "write {write}%");
    assert!((read - 27.0).abs() < 2.0, "read {read}%");
    assert!((viz - 10.0).abs() < 2.0, "viz {viz}%");

    // Figure 10: post-processing energy ≈ 30 kJ; savings ≈ 43% (we measure
    // ≈41%, see EXPERIMENTS.md).
    assert!((cmp.post.metrics.energy_j / 1000.0 - 30.0).abs() < 2.0);
    let savings = cmp.energy_savings_pct();
    assert!((38.0..=46.0).contains(&savings), "savings {savings}%");

    // Figure 8: in-situ draws a few percent more average power (paper: 8%).
    let dp = cmp.power_increase_pct();
    assert!((3.0..=10.0).contains(&dp), "power increase {dp}%");

    // Figure 9: peak power essentially equal.
    let (pi, pt) = cmp.peak_powers_w();
    assert!((pi - pt).abs() < 1.0, "{pi} vs {pt}");

    // Figure 11: case-1 efficiency improvement near the paper's 72%.
    let eff = cmp.efficiency_improvement_pct();
    assert!(
        (60.0..=80.0).contains(&eff),
        "case-1 efficiency gain {eff}% (paper: 72%)"
    );

    // Average power levels are in the Figure 8 axis range (125–150 W).
    for m in [&cmp.post.metrics, &cmp.insitu.metrics] {
        assert!(
            (120.0..=150.0).contains(&m.average_power_w),
            "{}",
            m.average_power_w
        );
    }

    // The storage stack really round-tripped every snapshot.
    assert!(cmp.post.output.verified);
    assert_eq!(cmp.post.output.bytes_written, 50 * 2 * 1024 * 1024);
    assert_eq!(cmp.post.output.bytes_read, cmp.post.output.bytes_written);
}

#[test]
fn savings_ordering_across_case_studies() {
    let cases = small_cases();
    // Figure 10: savings shrink monotonically as I/O thins (43 > 30 > 18).
    assert!(cases[0].energy_savings_pct() > cases[1].energy_savings_pct());
    assert!(cases[1].energy_savings_pct() > cases[2].energy_savings_pct());
    // In-situ wins energy in every case.
    for c in &cases {
        assert!(c.energy_savings_pct() > 0.0, "case {}", c.case);
    }
}

#[test]
fn power_increase_ordering_across_case_studies() {
    let cases = small_cases();
    // Figure 8: the in-situ power premium also shrinks (8 > 5 > 3 %).
    assert!(cases[0].power_increase_pct() >= cases[1].power_increase_pct());
    assert!(cases[1].power_increase_pct() >= cases[2].power_increase_pct());
    for c in &cases {
        assert!(c.power_increase_pct() > 0.0, "case {}", c.case);
    }
}

#[test]
fn execution_time_ordering_across_case_studies() {
    let cases = small_cases();
    for c in &cases {
        let (ti, tp) = c.execution_times_s();
        assert!(ti < tp, "case {}: in-situ {ti}s vs post {tp}s", c.case);
    }
    // Less I/O ⇒ shorter post-processing runs.
    assert!(cases[0].post.metrics.execution_time_s > cases[1].post.metrics.execution_time_s);
    assert!(cases[1].post.metrics.execution_time_s > cases[2].post.metrics.execution_time_s);
}

#[test]
fn peak_power_is_io_frequency_invariant() {
    // Figure 9: peaks come from the (identical) simulation phase everywhere.
    let cases = small_cases();
    let p0 = cases[0].post.metrics.peak_power_w;
    for c in &cases {
        for m in [&c.post.metrics, &c.insitu.metrics] {
            assert!(
                (m.peak_power_w - p0).abs() < 1.0,
                "case {}: {}",
                c.case,
                m.peak_power_w
            );
        }
    }
}

#[test]
fn post_processing_profile_has_two_power_phases() {
    // Figure 5a: a high-power sim+write phase followed by a lower-power
    // read+viz phase; in-situ (Fig. 5b) has no such phase structure.
    let cmp = {
        let mut cfg = PipelineConfig::small(1);
        cfg.timesteps = 16;
        CaseComparison::run_config(1, &cfg, &ExperimentSetup::noiseless()).expect("case runs")
    };
    let post = &cmp.post.timeline;
    let phase_avg = |phases: [Phase; 2]| {
        let e: f64 = phases
            .iter()
            .map(|&p| post.phase_energy(p).system_j())
            .sum();
        let t: f64 = phases
            .iter()
            .map(|&p| post.phase_duration(p).as_secs_f64())
            .sum();
        e / t
    };
    let phase1_w = phase_avg([Phase::Simulation, Phase::Write]);
    let phase2_w = phase_avg([Phase::Read, Phase::Visualization]);
    assert!(
        phase1_w > phase2_w + 5.0,
        "phase 1 ({phase1_w:.1} W) should clearly exceed phase 2 ({phase2_w:.1} W)"
    );
}
