//! The scientific-output equivalence claim: both pipelines produce the same
//! pictures — the paper's trade-off is about energy and exploration, never
//! about image fidelity.

use greenness_core::{
    experiment, pipeline, pipeline::PipelineKind, ExperimentSetup, PipelineConfig,
};
use greenness_platform::{HardwareSpec, Node};
use greenness_viz::{decode_ppm, encode_ppm};

fn config() -> PipelineConfig {
    let mut cfg = PipelineConfig::small(2);
    cfg.keep_frames = true;
    cfg
}

#[test]
fn pipelines_render_byte_identical_frames() {
    let cfg = config();
    let setup = ExperimentSetup::noiseless();
    let post = experiment::run(PipelineKind::PostProcessing, &cfg, &setup).expect("run ok");
    let insitu = experiment::run(PipelineKind::InSitu, &cfg, &setup).expect("run ok");
    assert_eq!(post.output.frames.len(), 5);
    assert_eq!(insitu.output.frames.len(), 5);
    for (p, i) in post.output.frames.iter().zip(&insitu.output.frames) {
        assert_eq!(p.step, i.step);
        assert_eq!(p.image, i.image, "step {} frames differ", p.step);
    }
}

#[test]
fn frames_survive_ppm_round_trip() {
    let cfg = config();
    let mut node = Node::new(HardwareSpec::table1());
    let out = pipeline::run(PipelineKind::InSitu, &mut node, &cfg).expect("run ok");
    for frame in &out.frames {
        let encoded = encode_ppm(&frame.image);
        let decoded = decode_ppm(&encoded).expect("valid PPM");
        assert_eq!(decoded, frame.image);
    }
}

#[test]
fn frames_evolve_over_time() {
    // The movie is not static: heat diffuses between I/O steps, so
    // consecutive frames must differ.
    let cfg = config();
    let mut node = Node::new(HardwareSpec::table1());
    let out = pipeline::run(PipelineKind::InSitu, &mut node, &cfg).expect("run ok");
    let mut changed = 0;
    for pair in out.frames.windows(2) {
        if pair[0].image != pair[1].image {
            changed += 1;
        }
    }
    assert!(
        changed >= out.frames.len() - 2,
        "only {changed} frame transitions changed"
    );
}

#[test]
fn post_processing_verifies_snapshot_integrity() {
    // The checksum machinery is active and passes on a clean storage stack.
    let cfg = config();
    let setup = ExperimentSetup::noiseless();
    let post = experiment::run(PipelineKind::PostProcessing, &cfg, &setup).expect("run ok");
    assert!(post.output.verified);
}
