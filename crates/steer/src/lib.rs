//! # greenness-steer
//!
//! Interactive steering sessions over the in-situ pipeline: a client
//! attaches to a running (virtual-time) simulation, advances it in slices,
//! re-renders incrementally, and asks live what-if questions before
//! committing a parameter change. The engine is the session bookkeeping
//! layer the serve/fleet tiers expose as the `steer.*` op family:
//!
//! * **Sessions** are named by the client and bounded by a slot budget.
//! * **Sequence numbers** make every mutating op idempotent: op `seq` must
//!   be exactly `applied + 1`; a replayed `seq ≤ applied` returns the
//!   recorded reply byte-for-byte (this is how clients resume after a
//!   dropped connection without double-applying), and a gap is rejected.
//!   The session name is identity, not content: it never enters the
//!   what-if cache key, so identical sessions share cached deltas.
//! * **What-if deltas** come from [`SteeringPipeline::whatif`] schedule
//!   replay and are memoized in a BLAKE2s content-addressed cache keyed by
//!   the canonical step-prefix of the session (workload, every applied op,
//!   and the proposed adjustment), so repeated questions cost nothing at
//!   all and fresh ones cost no solver or renderer work.
//!
//! Everything is deterministic: identical op sequences produce identical
//! transcripts for any solver thread count and across reruns.

use std::collections::HashMap;
use std::fmt;

use greenness_core::pipeline::PipelineError;
use greenness_core::steering::{Adjustment, SteeringPipeline};
use greenness_core::PipelineConfig;
use greenness_trace::hash::{blake2s256, hex};

/// Engine-wide limits and execution knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum concurrently attached (live) sessions.
    pub session_slots: usize,
    /// Solver threads per session — wall-clock only, never output bytes.
    pub jobs: usize,
    /// Upper bound on a session's `timesteps` (bounds per-session work).
    pub max_timesteps: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            session_slots: 8,
            jobs: 1,
            max_timesteps: 512,
        }
    }
}

/// Workload a session attaches to: the scaled-down case study with a chosen
/// I/O interval and step budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttachSpec {
    /// Render every `interval`-th step (≥ 1).
    pub interval: u64,
    /// Total simulation steps for the session (≥ 1, capped by
    /// [`EngineConfig::max_timesteps`]).
    pub timesteps: u64,
}

impl Default for AttachSpec {
    fn default() -> Self {
        AttachSpec {
            interval: 2,
            timesteps: 10,
        }
    }
}

/// Why a steering op was refused. The serve tier maps these onto its error
/// envelope codes.
#[derive(Debug, Clone, PartialEq)]
pub enum SteerError {
    /// All session slots are attached.
    Slots {
        /// The configured slot budget.
        limit: usize,
    },
    /// No session with that name was ever attached.
    UnknownSession(String),
    /// The session was explicitly detached; its name is tombstoned.
    Detached(String),
    /// `seq` skipped ahead: the client missed an ack it never sent.
    SeqGap {
        /// The next seq the session will accept.
        expected: u64,
        /// What the client sent.
        got: u64,
    },
    /// A malformed name or parameter.
    BadParam(String),
    /// The underlying pipeline rejected the op.
    Pipeline(PipelineError),
}

impl fmt::Display for SteerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SteerError::Slots { limit } => {
                write!(f, "all {limit} steering session slots are attached")
            }
            SteerError::UnknownSession(name) => write!(f, "no steering session named '{name}'"),
            SteerError::Detached(name) => {
                write!(
                    f,
                    "steering session '{name}' was detached; attach a new name"
                )
            }
            SteerError::SeqGap { expected, got } => {
                write!(f, "sequence gap: expected seq {expected}, got {got}")
            }
            SteerError::BadParam(msg) => write!(f, "bad steering parameter: {msg}"),
            SteerError::Pipeline(e) => write!(f, "steering pipeline error: {e}"),
        }
    }
}

impl std::error::Error for SteerError {}

impl From<PipelineError> for SteerError {
    fn from(e: PipelineError) -> Self {
        SteerError::Pipeline(e)
    }
}

/// A session reply: the transcript line plus the session's cumulative
/// energy after the op (the serve tier's `(result, energy_j)` envelope).
pub type SteerReply = (String, f64);

enum SessionState {
    Live(Box<SteeringPipeline>),
    Detached,
}

struct Session {
    state: SessionState,
    /// Highest op seq applied (attach is seq 0).
    applied: u64,
    /// Recorded replies, indexed by `seq - 1`, replayed byte-for-byte.
    log: Vec<SteerReply>,
    /// Canonical step-prefix: workload + every applied op, in order. The
    /// BLAKE2s of this string (plus a proposed adjustment) keys the
    /// what-if cache.
    prefix: String,
}

/// Counter snapshot names, in the order [`SessionEngine::counters`] reports
/// them.
pub const COUNTER_NAMES: [&str; 7] = [
    "steer.attach",
    "steer.adjust",
    "steer.render.incremental",
    "steer.detach",
    "steer.replayed",
    "steer.delta.cached",
    "steer.delta.computed",
];

#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    attach: u64,
    adjust: u64,
    render: u64,
    detach: u64,
    replayed: u64,
    delta_cached: u64,
    delta_computed: u64,
}

/// The steering session engine: session table, sequence/replay protocol,
/// and the content-addressed what-if cache.
pub struct SessionEngine {
    cfg: EngineConfig,
    sessions: HashMap<String, Session>,
    whatif_cache: HashMap<[u8; 32], (f64, f64)>,
    counters: Counters,
}

impl SessionEngine {
    /// A fresh engine with no sessions.
    pub fn new(cfg: EngineConfig) -> SessionEngine {
        SessionEngine {
            cfg,
            sessions: HashMap::new(),
            whatif_cache: HashMap::new(),
            counters: Counters::default(),
        }
    }

    /// Attach (or re-attach) the session `name`.
    ///
    /// A first attach claims a slot and opens the pipeline. Re-attaching an
    /// existing live session is idempotent and is the resume path after a
    /// dropped connection: the reply reports the current `applied` seq and
    /// step so the client knows exactly where to pick up. The `spec` of a
    /// re-attach must match the original.
    ///
    /// # Errors
    /// [`SteerError::Slots`] when the budget is exhausted,
    /// [`SteerError::Detached`] for a tombstoned name,
    /// [`SteerError::BadParam`] for a bad name or spec (including a
    /// re-attach whose spec disagrees with the original).
    pub fn attach(&mut self, name: &str, spec: &AttachSpec) -> Result<SteerReply, SteerError> {
        validate_name(name)?;
        if spec.interval == 0 {
            return Err(SteerError::BadParam(
                "interval must be at least 1".to_string(),
            ));
        }
        if spec.timesteps == 0 || spec.timesteps > self.cfg.max_timesteps {
            return Err(SteerError::BadParam(format!(
                "timesteps must be in 1..={}, got {}",
                self.cfg.max_timesteps, spec.timesteps
            )));
        }
        let prefix = session_prefix(name, spec);
        if let Some(session) = self.sessions.get(name) {
            return match &session.state {
                SessionState::Detached => Err(SteerError::Detached(name.to_string())),
                SessionState::Live(pipe) => {
                    if !session.prefix.starts_with(&prefix) {
                        return Err(SteerError::BadParam(format!(
                            "re-attach spec disagrees with session '{name}'"
                        )));
                    }
                    self.counters.attach += 1;
                    self.counters.replayed += 1;
                    // `resumed` reflects session *state*, not name reuse: a
                    // client retrying a dropped initial attach lands here
                    // with nothing applied yet, and its reply must be
                    // byte-identical to the fresh-attach reply it missed.
                    Ok((
                        format!(
                            "attached session={name} token={} applied={} step={} resumed={}",
                            resume_token(name, session.applied),
                            session.applied,
                            pipe.step(),
                            session.applied > 0 || pipe.step() > 0,
                        ),
                        pipe.energy_j(),
                    ))
                }
            };
        }
        let live = self
            .sessions
            .values()
            .filter(|s| matches!(s.state, SessionState::Live(_)))
            .count();
        if live >= self.cfg.session_slots {
            return Err(SteerError::Slots {
                limit: self.cfg.session_slots,
            });
        }
        let mut workload = PipelineConfig::small(spec.interval);
        workload.timesteps = spec.timesteps;
        workload.label = format!("steer:{name}");
        let pipe = SteeringPipeline::new(&workload, self.cfg.jobs)?;
        let reply = (
            format!(
                "attached session={name} token={} applied=0 step=0 resumed=false",
                resume_token(name, 0)
            ),
            pipe.energy_j(),
        );
        self.sessions.insert(
            name.to_string(),
            Session {
                state: SessionState::Live(Box::new(pipe)),
                applied: 0,
                log: Vec::new(),
                prefix,
            },
        );
        self.counters.attach += 1;
        Ok(reply)
    }

    /// Answer the what-if for `adj`, then apply it. Op `seq` must be
    /// `applied + 1`; earlier seqs replay their recorded reply.
    ///
    /// # Errors
    /// Sequence and session errors as in [`attach`](Self::attach); invalid
    /// adjustments surface as [`SteerError::Pipeline`].
    pub fn adjust(
        &mut self,
        name: &str,
        seq: u64,
        adj: &Adjustment,
    ) -> Result<SteerReply, SteerError> {
        if let Some(reply) = self.replay(name, seq)? {
            return Ok(reply);
        }
        let cache_key = {
            let session = self.session(name)?;
            // Content-addressed: the session *name* is identity, not
            // content, so it is stripped before hashing — two sessions with
            // identical workloads and op histories asking the same question
            // share one cache entry.
            let mut key = session.prefix.replacen(&format!("session={name};"), "", 1);
            key.push_str(";whatif=");
            key.push_str(&adj.canonical());
            blake2s256(key.as_bytes())
        };
        let (baseline_j, adjusted_j, cached) = match self.whatif_cache.get(&cache_key) {
            Some(&(b, a)) => {
                self.counters.delta_cached += 1;
                (b, a, true)
            }
            None => {
                let session = self.session(name)?;
                let SessionState::Live(pipe) = &session.state else {
                    unreachable!("session() returns only live sessions")
                };
                let wi = pipe.whatif(adj)?;
                self.whatif_cache
                    .insert(cache_key, (wi.baseline_j, wi.adjusted_j));
                self.counters.delta_computed += 1;
                (wi.baseline_j, wi.adjusted_j, false)
            }
        };
        let session = self.session_mut(name)?;
        let SessionState::Live(pipe) = &mut session.state else {
            unreachable!("session_mut() returns only live sessions")
        };
        pipe.adjust(adj)?;
        let reply = (
            format!(
                "adjusted session={name} seq={seq} {} delta_j={} baseline_j={} adjusted_j={} cached={cached}",
                adj.canonical(),
                adjusted_j - baseline_j,
                baseline_j,
                adjusted_j,
            ),
            pipe.energy_j(),
        );
        self.record(name, seq, &format!("adjust({})", adj.canonical()), &reply);
        self.counters.adjust += 1;
        Ok(reply)
    }

    /// Advance `steps` simulation steps (0 = none) and re-render the
    /// current field incrementally. Scheduled frames produced while
    /// advancing are folded into the transcript line.
    ///
    /// # Errors
    /// Sequence and session errors as in [`attach`](Self::attach).
    pub fn render(&mut self, name: &str, seq: u64, steps: u64) -> Result<SteerReply, SteerError> {
        if let Some(reply) = self.replay(name, seq)? {
            return Ok(reply);
        }
        let session = self.session_mut(name)?;
        let SessionState::Live(pipe) = &mut session.state else {
            unreachable!("session_mut() returns only live sessions")
        };
        let scheduled = pipe.advance(steps);
        let frame = pipe.render_now();
        let mut line = format!(
            "frame session={name} seq={seq} {} proj_j={}",
            frame.transcript_line(),
            pipe.projected_remaining_j(),
        );
        if !scheduled.is_empty() {
            let hashes: Vec<String> = scheduled
                .iter()
                .map(|f| format!("{:016x}", f.hash))
                .collect();
            line.push_str(&format!(" scheduled=[{}]", hashes.join(",")));
        }
        let reply = (line, pipe.energy_j());
        self.record(name, seq, &format!("render({steps})"), &reply);
        self.counters.render += 1;
        Ok(reply)
    }

    /// Close the session and tombstone its name. The reply summarizes the
    /// whole run; replaying the final seq returns it again.
    ///
    /// # Errors
    /// Sequence and session errors as in [`attach`](Self::attach).
    pub fn detach(&mut self, name: &str, seq: u64) -> Result<SteerReply, SteerError> {
        if let Some(reply) = self.replay(name, seq)? {
            return Ok(reply);
        }
        let session = self.session_mut(name)?;
        let SessionState::Live(pipe) = &mut session.state else {
            unreachable!("session_mut() returns only live sessions")
        };
        let reply = (
            format!(
                "detached session={name} seq={seq} step={} frames={} solver_steps={} bytes_written={}",
                pipe.step(),
                pipe.frames_rendered(),
                pipe.solver_steps(),
                pipe.bytes_written(),
            ),
            pipe.energy_j(),
        );
        session.state = SessionState::Detached;
        session.applied = seq;
        session.log.push(reply.clone());
        self.counters.detach += 1;
        Ok(reply)
    }

    /// The deterministic resume token for `name` at its current applied
    /// seq — what a `shutting_down` refusal hands the client so it can
    /// re-attach elsewhere and replay from the right place. Stable across
    /// reruns; defined even for never-attached names (applied = 0).
    pub fn resume_token(&self, name: &str) -> String {
        let applied = self.sessions.get(name).map_or(0, |s| s.applied);
        resume_token(name, applied)
    }

    /// Number of currently live (attached, not detached) sessions.
    pub fn live_sessions(&self) -> usize {
        self.sessions
            .values()
            .filter(|s| matches!(s.state, SessionState::Live(_)))
            .count()
    }

    /// Counter snapshot, in [`COUNTER_NAMES`] order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let c = &self.counters;
        vec![
            ("steer.attach", c.attach),
            ("steer.adjust", c.adjust),
            ("steer.render.incremental", c.render),
            ("steer.detach", c.detach),
            ("steer.replayed", c.replayed),
            ("steer.delta.cached", c.delta_cached),
            ("steer.delta.computed", c.delta_computed),
        ]
    }

    /// The live pipeline behind `name`, for audits and ground-truth checks.
    pub fn pipeline(&self, name: &str) -> Option<&SteeringPipeline> {
        match &self.sessions.get(name)?.state {
            SessionState::Live(pipe) => Some(pipe),
            SessionState::Detached => None,
        }
    }

    /// Replay bookkeeping: `Ok(Some(reply))` when `seq` was already
    /// applied, `Ok(None)` when it is the next op to execute.
    fn replay(&mut self, name: &str, seq: u64) -> Result<Option<SteerReply>, SteerError> {
        if seq == 0 {
            return Err(SteerError::BadParam(
                "op seq starts at 1 (attach is seq 0)".to_string(),
            ));
        }
        let session = match self.sessions.get(name) {
            None => return Err(SteerError::UnknownSession(name.to_string())),
            Some(s) => s,
        };
        if seq <= session.applied {
            self.counters.replayed += 1;
            return Ok(Some(session.log[(seq - 1) as usize].clone()));
        }
        if matches!(session.state, SessionState::Detached) {
            return Err(SteerError::Detached(name.to_string()));
        }
        if seq != session.applied + 1 {
            return Err(SteerError::SeqGap {
                expected: session.applied + 1,
                got: seq,
            });
        }
        Ok(None)
    }

    fn session(&self, name: &str) -> Result<&Session, SteerError> {
        match self.sessions.get(name) {
            None => Err(SteerError::UnknownSession(name.to_string())),
            Some(s) if matches!(s.state, SessionState::Detached) => {
                Err(SteerError::Detached(name.to_string()))
            }
            Some(s) => Ok(s),
        }
    }

    fn session_mut(&mut self, name: &str) -> Result<&mut Session, SteerError> {
        match self.sessions.get_mut(name) {
            None => Err(SteerError::UnknownSession(name.to_string())),
            Some(s) if matches!(s.state, SessionState::Detached) => {
                Err(SteerError::Detached(name.to_string()))
            }
            Some(s) => Ok(s),
        }
    }

    fn record(&mut self, name: &str, seq: u64, op: &str, reply: &SteerReply) {
        let session = self
            .sessions
            .get_mut(name)
            .unwrap_or_else(|| unreachable!("record() follows a successful session_mut()"));
        session.applied = seq;
        session.log.push(reply.clone());
        session.prefix.push_str(&format!(";seq={seq}:{op}"));
    }
}

fn validate_name(name: &str) -> Result<(), SteerError> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.');
    if ok {
        Ok(())
    } else {
        Err(SteerError::BadParam(format!(
            "session name must be 1-64 chars of [A-Za-z0-9._-], got '{name}'"
        )))
    }
}

fn session_prefix(name: &str, spec: &AttachSpec) -> String {
    format!(
        "steer/v1;session={name};interval={};timesteps={}",
        spec.interval, spec.timesteps
    )
}

fn resume_token(name: &str, applied: u64) -> String {
    let digest = blake2s256(format!("steer/v1;{name};applied={applied}").as_bytes());
    hex(&digest)[..16].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_viz::Colormap;

    fn engine() -> SessionEngine {
        SessionEngine::new(EngineConfig::default())
    }

    fn spec() -> AttachSpec {
        AttachSpec::default()
    }

    #[test]
    fn a_scripted_session_is_deterministic_across_engines_and_jobs() {
        let run = |jobs: usize| -> Vec<String> {
            let mut e = SessionEngine::new(EngineConfig {
                jobs,
                ..EngineConfig::default()
            });
            vec![
                e.attach("s1", &spec()).expect("attach").0,
                e.render("s1", 1, 3).expect("render").0,
                e.adjust("s1", 2, &Adjustment::IoInterval(4))
                    .expect("adjust")
                    .0,
                e.render("s1", 3, 4).expect("render").0,
                e.detach("s1", 4).expect("detach").0,
            ]
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn replayed_seqs_return_recorded_replies_byte_for_byte() {
        let mut e = engine();
        e.attach("s1", &spec()).expect("attach");
        let first = e.render("s1", 1, 2).expect("render");
        // The client never saw the ack and retries: same bytes, no
        // double-advance.
        let retried = e.render("s1", 1, 2).expect("replay");
        assert_eq!(first, retried);
        let next = e.render("s1", 2, 0).expect("render");
        assert!(next.0.contains("step=2"), "{}", next.0);
        // A gap is an error, not silent reordering.
        assert_eq!(
            e.render("s1", 4, 1),
            Err(SteerError::SeqGap {
                expected: 3,
                got: 4
            })
        );
    }

    #[test]
    fn reattach_resumes_with_applied_seq_and_matching_spec() {
        let mut e = engine();
        e.attach("s1", &spec()).expect("attach");
        e.render("s1", 1, 3).expect("render");
        let resumed = e.attach("s1", &spec()).expect("re-attach");
        assert!(
            resumed.0.contains("applied=1 step=3 resumed=true"),
            "{}",
            resumed.0
        );
        let wrong = AttachSpec {
            interval: 5,
            ..spec()
        };
        assert!(matches!(
            e.attach("s1", &wrong),
            Err(SteerError::BadParam(_))
        ));
    }

    #[test]
    fn whatif_cache_hits_on_identical_step_prefixes() {
        let mut e = engine();
        e.attach("a", &spec()).expect("attach");
        e.attach("b", &spec()).expect("attach");
        e.render("a", 1, 2).expect("render");
        e.render("b", 1, 2).expect("render");
        let adj = Adjustment::Resolution {
            width: 96,
            height: 96,
        };
        let first = e.adjust("a", 2, &adj).expect("adjust");
        assert!(first.0.contains("cached=false"), "{}", first.0);
        // Session `b` has the same workload and op history — the name is
        // identity, not content, so the same question is a cache hit with
        // the exact same numbers.
        let second = e.adjust("b", 2, &adj).expect("adjust");
        assert!(second.0.contains("cached=true"), "{}", second.0);
        let delta_of = |line: &str| {
            line.split(" delta_j=")
                .nth(1)
                .and_then(|rest| rest.split(' ').next())
                .expect("delta field")
                .to_string()
        };
        assert_eq!(delta_of(&first.0), delta_of(&second.0));
        // A replayed seq hits the recorded log, not the cache:
        let replay = e.adjust("a", 2, &adj).expect("replay");
        assert_eq!(replay, first);
        let count = |name: &str| {
            e.counters()
                .iter()
                .find(|(n, _)| *n == name)
                .expect("known counter")
                .1
        };
        let (attaches, adjusts) = (count("steer.attach"), count("steer.adjust"));
        let (cached, computed) = (count("steer.delta.cached"), count("steer.delta.computed"));
        assert_eq!((attaches, adjusts), (2, 2));
        assert_eq!((cached, computed), (1, 1));
    }

    #[test]
    fn slots_detach_and_tombstones_are_enforced() {
        let mut e = SessionEngine::new(EngineConfig {
            session_slots: 1,
            ..EngineConfig::default()
        });
        e.attach("s1", &spec()).expect("attach");
        assert!(matches!(
            e.attach("s2", &spec()),
            Err(SteerError::Slots { limit: 1 })
        ));
        let done = e.detach("s1", 1).expect("detach");
        assert!(done.0.starts_with("detached session=s1"), "{}", done.0);
        // The slot frees up; the old name stays tombstoned.
        e.attach("s2", &spec()).expect("attach after detach");
        assert!(matches!(
            e.attach("s1", &spec()),
            Err(SteerError::Detached(_))
        ));
        // Replaying the final detach seq still returns the recorded reply.
        assert_eq!(e.detach("s1", 1).expect("replay"), done);
    }

    #[test]
    fn adjusting_camera_changes_subsequent_frames_only() {
        let mut e = engine();
        e.attach("s1", &spec()).expect("attach");
        let before = e.render("s1", 1, 2).expect("render");
        e.adjust(
            "s1",
            2,
            &Adjustment::Camera {
                colormap: Colormap::CoolWarm,
                range: Some((0.0, 0.5)),
            },
        )
        .expect("adjust");
        let after = e.render("s1", 3, 0).expect("render");
        let hash = |line: &str| {
            line.split_whitespace()
                .nth(5)
                .expect("hash field")
                .to_string()
        };
        assert_ne!(hash(&before.0), hash(&after.0));
    }

    #[test]
    fn resume_tokens_are_stable_and_advance_with_applied_seq() {
        let mut e = engine();
        let t0 = e.resume_token("s1");
        e.attach("s1", &spec()).expect("attach");
        assert_eq!(e.resume_token("s1"), t0, "attach is seq 0");
        e.render("s1", 1, 1).expect("render");
        let t1 = e.resume_token("s1");
        assert_ne!(t0, t1);
        assert_eq!(t1.len(), 16);
        // A second engine replaying the same ops lands on the same token.
        let mut e2 = engine();
        e2.attach("s1", &spec()).expect("attach");
        e2.render("s1", 1, 1).expect("render");
        assert_eq!(e2.resume_token("s1"), t1);
    }
}
