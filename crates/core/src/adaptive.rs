//! The adaptive runtime — the full version of the paper's §VI-A proposal.
//!
//! "We would also like to develop a runtime system that makes use of our
//! characterization studies … the runtime will decide the power
//! optimization technique to be used." The [`advisor`](crate::advisor)
//! decides *offline* from a workload description; this module decides
//! *online*: it starts in post-processing mode (scientists keep raw data by
//! default), monitors the energy it spends on I/O through the same RAPL/
//! timeline instrumentation the paper uses, and switches the remaining
//! steps to in-situ when the observed I/O energy share crosses a threshold.
//! Snapshots already written stay on disk; the switch is logged. Whatever
//! mode each step ran in, every I/O step ends up *visualized*: snapshots
//! kept on disk are read back and rendered in a final phase, so the
//! adaptive and never-switch runs deliver identical scientific output and
//! their energies compare apples to apples.

use greenness_heatsim::{Grid, HeatSolver};
use greenness_platform::{Node, Phase};
use greenness_storage::{FileSystem, FsConfig, MemBlockDevice};
use greenness_viz::{encode_ppm, render_field};
use serde::{Deserialize, Serialize};

use crate::config::PipelineConfig;
use crate::pipeline::{read_chunked, write_chunked, PipelineError};

/// Adaptive policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePolicy {
    /// Re-evaluate every `window_steps` timesteps.
    pub window_steps: u64,
    /// Switch to in-situ when the windowed I/O share of energy exceeds this
    /// fraction.
    pub io_energy_threshold: f64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            window_steps: 4,
            io_energy_threshold: 0.30,
        }
    }
}

/// What the adaptive run did.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveReport {
    /// Step after which the runtime switched to in-situ (`None` = never).
    pub switched_at_step: Option<u64>,
    /// Virtual execution time, seconds.
    pub execution_time_s: f64,
    /// Full-system energy, joules.
    pub energy_j: f64,
    /// Raw snapshots persisted before the switch.
    pub snapshots_kept: u64,
    /// Images persisted after the switch.
    pub images_written: u64,
}

/// Run the workload under the adaptive runtime.
///
/// # Errors
/// [`PipelineError::Config`] on a zero window or an out-of-range threshold
/// (both reachable from CLI flags and, through the serve layer, from
/// requests); otherwise the usual pipeline storage/solver errors.
pub fn run_adaptive(
    node: &mut Node,
    cfg: &PipelineConfig,
    policy: &AdaptivePolicy,
) -> Result<AdaptiveReport, PipelineError> {
    if policy.window_steps < 1 {
        return Err(PipelineError::Config(
            "window must be at least one step".to_string(),
        ));
    }
    if !(0.0..=1.0).contains(&policy.io_energy_threshold) {
        return Err(PipelineError::Config(format!(
            "threshold must be a fraction in 0..=1, got {}",
            policy.io_energy_threshold
        )));
    }
    if cfg.io_interval == 0 {
        return Err(PipelineError::Config(
            "io_interval must be at least 1".to_string(),
        ));
    }
    let mut fs = FileSystem::format(
        MemBlockDevice::with_capacity_bytes(cfg.device_bytes),
        FsConfig::default(),
    );
    let initial = Grid::from_fn(cfg.grid_nx, cfg.grid_ny, |x, y| {
        0.3 * (-((x - 0.5).powi(2) + (y - 0.4).powi(2)) * 40.0).exp()
    });
    let mut solver = HeatSolver::new(initial, cfg.solver.clone())?;
    let cells = (cfg.grid_nx * cfg.grid_ny) as u64;
    let pixels = (cfg.render.width * cfg.render.height) as u64;

    let mut insitu_mode = false;
    let mut switched_at_step = None;
    let mut snapshots_kept = 0u64;
    let mut images_written = 0u64;
    let mut window_start_energy = 0.0f64;
    let mut window_start_io = 0.0f64;

    let io_energy = |node: &Node| -> f64 {
        node.timeline().phase_energy(Phase::Write).system_j()
            + node.timeline().phase_energy(Phase::CacheControl).system_j()
    };

    for step in 1..=cfg.timesteps {
        solver.step();
        node.execute(cfg.sim_cost.activity(cells), Phase::Simulation);
        if step % cfg.io_interval == 0 {
            if insitu_mode {
                node.execute(cfg.render_cost.activity(pixels), Phase::Visualization);
                let image = render_field(solver.grid(), &cfg.render);
                let ppm = encode_ppm(&image);
                write_chunked(
                    node,
                    &mut fs,
                    &format!("frame{step:04}.ppm"),
                    &ppm,
                    cfg.chunk_bytes,
                    Phase::ImageWrite,
                )?;
                images_written += 1;
            } else {
                let bytes = solver.grid().to_bytes();
                write_chunked(
                    node,
                    &mut fs,
                    &format!("snap{step:04}"),
                    &bytes,
                    cfg.chunk_bytes,
                    Phase::Write,
                )?;
                snapshots_kept += 1;
            }
        }
        // Policy evaluation at window boundaries, while still writing raw.
        if !insitu_mode && step % policy.window_steps == 0 {
            let total = node.timeline().total_energy_j();
            let io = io_energy(node);
            let window_total = total - window_start_energy;
            let window_io = io - window_start_io;
            if window_total > 0.0 && window_io / window_total > policy.io_energy_threshold {
                insitu_mode = true;
                switched_at_step = Some(step);
            }
            window_start_energy = total;
            window_start_io = io;
        }
    }
    fs.sync(node, Phase::CacheControl);
    fs.drop_caches();

    // Final phase: visualize the snapshots that stayed raw, exactly as the
    // post-processing pipeline would.
    let mut kept: Vec<String> = fs
        .list()
        .into_iter()
        .filter(|n| n.starts_with("snap"))
        .collect();
    kept.sort();
    for name in kept {
        let bytes = read_chunked(node, &mut fs, &name, cfg.chunk_bytes, Phase::Read)?;
        let grid = Grid::from_bytes(cfg.grid_nx, cfg.grid_ny, &bytes)
            .ok_or(PipelineError::CorruptSnapshot { name })?;
        node.execute(cfg.render_cost.activity(pixels), Phase::Visualization);
        let _ = render_field(&grid, &cfg.render);
    }

    Ok(AdaptiveReport {
        switched_at_step,
        execution_time_s: node.now().as_secs_f64(),
        energy_j: node.timeline().total_energy_j(),
        snapshots_kept,
        images_written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_platform::HardwareSpec;

    fn run(cfg: &PipelineConfig, policy: &AdaptivePolicy) -> AdaptiveReport {
        let mut node = Node::new(HardwareSpec::table1());
        run_adaptive(&mut node, cfg, policy).expect("adaptive run ok")
    }

    fn io_heavy() -> PipelineConfig {
        let mut c = PipelineConfig::small(1); // I/O every step: ~19% write share
        c.timesteps = 12;
        c
    }

    fn compute_heavy() -> PipelineConfig {
        let mut c = PipelineConfig::small(6); // I/O every 6th step
        c.timesteps = 12;
        c
    }

    #[test]
    fn switches_on_io_heavy_workloads() {
        let policy = AdaptivePolicy {
            window_steps: 4,
            io_energy_threshold: 0.10,
        };
        let r = run(&io_heavy(), &policy);
        assert_eq!(r.switched_at_step, Some(4));
        assert!(r.snapshots_kept >= 4);
        assert!(r.images_written >= 1);
    }

    #[test]
    fn stays_in_post_processing_on_compute_heavy_workloads() {
        let policy = AdaptivePolicy {
            window_steps: 4,
            io_energy_threshold: 0.10,
        };
        let r = run(&compute_heavy(), &policy);
        assert_eq!(r.switched_at_step, None);
        assert_eq!(r.images_written, 0);
        assert_eq!(r.snapshots_kept, 2);
    }

    #[test]
    fn switching_saves_energy_over_never_switching() {
        let never = AdaptivePolicy {
            window_steps: 4,
            io_energy_threshold: 1.0,
        };
        let eager = AdaptivePolicy {
            window_steps: 4,
            io_energy_threshold: 0.10,
        };
        let stayed = run(&io_heavy(), &never);
        let switched = run(&io_heavy(), &eager);
        assert_eq!(stayed.switched_at_step, None);
        assert!(
            switched.energy_j < stayed.energy_j,
            "{} !< {}",
            switched.energy_j,
            stayed.energy_j
        );
    }

    #[test]
    fn early_snapshots_survive_the_switch() {
        let policy = AdaptivePolicy {
            window_steps: 2,
            io_energy_threshold: 0.10,
        };
        let r = run(&io_heavy(), &policy);
        assert_eq!(r.switched_at_step, Some(2));
        assert_eq!(r.snapshots_kept, 2);
        assert_eq!(r.images_written, 10);
    }

    #[test]
    fn zero_window_is_rejected_as_a_value() {
        let policy = AdaptivePolicy {
            window_steps: 0,
            io_energy_threshold: 0.5,
        };
        let mut node = Node::new(HardwareSpec::table1());
        let err = run_adaptive(&mut node, &io_heavy(), &policy).expect_err("zero window");
        assert!(matches!(err, PipelineError::Config(_)), "{err}");
        assert!(err.to_string().contains("window must be"));
    }

    #[test]
    fn out_of_range_threshold_is_rejected_as_a_value() {
        let policy = AdaptivePolicy {
            window_steps: 4,
            io_energy_threshold: 1.5,
        };
        let mut node = Node::new(HardwareSpec::table1());
        let err = run_adaptive(&mut node, &io_heavy(), &policy).expect_err("bad threshold");
        assert!(err.to_string().contains("threshold must be a fraction"));
    }
}
