//! The §V-C energy-savings breakdown for a case study.
//!
//! Combines the probe measurements (Table II) with a case comparison
//! (Figures 7/10) through the estimator in
//! [`greenness_power::breakdown`]: dynamic savings = probe dynamic power ×
//! execution-time difference; static savings = the rest. For case study 1
//! the paper reports 12.8 kJ static vs 1.2 kJ dynamic — *91% of the savings
//! come from not idling*, only 9% from moving less data.

use greenness_power::SavingsBreakdown;

use crate::compare::CaseComparison;
use crate::experiment::ExperimentSetup;
use crate::probes::{nnread, nnwrite, ProbeResult};

/// The full §V-C analysis for one case study.
#[derive(Debug, Clone)]
pub struct CaseBreakdown {
    /// Case-study number.
    pub case: u32,
    /// The nnread probe (Table II column 1).
    pub nnread: ProbeResult,
    /// The nnwrite probe (Table II column 2).
    pub nnwrite: ProbeResult,
    /// The estimator's result.
    pub savings: SavingsBreakdown,
}

impl CaseBreakdown {
    /// Run the probes and apply the estimator to an existing comparison.
    /// `probe_chunk_bytes` is the paper's 128 KiB; `probe_duration_s` its
    /// ≈50 s probe window.
    ///
    /// # Errors
    /// Propagates a [`greenness_storage::StorageError`] from a malformed
    /// probe configuration.
    pub fn analyze(
        cmp: &CaseComparison,
        setup: &ExperimentSetup,
        probe_chunk_bytes: usize,
        probe_duration_s: f64,
    ) -> Result<CaseBreakdown, greenness_storage::StorageError> {
        let read = nnread(setup, probe_chunk_bytes, probe_duration_s)?;
        let write = nnwrite(setup, probe_chunk_bytes, probe_duration_s)?;
        // The I/O being removed is a mix of reads and writes; the paper uses
        // the (nearly equal) stage powers — we average them.
        let probe_dyn_w = 0.5 * (read.avg_dynamic_w + write.avg_dynamic_w);
        let savings = SavingsBreakdown::estimate(
            cmp.post.metrics.energy_j,
            cmp.post.metrics.execution_time_s,
            cmp.insitu.metrics.energy_j,
            cmp.insitu.metrics.execution_time_s,
            probe_dyn_w,
        );
        Ok(CaseBreakdown {
            case: cmp.case,
            nnread: read,
            nnwrite: write,
            savings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;

    #[test]
    fn static_share_dominates() {
        let setup = ExperimentSetup::noiseless();
        let cmp = CaseComparison::run_config(1, &PipelineConfig::small(1), &setup).expect("runs");
        let b = CaseBreakdown::analyze(&cmp, &setup, 8 * 1024, 5.0).expect("probes ok");
        assert!(b.savings.total_j > 0.0);
        // The paper's qualitative headline: most savings are static.
        assert!(
            b.savings.static_pct() > 60.0,
            "static share only {:.1}%",
            b.savings.static_pct()
        );
        assert!((b.savings.static_pct() + b.savings.dynamic_pct() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn probe_results_are_embedded() {
        let setup = ExperimentSetup::noiseless();
        let cmp = CaseComparison::run_config(1, &PipelineConfig::small(2), &setup).expect("runs");
        let b = CaseBreakdown::analyze(&cmp, &setup, 8 * 1024, 3.0).expect("probes ok");
        assert_eq!(b.nnread.name, "nnread");
        assert_eq!(b.nnwrite.name, "nnwrite");
        assert!(b.nnread.avg_dynamic_w > 0.0);
    }
}
