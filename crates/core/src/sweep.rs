//! Deterministic parallel sweep executor for the paper's experiment grid.
//!
//! The paper's results are a grid of *independent* runs — 3 case studies ×
//! pipeline kinds × hardware/interval variants (Figures 4–11, Tables
//! II–III) — so reproduction wall-clock should be bounded by the slowest
//! job, not the sum. This module provides the batch layer everything above
//! it (the `repro` and `greenness` binaries, the integration tests, and the
//! extension studies) submits through:
//!
//! * a [`SweepJob`] is one pipeline run: `(case, PipelineKind,
//!   PipelineConfig, ExperimentSetup)`;
//! * [`run_sweep`] executes a batch on the bounded **work-stealing pool**
//!   from `greenness-pool` (std-only — the crate registry is not always
//!   reachable from the build hosts), the same pool the placement sweep and
//!   the threaded stencil tiles schedule onto;
//! * results come back **keyed and ordered by job id** (submission order),
//!   so output never depends on scheduling;
//! * every job derives its RNG seed from its own *job key* — never from
//!   worker identity or execution order — so a sweep is **bit-identical for
//!   any worker count, including 1** (pinned by
//!   `tests/parallel_determinism.rs`);
//! * [`manifest_json`] renders the per-job results manifest the `repro`
//!   binary writes to `repro_out/manifest.json` and the golden tests
//!   consume.

use greenness_pool::run_pool;

use crate::compare::CaseComparison;
use crate::config::PipelineConfig;
use crate::experiment::{run, ExperimentSetup, PipelineReport};
use crate::pipeline::{PipelineError, PipelineKind};

/// One cell of the experiment grid.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Case-study number the job belongs to (1–3 for the paper grid;
    /// synthetic grids may use other values).
    pub case: u32,
    /// Which pipeline to run.
    pub kind: PipelineKind,
    /// The workload.
    pub cfg: PipelineConfig,
    /// The measurement rig. The meter seed in here acts as the sweep-level
    /// *base* seed; the job reseeds it via [`SweepJob::derived_seed`].
    pub setup: ExperimentSetup,
}

impl SweepJob {
    /// The job's stable identity: every field that distinguishes one grid
    /// cell from another, and nothing about *how* the grid is executed.
    pub fn key(&self) -> String {
        format!(
            "case{}/{}/{}",
            self.case,
            self.kind.label(),
            self.group_tail()
        )
    }

    /// The identity shared by both pipeline kinds of one grid cell —
    /// everything in the key except the pipeline kind. Comparison pairing
    /// matches on `(case, group)`.
    pub fn group(&self) -> String {
        format!("case{}/{}", self.case, self.group_tail())
    }

    fn group_tail(&self) -> String {
        format!("{}/{}", self.cfg.label, self.setup.spec.name)
    }

    /// Seed for this job's meter noise, derived from the job key and the
    /// sweep's base seed only. Worker identity and execution order never
    /// enter, which is what makes sweeps schedule-independent.
    pub fn derived_seed(&self) -> u64 {
        splitmix64(fnv1a64(self.key().as_bytes()) ^ self.setup.meter.seed)
    }

    /// Run the job (on whatever thread the executor picked).
    fn execute(&self) -> Result<PipelineReport, PipelineError> {
        let mut setup = self.setup.clone();
        setup.meter.seed = self.derived_seed();
        // Fault schedules reseed the same way meter noise does: from the job
        // key and the sweep-level base plan only, never from scheduling.
        setup.faults = setup.faults.map(|plan| plan.derive(&self.key()));
        run(self.kind, &self.cfg, &setup)
    }
}

/// One finished grid cell, in submission order.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Index of the job in the submitted batch (the manifest's primary key).
    pub id: usize,
    /// The job's stable identity string.
    pub key: String,
    /// The key minus the pipeline kind (shared by a post/in-situ pair).
    pub group: String,
    /// The meter seed the job actually ran with.
    pub seed: u64,
    /// Case-study number (copied from the job).
    pub case: u32,
    /// Pipeline kind (copied from the job).
    pub kind: PipelineKind,
    /// Everything the instrumented run produced.
    pub report: PipelineReport,
}

/// Progress notification passed to the `on_done` callback of [`run_sweep`]:
/// `(jobs finished so far, total jobs, key of the job that just finished)`.
pub type Progress<'a> = &'a (dyn Fn(usize, usize, &str) + Sync);

/// No-op progress callback for callers that don't report.
pub fn silent_progress() -> impl Fn(usize, usize, &str) + Sync {
    |_, _, _| {}
}

/// Why a sweep batch could not produce a complete result set.
///
/// The executor never panics on caller input: a job that panics is caught on
/// its worker thread and reported as a value, so one bad batch fails only its
/// own caller — a long-lived server keeps serving, and the pool state (which
/// is all per-call) cannot be poison-cascaded into later sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// Two submitted jobs share a key; they would silently collapse into one
    /// manifest entry.
    DuplicateKey {
        /// The colliding key.
        key: String,
    },
    /// A job panicked while executing; the rest of the batch still ran.
    JobPanicked {
        /// Job id (submission index).
        id: usize,
        /// The job's key.
        key: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A job's pipeline run reported an error (bad solver config, device too
    /// small…); the rest of the batch still ran.
    JobFailed {
        /// Job id (submission index).
        id: usize,
        /// The job's key.
        key: String,
        /// The pipeline error, rendered.
        message: String,
    },
    /// A job neither returned nor reported a panic (a worker died without
    /// delivering — should be unreachable).
    JobLost {
        /// Job id (submission index).
        id: usize,
        /// The job's key.
        key: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::DuplicateKey { key } => {
                write!(f, "sweep jobs must have unique keys; '{key}' repeats")
            }
            SweepError::JobPanicked { id, key, message } => {
                write!(f, "sweep job {id} ({key}) panicked: {message}")
            }
            SweepError::JobFailed { id, key, message } => {
                write!(f, "sweep job {id} ({key}) failed: {message}")
            }
            SweepError::JobLost { id, key } => {
                write!(f, "sweep job {id} ({key}) finished without a result")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// Execute `jobs` on `workers` threads and return results ordered by job id.
///
/// `workers` is clamped to `1..=jobs.len()`; `workers == 1` degenerates to a
/// serial run on one spawned thread. `on_done` fires on the *calling* thread
/// as results arrive (arrival order is scheduling-dependent; the returned
/// `Vec` is not).
///
/// # Errors
/// [`SweepError::DuplicateKey`] when two jobs share a key;
/// [`SweepError::JobFailed`] when a job's pipeline run reported an error;
/// [`SweepError::JobPanicked`] when a job panicked (the panic is caught on
/// the worker — the remaining jobs still run, and the lowest-id failure is
/// reported for determinism).
pub fn run_sweep(
    jobs: Vec<SweepJob>,
    workers: usize,
    on_done: Progress<'_>,
) -> Result<Vec<JobResult>, SweepError> {
    let total = jobs.len();
    if total == 0 {
        return Ok(Vec::new());
    }
    {
        let mut keys: Vec<String> = jobs.iter().map(SweepJob::key).collect();
        keys.sort();
        for pair in keys.windows(2) {
            if pair[0] == pair[1] {
                return Err(SweepError::DuplicateKey {
                    key: pair[0].clone(),
                });
            }
        }
    }
    let mut slots: Vec<Option<JobResult>> = (0..total).map(|_| None).collect();
    let mut failures: Vec<(usize, bool, String)> = Vec::new();
    let mut finished = 0usize;
    run_pool(
        total,
        workers,
        &|idx| jobs[idx].execute(),
        &mut |idx, outcome| match outcome {
            Ok(Ok(report)) => {
                finished += 1;
                on_done(finished, total, &jobs[idx].key());
                slots[idx] = Some(JobResult {
                    id: idx,
                    key: jobs[idx].key(),
                    group: jobs[idx].group(),
                    seed: jobs[idx].derived_seed(),
                    case: jobs[idx].case,
                    kind: jobs[idx].kind,
                    report,
                });
            }
            Ok(Err(e)) => failures.push((idx, false, e.to_string())),
            Err(message) => failures.push((idx, true, message)),
        },
    );

    if let Some((id, panicked, message)) = failures.into_iter().min_by_key(|(id, _, _)| *id) {
        let key = jobs[id].key();
        return Err(if panicked {
            SweepError::JobPanicked { id, key, message }
        } else {
            SweepError::JobFailed { id, key, message }
        });
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.ok_or_else(|| SweepError::JobLost {
                id: i,
                key: jobs[i].key(),
            })
        })
        .collect()
}

/// The standard figure grid: both measured pipelines over each requested
/// case study, in deterministic submission order (case-major, then
/// post-processing before in-situ — the column order of Figures 7–11).
pub fn case_grid(setup: &ExperimentSetup, cases: &[u32]) -> Vec<SweepJob> {
    let mut jobs = Vec::with_capacity(cases.len() * 2);
    for &n in cases {
        for kind in [PipelineKind::PostProcessing, PipelineKind::InSitu] {
            jobs.push(SweepJob {
                case: n,
                kind,
                cfg: PipelineConfig::case_study(n),
                setup: setup.clone(),
            });
        }
    }
    jobs
}

/// Same grid over an explicit `(case, cfg)` list — tests use scaled-down
/// configs, the extension studies use per-spec setups.
pub fn config_grid(setup: &ExperimentSetup, configs: &[(u32, PipelineConfig)]) -> Vec<SweepJob> {
    let mut jobs = Vec::with_capacity(configs.len() * 2);
    for (n, cfg) in configs {
        for kind in [PipelineKind::PostProcessing, PipelineKind::InSitu] {
            jobs.push(SweepJob {
                case: *n,
                kind,
                cfg: cfg.clone(),
                setup: setup.clone(),
            });
        }
    }
    jobs
}

/// Pair post-processing and in-situ results back into [`CaseComparison`]s,
/// in job-id order of the post-processing half. Jobs that lack a partner of
/// the other kind (e.g. in-transit runs) are skipped.
pub fn comparisons(results: &[JobResult]) -> Vec<CaseComparison> {
    let mut out = Vec::new();
    for r in results {
        if r.kind != PipelineKind::PostProcessing {
            continue;
        }
        let partner = results
            .iter()
            .find(|p| p.kind == PipelineKind::InSitu && p.group == r.group);
        if let Some(insitu) = partner {
            out.push(CaseComparison {
                case: r.case,
                post: r.report.clone(),
                insitu: insitu.report.clone(),
            });
        }
    }
    out
}

/// Assemble the sweep-level event journal: the `greenness-trace/v1` schema
/// header, then each traced job's journal wrapped in a `job` span, in job-id
/// order. Per-job journals use job-local virtual time (every job starts at
/// t = 0); the `job` begin event marks the clock reset for consumers.
///
/// Like [`manifest_json`], the output is a pure function of the results —
/// byte-identical across worker counts (`tests/parallel_determinism.rs`).
/// Returns `None` when no job was traced.
pub fn sweep_journal(results: &[JobResult]) -> Option<String> {
    if results.iter().all(|r| r.report.journal.is_none()) {
        return None;
    }
    let mut s = greenness_trace::journal_header();
    for r in results {
        let Some(journal) = &r.report.journal else {
            continue;
        };
        s.push_str(&format!(
            "{{\"t_ns\":0,\"ev\":\"begin\",\"name\":\"job\",\"job\":{},\"key\":\"{}\",\"seed\":{}}}\n",
            r.id,
            escape_json(&r.key),
            r.seed
        ));
        s.push_str(journal);
        s.push_str(&format!(
            "{{\"t_ns\":{},\"ev\":\"end\",\"name\":\"job\",\"job\":{}}}\n",
            r.report.timeline.end().as_nanos(),
            r.id
        ));
    }
    Some(s)
}

/// Render the sweep-level metrics file (`greenness-metrics/v1`): one labeled
/// registry per traced job, in job-id order, labeled by job key. Returns
/// `None` when no job was traced.
pub fn sweep_metrics_json(results: &[JobResult]) -> Option<String> {
    let entries: Vec<(String, greenness_trace::MetricsRegistry)> = results
        .iter()
        .filter_map(|r| r.report.trace_metrics.clone().map(|m| (r.key.clone(), m)))
        .collect();
    if entries.is_empty() {
        None
    } else {
        Some(greenness_trace::metrics_file_json(&entries))
    }
}

/// Render the structured per-job manifest (`repro_out/manifest.json`).
///
/// The output is a pure function of the job results: ids, keys, derived
/// seeds, metrics, per-phase accounting, and data-side outputs — nothing
/// about wall-clock, worker count, or host. Byte-identical manifests across
/// `--jobs` values are an acceptance gate (`tests/parallel_determinism.rs`).
pub fn manifest_json(results: &[JobResult]) -> String {
    let mut s = String::with_capacity(1024 + 1024 * results.len());
    s.push_str("{\n  \"schema\": \"greenness-sweep-manifest/v1\",\n  \"jobs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let m = &r.report.metrics;
        let o = &r.report.output;
        s.push_str("    {\n");
        s.push_str(&format!("      \"id\": {},\n", r.id));
        s.push_str(&format!("      \"key\": \"{}\",\n", escape_json(&r.key)));
        s.push_str(&format!("      \"case\": {},\n", r.case));
        s.push_str(&format!(
            "      \"pipeline\": \"{}\",\n",
            escape_json(r.kind.label())
        ));
        s.push_str(&format!(
            "      \"config\": \"{}\",\n",
            escape_json(&r.report.config_label)
        ));
        s.push_str(&format!("      \"seed\": {},\n", r.seed));
        s.push_str(&format!(
            "      \"execution_time_s\": {:?},\n",
            m.execution_time_s
        ));
        s.push_str(&format!(
            "      \"average_power_w\": {:?},\n",
            m.average_power_w
        ));
        s.push_str(&format!("      \"peak_power_w\": {:?},\n", m.peak_power_w));
        s.push_str(&format!("      \"energy_j\": {:?},\n", m.energy_j));
        s.push_str(&format!("      \"work_units\": {:?},\n", m.work_units));
        s.push_str("      \"phases\": [");
        for (j, row) in r.report.phase_rows().iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"phase\": \"{:?}\", \"time_s\": {:?}, \"time_pct\": {:?}, \
                 \"energy_j\": {:?}, \"avg_power_w\": {:?}}}",
                row.phase,
                row.duration.as_secs_f64(),
                row.time_pct,
                row.energy_j,
                row.avg_power_w
            ));
        }
        s.push_str("],\n");
        s.push_str(&format!(
            "      \"output\": {{\"io_steps\": {}, \"bytes_written\": {}, \
             \"bytes_read\": {}, \"frames\": {}, \"verified\": {}}},\n",
            o.io_steps,
            o.bytes_written,
            o.bytes_read,
            o.frames.len(),
            o.verified
        ));
        s.push_str(&format!(
            "      \"profile\": {{\"samples\": {}, \"avg_system_w\": {:?}}}\n",
            r.report.profile.len(),
            r.report.profile.average_system_w()
        ));
        s.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

fn escape_json(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    use super::*;

    fn small_grid() -> Vec<SweepJob> {
        let setup = ExperimentSetup::noiseless();
        config_grid(
            &setup,
            &[
                (1, PipelineConfig::small(1)),
                (2, PipelineConfig::small(2)),
                (3, PipelineConfig::small(8)),
            ],
        )
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let jobs = small_grid();
        let expected: Vec<String> = jobs.iter().map(SweepJob::key).collect();
        let results = run_sweep(jobs, 4, &silent_progress()).expect("sweep ok");
        let got: Vec<String> = results.iter().map(|r| r.key.clone()).collect();
        assert_eq!(got, expected);
        assert!(results.iter().enumerate().all(|(i, r)| r.id == i));
    }

    #[test]
    fn seeds_depend_on_key_not_schedule() {
        let jobs = small_grid();
        let direct: Vec<u64> = jobs.iter().map(SweepJob::derived_seed).collect();
        let serial = run_sweep(jobs.clone(), 1, &silent_progress()).expect("sweep ok");
        let wide = run_sweep(jobs, 3, &silent_progress()).expect("sweep ok");
        assert_eq!(serial.iter().map(|r| r.seed).collect::<Vec<_>>(), direct);
        assert_eq!(wide.iter().map(|r| r.seed).collect::<Vec<_>>(), direct);
        // Distinct keys get distinct seeds.
        let mut sorted = direct.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), direct.len());
    }

    #[test]
    fn progress_reports_every_job_exactly_once() {
        let seen = Mutex::new(Vec::new());
        let jobs = small_grid();
        let total = jobs.len();
        run_sweep(jobs, 2, &|done, of, key| {
            seen.lock().unwrap().push((done, of, key.to_string()));
        })
        .expect("sweep ok");
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), total);
        assert!(seen.iter().all(|(_, of, _)| *of == total));
        assert_eq!(seen.last().unwrap().0, total);
    }

    #[test]
    fn comparisons_pair_pipelines_per_case() {
        let results = run_sweep(small_grid(), 2, &silent_progress()).expect("sweep ok");
        let cmps = comparisons(&results);
        assert_eq!(
            cmps.iter().map(|c| c.case).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        for c in &cmps {
            assert!(c.post.metrics.energy_j > c.insitu.metrics.energy_j);
        }
    }

    #[test]
    fn manifest_is_schedule_invariant() {
        let a = manifest_json(&run_sweep(small_grid(), 1, &silent_progress()).expect("sweep ok"));
        let b = manifest_json(&run_sweep(small_grid(), 3, &silent_progress()).expect("sweep ok"));
        assert_eq!(a, b);
        assert!(a.starts_with("{\n  \"schema\": \"greenness-sweep-manifest/v1\""));
    }

    #[test]
    fn traced_sweeps_are_schedule_invariant_and_untraced_emit_nothing() {
        let plain = run_sweep(small_grid(), 2, &silent_progress()).expect("sweep ok");
        assert!(sweep_journal(&plain).is_none());
        assert!(sweep_metrics_json(&plain).is_none());

        let traced_grid = || {
            let setup = ExperimentSetup {
                trace: true,
                ..ExperimentSetup::noiseless()
            };
            config_grid(&setup, &[(1, PipelineConfig::small(2))])
        };
        let serial = run_sweep(traced_grid(), 1, &silent_progress()).expect("sweep ok");
        let wide = run_sweep(traced_grid(), 2, &silent_progress()).expect("sweep ok");
        let (ja, jb) = (
            sweep_journal(&serial).unwrap(),
            sweep_journal(&wide).unwrap(),
        );
        assert_eq!(ja, jb, "journal must not depend on worker count");
        assert!(ja.starts_with("{\"schema\":\"greenness-trace/v1\"}\n"));
        assert_eq!(
            sweep_metrics_json(&serial).unwrap(),
            sweep_metrics_json(&wide).unwrap()
        );
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let setup = ExperimentSetup::noiseless();
        let job = SweepJob {
            case: 1,
            kind: PipelineKind::InSitu,
            cfg: PipelineConfig::small(1),
            setup,
        };
        let err = run_sweep(vec![job.clone(), job], 2, &silent_progress())
            .expect_err("duplicates must be rejected");
        assert!(matches!(err, SweepError::DuplicateKey { .. }));
        assert!(err.to_string().contains("unique keys"));
    }

    /// A job whose run fails deterministically: the device is far too small
    /// for the post-processing pipeline's snapshot writes. Since the serve
    /// panic sweep this surfaces as a `PipelineError`, not a panic.
    fn poisoned_job() -> SweepJob {
        let mut cfg = PipelineConfig::small(1);
        cfg.label = "poisoned".into();
        cfg.device_bytes = 16 * 1024;
        SweepJob {
            case: 9,
            kind: PipelineKind::PostProcessing,
            cfg,
            setup: ExperimentSetup::noiseless(),
        }
    }

    #[test]
    fn a_failing_job_fails_its_batch_as_a_value_not_a_panic() {
        let mut jobs = small_grid();
        jobs.insert(1, poisoned_job());
        let err = run_sweep(jobs, 3, &silent_progress()).expect_err("bad job must surface");
        match &err {
            SweepError::JobFailed { id, key, .. } => {
                assert_eq!(*id, 1);
                assert!(key.contains("poisoned"), "key {key}");
            }
            other => panic!("expected JobFailed, got {other:?}"),
        }
        assert!(err.to_string().contains("failed"));
    }

    #[test]
    fn a_failing_batch_does_not_poison_later_sweeps() {
        // The server-relevant guarantee: after a request's batch fails, the
        // next request's batch runs normally — no cascaded poisoning.
        let bad = run_sweep(vec![poisoned_job()], 1, &silent_progress());
        assert!(bad.is_err());
        let good = run_sweep(small_grid(), 2, &silent_progress()).expect("healthy batch runs");
        assert_eq!(good.len(), 6);
    }

    #[test]
    fn panic_and_lost_errors_render_their_ids() {
        // The panic-catch path in `run_pool` is exercised by the pool crate;
        // here we pin the rendered shapes the serve layer forwards.
        let p = SweepError::JobPanicked {
            id: 3,
            key: "k".into(),
            message: "boom".into(),
        };
        assert!(p.to_string().contains("panicked: boom"));
        let l = SweepError::JobLost {
            id: 4,
            key: "k".into(),
        };
        assert!(l.to_string().contains("without a result"));
    }
}
