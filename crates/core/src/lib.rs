//! # greenness-core
//!
//! The reproduction of *"On the Greenness of In-Situ and Post-Processing
//! Visualization Pipelines"* (Adhinarayanan, Feng, Woodring, Rogers, Ahrens;
//! IEEE IPDPSW 2015): both visualization pipelines, the three case-study
//! configurations, the instrumented experiment runner, and the paper's
//! analyses.
//!
//! * [`pipeline`] — the **post-processing** pipeline (simulate → write raw
//!   snapshots → read back → visualize, Figure 2a) and the **in-situ**
//!   pipeline (simulate → visualize in memory → write only images,
//!   Figure 2b), plus an **in-transit** extension (ship snapshots to a
//!   staging node over the NIC) from the paper's future-work list.
//! * [`config`] — the §IV-C application configurations: 50 timesteps,
//!   128 KiB chunks, I/O every 1 / 2 / 8 iterations (case studies 1–3).
//! * [`experiment`] — runs a pipeline on a fresh instrumented node (Wattsup +
//!   RAPL with the paper's +0.2 W monitoring overhead) and reports
//!   [`GreenMetrics`](greenness_power::GreenMetrics), power profiles, and
//!   per-phase accounting.
//! * [`probes`] — the isolated `nnread`/`nnwrite` stages of Figure 6 /
//!   Table II.
//! * [`compare`] — head-to-head comparison (Figures 7–11).
//! * [`sweep`] — deterministic parallel executor for the experiment grid:
//!   a work-stealing `std::thread` pool whose per-job RNG seeds derive from
//!   job keys, so results are bit-identical for any worker count.
//! * [`breakdown`] — the §V-C static/dynamic energy-savings decomposition.
//! * [`whatif`] — the §V-D fio-based analysis: in-situ vs data
//!   reorganization for a random-I/O application.
//! * [`advisor`] — the runtime the paper sketches as future work: a power
//!   model over (access count, size, pattern) that picks the optimization
//!   technique.
//! * [`report`] — fixed-width table rendering shared by the `repro` binary.
//!
//! ## Quickstart
//!
//! ```
//! use greenness_core::{config::PipelineConfig, experiment, pipeline::PipelineKind};
//!
//! // A scaled-down case study 1 (full scale is PipelineConfig::case_study(1)).
//! let cfg = PipelineConfig::small(1);
//! let setup = experiment::ExperimentSetup::default();
//! let post = experiment::run(PipelineKind::PostProcessing, &cfg, &setup).expect("run ok");
//! let insitu = experiment::run(PipelineKind::InSitu, &cfg, &setup).expect("run ok");
//! assert!(insitu.metrics.energy_j < post.metrics.energy_j);
//! ```

pub mod adaptive;
pub mod advisor;
pub mod breakdown;
pub mod capping;
pub mod cluster_sweep;
pub mod compare;
pub mod config;
pub mod experiment;
pub mod pipeline;
pub mod placement;
pub mod probes;
pub mod report;
pub mod steering;
pub mod sweep;
pub mod variants;
pub mod whatif;

pub use compare::CaseComparison;
pub use config::PipelineConfig;
pub use experiment::{ExperimentSetup, PipelineReport};
pub use pipeline::PipelineKind;
