//! Pipeline variants implementing the optimization techniques the paper
//! discusses but does not build.
//!
//! §V-C sorts optimizations by which energy component they attack:
//!
//! * **data sampling** (refs [21]–[23]) attacks the *dynamic* component —
//!   [`Variant::SampledPost`] writes stride-decimated snapshots;
//! * **compression** (ref [22]) also attacks data volume, spending CPU —
//!   [`Variant::CompressedPost`] encodes snapshots with a real codec before
//!   writing and decodes after reading;
//! * **frequency scaling** attacks the *static/dynamic balance* of the
//!   compute phase — [`Variant::DvfsSim`] re-clocks the simulation;
//! * the **image-database in-situ** approach (Ahrens et al., ref [12])
//!   renders *many camera views* per step so post-hoc exploration becomes
//!   picking images instead of re-rendering — [`Variant::ImageDatabase`].
//!
//! Every variant runs the real solver, real storage stack, and (where
//! applicable) real codecs; post-processing variants verify their read-back
//! data (bit-exact for lossless paths, bounded-error for quantization).

use greenness_codec::quant::Quant16;
use greenness_codec::transpose::TransposeRle;
use greenness_codec::{Codec, CodecCostModel, ScratchCodec};
use greenness_heatsim::{Grid, HeatSolver};
use greenness_platform::{Node, Phase};
use greenness_storage::{FileSystem, FsConfig, MemBlockDevice};
use greenness_viz::{encode_ppm, render_field, stride_sample, RenderOptions};

use crate::config::PipelineConfig;
use crate::pipeline::{fnv1a, read_chunked, write_chunked};

/// Which codec a compressed pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecChoice {
    /// Lossless byte-plane transpose + RLE (bit-exact round trip).
    Lossless,
    /// Bounded-error 16-bit quantization (smaller, lossy).
    Quantized,
}

impl CodecChoice {
    fn codec(self) -> Box<dyn Codec> {
        match self {
            CodecChoice::Lossless => Box::new(TransposeRle),
            CodecChoice::Quantized => Box::new(Quant16),
        }
    }
}

/// The pipeline variants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Variant {
    /// Post-processing over stride-decimated snapshots.
    SampledPost {
        /// Keep every `stride`-th sample per dimension (data volume shrinks
        /// by `stride²`).
        stride: usize,
    },
    /// Post-processing with snapshots (de)compressed by a real codec.
    CompressedPost {
        /// Which codec.
        codec: CodecChoice,
    },
    /// In-situ with the simulation re-clocked by DVFS.
    DvfsSim {
        /// Frequency multiplier in `(0, 1]`.
        freq_scale: f64,
    },
    /// In-situ rendering `views` images per I/O step (image database).
    ImageDatabase {
        /// Camera views rendered per I/O step.
        views: usize,
    },
    /// Post-processing through an NVRAM burst buffer (Gamell et al.,
    /// ref [26]): chunk fsyncs land in the fast tier; snapshots drain to the
    /// disk as large sequential writes.
    BurstBufferPost {
        /// Staging-tier capacity, bytes.
        buffer_bytes: u64,
    },
}

/// Results of a variant run.
#[derive(Debug, Clone)]
pub struct VariantOutput {
    /// The variant that ran.
    pub variant: Variant,
    /// Virtual execution time, seconds.
    pub execution_time_s: f64,
    /// Full-system energy, joules.
    pub energy_j: f64,
    /// Bytes written to storage.
    pub bytes_written: u64,
    /// Bytes of *raw* data represented (pre-reduction), for ratio reporting.
    pub raw_bytes: u64,
    /// Read-back verification passed (bit-exact, or within the quantizer's
    /// error bound for the lossy path).
    pub verified: bool,
}

impl VariantOutput {
    /// Data-reduction factor achieved on the stored snapshots.
    pub fn reduction_factor(&self) -> f64 {
        if self.bytes_written == 0 {
            0.0
        } else {
            self.raw_bytes as f64 / self.bytes_written as f64
        }
    }
}

/// Run a variant over `node` with the given workload.
pub fn run_variant(variant: Variant, node: &mut Node, cfg: &PipelineConfig) -> VariantOutput {
    match variant {
        Variant::SampledPost { stride } => sampled_post(node, cfg, stride),
        Variant::CompressedPost { codec } => compressed_post(node, cfg, codec),
        Variant::DvfsSim { freq_scale } => dvfs_insitu(node, cfg, freq_scale),
        Variant::ImageDatabase { views } => image_database(node, cfg, views),
        Variant::BurstBufferPost { buffer_bytes } => burst_buffer_post(node, cfg, buffer_bytes),
    }
}

fn initial_field(cfg: &PipelineConfig) -> Grid {
    Grid::from_fn(cfg.grid_nx, cfg.grid_ny, |x, y| {
        0.3 * (-((x - 0.5).powi(2) + (y - 0.4).powi(2)) * 40.0).exp()
    })
}

fn finish(
    variant: Variant,
    node: &Node,
    bytes_written: u64,
    raw_bytes: u64,
    verified: bool,
) -> VariantOutput {
    VariantOutput {
        variant,
        execution_time_s: node.now().as_secs_f64(),
        energy_j: node.timeline().total_energy_j(),
        bytes_written,
        raw_bytes,
        verified,
    }
}

fn sampled_post(node: &mut Node, cfg: &PipelineConfig, stride: usize) -> VariantOutput {
    assert!(stride >= 1, "stride must be at least 1");
    let mut fs = FileSystem::format(
        MemBlockDevice::with_capacity_bytes(cfg.device_bytes),
        FsConfig::default(),
    );
    let mut solver = HeatSolver::new(initial_field(cfg), cfg.solver.clone())
        .expect("library-built solver config");
    let cells = (cfg.grid_nx * cfg.grid_ny) as u64;
    let pixels = (cfg.render.width * cfg.render.height) as u64;
    let mut written = 0u64;
    let mut raw = 0u64;
    let mut names: Vec<(String, u64, usize, usize)> = Vec::new();

    for step in 1..=cfg.timesteps {
        solver.step();
        node.execute(cfg.sim_cost.activity(cells), Phase::Simulation);
        if step % cfg.io_interval != 0 {
            continue;
        }
        raw += cfg.snapshot_bytes();
        let reduced = stride_sample(solver.grid(), stride);
        let bytes = reduced.to_bytes();
        let name = format!("snap{step:04}");
        names.push((name.clone(), fnv1a(&bytes), reduced.nx(), reduced.ny()));
        written += write_chunked(node, &mut fs, &name, &bytes, cfg.chunk_bytes, Phase::Write)
            .expect("device sized for the variant run");
    }
    fs.sync(node, Phase::CacheControl);
    fs.drop_caches();

    let mut verified = true;
    for (name, sum, nx, ny) in &names {
        let bytes = read_chunked(node, &mut fs, name, cfg.chunk_bytes, Phase::Read)
            .expect("snapshot readable");
        if fnv1a(&bytes) != *sum {
            verified = false;
        }
        let grid = Grid::from_bytes(*nx, *ny, &bytes).expect("reduced snapshot shape");
        node.execute(cfg.render_cost.activity(pixels), Phase::Visualization);
        let _ = render_field(&grid, &cfg.render);
    }
    finish(
        Variant::SampledPost { stride },
        node,
        written,
        raw,
        verified,
    )
}

fn compressed_post(node: &mut Node, cfg: &PipelineConfig, choice: CodecChoice) -> VariantOutput {
    // Encoding sits on the per-iteration dump path; the scratch wrapper
    // keeps it allocation-free at steady state.
    let mut codec = ScratchCodec::new(choice.codec());
    let codec_cost = CodecCostModel::default();
    let mut fs = FileSystem::format(
        MemBlockDevice::with_capacity_bytes(cfg.device_bytes),
        FsConfig::default(),
    );
    let mut solver = HeatSolver::new(initial_field(cfg), cfg.solver.clone())
        .expect("library-built solver config");
    let cells = (cfg.grid_nx * cfg.grid_ny) as u64;
    let pixels = (cfg.render.width * cfg.render.height) as u64;
    let mut written = 0u64;
    let mut raw = 0u64;
    let mut names: Vec<(String, u64, f64, f64)> = Vec::new(); // name, raw fnv, min, max

    for step in 1..=cfg.timesteps {
        solver.step();
        node.execute(cfg.sim_cost.activity(cells), Phase::Simulation);
        if step % cfg.io_interval != 0 {
            continue;
        }
        let bytes = solver.grid().to_bytes();
        raw += bytes.len() as u64;
        node.execute(codec_cost.encode_activity(bytes.len() as u64), Phase::Write);
        let encoded = codec
            .try_encode(&bytes)
            .expect("solver fields are finite f64 streams");
        let name = format!("snap{step:04}");
        names.push((
            name.clone(),
            fnv1a(&bytes),
            solver.grid().min(),
            solver.grid().max(),
        ));
        written += write_chunked(node, &mut fs, &name, encoded, cfg.chunk_bytes, Phase::Write)
            .expect("device sized for the variant run");
    }
    fs.sync(node, Phase::CacheControl);
    fs.drop_caches();

    let mut verified = true;
    for (name, raw_sum, lo, hi) in &names {
        let encoded = read_chunked(node, &mut fs, name, cfg.chunk_bytes, Phase::Read)
            .expect("snapshot readable");
        let decoded = match codec.decode(&encoded) {
            Some(d) => d,
            None => {
                verified = false;
                continue;
            }
        };
        node.execute(
            codec_cost.decode_activity(decoded.len() as u64),
            Phase::Read,
        );
        match choice {
            CodecChoice::Lossless => {
                if fnv1a(&decoded) != *raw_sum {
                    verified = false;
                }
            }
            CodecChoice::Quantized => {
                // The decoded field must stay within the quantizer's bound
                // of the value range recorded at write time.
                let bound = Quant16::max_error(hi - lo) * 1.001;
                for chunk in decoded.chunks_exact(8) {
                    let v = f64::from_le_bytes(chunk.try_into().expect("chunks_exact"));
                    if v < lo - bound || v > hi + bound {
                        verified = false;
                    }
                }
            }
        }
        let grid =
            Grid::from_bytes(cfg.grid_nx, cfg.grid_ny, &decoded).expect("decoded snapshot shape");
        node.execute(cfg.render_cost.activity(pixels), Phase::Visualization);
        let _ = render_field(&grid, &cfg.render);
    }
    finish(
        Variant::CompressedPost { codec: choice },
        node,
        written,
        raw,
        verified,
    )
}

fn dvfs_insitu(node: &mut Node, cfg: &PipelineConfig, freq_scale: f64) -> VariantOutput {
    // Re-clock only the simulation activity: the cost model runs against a
    // scaled CPU. (I/O stages are disk-bound and unaffected by core clocks.)
    let scaled_spec = {
        let mut s = node.spec().clone();
        s.cpu = s.cpu.with_freq_scale(freq_scale);
        s
    };
    let scaled_node_template = Node::new(scaled_spec);
    let mut fs = FileSystem::format(
        MemBlockDevice::with_capacity_bytes(cfg.device_bytes),
        FsConfig::default(),
    );
    let mut solver = HeatSolver::new(initial_field(cfg), cfg.solver.clone())
        .expect("library-built solver config");
    let cells = (cfg.grid_nx * cfg.grid_ny) as u64;
    let pixels = (cfg.render.width * cfg.render.height) as u64;
    let mut written = 0u64;
    let mut raw = 0u64;

    for step in 1..=cfg.timesteps {
        solver.step();
        // Charge the sim step at the scaled clock: compute the scaled cost
        // and replay it on this node as an explicit (duration, draw) span.
        let (secs, draw) = scaled_node_template.cost_of(cfg.sim_cost.activity(cells));
        node.execute_raw(secs, draw, Phase::Simulation);
        if step % cfg.io_interval != 0 {
            continue;
        }
        raw += cfg.snapshot_bytes();
        node.execute(cfg.render_cost.activity(pixels), Phase::Visualization);
        let image = render_field(solver.grid(), &cfg.render);
        let ppm = encode_ppm(&image);
        written += write_chunked(
            node,
            &mut fs,
            &format!("frame{step:04}.ppm"),
            &ppm,
            cfg.chunk_bytes,
            Phase::ImageWrite,
        )
        .expect("device sized for the variant run");
    }
    fs.sync(node, Phase::CacheControl);
    fs.drop_caches();
    finish(Variant::DvfsSim { freq_scale }, node, written, raw, true)
}

fn image_database(node: &mut Node, cfg: &PipelineConfig, views: usize) -> VariantOutput {
    assert!(views >= 1, "need at least one view");
    let mut fs = FileSystem::format(
        MemBlockDevice::with_capacity_bytes(cfg.device_bytes),
        FsConfig::default(),
    );
    let mut solver = HeatSolver::new(initial_field(cfg), cfg.solver.clone())
        .expect("library-built solver config");
    let cells = (cfg.grid_nx * cfg.grid_ny) as u64;
    let pixels = (cfg.render.width * cfg.render.height) as u64;
    let mut written = 0u64;
    let mut raw = 0u64;

    for step in 1..=cfg.timesteps {
        solver.step();
        node.execute(cfg.sim_cost.activity(cells), Phase::Simulation);
        if step % cfg.io_interval != 0 {
            continue;
        }
        raw += cfg.snapshot_bytes();
        for view in 0..views {
            // Each "camera" renders a different normalization window — a
            // stand-in for viewpoint/transfer-function variation that keeps
            // every image genuinely distinct.
            let t = view as f64 / views as f64;
            let opts = RenderOptions {
                range: Some((0.0 - 0.2 * t, 1.0 - 0.5 * t)),
                ..cfg.render
            };
            node.execute(cfg.render_cost.activity(pixels), Phase::Visualization);
            let image = render_field(solver.grid(), &opts);
            let ppm = encode_ppm(&image);
            written += write_chunked(
                node,
                &mut fs,
                &format!("frame{step:04}.v{view:02}.ppm"),
                &ppm,
                cfg.chunk_bytes,
                Phase::ImageWrite,
            )
            .expect("device sized for the variant run");
        }
    }
    fs.sync(node, Phase::CacheControl);
    fs.drop_caches();
    finish(Variant::ImageDatabase { views }, node, written, raw, true)
}

fn burst_buffer_post(node: &mut Node, cfg: &PipelineConfig, buffer_bytes: u64) -> VariantOutput {
    use greenness_storage::BurstBuffer;
    let mut fs = FileSystem::format(
        MemBlockDevice::with_capacity_bytes(cfg.device_bytes),
        FsConfig::default(),
    );
    let mut bb = BurstBuffer::new(buffer_bytes);
    let mut solver = HeatSolver::new(initial_field(cfg), cfg.solver.clone())
        .expect("library-built solver config");
    let cells = (cfg.grid_nx * cfg.grid_ny) as u64;
    let pixels = (cfg.render.width * cfg.render.height) as u64;
    let mut raw = 0u64;
    let mut names: Vec<(String, u64)> = Vec::new();

    for step in 1..=cfg.timesteps {
        solver.step();
        node.execute(cfg.sim_cost.activity(cells), Phase::Simulation);
        if step % cfg.io_interval != 0 {
            continue;
        }
        let bytes = solver.grid().to_bytes();
        raw += bytes.len() as u64;
        let name = format!("snap{step:04}");
        names.push((name.clone(), fnv1a(&bytes)));
        bb.stage(node, &mut fs, &name, &bytes, Phase::Write)
            .expect("buffer sized");
    }
    // End of phase 1: drain the tier, then the paper's sync + drop.
    bb.drain_all(node, &mut fs, Phase::Write).expect("drain");
    let written = bb.drained_bytes();
    fs.sync(node, Phase::CacheControl);
    fs.drop_caches();

    let mut verified = true;
    for (name, sum) in &names {
        let size = fs.size(name).expect("drained snapshot exists");
        let bytes = fs.read(node, name, 0, size, Phase::Read).expect("readable");
        if fnv1a(&bytes) != *sum {
            verified = false;
        }
        let grid = Grid::from_bytes(cfg.grid_nx, cfg.grid_ny, &bytes)
            .expect("snapshot has the configured shape");
        node.execute(cfg.render_cost.activity(pixels), Phase::Visualization);
        let _ = render_field(&grid, &cfg.render);
    }
    finish(
        Variant::BurstBufferPost { buffer_bytes },
        node,
        written,
        raw,
        verified,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentSetup;
    use crate::pipeline::{self, PipelineKind};
    use greenness_platform::HardwareSpec;

    fn cfg() -> PipelineConfig {
        let mut c = PipelineConfig::small(1);
        c.timesteps = 8;
        c
    }

    fn run_on_fresh(variant: Variant) -> VariantOutput {
        let mut node = Node::new(HardwareSpec::table1());
        run_variant(variant, &mut node, &cfg())
    }

    fn baseline_post() -> (f64, f64) {
        let r = crate::experiment::run(
            PipelineKind::PostProcessing,
            &cfg(),
            &ExperimentSetup {
                monitoring_overhead_w: 0.0,
                ..ExperimentSetup::noiseless()
            },
        )
        .expect("run ok");
        (r.metrics.energy_j, r.metrics.execution_time_s)
    }

    #[test]
    fn sampling_cuts_io_volume_and_energy() {
        let (post_e, post_t) = baseline_post();
        let v = run_on_fresh(Variant::SampledPost { stride: 4 });
        assert!(v.verified);
        assert!(v.reduction_factor() > 10.0, "got {}", v.reduction_factor());
        assert!(v.energy_j < post_e, "{} !< {post_e}", v.energy_j);
        assert!(v.execution_time_s < post_t);
    }

    #[test]
    fn lossless_compression_verifies_but_barely_pays() {
        // The honest finding: with fsync-dominated chunk writes, a ~1.1x
        // lossless reduction rarely removes a whole chunk, so energy is at
        // best flat (and the codec CPU makes it slightly worse). This is
        // exactly why scientific compressors (ZFP/SZ) are lossy.
        let (post_e, _) = baseline_post();
        let v = run_on_fresh(Variant::CompressedPost {
            codec: CodecChoice::Lossless,
        });
        assert!(v.verified, "lossless round trip failed");
        assert!(v.reduction_factor() > 1.05, "got {}", v.reduction_factor());
        assert!(v.energy_j < post_e * 1.03, "{} vs {post_e}", v.energy_j);
    }

    #[test]
    fn quantized_compression_shrinks_more_and_saves_energy() {
        let (post_e, _) = baseline_post();
        let lossless = run_on_fresh(Variant::CompressedPost {
            codec: CodecChoice::Lossless,
        });
        let quant = run_on_fresh(Variant::CompressedPost {
            codec: CodecChoice::Quantized,
        });
        assert!(quant.verified, "quantized values escaped the error bound");
        assert!(quant.bytes_written < lossless.bytes_written);
        assert!(
            quant.reduction_factor() > 3.0,
            "got {}",
            quant.reduction_factor()
        );
        assert!(quant.energy_j < post_e, "{} vs {post_e}", quant.energy_j);
    }

    #[test]
    fn dvfs_trades_time_for_power() {
        let full = run_on_fresh(Variant::DvfsSim { freq_scale: 1.0 });
        let slow = run_on_fresh(Variant::DvfsSim { freq_scale: 0.6 });
        assert!(slow.execution_time_s > full.execution_time_s);
        let p_full = full.energy_j / full.execution_time_s;
        let p_slow = slow.energy_j / slow.execution_time_s;
        assert!(p_slow < p_full, "slowing down must cut average power");
    }

    #[test]
    fn dvfs_at_full_clock_matches_plain_insitu() {
        let mut node = Node::new(HardwareSpec::table1());
        let insitu = pipeline::run(PipelineKind::InSitu, &mut node, &cfg()).expect("run ok");
        let v = run_on_fresh(Variant::DvfsSim { freq_scale: 1.0 });
        // Identical organization; DVFS variant skips the in-situ MemTraffic
        // hand-off charge, which is sub-millisecond.
        assert!(
            (v.execution_time_s - node.now().as_secs_f64()).abs() < 0.05,
            "{} vs {}",
            v.execution_time_s,
            node.now().as_secs_f64()
        );
        assert_eq!(v.bytes_written, insitu.bytes_written);
    }

    #[test]
    fn burst_buffer_keeps_raw_data_and_beats_plain_post_processing() {
        let (post_e, post_t) = baseline_post();
        let v = run_on_fresh(Variant::BurstBufferPost {
            buffer_bytes: 64 * 1024 * 1024,
        });
        assert!(v.verified, "burst-buffered snapshots corrupted");
        assert_eq!(v.bytes_written, v.raw_bytes, "all raw data must survive");
        // At this reduced scale only the write phase crosses the burst
        // buffer's win threshold (reads stay below the sequential-readahead
        // cutoff); the full-scale case is pinned in tests/extensions.rs.
        assert!(v.energy_j < post_e * 0.95, "{} vs {post_e}", v.energy_j);
        assert!(v.execution_time_s < post_t * 0.95);
    }

    #[test]
    fn tiny_burst_buffer_still_verifies_under_pressure() {
        // Buffer smaller than the run's output forces mid-run drains.
        let mut cfg = cfg();
        cfg.timesteps = 6;
        let mut node = Node::new(HardwareSpec::table1());
        let v = run_variant(
            Variant::BurstBufferPost {
                buffer_bytes: 64 * 1024,
            },
            &mut node,
            &cfg,
        );
        assert!(v.verified);
        assert_eq!(v.bytes_written, v.raw_bytes);
    }

    #[test]
    fn image_database_scales_with_views() {
        let one = run_on_fresh(Variant::ImageDatabase { views: 1 });
        let four = run_on_fresh(Variant::ImageDatabase { views: 4 });
        assert_eq!(four.bytes_written, 4 * one.bytes_written);
        assert!(four.energy_j > one.energy_j);
        // The marginal cost per extra view is roughly constant: total cost
        // is affine in the view count.
        let marginal = (four.energy_j - one.energy_j) / 3.0;
        let eight = run_on_fresh(Variant::ImageDatabase { views: 8 });
        let predicted = four.energy_j + 4.0 * marginal;
        assert!(
            (eight.energy_j - predicted).abs() < 0.05 * predicted,
            "8 views {} vs predicted {predicted}",
            eight.energy_j
        );
    }
}
