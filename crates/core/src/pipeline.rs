//! The visualization pipelines (Figure 2).
//!
//! Both pipelines drive the *same* solver, storage stack, and renderer over
//! the *same* node; they differ only in where the visualization stage gets
//! its data — which is exactly the comparison the paper isolates:
//!
//! * **post-processing** (Fig. 2a): every I/O step serializes the field and
//!   writes it to disk in 128 KiB fsync'd chunks; after the simulation
//!   finishes (and a `sync; drop_caches`, §IV-C), a second phase reads every
//!   snapshot back chunk-by-chunk and renders it;
//! * **in-situ** (Fig. 2b): every I/O step renders straight from the
//!   solver's memory and persists only the (much smaller) image;
//! * **in-transit** (extension, after Bennett et al., the paper's ref [10]):
//!   every I/O step ships the raw snapshot to a staging node over the NIC
//!   and does no local rendering. Only the compute-node side is metered,
//!   matching the single-node scope of the paper.
//!
//! Data honesty: snapshots are real solver output; the post-processing
//! pipeline re-renders from the bytes it reads back from the simulated disk
//! and *verifies* them against a checksum taken at write time, so any
//! storage-stack corruption fails loudly.

use greenness_faults::{FaultPlan, Site};
use greenness_heatsim::{Grid, HeatSolver, SolverError};
use greenness_platform::{Activity, Node, Phase};
use greenness_storage::{FileSystem, FsConfig, FsError, MemBlockDevice};
use greenness_trace::Value;
use greenness_viz::{encode_ppm, render_field, Framebuffer};

use crate::config::PipelineConfig;

/// Why a pipeline run could not complete. All of these are reachable from
/// caller-supplied configuration (and, through the serve layer, from network
/// requests), so they are reported as values instead of panics — the
/// "no panic on request paths" invariant the deny test in
/// `tests/no_panic_paths.rs` pins.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The solver rejected its configuration (unstable CFL, bad source…).
    Solver(SolverError),
    /// A storage operation failed terminally: the device is too small for
    /// the workload, a snapshot vanished, or the fsync retry budget ran out.
    Storage {
        /// What the pipeline was doing (`"write"`, `"fsync"`, `"read"`…).
        op: &'static str,
        /// The filesystem's error.
        source: FsError,
    },
    /// A read-back snapshot did not have the configured grid shape.
    CorruptSnapshot {
        /// The snapshot file name.
        name: String,
    },
    /// A caller-supplied parameter was out of range.
    Config(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Solver(e) => write!(f, "solver config rejected: {e}"),
            PipelineError::Storage { op, source } => {
                write!(f, "storage {op} failed: {source}")
            }
            PipelineError::CorruptSnapshot { name } => {
                write!(
                    f,
                    "snapshot '{name}' does not match the configured grid shape"
                )
            }
            PipelineError::Config(msg) => write!(f, "bad pipeline parameter: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<SolverError> for PipelineError {
    fn from(e: SolverError) -> Self {
        PipelineError::Solver(e)
    }
}

/// Which pipeline organization to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineKind {
    /// Simulate → write raw data → read back → visualize (Fig. 2a).
    PostProcessing,
    /// Simulate → visualize in memory → write images (Fig. 2b).
    InSitu,
    /// Simulate → ship raw data to a staging node (extension).
    InTransit,
}

impl PipelineKind {
    /// Label used in reports ("Traditional" is the paper's term for
    /// post-processing in Figures 7–11).
    pub fn label(self) -> &'static str {
        match self {
            PipelineKind::PostProcessing => "Traditional",
            PipelineKind::InSitu => "In-situ",
            PipelineKind::InTransit => "In-transit",
        }
    }
}

impl std::str::FromStr for PipelineKind {
    type Err = String;

    /// Parse the names used across the CLI and the serve protocol:
    /// `post`/`post-processing`/`traditional`, `insitu`/`in-situ`, and
    /// `intransit`/`in-transit` (case-insensitive).
    fn from_str(s: &str) -> Result<PipelineKind, String> {
        match s.to_ascii_lowercase().as_str() {
            "post" | "post-processing" | "postprocessing" | "traditional" => {
                Ok(PipelineKind::PostProcessing)
            }
            "insitu" | "in-situ" => Ok(PipelineKind::InSitu),
            "intransit" | "in-transit" => Ok(PipelineKind::InTransit),
            other => Err(format!(
                "unknown pipeline '{other}' (expected post|insitu|intransit)"
            )),
        }
    }
}

/// A rendered frame and the timestep it shows.
#[derive(Debug, Clone)]
pub struct FrameRecord {
    /// The solver timestep the frame renders.
    pub step: u64,
    /// The image.
    pub image: Framebuffer,
}

/// What a pipeline run produced (beyond the node's power timeline).
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Which pipeline ran.
    pub kind: PipelineKind,
    /// Useful work performed (cell updates).
    pub work_units: f64,
    /// Timesteps that performed I/O + visualization.
    pub io_steps: u64,
    /// Raw bytes written to the filesystem.
    pub bytes_written: u64,
    /// Raw bytes read back from the filesystem.
    pub bytes_read: u64,
    /// Rendered frames (only if `keep_frames` was set).
    pub frames: Vec<FrameRecord>,
    /// Post-processing only: every read-back snapshot matched its write-time
    /// checksum.
    pub verified: bool,
}

/// FNV-1a, for cheap snapshot checksums.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

pub(crate) fn write_chunked(
    node: &mut Node,
    fs: &mut FileSystem<MemBlockDevice>,
    name: &str,
    data: &[u8],
    chunk: usize,
    phase: Phase,
) -> Result<u64, PipelineError> {
    let mut off = 0usize;
    while off < data.len() {
        let end = (off + chunk).min(data.len());
        fs.write(node, name, off as u64, &data[off..end], phase)
            .map_err(|source| PipelineError::Storage {
                op: "write",
                source,
            })?;
        // Transient fsync faults (when a schedule is installed) are retried
        // with backoff inside the filesystem; only budget exhaustion or a
        // genuine metadata error surfaces, and either is terminal here.
        fs.fsync_with_retry(node, name, phase)
            .map_err(|source| PipelineError::Storage {
                op: "fsync",
                source,
            })?;
        off = end;
    }
    Ok(data.len() as u64)
}

pub(crate) fn read_chunked(
    node: &mut Node,
    fs: &mut FileSystem<MemBlockDevice>,
    name: &str,
    chunk: usize,
    phase: Phase,
) -> Result<Vec<u8>, PipelineError> {
    let size = fs
        .size(name)
        .map_err(|source| PipelineError::Storage { op: "stat", source })?;
    let mut out = Vec::with_capacity(size as usize);
    let mut off = 0u64;
    while off < size {
        let part = fs
            .read(node, name, off, chunk as u64, phase)
            .map_err(|source| PipelineError::Storage { op: "read", source })?;
        off += part.len() as u64;
        out.extend_from_slice(&part);
    }
    Ok(out)
}

/// Run the chosen pipeline over `node`. The node accumulates the power
/// timeline; the returned output carries the data-side results.
///
/// # Errors
/// [`PipelineError`] when the solver rejects its configuration, the device
/// is too small for the workload, or a read-back snapshot is malformed.
pub fn run(
    kind: PipelineKind,
    node: &mut Node,
    cfg: &PipelineConfig,
) -> Result<PipelineOutput, PipelineError> {
    run_with_faults(kind, node, cfg, None)
}

/// [`run`] with a seeded storage-fault schedule: transient fsync errors are
/// injected per the plan and retried with exponential backoff, so a flaky
/// disk stretches the run (real static energy) instead of changing its
/// output. `None` is exactly the fault-free fast path.
///
/// # Errors
/// Same conditions as [`run`].
pub fn run_with_faults(
    kind: PipelineKind,
    node: &mut Node,
    cfg: &PipelineConfig,
    faults: Option<FaultPlan>,
) -> Result<PipelineOutput, PipelineError> {
    if cfg.io_interval == 0 {
        return Err(PipelineError::Config(
            "io_interval must be at least 1".to_string(),
        ));
    }
    let mut fs = FileSystem::format(
        MemBlockDevice::with_capacity_bytes(cfg.device_bytes),
        FsConfig::default(),
    );
    fs.set_fault_injector(faults.map(|plan| plan.injector(Site::StorageFsync, 0)));
    let initial = Grid::from_fn(cfg.grid_nx, cfg.grid_ny, |x, y| {
        // A warm Gaussian patch on a cold plate.
        0.3 * (-((x - 0.5).powi(2) + (y - 0.4).powi(2)) * 40.0).exp()
    });
    let mut solver = HeatSolver::new(initial, cfg.solver.clone())?;
    let cells = (cfg.grid_nx * cfg.grid_ny) as u64;
    let pixels = (cfg.render.width * cfg.render.height) as u64;

    let mut out = PipelineOutput {
        kind,
        work_units: cfg.work_units(),
        io_steps: 0,
        bytes_written: 0,
        bytes_read: 0,
        frames: Vec::new(),
        verified: true,
    };
    let mut checksums: Vec<(String, u64, u64)> = Vec::new();

    // ---- Phase 1: simulation (+ per-step I/O or in-situ visualization) ----
    for step in 1..=cfg.timesteps {
        solver.step();
        node.tracer().count("solver.steps", 1);
        node.execute(cfg.sim_cost.activity(cells), Phase::Simulation);
        if step % cfg.io_interval != 0 {
            continue;
        }
        out.io_steps += 1;
        match kind {
            PipelineKind::PostProcessing => {
                let bytes = solver.grid().to_bytes();
                let name = format!("snap{step:04}");
                checksums.push((name.clone(), step, fnv1a(&bytes)));
                out.bytes_written +=
                    write_chunked(node, &mut fs, &name, &bytes, cfg.chunk_bytes, Phase::Write)?;
            }
            PipelineKind::InSitu => {
                // Hand the live field to the renderer (in-memory).
                node.execute(
                    Activity::MemTraffic {
                        bytes: cfg.snapshot_bytes(),
                    },
                    Phase::Visualization,
                );
                node.execute(cfg.render_cost.activity(pixels), Phase::Visualization);
                let image = render_field(solver.grid(), &cfg.render);
                let ppm = encode_ppm(&image);
                out.bytes_written += write_chunked(
                    node,
                    &mut fs,
                    &format!("frame{step:04}.ppm"),
                    &ppm,
                    cfg.chunk_bytes,
                    Phase::ImageWrite,
                )?;
                if cfg.keep_frames {
                    out.frames.push(FrameRecord { step, image });
                }
            }
            PipelineKind::InTransit => {
                let bytes = solver.grid().to_bytes();
                let messages = bytes.len().div_ceil(cfg.chunk_bytes) as u32;
                node.execute(
                    Activity::NetTransfer {
                        bytes: bytes.len() as u64,
                        messages,
                    },
                    Phase::Network,
                );
                out.bytes_written += bytes.len() as u64;
            }
        }
    }

    // §IV-C: sync and drop caches between phases.
    fs.sync(node, Phase::CacheControl);
    let evicted = fs.drop_caches();
    if node.tracer().is_on() {
        node.tracer().instant(
            node.now().as_nanos(),
            "cache.drop",
            vec![("evicted", Value::from(evicted))],
        );
        fs.publish_cache_counters(node);
    }

    // ---- Phase 2 (post-processing only): read back and visualize ----
    if kind == PipelineKind::PostProcessing {
        for (name, step, checksum) in &checksums {
            let bytes = read_chunked(node, &mut fs, name, cfg.chunk_bytes, Phase::Read)?;
            out.bytes_read += bytes.len() as u64;
            if fnv1a(&bytes) != *checksum {
                out.verified = false;
            }
            let grid = Grid::from_bytes(cfg.grid_nx, cfg.grid_ny, &bytes)
                .ok_or_else(|| PipelineError::CorruptSnapshot { name: name.clone() })?;
            node.execute(cfg.render_cost.activity(pixels), Phase::Visualization);
            let image = render_field(&grid, &cfg.render);
            if cfg.keep_frames {
                out.frames.push(FrameRecord { step: *step, image });
            }
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_platform::HardwareSpec;

    fn run_small(kind: PipelineKind, interval: u64) -> (Node, PipelineOutput) {
        let mut node = Node::new(HardwareSpec::table1());
        let cfg = PipelineConfig::small(interval);
        let out = run(kind, &mut node, &cfg).expect("small config runs");
        (node, out)
    }

    #[test]
    fn post_processing_has_all_four_phases() {
        let (node, out) = run_small(PipelineKind::PostProcessing, 1);
        let tl = node.timeline();
        for phase in [
            Phase::Simulation,
            Phase::Write,
            Phase::Read,
            Phase::Visualization,
        ] {
            assert!(!tl.phase_duration(phase).is_zero(), "{phase} missing");
        }
        assert!(
            out.verified,
            "read-back snapshots must match write-time checksums"
        );
        assert_eq!(out.io_steps, 10);
        assert_eq!(out.bytes_read, out.bytes_written);
    }

    #[test]
    fn insitu_has_no_read_phase_and_writes_only_images() {
        let (node, out) = run_small(PipelineKind::InSitu, 1);
        let tl = node.timeline();
        assert!(tl.phase_duration(Phase::Read).is_zero());
        assert!(tl.phase_duration(Phase::Write).is_zero());
        assert!(!tl.phase_duration(Phase::ImageWrite).is_zero());
        assert!(!tl.phase_duration(Phase::Visualization).is_zero());
        assert_eq!(out.bytes_read, 0);
        assert_eq!(
            out.bytes_written,
            10 * greenness_viz::image::ppm_size_bytes(64, 64)
        );
    }

    #[test]
    fn intransit_only_computes_and_ships() {
        let (node, out) = run_small(PipelineKind::InTransit, 1);
        let tl = node.timeline();
        assert!(!tl.phase_duration(Phase::Network).is_zero());
        assert!(tl.phase_duration(Phase::Visualization).is_zero());
        assert!(tl.phase_duration(Phase::Write).is_zero());
        assert_eq!(out.bytes_written, 10 * 64 * 64 * 8);
    }

    #[test]
    fn io_interval_scales_io_work() {
        let (_, every) = run_small(PipelineKind::PostProcessing, 1);
        let (_, eighth) = run_small(PipelineKind::PostProcessing, 8);
        assert_eq!(every.io_steps, 10);
        assert_eq!(eighth.io_steps, 1);
        assert!(eighth.bytes_written < every.bytes_written / 5);
    }

    #[test]
    fn insitu_beats_post_processing_on_time_and_energy() {
        let (post_node, _) = run_small(PipelineKind::PostProcessing, 1);
        let (insitu_node, _) = run_small(PipelineKind::InSitu, 1);
        assert!(insitu_node.now() < post_node.now());
        assert!(insitu_node.timeline().total_energy_j() < post_node.timeline().total_energy_j());
    }

    #[test]
    fn both_pipelines_render_identical_frames() {
        let mut cfg = PipelineConfig::small(2);
        cfg.keep_frames = true;
        let mut a = Node::new(HardwareSpec::table1());
        let post = run(PipelineKind::PostProcessing, &mut a, &cfg).expect("post runs");
        let mut b = Node::new(HardwareSpec::table1());
        let insitu = run(PipelineKind::InSitu, &mut b, &cfg).expect("insitu runs");
        assert_eq!(post.frames.len(), insitu.frames.len());
        for (p, i) in post.frames.iter().zip(&insitu.frames) {
            assert_eq!(p.step, i.step);
            assert_eq!(
                p.image, i.image,
                "frame {} differs between pipelines",
                p.step
            );
        }
    }

    #[test]
    fn undersized_device_is_an_error_not_a_panic() {
        let mut cfg = PipelineConfig::small(1);
        cfg.device_bytes = 16 * 1024;
        let mut node = Node::new(HardwareSpec::table1());
        let err = run(PipelineKind::PostProcessing, &mut node, &cfg).expect_err("device too small");
        assert!(matches!(err, PipelineError::Storage { .. }), "{err}");
        assert!(err.to_string().contains("storage"));
    }

    #[test]
    fn zero_io_interval_is_an_error_not_a_divide_by_zero() {
        let mut cfg = PipelineConfig::small(1);
        cfg.io_interval = 0;
        let mut node = Node::new(HardwareSpec::table1());
        let err = run(PipelineKind::InSitu, &mut node, &cfg).expect_err("bad interval");
        assert!(matches!(err, PipelineError::Config(_)), "{err}");
    }

    #[test]
    fn simulation_work_is_identical_across_pipelines() {
        let (post_node, post) = run_small(PipelineKind::PostProcessing, 1);
        let (insitu_node, insitu) = run_small(PipelineKind::InSitu, 1);
        assert_eq!(post.work_units, insitu.work_units);
        let sim_post = post_node.timeline().phase_duration(Phase::Simulation);
        let sim_insitu = insitu_node.timeline().phase_duration(Phase::Simulation);
        assert_eq!(sim_post, sim_insitu);
    }
}
