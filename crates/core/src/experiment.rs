//! Instrumented experiment runs.
//!
//! One experiment = one pipeline on one *fresh* node with the paper's
//! measurement rig attached: the Wattsup wall meter out-of-band, RAPL polled
//! on-node at 1 Hz with the measured +0.2 W overhead (§IV-B). Everything
//! needed by the figures comes back in one [`PipelineReport`].

use greenness_faults::FaultPlan;
use greenness_platform::{HardwareSpec, Node, Phase, SimDuration, Timeline};
use greenness_power::{GreenMetrics, PowerProfile, WattsupMeter};
use greenness_trace::{MetricsRegistry, Tracer, Value};

use crate::config::PipelineConfig;
use crate::pipeline::{self, PipelineError, PipelineKind, PipelineOutput};

/// The measurement rig and hardware for a run.
#[derive(Debug, Clone)]
pub struct ExperimentSetup {
    /// The node under test.
    pub spec: HardwareSpec,
    /// Wall meter configuration (noise, cadence, seed).
    pub meter: WattsupMeter,
    /// On-node monitoring overhead, watts (paper: +0.2 W at 1 Hz RAPL).
    pub monitoring_overhead_w: f64,
    /// Record an event journal + metrics registry for the run (the
    /// `greenness-trace` observability layer). Off by default; tracing is
    /// deterministic but costs allocation per event.
    pub trace: bool,
    /// Seeded storage-fault schedule (transient fsync errors, retried with
    /// backoff inside the run). `None` — the default — is the untouched
    /// fault-free fast path.
    pub faults: Option<FaultPlan>,
}

impl Default for ExperimentSetup {
    fn default() -> Self {
        ExperimentSetup {
            spec: HardwareSpec::table1(),
            meter: WattsupMeter::default(),
            monitoring_overhead_w: 0.2,
            trace: false,
            faults: None,
        }
    }
}

impl ExperimentSetup {
    /// A noise-free rig for exact regression tests.
    pub fn noiseless() -> Self {
        ExperimentSetup {
            meter: WattsupMeter::noiseless(),
            ..Self::default()
        }
    }
}

/// Per-phase accounting row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseRow {
    /// The pipeline stage.
    pub phase: Phase,
    /// Time spent in it.
    pub duration: SimDuration,
    /// Share of total execution time, percent (Figure 4's quantity).
    pub time_pct: f64,
    /// Full-system energy it consumed, joules.
    pub energy_j: f64,
    /// Its average full-system power, watts.
    pub avg_power_w: f64,
}

/// Everything one instrumented run produced.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Which pipeline ran.
    pub kind: PipelineKind,
    /// Workload label ("case study 1").
    pub config_label: String,
    /// The Figure 7–11 quantities.
    pub metrics: GreenMetrics,
    /// The sampled Figure 5-style profile (system / package / DRAM).
    pub profile: PowerProfile,
    /// The exact power history (for downstream analyses).
    pub timeline: Timeline,
    /// Data-side results (bytes moved, frames, verification).
    pub output: PipelineOutput,
    /// The run's event journal (headerless JSONL, `greenness-trace/v1`
    /// events) when [`ExperimentSetup::trace`] was set.
    pub journal: Option<String>,
    /// The run's metrics registry (counters, gauges, per-phase snapshots)
    /// when [`ExperimentSetup::trace`] was set.
    pub trace_metrics: Option<MetricsRegistry>,
}

impl PipelineReport {
    /// Per-phase accounting over the run, Figure-4 style.
    pub fn phase_rows(&self) -> Vec<PhaseRow> {
        let total = self.timeline.end().as_secs_f64().max(1e-300);
        self.timeline
            .phase_breakdown()
            .into_iter()
            .map(|(phase, duration)| PhaseRow {
                phase,
                duration,
                time_pct: duration.as_secs_f64() / total * 100.0,
                energy_j: self.timeline.phase_energy(phase).system_j(),
                avg_power_w: self.timeline.phase_average_power_w(phase),
            })
            .collect()
    }

    /// Share of execution time spent in `phase`, percent.
    pub fn time_pct(&self, phase: Phase) -> f64 {
        self.phase_rows()
            .iter()
            .find(|r| r.phase == phase)
            .map_or(0.0, |r| r.time_pct)
    }
}

/// Run `kind` over `cfg` on a fresh instrumented node.
///
/// # Errors
/// Propagates [`PipelineError`] from the pipeline run — the serve layer maps
/// it into a protocol error envelope instead of panicking.
pub fn run(
    kind: PipelineKind,
    cfg: &PipelineConfig,
    setup: &ExperimentSetup,
) -> Result<PipelineReport, PipelineError> {
    let mut node = Node::new(setup.spec.clone());
    node.set_monitoring_overhead_w(setup.monitoring_overhead_w);
    if setup.trace {
        let tracer = Tracer::jsonl();
        tracer.begin(
            0,
            "run",
            vec![
                ("pipeline", Value::from(kind.label())),
                ("config", Value::from(cfg.label.as_str())),
            ],
        );
        node.set_tracer(tracer);
    }
    let output = pipeline::run_with_faults(kind, &mut node, cfg, setup.faults)?;
    node.finish_trace();
    let tracer = node.tracer().clone();
    let timeline = node.into_timeline();
    let metrics = GreenMetrics::from_timeline(&timeline, cfg.work_units());
    let end_ns = timeline.end().as_nanos();
    if tracer.is_on() {
        tracer.begin(end_ns, "measure", Vec::new());
    }
    let profile = PowerProfile::measure_traced(&timeline, &setup.meter, &tracer);
    if tracer.is_on() {
        tracer.end(end_ns, "measure", Vec::new());
        dump_timeline(&tracer, &timeline, end_ns);
        tracer.gauge("run.end_s", timeline.end().as_secs_f64());
        tracer.gauge("energy.system_j", timeline.total_energy_j());
        tracer.snapshot("run");
        tracer.end(end_ns, "run", Vec::new());
    }
    let (journal, trace_metrics) = match tracer.drain() {
        Some(out) => (Some(out.journal), Some(out.metrics)),
        None => (None, None),
    };
    Ok(PipelineReport {
        kind,
        config_label: cfg.label.clone(),
        metrics,
        profile,
        timeline,
        output,
        journal,
        trace_metrics,
    })
}

/// Journal the exact power history: one `segment` event per timeline segment
/// (the ground truth `trace summarize` reconstructs energy from) and one
/// `phase_summary` event per phase with the timeline's own accounting (the
/// figure the reconstruction is audited against).
fn dump_timeline(tracer: &Tracer, timeline: &Timeline, end_ns: u64) {
    for seg in timeline.segments() {
        tracer.instant(
            end_ns,
            "segment",
            vec![
                ("start_ns", Value::from(seg.start.as_nanos())),
                ("dur_ns", Value::from(seg.duration.as_nanos())),
                ("phase", Value::from(seg.phase.label())),
                ("package_w", Value::from(seg.draw.package_w)),
                ("dram_w", Value::from(seg.draw.dram_w)),
                ("disk_w", Value::from(seg.draw.disk_w)),
                ("net_w", Value::from(seg.draw.net_w)),
                ("board_w", Value::from(seg.draw.board_w)),
            ],
        );
    }
    for phase in Phase::ALL {
        let duration = timeline.phase_duration(phase);
        if duration.is_zero() {
            continue;
        }
        let e = timeline.phase_energy(phase);
        tracer.instant(
            end_ns,
            "phase_summary",
            vec![
                ("phase", Value::from(phase.label())),
                ("time_s", Value::from(duration.as_secs_f64())),
                ("package_j", Value::from(e.package_j)),
                ("dram_j", Value::from(e.dram_j)),
                ("disk_j", Value::from(e.disk_j)),
                ("net_j", Value::from(e.net_j)),
                ("board_j", Value::from(e.board_j)),
                ("system_j", Value::from(e.system_j())),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_carries_consistent_metrics() {
        let cfg = PipelineConfig::small(1);
        let r = run(
            PipelineKind::PostProcessing,
            &cfg,
            &ExperimentSetup::noiseless(),
        )
        .expect("run ok");
        assert!((r.metrics.execution_time_s - r.timeline.end().as_secs_f64()).abs() < 1e-9);
        assert!((r.metrics.energy_j - r.timeline.total_energy_j()).abs() < 1e-6);
        // The 1 Hz profile covers the run (minus the partial last second).
        assert!(r.profile.len() as f64 <= r.metrics.execution_time_s + 1.0);
        assert!(r.profile.len() as f64 >= r.metrics.execution_time_s - 1.0);
    }

    #[test]
    fn phase_rows_partition_time_and_energy() {
        let cfg = PipelineConfig::small(2);
        let r = run(
            PipelineKind::PostProcessing,
            &cfg,
            &ExperimentSetup::noiseless(),
        )
        .expect("run ok");
        let rows = r.phase_rows();
        let pct: f64 = rows.iter().map(|x| x.time_pct).sum();
        assert!((pct - 100.0).abs() < 1e-6, "phases cover {pct}%");
        let e: f64 = rows.iter().map(|x| x.energy_j).sum();
        assert!((e - r.metrics.energy_j).abs() < 1e-6);
    }

    #[test]
    fn monitoring_overhead_shows_up_in_energy() {
        let cfg = PipelineConfig::small(1);
        let with = run(PipelineKind::InSitu, &cfg, &ExperimentSetup::noiseless()).expect("run ok");
        let without = run(
            PipelineKind::InSitu,
            &cfg,
            &ExperimentSetup {
                monitoring_overhead_w: 0.0,
                ..ExperimentSetup::noiseless()
            },
        )
        .expect("run ok");
        let dt = with.metrics.execution_time_s;
        let de = with.metrics.energy_j - without.metrics.energy_j;
        assert!(
            (de - 0.2 * dt).abs() < 1e-6,
            "overhead energy {de} J over {dt} s"
        );
    }

    #[test]
    fn traced_runs_carry_journal_and_metrics() {
        let cfg = PipelineConfig::small(1);
        let plain = run(
            PipelineKind::PostProcessing,
            &cfg,
            &ExperimentSetup::noiseless(),
        )
        .expect("run ok");
        assert!(plain.journal.is_none());
        assert!(plain.trace_metrics.is_none());

        let traced = run(
            PipelineKind::PostProcessing,
            &cfg,
            &ExperimentSetup {
                trace: true,
                ..ExperimentSetup::noiseless()
            },
        )
        .expect("run ok");
        let journal = traced.journal.as_deref().expect("journal recorded");
        assert!(journal.starts_with("{\"t_ns\":0,\"ev\":\"begin\",\"name\":\"run\""));
        assert!(journal.contains("\"name\":\"phase_summary\""));
        let m = traced.trace_metrics.as_ref().expect("metrics recorded");
        assert!(m.counter("solver.steps") > 0);
        assert!(m.counter("disk.writes") > 0);
        assert!(m.counter("cache.evictions") > 0);
        // Tracing must not perturb the simulated physics.
        assert_eq!(plain.metrics.energy_j, traced.metrics.energy_j);
        assert_eq!(plain.profile.samples, traced.profile.samples);
    }

    #[test]
    fn storage_faults_stretch_the_run_but_not_its_output() {
        let cfg = PipelineConfig::small(1);
        let clean = run(
            PipelineKind::PostProcessing,
            &cfg,
            &ExperimentSetup::noiseless(),
        )
        .expect("run ok");
        let setup = ExperimentSetup {
            faults: Some(FaultPlan {
                storage_fsync_rate: 0.5,
                ..FaultPlan::with_seed(21)
            }),
            ..ExperimentSetup::noiseless()
        };
        let faulted = run(PipelineKind::PostProcessing, &cfg, &setup).expect("run ok");
        let again = run(PipelineKind::PostProcessing, &cfg, &setup).expect("run ok");
        // Faults and retries cost time and energy but never change the data.
        assert!(faulted.output.verified);
        assert_eq!(faulted.output.bytes_written, clean.output.bytes_written);
        assert_eq!(faulted.output.bytes_read, clean.output.bytes_read);
        assert!(faulted.metrics.execution_time_s > clean.metrics.execution_time_s);
        assert!(faulted.metrics.energy_j > clean.metrics.energy_j);
        // Same seed, same schedule: bit-identical reruns.
        assert_eq!(
            faulted.metrics.energy_j.to_bits(),
            again.metrics.energy_j.to_bits()
        );
    }

    #[test]
    fn seeded_meter_noise_is_reproducible() {
        let cfg = PipelineConfig::small(1);
        let a = run(PipelineKind::InSitu, &cfg, &ExperimentSetup::default()).expect("run ok");
        let b = run(PipelineKind::InSitu, &cfg, &ExperimentSetup::default()).expect("run ok");
        assert_eq!(a.profile.samples, b.profile.samples);
    }
}
