//! The runtime optimization advisor — the paper's future-work system.
//!
//! §VI-A sketches "a runtime system that makes use of our characterization
//! studies … power models that estimate the hard disk power based on the
//! number of disk accesses, size of each access, and the corresponding
//! access pattern. Using this model, the runtime will decide the power
//! optimization technique to be used." This module builds exactly that on
//! top of the calibrated disk model: it estimates the energy of an
//! application's I/O passes under each available technique and recommends
//! one, following the paper's own decision logic (§V-C/§V-D): in-situ when
//! exploration is expendable; data reorganization when the pattern is
//! random and exploration must be kept; data sampling when the budget is
//! dominated by dynamic (data-movement) energy and information loss is
//! acceptable.

use greenness_platform::{AccessPattern, Activity, HardwareSpec, Node};
use serde::{Deserialize, Serialize};

/// How the application touches its dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoBehavior {
    /// Streaming passes.
    Sequential,
    /// Scattered accesses of roughly `op_bytes` each.
    Random {
        /// Typical request size, bytes.
        op_bytes: u64,
    },
}

/// What the runtime knows about the application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Bytes written per output pass (one write + later one read each).
    pub pass_bytes: u64,
    /// Exploratory analysis passes expected over the data's lifetime.
    pub passes: u32,
    /// Access pattern of those passes.
    pub behavior: IoBehavior,
    /// Whether scientists need post-hoc exploration of the raw data.
    pub needs_exploration: bool,
    /// Tolerated data reduction for sampling, as a keep-fraction in `(0, 1]`
    /// (1.0 = no loss tolerated).
    pub min_keep_fraction: f64,
}

/// The techniques the advisor chooses among.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Technique {
    /// Visualize alongside the simulation; write only images.
    InSitu,
    /// Reorganize the data layout so passes become sequential (§V-D).
    Reorganize,
    /// Write a stride/triage-sampled subset (refs [21]–[23]).
    DataSampling {
        /// Fraction of the data kept.
        keep_fraction: f64,
    },
    /// The I/O is already cheap; leave the pipeline alone.
    KeepPostProcessing,
}

/// The advisor's output: per-technique energy estimates and a choice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Advice {
    /// Energy of the application's I/O as-is, joules.
    pub current_io_j: f64,
    /// Energy with in-situ (I/O eliminated; only image output remains —
    /// approximated as 2% of the raw volume, sequential), joules.
    pub insitu_io_j: f64,
    /// One-time reorganization cost, joules.
    pub reorg_cost_j: f64,
    /// Per-pass energy after reorganization, joules.
    pub reorg_pass_j: f64,
    /// Per-pass energy with sampling at the tolerated keep-fraction, joules.
    pub sampling_pass_j: f64,
    /// The recommendation.
    pub technique: Technique,
}

/// Full-system energy of one buffered I/O activity on an otherwise idle
/// node, joules — the advisor's disk power model (access count × size ×
/// pattern), exactly the model §VI-A calls for.
fn io_energy_j(spec: &HardwareSpec, activity: Activity) -> f64 {
    let node = Node::new(spec.clone());
    let (secs, draw) = node.cost_of(activity);
    draw.system_w() * secs
}

fn pass_energy_j(spec: &HardwareSpec, bytes: u64, behavior: IoBehavior) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    let pattern = match behavior {
        IoBehavior::Sequential => AccessPattern::Sequential,
        IoBehavior::Random { op_bytes } => AccessPattern::Random {
            op_bytes,
            queue_depth: 1,
        },
    };
    // One write pass + one read pass per exploration cycle, as in §V-D.
    io_energy_j(
        spec,
        Activity::DiskWrite {
            bytes,
            pattern,
            buffered: true,
        },
    ) + io_energy_j(
        spec,
        Activity::DiskRead {
            bytes,
            pattern,
            buffered: true,
        },
    )
}

/// Estimate all techniques and recommend one.
pub fn recommend(spec: &HardwareSpec, w: &WorkloadProfile) -> Advice {
    assert!(
        w.min_keep_fraction > 0.0 && w.min_keep_fraction <= 1.0,
        "keep fraction must be in (0, 1]"
    );
    let passes = w.passes.max(1) as f64;
    let current_pass_j = pass_energy_j(spec, w.pass_bytes, w.behavior);
    let current_io_j = current_pass_j * passes;

    // In-situ: raw I/O disappears; rendered images ≈ 2% of the raw volume.
    let image_bytes = w.pass_bytes / 50;
    let insitu_io_j = io_energy_j(
        spec,
        Activity::DiskWrite {
            bytes: image_bytes,
            pattern: AccessPattern::Sequential,
            buffered: true,
        },
    ) * passes;

    // Software-directed reorganization (refs [30], [31]) happens at *write*
    // time — the scheduler emits the data in sequential layout — so its cost
    // is one extra sequential streaming pass, not a random defragmentation.
    let reorg_cost_j = match w.behavior {
        IoBehavior::Sequential => 0.0,
        IoBehavior::Random { .. } => io_energy_j(
            spec,
            Activity::DiskWrite {
                bytes: w.pass_bytes,
                pattern: AccessPattern::Sequential,
                buffered: true,
            },
        ),
    };
    let reorg_pass_j = pass_energy_j(spec, w.pass_bytes, IoBehavior::Sequential);

    // Sampling keeps the pattern but shrinks the volume.
    let sampled_bytes = (w.pass_bytes as f64 * w.min_keep_fraction) as u64;
    let sampling_pass_j = pass_energy_j(spec, sampled_bytes, w.behavior);

    let technique = if !w.needs_exploration {
        Technique::InSitu
    } else {
        let keep_total = current_io_j;
        let reorg_total = reorg_cost_j + reorg_pass_j * passes;
        let sampling_total = sampling_pass_j * passes;
        // Among exploration-preserving options, reorganization is preferred
        // over sampling when it wins outright or sampling would lose data
        // without a clear payoff.
        if reorg_total < keep_total * 0.9 && reorg_total <= sampling_total {
            Technique::Reorganize
        } else if w.min_keep_fraction < 1.0 && sampling_total < keep_total * 0.9 {
            Technique::DataSampling {
                keep_fraction: w.min_keep_fraction,
            }
        } else {
            Technique::KeepPostProcessing
        }
    };

    Advice {
        current_io_j,
        insitu_io_j,
        reorg_cost_j,
        reorg_pass_j,
        sampling_pass_j,
        technique,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_platform::units::{GIB, KIB};

    fn spec() -> HardwareSpec {
        HardwareSpec::table1()
    }

    #[test]
    fn no_exploration_means_insitu() {
        let w = WorkloadProfile {
            pass_bytes: GIB,
            passes: 3,
            behavior: IoBehavior::Random { op_bytes: 4 * KIB },
            needs_exploration: false,
            min_keep_fraction: 1.0,
        };
        let a = recommend(&spec(), &w);
        assert_eq!(a.technique, Technique::InSitu);
        assert!(a.insitu_io_j < a.current_io_j / 10.0);
    }

    #[test]
    fn random_exploratory_workload_gets_reorganization() {
        // The §V-D scenario: random I/O, exploration required.
        let w = WorkloadProfile {
            pass_bytes: 4 * GIB,
            passes: 2,
            behavior: IoBehavior::Random { op_bytes: 4 * KIB },
            needs_exploration: true,
            min_keep_fraction: 1.0,
        };
        let a = recommend(&spec(), &w);
        assert_eq!(a.technique, Technique::Reorganize);
        // Reorg amortizes: cost + sequential passes beat random passes.
        assert!(a.reorg_cost_j + a.reorg_pass_j * 2.0 < a.current_io_j);
    }

    #[test]
    fn sequential_workload_is_left_alone() {
        let w = WorkloadProfile {
            pass_bytes: 4 * GIB,
            passes: 5,
            behavior: IoBehavior::Sequential,
            needs_exploration: true,
            min_keep_fraction: 1.0,
        };
        let a = recommend(&spec(), &w);
        assert_eq!(a.technique, Technique::KeepPostProcessing);
        assert_eq!(a.reorg_cost_j, 0.0);
    }

    #[test]
    fn sampling_wins_when_loss_is_tolerated_and_reorg_cannot_help() {
        // Sequential already; only sampling can shrink the sequential cost.
        let w = WorkloadProfile {
            pass_bytes: 4 * GIB,
            passes: 10,
            behavior: IoBehavior::Sequential,
            needs_exploration: true,
            min_keep_fraction: 0.1,
        };
        let a = recommend(&spec(), &w);
        assert_eq!(a.technique, Technique::DataSampling { keep_fraction: 0.1 });
        assert!(a.sampling_pass_j < a.reorg_pass_j);
    }

    #[test]
    fn estimates_scale_with_volume() {
        let small = recommend(
            &spec(),
            &WorkloadProfile {
                pass_bytes: GIB,
                passes: 1,
                behavior: IoBehavior::Sequential,
                needs_exploration: true,
                min_keep_fraction: 1.0,
            },
        );
        let big = recommend(
            &spec(),
            &WorkloadProfile {
                pass_bytes: 4 * GIB,
                passes: 1,
                behavior: IoBehavior::Sequential,
                needs_exploration: true,
                min_keep_fraction: 1.0,
            },
        );
        assert!(big.current_io_j > 3.0 * small.current_io_j);
    }

    #[test]
    #[should_panic(expected = "keep fraction")]
    fn invalid_keep_fraction_is_rejected() {
        let w = WorkloadProfile {
            pass_bytes: GIB,
            passes: 1,
            behavior: IoBehavior::Sequential,
            needs_exploration: true,
            min_keep_fraction: 0.0,
        };
        let _ = recommend(&spec(), &w);
    }
}
