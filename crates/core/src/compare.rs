//! Head-to-head pipeline comparison — Figures 7–11.

use crate::config::PipelineConfig;
use crate::experiment::{run, ExperimentSetup, PipelineReport};
use crate::pipeline::{PipelineError, PipelineKind};

/// Both pipelines run over the same case-study workload.
#[derive(Debug, Clone)]
pub struct CaseComparison {
    /// Case-study number (1–3).
    pub case: u32,
    /// The post-processing ("Traditional") run.
    pub post: PipelineReport,
    /// The in-situ run.
    pub insitu: PipelineReport,
}

impl CaseComparison {
    /// Run case study `n` end-to-end with both pipelines.
    ///
    /// # Errors
    /// Propagates [`PipelineError`] from either run.
    pub fn run_case(n: u32, setup: &ExperimentSetup) -> Result<CaseComparison, PipelineError> {
        Self::run_config(n, &PipelineConfig::case_study(n), setup)
    }

    /// Run both pipelines over an arbitrary workload.
    ///
    /// # Errors
    /// Propagates [`PipelineError`] from either run.
    pub fn run_config(
        n: u32,
        cfg: &PipelineConfig,
        setup: &ExperimentSetup,
    ) -> Result<CaseComparison, PipelineError> {
        Ok(CaseComparison {
            case: n,
            post: run(PipelineKind::PostProcessing, cfg, setup)?,
            insitu: run(PipelineKind::InSitu, cfg, setup)?,
        })
    }

    /// Run several case studies through the parallel sweep executor
    /// (`workers` threads) and return comparisons in case order. Results are
    /// bit-identical for any `workers`, including 1 — see [`crate::sweep`].
    ///
    /// # Errors
    /// Propagates [`crate::sweep::SweepError`] when a grid job panicked or
    /// the grid was malformed.
    pub fn run_cases_parallel(
        cases: &[u32],
        setup: &ExperimentSetup,
        workers: usize,
    ) -> Result<Vec<CaseComparison>, crate::sweep::SweepError> {
        let jobs = crate::sweep::case_grid(setup, cases);
        let results = crate::sweep::run_sweep(jobs, workers, &crate::sweep::silent_progress())?;
        Ok(crate::sweep::comparisons(&results))
    }

    /// Figure 7: execution-time pair `(in-situ, traditional)`, seconds.
    pub fn execution_times_s(&self) -> (f64, f64) {
        (
            self.insitu.metrics.execution_time_s,
            self.post.metrics.execution_time_s,
        )
    }

    /// Figure 8: average-power pair `(in-situ, traditional)`, watts.
    pub fn average_powers_w(&self) -> (f64, f64) {
        (
            self.insitu.metrics.average_power_w,
            self.post.metrics.average_power_w,
        )
    }

    /// Figure 9: peak-power pair `(in-situ, traditional)`, watts.
    pub fn peak_powers_w(&self) -> (f64, f64) {
        (
            self.insitu.metrics.peak_power_w,
            self.post.metrics.peak_power_w,
        )
    }

    /// Figure 10: energy pair `(in-situ, traditional)`, joules.
    pub fn energies_j(&self) -> (f64, f64) {
        (self.insitu.metrics.energy_j, self.post.metrics.energy_j)
    }

    /// Figure 11: efficiency pair normalized to the in-situ run
    /// `(in-situ = 1.0, traditional < 1.0)`.
    pub fn normalized_efficiencies(&self) -> (f64, f64) {
        (
            1.0,
            self.post
                .metrics
                .normalized_efficiency(&self.insitu.metrics),
        )
    }

    /// Headline: percent energy the in-situ pipeline saves (the paper's
    /// 43 / 30 / 18%).
    pub fn energy_savings_pct(&self) -> f64 {
        self.insitu.metrics.energy_reduction_vs(&self.post.metrics)
    }

    /// Percent execution-time reduction from in-situ.
    pub fn time_reduction_pct(&self) -> f64 {
        self.insitu.metrics.time_reduction_vs(&self.post.metrics)
    }

    /// Percent average-power increase of in-situ (the paper's 8 / 5 / 3%).
    pub fn power_increase_pct(&self) -> f64 {
        self.insitu.metrics.power_increase_vs(&self.post.metrics)
    }

    /// Percent efficiency improvement from in-situ (the paper's 22–72%).
    pub fn efficiency_improvement_pct(&self) -> f64 {
        (self
            .insitu
            .metrics
            .normalized_efficiency(&self.post.metrics)
            - 1.0)
            * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_case(interval: u64) -> CaseComparison {
        let cfg = PipelineConfig::small(interval);
        CaseComparison::run_config(1, &cfg, &ExperimentSetup::noiseless()).expect("runs ok")
    }

    #[test]
    fn insitu_wins_energy_and_time_but_draws_more_power() {
        let c = small_case(1);
        assert!(c.energy_savings_pct() > 0.0);
        assert!(c.time_reduction_pct() > 0.0);
        assert!(c.power_increase_pct() > 0.0);
        assert!(c.efficiency_improvement_pct() > 0.0);
    }

    #[test]
    fn peak_power_is_nearly_equal() {
        // Figure 9: "no significant difference in the peak power" — both
        // pipelines peak in the (identical) simulation phase.
        let c = small_case(1);
        let (pi, pt) = c.peak_powers_w();
        assert!((pi - pt).abs() < 1.0, "{pi} vs {pt}");
    }

    #[test]
    fn savings_shrink_as_io_thins() {
        let dense = small_case(1);
        let sparse = small_case(5);
        assert!(
            dense.energy_savings_pct() > sparse.energy_savings_pct(),
            "{} !> {}",
            dense.energy_savings_pct(),
            sparse.energy_savings_pct()
        );
    }

    #[test]
    fn figure_accessors_are_consistent() {
        let c = small_case(2);
        let (ei, et) = c.energies_j();
        assert!((c.energy_savings_pct() - (1.0 - ei / et) * 100.0).abs() < 1e-9);
        let (ni, nt) = c.normalized_efficiencies();
        assert_eq!(ni, 1.0);
        assert!(nt < 1.0);
    }
}
