//! Fixed-width table rendering for the `repro` binary and examples.

/// Render a titled, fixed-width text table. Column widths adapt to content;
/// headers are separated by a rule.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch in table '{title}'");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            // Left-align the first column, right-align numeric columns.
            if i == 0 {
                line.push_str(&format!("{cell:<w$}"));
            } else {
                line.push_str(&format!("{cell:>w$}"));
            }
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule_len));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
    }
    out
}

/// Format a float with `prec` decimals.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Format a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "Demo",
            &["Metric", "A", "B"],
            &[
                vec!["time".into(), "1.0".into(), "22.5".into()],
                vec!["energy".into(), "300".into(), "4".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "Demo");
        assert!(lines[1].contains("Metric"));
        assert!(lines[2].starts_with('-'));
        // All data lines are equally wide.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_are_rejected() {
        let _ = render_table("X", &["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.2345, 2), "1.23");
        assert_eq!(pct(43.21), "43.2%");
    }
}
