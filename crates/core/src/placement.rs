//! The placement sweep: tiered storage × placement policy × workload.
//!
//! The paper's §V-D "reorganization" argument is a statement about *where
//! bytes live*: a random-access visualization against a 7200 rpm disk costs
//! 238.6 kJ where the sequential equivalent costs 4.2 kJ (Table III), so
//! moving the hot working set somewhere cheap-to-seek is worth real energy.
//! This module turns that observation into an experiment grid: every
//! workload (the three case studies, a sequential scan, and a random-access
//! exploratory reader) runs against the same DRAM → NVMe → HDD tier stack
//! under each [`PlacementPolicy`](greenness_storage::PlacementPolicy), and
//! the sweep reports which policy closes the sequential-vs-random cliff.
//!
//! Determinism contract (pinned by `tests/placement_determinism.rs`): job
//! keys are the only seed source — the random reader derives its access
//! stream from its key, fault schedules derive per-job from the sweep plan,
//! and migration decisions are pure functions of (epoch, access stats) — so
//! the journal, metrics, and manifest are byte-identical for any `--jobs`
//! value and across repeated runs with the same `--fault-seed`.

use greenness_faults::{fnv1a64, splitmix64, FaultPlan, Site};
use greenness_platform::{DiskModel, HardwareSpec, Node, Phase};
use greenness_storage::{
    EnergyGreedyPolicy, FileSystem, FreqRecencyPolicy, FsConfig, NoopPolicy, PlacementPolicy,
    TierCounters, TierSpec, TieredStore,
};
use greenness_trace::{escape_json, MetricsRegistry, Tracer, Value};

use greenness_pool::run_pool;

use crate::sweep::{Progress, SweepError};

/// Workload scale: `Small` keeps CI and the golden tests fast; `Paper`
/// matches the §IV-C data volumes (2 MiB snapshots, 50 timesteps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementScale {
    /// Scaled-down grid for tests and smoke runs.
    Small,
    /// Paper-scale data volumes.
    Paper,
}

impl PlacementScale {
    /// Stable label used in manifests.
    pub fn label(self) -> &'static str {
        match self {
            PlacementScale::Small => "small",
            PlacementScale::Paper => "paper",
        }
    }

    /// Parse a CLI argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "small" => Some(PlacementScale::Small),
            "paper" => Some(PlacementScale::Paper),
            _ => None,
        }
    }
}

/// The workloads of the placement grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementWorkload {
    /// Case study 1: I/O every iteration.
    Case1,
    /// Case study 2: I/O every 2 iterations.
    Case2,
    /// Case study 3: I/O every 8 iterations.
    Case3,
    /// Sequential full-dataset scans (Table III's cheap side).
    SeqScan,
    /// Random-access exploratory reader with an 80/20 hot set (Table III's
    /// expensive side — the workload placement is supposed to rescue).
    RandomAccess,
}

impl PlacementWorkload {
    /// All workloads, grid order.
    pub const ALL: [PlacementWorkload; 5] = [
        PlacementWorkload::Case1,
        PlacementWorkload::Case2,
        PlacementWorkload::Case3,
        PlacementWorkload::SeqScan,
        PlacementWorkload::RandomAccess,
    ];

    /// Stable label (part of job keys — renaming reshuffles seeds).
    pub fn label(self) -> &'static str {
        match self {
            PlacementWorkload::Case1 => "case1",
            PlacementWorkload::Case2 => "case2",
            PlacementWorkload::Case3 => "case3",
            PlacementWorkload::SeqScan => "seqscan",
            PlacementWorkload::RandomAccess => "random",
        }
    }

    fn shape(self, scale: PlacementScale) -> WorkloadShape {
        let small = scale == PlacementScale::Small;
        let mib = 1024 * 1024;
        let timesteps: u64 = if small { 10 } else { 50 };
        let case = |interval: u64| WorkloadShape {
            snapshots: timesteps.div_ceil(interval),
            snapshot_bytes: if small { 256 * 1024 } else { 2 * mib },
            chunk_bytes: 128 * 1024,
            read_passes: 1,
            whole_file_reads: false,
            random_reads: 0,
            poke_bytes: 0,
            epoch_every_reads: 0,
        };
        // SeqScan and RandomAccess share one dataset and read the same byte
        // volume — the noop-policy energy ratio between the two is a pure
        // access-pattern effect: the Table III cliff at sweep scale.
        // Snapshots are ≥ the sequential threshold so a whole-file read is
        // charged at full streaming rate; random pokes are 8 KiB, each cold
        // (the exploratory dataset dwarfs the page cache).
        let scan_snapshots = if small { 4 } else { 16 };
        let scan_snapshot_bytes = if small { mib } else { 2 * mib };
        let scan_passes = if small { 4 } else { 8 };
        match self {
            PlacementWorkload::Case1 => case(1),
            PlacementWorkload::Case2 => case(2),
            PlacementWorkload::Case3 => case(8),
            PlacementWorkload::SeqScan => WorkloadShape {
                snapshots: scan_snapshots,
                snapshot_bytes: scan_snapshot_bytes,
                chunk_bytes: 128 * 1024,
                read_passes: scan_passes,
                whole_file_reads: true,
                random_reads: 0,
                poke_bytes: 0,
                epoch_every_reads: 0,
            },
            PlacementWorkload::RandomAccess => {
                let poke_bytes = 8 * 1024;
                WorkloadShape {
                    snapshots: scan_snapshots,
                    snapshot_bytes: scan_snapshot_bytes,
                    chunk_bytes: 128 * 1024,
                    read_passes: 0,
                    whole_file_reads: false,
                    random_reads: scan_snapshots * scan_snapshot_bytes * scan_passes / poke_bytes,
                    poke_bytes,
                    epoch_every_reads: if small { 128 } else { 1024 },
                }
            }
        }
    }
}

/// The placement policies of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Static pin: everything stays where it first lands (the bottom tier).
    Noop,
    /// Frequency-recency ranking with exponential decay.
    FreqRecency,
    /// Energy-greedy: migrate only when projected access savings beat the
    /// migration cost.
    EnergyGreedy,
}

impl PolicyKind {
    /// All policies, grid order.
    pub const ALL: [PolicyKind; 3] = [
        PolicyKind::Noop,
        PolicyKind::FreqRecency,
        PolicyKind::EnergyGreedy,
    ];

    /// Stable label (part of job keys).
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Noop => "noop",
            PolicyKind::FreqRecency => "freq-recency",
            PolicyKind::EnergyGreedy => "energy-greedy",
        }
    }

    /// Instantiate the policy.
    pub fn instantiate(self) -> Box<dyn PlacementPolicy> {
        match self {
            PolicyKind::Noop => Box::new(NoopPolicy),
            PolicyKind::FreqRecency => Box::new(FreqRecencyPolicy::default()),
            PolicyKind::EnergyGreedy => Box::new(EnergyGreedyPolicy::default()),
        }
    }
}

struct WorkloadShape {
    snapshots: u64,
    snapshot_bytes: u64,
    chunk_bytes: u64,
    read_passes: u64,
    whole_file_reads: bool,
    random_reads: u64,
    poke_bytes: u64,
    epoch_every_reads: u64,
}

/// One cell of the placement grid.
#[derive(Debug, Clone, Copy)]
pub struct PlacementJob {
    /// The workload.
    pub workload: PlacementWorkload,
    /// The policy under test.
    pub policy: PolicyKind,
}

impl PlacementJob {
    /// The job's stable identity — everything that distinguishes one cell,
    /// nothing about how the grid executes.
    pub fn key(&self) -> String {
        format!("{}/{}", self.workload.label(), self.policy.label())
    }

    /// The deterministic seed driving the job's access stream: a pure
    /// function of the *workload* (not the policy, not the fault seed, not
    /// the worker count), so every policy sees the identical access
    /// sequence and comparisons isolate the policy effect.
    pub fn access_seed(&self) -> u64 {
        splitmix64(fnv1a64(self.workload.label().as_bytes()))
    }
}

/// Rig for a placement sweep.
#[derive(Debug, Clone)]
pub struct PlacementSetup {
    /// The node under test (tier stack's bottom device must match
    /// `spec.disk` for the flat-parity anchor; `table1()` does).
    pub spec: HardwareSpec,
    /// Workload scale.
    pub scale: PlacementScale,
    /// Record per-job journals and metrics registries.
    pub trace: bool,
    /// Seeded fault schedule; derives per-job sub-plans like the main sweep.
    pub faults: Option<FaultPlan>,
    /// On-node monitoring overhead, watts.
    pub monitoring_overhead_w: f64,
}

impl Default for PlacementSetup {
    fn default() -> Self {
        PlacementSetup {
            spec: HardwareSpec::table1(),
            scale: PlacementScale::Small,
            trace: false,
            faults: None,
            monitoring_overhead_w: 0.2,
        }
    }
}

impl PlacementSetup {
    /// The DRAM → NVMe → HDD stack the grid runs against. Bottom tier is
    /// the spec's own disk model so the noop policy is exactly the flat
    /// single-device system.
    pub fn tier_stack(&self) -> Vec<TierSpec> {
        let mib = 1024 * 1024;
        let (dram, nvme, hdd) = match self.scale {
            PlacementScale::Small => (mib, 4 * mib, 64 * mib),
            PlacementScale::Paper => (8 * mib, 32 * mib, 512 * mib),
        };
        vec![
            TierSpec::new("dram", DiskModel::dram_tier_32gb(), dram),
            TierSpec::new("nvme", DiskModel::nvme_ssd_1tb(), nvme),
            TierSpec::new("hdd", self.spec.disk.clone(), hdd),
        ]
    }
}

/// One finished placement cell.
#[derive(Debug, Clone)]
pub struct PlacementResult {
    /// Submission index (manifest primary key).
    pub id: usize,
    /// Stable identity string.
    pub key: String,
    /// Workload label.
    pub workload: &'static str,
    /// Policy label.
    pub policy: &'static str,
    /// The access-stream seed the job ran with.
    pub seed: u64,
    /// Virtual makespan, seconds.
    pub time_s: f64,
    /// Full-system energy over the makespan, joules (bottom-tier static
    /// power included; see `extra_tier_idle_j` for the upper tiers).
    pub energy_j: f64,
    /// `energy_j / time_s`.
    pub avg_power_w: f64,
    /// Time spent in the read phase, seconds (the Table III quantity).
    pub read_time_s: f64,
    /// Full-system energy of the read phase, joules — the cliff is measured
    /// here, where the write side (identical across the pair) cannot dilute
    /// the pattern effect.
    pub read_energy_j: f64,
    /// Static energy of the tiers above the bottom one over the makespan
    /// (idle watts × time), reported separately so the "is the extra
    /// hardware worth it" trade-off stays visible.
    pub extra_tier_idle_j: f64,
    /// Logical bytes the workload wrote.
    pub bytes_written: u64,
    /// Logical bytes the workload read back.
    pub bytes_read: u64,
    /// Migrations up / down executed by the store.
    pub promotes: u64,
    /// Demotions executed.
    pub demotes: u64,
    /// Migrations lost to injected faults.
    pub migration_faults: u64,
    /// Transparent per-tier transfer retries.
    pub io_retries: u64,
    /// Every byte read back matched what was written.
    pub verified: bool,
    /// Per-tier transfer totals, fastest first.
    pub tiers: Vec<TierCounters>,
    /// Virtual end time, nanoseconds (journal assembly).
    pub end_ns: u64,
    /// Event journal when tracing (headerless `greenness-trace/v1` JSONL).
    pub journal: Option<String>,
    /// Metrics registry when tracing.
    pub trace_metrics: Option<MetricsRegistry>,
}

/// The full grid: every workload under every policy, workload-major — the
/// column order of the placement report.
pub fn placement_grid() -> Vec<PlacementJob> {
    let mut jobs = Vec::with_capacity(PlacementWorkload::ALL.len() * PolicyKind::ALL.len());
    for workload in PlacementWorkload::ALL {
        for policy in PolicyKind::ALL {
            jobs.push(PlacementJob { workload, policy });
        }
    }
    jobs
}

/// Deterministic chunk payload: a pure function of (snapshot, chunk index),
/// so verification needs no retained copy.
fn chunk_payload(snap: u64, chunk: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((snap * 131 + chunk * 29 + i as u64 * 7) % 251) as u8)
        .collect()
}

/// The expected bytes of a sub-chunk poke at `offset` (chunk-aligned pokes
/// only need the containing chunk's formula shifted by the in-chunk offset).
fn poke_payload(snap: u64, offset: u64, len: usize, chunk_bytes: u64) -> Vec<u8> {
    let chunk = offset / chunk_bytes;
    let within = offset % chunk_bytes;
    (0..len)
        .map(|i| ((snap * 131 + chunk * 29 + (within + i as u64) * 7) % 251) as u8)
        .collect()
}

/// Execute one placement job on a fresh node. Panics only on simulator
/// invariant violations (caught by the pool and surfaced as
/// [`SweepError::JobPanicked`]).
fn execute(job: PlacementJob, setup: &PlacementSetup) -> PlacementResult {
    let key = job.key();
    let shape = job.workload.shape(setup.scale);
    let mut node = Node::new(setup.spec.clone());
    node.set_monitoring_overhead_w(setup.monitoring_overhead_w);
    if setup.trace {
        let tracer = Tracer::jsonl();
        tracer.begin(
            0,
            "run",
            vec![
                ("workload", Value::from(job.workload.label())),
                ("policy", Value::from(job.policy.label())),
            ],
        );
        node.set_tracer(tracer);
    }

    let mut store = TieredStore::new(setup.tier_stack(), job.policy.instantiate());
    if let Some(plan) = &setup.faults {
        let plan = plan.derive(&key);
        store.set_fault_injectors(
            Some(plan.injector(Site::TierIo, 0)),
            Some(plan.injector(Site::TierMigration, 0)),
        );
    }
    let extra_idle_w = store.idle_w_above_bottom();
    let mut fs = FileSystem::format(store, FsConfig::default());
    if let Some(plan) = &setup.faults {
        fs.set_fault_injector(Some(plan.derive(&key).injector(Site::StorageFsync, 0)));
    }

    let chunks_per_snap = shape.snapshot_bytes / shape.chunk_bytes;
    let chunk_len = shape.chunk_bytes as usize;
    let mut bytes_written = 0u64;
    let mut bytes_read = 0u64;
    let mut verified = true;

    // Write phase: every workload produces its snapshots chunk-by-chunk
    // with a durability barrier per chunk (the paper's I/O discipline).
    for snap in 0..shape.snapshots {
        let name = snapshot_name(snap);
        for c in 0..chunks_per_snap {
            let data = chunk_payload(snap, c, chunk_len);
            fs.append(&mut node, &name, &data, Phase::Write)
                .expect("placement workload fits the tier stack");
            fs.fsync_with_retry(&mut node, &name, Phase::Write)
                .expect("bounded retry recovers at plan rates");
            bytes_written += shape.chunk_bytes;
        }
        fs.device_mut().end_epoch(&mut node, Phase::Write);
    }
    fs.sync(&mut node, Phase::CacheControl);
    fs.drop_caches();

    // Read phase.
    if shape.random_reads > 0 {
        // 8 KiB exploratory pokes over the whole dataset, 80% against the
        // first-fifth hot region, every poke cold: the dataset this models
        // dwarfs the page cache, so placement — not caching — is the only
        // lever. The draw stream is a pure function of the access seed.
        let slots_per_snap = shape.snapshot_bytes / shape.poke_bytes;
        let total_slots = shape.snapshots * slots_per_snap;
        let hot_slots = (total_slots / 5).max(1);
        let mut rng = job.access_seed();
        let mut draw = |n: u64| {
            rng = splitmix64(rng);
            rng % n
        };
        for i in 0..shape.random_reads {
            let slot = if draw(100) < 80 {
                draw(hot_slots)
            } else {
                draw(total_slots)
            };
            let (snap, offset) = (
                slot / slots_per_snap,
                (slot % slots_per_snap) * shape.poke_bytes,
            );
            let got = fs
                .read(
                    &mut node,
                    &snapshot_name(snap),
                    offset,
                    shape.poke_bytes,
                    Phase::Read,
                )
                .expect("poke lands inside a snapshot");
            bytes_read += got.len() as u64;
            if got != poke_payload(snap, offset, shape.poke_bytes as usize, shape.chunk_bytes) {
                verified = false;
            }
            fs.drop_caches();
            if shape.epoch_every_reads > 0 && (i + 1) % shape.epoch_every_reads == 0 {
                fs.device_mut().end_epoch(&mut node, Phase::Read);
            }
        }
    } else {
        for _pass in 0..shape.read_passes {
            for snap in 0..shape.snapshots {
                let name = snapshot_name(snap);
                if shape.whole_file_reads {
                    let got = fs
                        .read(&mut node, &name, 0, shape.snapshot_bytes, Phase::Read)
                        .expect("snapshot exists");
                    bytes_read += got.len() as u64;
                    for c in 0..chunks_per_snap {
                        let lo = (c * shape.chunk_bytes) as usize;
                        let hi = lo + chunk_len;
                        if got[lo..hi] != chunk_payload(snap, c, chunk_len) {
                            verified = false;
                        }
                    }
                } else {
                    for c in 0..chunks_per_snap {
                        let got = fs
                            .read(
                                &mut node,
                                &name,
                                c * shape.chunk_bytes,
                                shape.chunk_bytes,
                                Phase::Read,
                            )
                            .expect("chunk exists");
                        bytes_read += got.len() as u64;
                        if got != chunk_payload(snap, c, chunk_len) {
                            verified = false;
                        }
                    }
                }
                fs.device_mut().end_epoch(&mut node, Phase::Read);
            }
            // Paper §IV-C discipline between passes: nothing warm survives,
            // so tier placement (not the page cache) carries the savings.
            fs.drop_caches();
        }
    }

    let store = fs.device();
    let tiers = store.counters();
    let (promotes, demotes) = (store.promotes(), store.demotes());
    let (migration_faults, io_retries) = (store.migration_faults(), store.io_retries());

    node.finish_trace();
    let tracer = node.tracer().clone();
    let timeline = node.into_timeline();
    let time_s = timeline.end().as_secs_f64();
    let energy_j = timeline.total_energy_j();
    let read_time_s = timeline.phase_duration(Phase::Read).as_secs_f64();
    let read_energy_j = timeline.phase_energy(Phase::Read).system_j();
    let end_ns = timeline.end().as_nanos();
    let (journal, trace_metrics) = if tracer.is_on() {
        tracer.gauge("run.end_s", time_s);
        tracer.gauge("energy.system_j", energy_j);
        tracer.snapshot("run");
        tracer.end(end_ns, "run", Vec::new());
        let out = tracer.drain().expect("tracer is on");
        (Some(out.journal), Some(out.metrics))
    } else {
        (None, None)
    };

    PlacementResult {
        id: 0, // assigned by the collector
        key,
        workload: job.workload.label(),
        policy: job.policy.label(),
        seed: job.access_seed(),
        time_s,
        energy_j,
        avg_power_w: energy_j / time_s.max(1e-300),
        read_time_s,
        read_energy_j,
        extra_tier_idle_j: extra_idle_w * time_s,
        bytes_written,
        bytes_read,
        promotes,
        demotes,
        migration_faults,
        io_retries,
        verified,
        tiers,
        end_ns,
        journal,
        trace_metrics,
    }
}

fn snapshot_name(snap: u64) -> String {
    format!("snap{snap:04}")
}

/// Run the placement grid on `workers` threads; results come back in
/// submission order regardless of scheduling.
///
/// # Errors
/// [`SweepError::DuplicateKey`] when two jobs share a key;
/// [`SweepError::JobPanicked`] when a job panicked (lowest id reported).
pub fn run_placement(
    jobs: Vec<PlacementJob>,
    setup: &PlacementSetup,
    workers: usize,
    on_done: Progress<'_>,
) -> Result<Vec<PlacementResult>, SweepError> {
    let total = jobs.len();
    if total == 0 {
        return Ok(Vec::new());
    }
    {
        let mut keys: Vec<String> = jobs.iter().map(PlacementJob::key).collect();
        keys.sort();
        for pair in keys.windows(2) {
            if pair[0] == pair[1] {
                return Err(SweepError::DuplicateKey {
                    key: pair[0].clone(),
                });
            }
        }
    }
    let mut slots: Vec<Option<PlacementResult>> = (0..total).map(|_| None).collect();
    let mut failures: Vec<(usize, String)> = Vec::new();
    let mut finished = 0usize;
    run_pool(
        total,
        workers,
        &|idx| execute(jobs[idx], setup),
        &mut |idx, outcome| match outcome {
            Ok(mut result) => {
                finished += 1;
                on_done(finished, total, &jobs[idx].key());
                result.id = idx;
                slots[idx] = Some(result);
            }
            Err(message) => failures.push((idx, message)),
        },
    );
    if let Some((id, message)) = failures.into_iter().min_by_key(|(id, _)| *id) {
        return Err(SweepError::JobPanicked {
            id,
            key: jobs[id].key(),
            message,
        });
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.ok_or_else(|| SweepError::JobLost {
                id: i,
                key: jobs[i].key(),
            })
        })
        .collect()
}

/// Read-phase energy ratio random / sequential under the noop policy — the
/// Table III cliff at sweep scale (both workloads read the same byte
/// volume, so the ratio is a pure access-pattern effect). `None` if either
/// cell is absent.
pub fn noop_gap_ratio(results: &[PlacementResult]) -> Option<f64> {
    let cell = |w: &str| {
        results
            .iter()
            .find(|r| r.workload == w && r.policy == "noop")
            .map(|r| r.read_energy_j)
    };
    Some(cell("random")? / cell("seqscan")?)
}

/// The same ratio under `policy` — how much of the cliff that policy closes.
pub fn gap_ratio_under(results: &[PlacementResult], policy: &str) -> Option<f64> {
    let cell = |w: &str| {
        results
            .iter()
            .find(|r| r.workload == w && r.policy == policy)
            .map(|r| r.read_energy_j)
    };
    Some(cell("random")? / cell("seqscan")?)
}

/// Assemble the placement-sweep journal: schema header, then each traced
/// job's journal in a `job` span, job-id order — byte-identical across
/// worker counts. `None` when no job was traced.
pub fn placement_journal(results: &[PlacementResult]) -> Option<String> {
    if results.iter().all(|r| r.journal.is_none()) {
        return None;
    }
    let mut s = greenness_trace::journal_header();
    for r in results {
        let Some(journal) = &r.journal else {
            continue;
        };
        s.push_str(&format!(
            "{{\"t_ns\":0,\"ev\":\"begin\",\"name\":\"job\",\"job\":{},\"key\":\"{}\",\"seed\":{}}}\n",
            r.id,
            escape_json(&r.key),
            r.seed
        ));
        s.push_str(journal);
        s.push_str(&format!(
            "{{\"t_ns\":{},\"ev\":\"end\",\"name\":\"job\",\"job\":{}}}\n",
            r.end_ns, r.id
        ));
    }
    Some(s)
}

/// Render the placement metrics file (`greenness-metrics/v1`): one labeled
/// registry per traced job, job-id order. `None` when no job was traced.
pub fn placement_metrics_json(results: &[PlacementResult]) -> Option<String> {
    let entries: Vec<(String, MetricsRegistry)> = results
        .iter()
        .filter_map(|r| r.trace_metrics.clone().map(|m| (r.key.clone(), m)))
        .collect();
    if entries.is_empty() {
        None
    } else {
        Some(greenness_trace::metrics_file_json(&entries))
    }
}

/// Render the structured placement manifest
/// (`repro_out/placement.json`) — a pure function of the results.
pub fn placement_manifest_json(scale: PlacementScale, results: &[PlacementResult]) -> String {
    let mut s = String::with_capacity(1024 + 768 * results.len());
    s.push_str("{\n  \"schema\": \"greenness-placement-manifest/v1\",\n");
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n  \"jobs\": [\n",
        scale.label()
    ));
    for (i, r) in results.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"id\": {},\n", r.id));
        s.push_str(&format!("      \"key\": \"{}\",\n", escape_json(&r.key)));
        s.push_str(&format!("      \"workload\": \"{}\",\n", r.workload));
        s.push_str(&format!("      \"policy\": \"{}\",\n", r.policy));
        s.push_str(&format!("      \"seed\": {},\n", r.seed));
        s.push_str(&format!("      \"time_s\": {:?},\n", r.time_s));
        s.push_str(&format!("      \"energy_j\": {:?},\n", r.energy_j));
        s.push_str(&format!("      \"avg_power_w\": {:?},\n", r.avg_power_w));
        s.push_str(&format!("      \"read_time_s\": {:?},\n", r.read_time_s));
        s.push_str(&format!(
            "      \"read_energy_j\": {:?},\n",
            r.read_energy_j
        ));
        s.push_str(&format!(
            "      \"extra_tier_idle_j\": {:?},\n",
            r.extra_tier_idle_j
        ));
        s.push_str(&format!(
            "      \"bytes_written\": {},\n      \"bytes_read\": {},\n",
            r.bytes_written, r.bytes_read
        ));
        s.push_str(&format!(
            "      \"promotes\": {},\n      \"demotes\": {},\n",
            r.promotes, r.demotes
        ));
        s.push_str(&format!(
            "      \"migration_faults\": {},\n      \"io_retries\": {},\n",
            r.migration_faults, r.io_retries
        ));
        s.push_str(&format!("      \"verified\": {},\n", r.verified));
        s.push_str("      \"tiers\": [");
        for (j, t) in r.tiers.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"name\": \"{}\", \"bytes_read\": {}, \"bytes_written\": {}, \"hits\": {}}}",
                escape_json(&t.name),
                t.bytes_read,
                t.bytes_written,
                t.hits
            ));
        }
        s.push_str("]\n");
        s.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::silent_progress;

    fn small_run(policy: PolicyKind, workload: PlacementWorkload) -> PlacementResult {
        let mut r = run_placement(
            vec![PlacementJob { workload, policy }],
            &PlacementSetup::default(),
            1,
            &silent_progress(),
        )
        .expect("single job runs");
        r.remove(0)
    }

    #[test]
    fn grid_covers_every_cell_exactly_once() {
        let jobs = placement_grid();
        assert_eq!(jobs.len(), 15);
        let mut keys: Vec<String> = jobs.iter().map(PlacementJob::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 15);
    }

    #[test]
    fn every_cell_reads_back_verified_data() {
        let setup = PlacementSetup::default();
        let results =
            run_placement(placement_grid(), &setup, 4, &silent_progress()).expect("grid runs");
        assert_eq!(results.len(), 15);
        for r in &results {
            assert!(r.verified, "{} read back corrupted data", r.key);
            assert!(r.bytes_read > 0, "{} read nothing", r.key);
        }
    }

    #[test]
    fn noop_gap_reproduces_the_table3_cliff_direction() {
        let setup = PlacementSetup::default();
        let results =
            run_placement(placement_grid(), &setup, 4, &silent_progress()).expect("grid runs");
        let ratio = noop_gap_ratio(&results).expect("both cells present");
        assert!(
            ratio > 10.0,
            "random/seq read-energy ratio {ratio} too small for a 7200 rpm bottom tier"
        );
    }

    #[test]
    fn placement_policies_close_the_random_access_gap() {
        let noop = small_run(PolicyKind::Noop, PlacementWorkload::RandomAccess);
        let freq = small_run(PolicyKind::FreqRecency, PlacementWorkload::RandomAccess);
        let greedy = small_run(PolicyKind::EnergyGreedy, PlacementWorkload::RandomAccess);
        assert_eq!(noop.promotes, 0);
        assert!(freq.promotes > 0, "freq-recency must promote the hot set");
        assert!(
            greedy.promotes > 0,
            "energy-greedy must promote the hot set"
        );
        assert!(
            freq.energy_j < noop.energy_j,
            "freq-recency {} J !< noop {} J",
            freq.energy_j,
            noop.energy_j
        );
        assert!(
            greedy.energy_j < noop.energy_j,
            "energy-greedy {} J !< noop {} J",
            greedy.energy_j,
            noop.energy_j
        );
    }

    #[test]
    fn policies_see_the_identical_access_stream() {
        // Same workload, different policy ⇒ same seed, same logical bytes.
        let a = small_run(PolicyKind::Noop, PlacementWorkload::RandomAccess);
        let b = small_run(PolicyKind::EnergyGreedy, PlacementWorkload::RandomAccess);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.bytes_read, b.bytes_read);
        assert_eq!(a.bytes_written, b.bytes_written);
    }

    #[test]
    fn manifest_is_schedule_invariant() {
        let setup = PlacementSetup::default();
        let a = placement_manifest_json(
            setup.scale,
            &run_placement(placement_grid(), &setup, 1, &silent_progress()).expect("ok"),
        );
        let b = placement_manifest_json(
            setup.scale,
            &run_placement(placement_grid(), &setup, 8, &silent_progress()).expect("ok"),
        );
        assert_eq!(a, b);
        assert!(a.starts_with("{\n  \"schema\": \"greenness-placement-manifest/v1\""));
    }
}
