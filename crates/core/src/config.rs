//! Application configurations (§IV-C).
//!
//! The paper runs its proxy app for fifty timesteps with grid and chunk size
//! fixed at 128 KB, performing I/O + visualization every iteration (case
//! study 1), every second iteration (case 2), or every eighth (case 3). A
//! 512×512 `f64` grid (2 MiB snapshot, written as sixteen 128 KiB chunks)
//! reproduces the measured per-iteration I/O cost; see DESIGN.md §4.

use greenness_heatsim::{Boundary, PointSource, SimCostModel, SolverConfig};
use greenness_viz::{Colormap, RenderCostModel, RenderOptions};

/// Full description of one pipeline workload.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Human-readable label ("case study 1").
    pub label: String,
    /// Grid cells along x.
    pub grid_nx: usize,
    /// Grid cells along y.
    pub grid_ny: usize,
    /// Simulation timesteps (paper: 50).
    pub timesteps: u64,
    /// Perform I/O + visualization every `io_interval` timesteps
    /// (paper: 1 / 2 / 8).
    pub io_interval: u64,
    /// I/O chunk size in bytes (paper: 128 KiB).
    pub chunk_bytes: usize,
    /// Physics configuration of the proxy solver.
    pub solver: SolverConfig,
    /// Calibrated compute cost of one solver timestep.
    pub sim_cost: SimCostModel,
    /// Calibrated cost of rendering one frame.
    pub render_cost: RenderCostModel,
    /// Rendering controls.
    pub render: RenderOptions,
    /// Keep rendered frames in the pipeline output (tests/examples).
    pub keep_frames: bool,
    /// Simulated storage capacity to format for the run, bytes.
    pub device_bytes: u64,
}

impl PipelineConfig {
    /// The paper's §IV-C configuration for case study `n` (1, 2, or 3):
    /// 512×512 grid, 50 timesteps, 128 KiB chunks, I/O every 1/2/8 steps.
    pub fn case_study(n: u32) -> PipelineConfig {
        let io_interval = match n {
            1 => 1,
            2 => 2,
            3 => 8,
            _ => panic!("the paper defines case studies 1-3, got {n}"),
        };
        PipelineConfig {
            label: format!("case study {n}"),
            grid_nx: 512,
            grid_ny: 512,
            timesteps: 50,
            io_interval,
            chunk_bytes: 128 * 1024,
            solver: Self::default_solver(512, 512),
            sim_cost: SimCostModel::default(),
            render_cost: RenderCostModel::default(),
            render: RenderOptions {
                width: 512,
                height: 512,
                colormap: Colormap::Hot,
                range: Some((0.0, 1.0)),
            },
            keep_frames: false,
            device_bytes: 512 * 1024 * 1024,
        }
    }

    /// A scaled-down workload (64×64 grid, 10 steps) with the same structure
    /// — runs in milliseconds of host time, for tests and doc examples.
    /// Per-cell/per-pixel cost constants are scaled up by the grid-area
    /// ratio so the *virtual* per-step durations (and hence the phase
    /// structure and power levels) match the full-scale case studies.
    /// `io_interval` as in [`Self::case_study`].
    pub fn small(io_interval: u64) -> PipelineConfig {
        // 512²/64² = 64: one small timestep carries the same modeled work as
        // a full-scale one.
        let scale = (512.0 * 512.0) / (64.0 * 64.0);
        let mut sim_cost = SimCostModel::default();
        sim_cost.flops_per_cell_update *= scale;
        sim_cost.dram_bytes_per_cell_update *= scale;
        let mut render_cost = RenderCostModel::default();
        render_cost.flops_per_pixel *= scale;
        render_cost.dram_bytes_per_pixel *= scale;
        PipelineConfig {
            label: format!("small (interval {io_interval})"),
            grid_nx: 64,
            grid_ny: 64,
            timesteps: 10,
            io_interval,
            chunk_bytes: 8 * 1024,
            solver: Self::default_solver(64, 64),
            sim_cost,
            render_cost,
            render: RenderOptions {
                width: 64,
                height: 64,
                colormap: Colormap::Hot,
                range: Some((0.0, 1.0)),
            },
            keep_frames: false,
            device_bytes: 64 * 1024 * 1024,
        }
    }

    /// A stable FTCS configuration for an `nx × ny` grid: a pair of hot
    /// sources on a cold plate with insulating walls — visually interesting
    /// and strictly CFL-stable.
    pub fn default_solver(nx: usize, ny: usize) -> SolverConfig {
        // CFL: alpha*dt*(nx² + ny²) ≤ 0.5 on the unit square.
        let limit = 0.5 / ((nx * nx + ny * ny) as f64);
        let alpha = 1.0e-4;
        let dt = 0.8 * limit / alpha;
        SolverConfig {
            alpha,
            dt,
            boundary: Boundary::Neumann,
            sources: vec![
                PointSource {
                    i: nx / 3,
                    j: ny / 3,
                    rate: 40.0 / dt / 50.0,
                },
                PointSource {
                    i: 2 * nx / 3,
                    j: 2 * ny / 3,
                    rate: 24.0 / dt / 50.0,
                },
            ],
        }
    }

    /// Snapshot size in bytes (`nx × ny × 8`).
    pub fn snapshot_bytes(&self) -> u64 {
        (self.grid_nx * self.grid_ny * 8) as u64
    }

    /// Number of timesteps that perform I/O + visualization.
    pub fn io_steps(&self) -> u64 {
        (1..=self.timesteps)
            .filter(|s| s % self.io_interval == 0)
            .count() as u64
    }

    /// Total cell updates over the run — the work-unit basis of the
    /// efficiency metric (identical for both pipelines by construction).
    pub fn work_units(&self) -> f64 {
        (self.grid_nx * self.grid_ny) as f64 * self.timesteps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_io_counts_match_the_paper() {
        assert_eq!(PipelineConfig::case_study(1).io_steps(), 50);
        assert_eq!(PipelineConfig::case_study(2).io_steps(), 25);
        assert_eq!(PipelineConfig::case_study(3).io_steps(), 6);
    }

    #[test]
    fn snapshot_is_sixteen_paper_chunks() {
        let cfg = PipelineConfig::case_study(1);
        assert_eq!(cfg.snapshot_bytes(), 2 * 1024 * 1024);
        assert_eq!(cfg.snapshot_bytes() / cfg.chunk_bytes as u64, 16);
    }

    #[test]
    #[should_panic(expected = "case studies 1-3")]
    fn unknown_case_study_is_rejected() {
        let _ = PipelineConfig::case_study(4);
    }

    #[test]
    fn default_solver_is_cfl_stable() {
        for n in [32, 64, 512] {
            let cfg = PipelineConfig::default_solver(n, n);
            let cfl = cfg.alpha * cfg.dt * ((n * n + n * n) as f64);
            assert!(cfl <= 0.5 + 1e-12, "CFL {cfl} at {n}");
        }
    }

    #[test]
    fn work_units_are_pipeline_independent() {
        let cfg = PipelineConfig::case_study(1);
        assert_eq!(cfg.work_units(), 512.0 * 512.0 * 50.0);
    }
}
