//! The cluster sweep: three case-study workloads × three distributed
//! pipelines, in one deterministic grid.
//!
//! The paper's single-node verdict (in-situ wins because it shortens the
//! occupied window) gets its cluster-scale counterpart here: post-processing
//! vs in-situ vs overlapped in-transit staging, each over the paper's three
//! I/O cadences, with energy split per node class and the staging byte
//! channels reported separately. The `greenness cluster` subcommand renders
//! this sweep as the `greenness-cluster-manifest/v1` artifact.
//!
//! Determinism contract (pinned by `tests/determinism.rs`): job keys are
//! the only seed source — fault schedules derive per-job from the sweep
//! plan and each job runs on its own virtual cluster — so the manifest,
//! journal, and metrics are byte-identical for any `--jobs` value and
//! across repeated runs with the same `--fault-seed`.

use greenness_cluster::{
    run_cluster_traced, ClusterConfig, ClusterKind, ClusterReport, FaultSummary, StagingConfig,
};
use greenness_faults::FaultPlan;
use greenness_platform::SimTime;
use greenness_pool::run_pool;
use greenness_trace::{escape_json, MetricsRegistry, Tracer, Value};

use crate::sweep::{Progress, SweepError};

/// The paper's case-study numbers, grid order.
pub const CASES: [u32; 3] = [1, 2, 3];

/// The three pipelines, grid order.
pub const KINDS: [ClusterKind; 3] = [
    ClusterKind::PostProcessing,
    ClusterKind::InSitu,
    ClusterKind::InTransit,
];

/// One cell of the cluster grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterJob {
    /// Case-study number (1–3).
    pub case: u32,
    /// Which pipeline.
    pub kind: ClusterKind,
}

impl ClusterJob {
    /// Stable job key — the only per-job seed source.
    pub fn key(&self) -> String {
        format!("case{}:{}", self.case, self.kind.label())
    }
}

/// The full grid (or a kind-filtered slice of it), submission order.
pub fn cluster_jobs(kind: Option<ClusterKind>) -> Vec<ClusterJob> {
    let mut jobs = Vec::new();
    for case in CASES {
        for k in KINDS {
            if kind.map_or(true, |only| only == k) {
                jobs.push(ClusterJob { case, kind: k });
            }
        }
    }
    jobs
}

/// Sweep-wide knobs shared by every job.
#[derive(Debug, Clone, Default)]
pub struct ClusterSetup {
    /// Staging topology applied to the in-transit cells.
    pub staging: StagingConfig,
    /// Sweep-level fault plan; each job derives its own schedule from its
    /// key, so schedules are independent of job order and worker count.
    pub faults: Option<FaultPlan>,
    /// Capture per-job journals and metrics.
    pub trace: bool,
}

/// One finished cell: the cluster report plus trace artifacts.
#[derive(Debug, Clone)]
pub struct ClusterJobResult {
    /// Submission-order id (also the manifest order).
    pub id: usize,
    /// The job key.
    pub key: String,
    /// Case-study number.
    pub case: u32,
    /// Pipeline label.
    pub kind: &'static str,
    /// The distributed run's report.
    pub report: ClusterReport,
    /// Degraded-mode accounting for the run.
    pub summary: FaultSummary,
    /// Virtual end instant, nanoseconds (for the job span's end event).
    pub end_ns: u64,
    /// The job's journal (when traced).
    pub journal: Option<String>,
    /// The job's metrics registry (when traced).
    pub trace_metrics: Option<MetricsRegistry>,
}

/// Execute one cell on a fresh virtual cluster.
fn execute(job: ClusterJob, setup: &ClusterSetup) -> ClusterJobResult {
    let key = job.key();
    let mut cfg = ClusterConfig::case_study(job.case);
    cfg.staging = setup.staging;
    let plan = setup.faults.map(|p| p.derive(&key));
    let tracer = if setup.trace {
        let t = Tracer::jsonl();
        t.begin(
            0,
            "run",
            vec![
                ("case", Value::from(job.case)),
                ("kind", Value::from(job.kind.label())),
            ],
        );
        t
    } else {
        Tracer::off()
    };
    let (report, summary) = run_cluster_traced(job.kind, &cfg, plan, &tracer)
        .expect("case-study cluster runs complete under plan-rate faults");
    let end_ns = SimTime::from_secs_f64(report.makespan_s).as_nanos();
    let (journal, trace_metrics) = if tracer.is_on() {
        tracer.gauge("run.end_s", report.makespan_s);
        tracer.gauge("energy.system_j", report.total_energy_j);
        tracer.snapshot("run");
        tracer.end(end_ns, "run", Vec::new());
        let out = tracer.drain().expect("tracer is on");
        (Some(out.journal), Some(out.metrics))
    } else {
        (None, None)
    };
    ClusterJobResult {
        id: 0, // assigned by the collector
        key,
        case: job.case,
        kind: job.kind.label(),
        report,
        summary,
        end_ns,
        journal,
        trace_metrics,
    }
}

/// Run the cluster grid on `workers` threads; results come back in
/// submission order regardless of scheduling.
///
/// # Errors
/// [`SweepError::DuplicateKey`] when two jobs share a key;
/// [`SweepError::JobPanicked`] when a job panicked (lowest id reported).
pub fn run_cluster_sweep(
    jobs: Vec<ClusterJob>,
    setup: &ClusterSetup,
    workers: usize,
    on_done: Progress<'_>,
) -> Result<Vec<ClusterJobResult>, SweepError> {
    let total = jobs.len();
    if total == 0 {
        return Ok(Vec::new());
    }
    {
        let mut keys: Vec<String> = jobs.iter().map(ClusterJob::key).collect();
        keys.sort();
        for pair in keys.windows(2) {
            if pair[0] == pair[1] {
                return Err(SweepError::DuplicateKey {
                    key: pair[0].clone(),
                });
            }
        }
    }
    let mut slots: Vec<Option<ClusterJobResult>> = (0..total).map(|_| None).collect();
    let mut failures: Vec<(usize, String)> = Vec::new();
    let mut finished = 0usize;
    run_pool(
        total,
        workers,
        &|idx| execute(jobs[idx], setup),
        &mut |idx, outcome| match outcome {
            Ok(mut result) => {
                finished += 1;
                on_done(finished, total, &jobs[idx].key());
                result.id = idx;
                slots[idx] = Some(result);
            }
            Err(message) => failures.push((idx, message)),
        },
    );
    if let Some((id, message)) = failures.into_iter().min_by_key(|(id, _)| *id) {
        return Err(SweepError::JobPanicked {
            id,
            key: jobs[id].key(),
            message,
        });
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.ok_or_else(|| SweepError::JobLost {
                id: i,
                key: jobs[i].key(),
            })
        })
        .collect()
}

/// Assemble the cluster-sweep journal: schema header, then each traced
/// job's journal in a `job` span, job-id order — byte-identical across
/// worker counts. `None` when no job was traced.
pub fn cluster_journal(results: &[ClusterJobResult]) -> Option<String> {
    if results.iter().all(|r| r.journal.is_none()) {
        return None;
    }
    let mut s = greenness_trace::journal_header();
    for r in results {
        let Some(journal) = &r.journal else {
            continue;
        };
        s.push_str(&format!(
            "{{\"t_ns\":0,\"ev\":\"begin\",\"name\":\"job\",\"job\":{},\"key\":\"{}\"}}\n",
            r.id,
            escape_json(&r.key)
        ));
        s.push_str(journal);
        s.push_str(&format!(
            "{{\"t_ns\":{},\"ev\":\"end\",\"name\":\"job\",\"job\":{}}}\n",
            r.end_ns, r.id
        ));
    }
    Some(s)
}

/// Render the cluster metrics file (`greenness-metrics/v1`): one labeled
/// registry per traced job, job-id order. `None` when no job was traced.
pub fn cluster_metrics_json(results: &[ClusterJobResult]) -> Option<String> {
    let entries: Vec<(String, MetricsRegistry)> = results
        .iter()
        .filter_map(|r| r.trace_metrics.clone().map(|m| (r.key.clone(), m)))
        .collect();
    if entries.is_empty() {
        None
    } else {
        Some(greenness_trace::metrics_file_json(&entries))
    }
}

/// Render the structured cluster manifest (`repro_out/cluster.json`) — a
/// pure function of the setup and results.
pub fn cluster_manifest_json(setup: &ClusterSetup, results: &[ClusterJobResult]) -> String {
    let mut s = String::with_capacity(1024 + 640 * results.len());
    s.push_str("{\n  \"schema\": \"greenness-cluster-manifest/v1\",\n");
    s.push_str(&format!(
        "  \"staging_nodes\": {},\n  \"queue_depth\": {},\n  \"wire_codec\": \"{}\",\n",
        setup.staging.staging_nodes,
        setup.staging.queue_depth,
        setup.staging.wire_codec.label()
    ));
    match setup.faults {
        Some(plan) => s.push_str(&format!("  \"fault_seed\": {},\n", plan.seed)),
        None => s.push_str("  \"fault_seed\": null,\n"),
    }
    s.push_str("  \"jobs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let rep = &r.report;
        s.push_str("    {\n");
        s.push_str(&format!("      \"id\": {},\n", r.id));
        s.push_str(&format!("      \"key\": \"{}\",\n", escape_json(&r.key)));
        s.push_str(&format!("      \"case\": {},\n", r.case));
        s.push_str(&format!("      \"kind\": \"{}\",\n", r.kind));
        s.push_str(&format!("      \"makespan_s\": {:?},\n", rep.makespan_s));
        s.push_str(&format!(
            "      \"total_energy_j\": {:?},\n",
            rep.total_energy_j
        ));
        s.push_str(&format!(
            "      \"avg_power_w\": {:?},\n",
            rep.average_power_w
        ));
        s.push_str(&format!(
            "      \"compute_energy_j\": {:?},\n",
            rep.compute_energy_j
        ));
        s.push_str(&format!("      \"io_energy_j\": {:?},\n", rep.io_energy_j));
        s.push_str(&format!(
            "      \"viz_energy_j\": {:?},\n",
            rep.viz_energy_j
        ));
        s.push_str(&format!(
            "      \"fabric_bytes\": {},\n      \"pfs_bytes\": {},\n      \"bytes_out\": {},\n",
            rep.fabric_bytes, rep.pfs_bytes, rep.bytes_out
        ));
        s.push_str(&format!(
            "      \"staging_raw_bytes\": {},\n",
            rep.staging_raw_bytes
        ));
        s.push_str(&format!("      \"image_hash\": {},\n", rep.image_hash));
        s.push_str(&format!("      \"verified\": {},\n", rep.verified));
        s.push_str(&format!(
            "      \"faults\": {{\"total\": {}, \"storage\": {}, \"fabric_drops\": {}, \
             \"fabric_delays\": {}, \"torn_renders\": {}, \"storage_retries\": {}, \
             \"fabric_retries\": {}}}\n",
            r.summary.total_faults(),
            r.summary.storage_faults,
            r.summary.fabric_drops,
            r.summary.fabric_delays,
            r.summary.staging_torn_renders,
            r.summary.storage_retries,
            r.summary.fabric_retries
        ));
        s.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_three_by_three() {
        let jobs = cluster_jobs(None);
        assert_eq!(jobs.len(), 9);
        let keys: Vec<String> = jobs.iter().map(ClusterJob::key).collect();
        assert_eq!(keys[0], "case1:post");
        assert_eq!(keys[8], "case3:intransit");
        let filtered = cluster_jobs(Some(ClusterKind::InTransit));
        assert_eq!(filtered.len(), 3);
        assert!(filtered.iter().all(|j| j.kind == ClusterKind::InTransit));
    }

    #[test]
    fn manifest_shape_is_stable() {
        let setup = ClusterSetup::default();
        let jobs = vec![ClusterJob {
            case: 1,
            kind: ClusterKind::InSitu,
        }];
        let results = run_cluster_sweep(jobs, &setup, 1, &|_, _, _| {}).unwrap();
        let manifest = cluster_manifest_json(&setup, &results);
        assert!(manifest.contains("\"schema\": \"greenness-cluster-manifest/v1\""));
        assert!(manifest.contains("\"key\": \"case1:insitu\""));
        assert!(manifest.contains("\"fault_seed\": null"));
        assert!(manifest.ends_with("  ]\n}\n"));
    }
}
