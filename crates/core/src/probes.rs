//! The `nnread` / `nnwrite` probe stages (Figure 6, Table II).
//!
//! To split energy savings into static and dynamic parts, the paper first
//! profiles its application's read and write stages *in isolation*: the
//! `nnwrite` probe repeatedly writes-and-fsyncs 128 KiB chunks; the `nnread`
//! probe reads chunks back cold (caches dropped). Table II reports their
//! average total power (114.8 / 115.1 W) and dynamic power (10.0 / 10.3 W);
//! Figure 6 plots the 50-second profiles.

use greenness_platform::{Node, Phase, Timeline};
use greenness_power::probe_dynamic_power_w;
use greenness_storage::{FileSystem, FsConfig, MemBlockDevice, StorageError};

use crate::experiment::ExperimentSetup;

/// Summary of one probe run (one Table II column).
#[derive(Debug, Clone)]
pub struct ProbeResult {
    /// "nnread" or "nnwrite".
    pub name: &'static str,
    /// The probe's power history.
    pub timeline: Timeline,
    /// Average total (full-system) power, watts.
    pub avg_total_w: f64,
    /// Average dynamic power — total minus the machine's static floor, watts.
    pub avg_dynamic_w: f64,
}

fn summarize(name: &'static str, timeline: Timeline, static_w: f64) -> ProbeResult {
    let avg_total_w = timeline.average_power_w();
    let avg_dynamic_w = probe_dynamic_power_w(&timeline, static_w);
    ProbeResult {
        name,
        timeline,
        avg_total_w,
        avg_dynamic_w,
    }
}

/// Run the `nnwrite` probe: write-and-fsync `chunk_bytes` chunks for at
/// least `duration_s` seconds of virtual time.
///
/// # Errors
/// A probe configuration the device cannot hold (oversized chunks, a probe
/// window that fills the scratch filesystem) surfaces as a [`StorageError`]
/// diagnostic instead of a panic.
pub fn nnwrite(
    setup: &ExperimentSetup,
    chunk_bytes: usize,
    duration_s: f64,
) -> Result<ProbeResult, StorageError> {
    let mut node = Node::new(setup.spec.clone());
    node.set_monitoring_overhead_w(setup.monitoring_overhead_w);
    let mut fs = FileSystem::format(
        MemBlockDevice::with_capacity_bytes(256 * 1024 * 1024),
        FsConfig::default(),
    );
    let chunk = vec![0x6eu8; chunk_bytes];
    let mut k = 0u64;
    while node.now().as_secs_f64() < duration_s {
        let name = format!("nn{k:06}");
        fs.write(&mut node, &name, 0, &chunk, Phase::IoBench)?;
        fs.fsync(&mut node, &name, Phase::IoBench)?;
        k += 1;
    }
    let static_w = setup.spec.static_w();
    Ok(summarize("nnwrite", node.into_timeline(), static_w))
}

/// Run the `nnread` probe: pre-create chunk files (not metered), drop caches,
/// then read them back cold for at least `duration_s` seconds.
///
/// # Errors
/// As for [`nnwrite`]: a malformed probe configuration returns a
/// [`StorageError`] instead of panicking.
pub fn nnread(
    setup: &ExperimentSetup,
    chunk_bytes: usize,
    duration_s: f64,
) -> Result<ProbeResult, StorageError> {
    // Staging pass on a scratch node — layout preparation is not part of the
    // probe, exactly as the paper profiles only the read stage.
    let mut scratch = Node::new(setup.spec.clone());
    let mut fs = FileSystem::format(
        MemBlockDevice::with_capacity_bytes(256 * 1024 * 1024),
        FsConfig::default(),
    );
    let chunk = vec![0x6eu8; chunk_bytes];
    // Enough files to cover the probe duration at the calibrated ≈84 ms per
    // cold chunk read.
    let files = (duration_s / 0.08) as u64 + 8;
    for k in 0..files {
        fs.write(
            &mut scratch,
            &format!("nn{k:06}"),
            0,
            &chunk,
            Phase::IoBench,
        )?;
    }
    fs.sync(&mut scratch, Phase::IoBench);
    fs.drop_caches();

    let mut node = Node::new(setup.spec.clone());
    node.set_monitoring_overhead_w(setup.monitoring_overhead_w);
    let mut k = 0u64;
    while node.now().as_secs_f64() < duration_s && k < files {
        fs.read(
            &mut node,
            &format!("nn{k:06}"),
            0,
            chunk_bytes as u64,
            Phase::IoBench,
        )?;
        k += 1;
    }
    let static_w = setup.spec.static_w();
    Ok(summarize("nnread", node.into_timeline(), static_w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_nnwrite_power() {
        let r = nnwrite(&ExperimentSetup::noiseless(), 128 * 1024, 20.0).expect("probe ok");
        // Paper: 114.8 W total, 10.0 W dynamic.
        assert!(
            (r.avg_total_w - 114.8).abs() < 0.7,
            "total {}",
            r.avg_total_w
        );
        assert!(
            (r.avg_dynamic_w - 10.0).abs() < 0.7,
            "dynamic {}",
            r.avg_dynamic_w
        );
    }

    #[test]
    fn table2_nnread_power() {
        let r = nnread(&ExperimentSetup::noiseless(), 128 * 1024, 20.0).expect("probe ok");
        // Paper: 115.1 W total, 10.3 W dynamic.
        assert!(
            (r.avg_total_w - 115.1).abs() < 0.7,
            "total {}",
            r.avg_total_w
        );
        assert!(
            (r.avg_dynamic_w - 10.3).abs() < 0.7,
            "dynamic {}",
            r.avg_dynamic_w
        );
    }

    #[test]
    fn read_and_write_probes_draw_nearly_the_same_power() {
        // §V-A: "the average power consumed by the reads and the writes is
        // nearly the same".
        let setup = ExperimentSetup::noiseless();
        let w = nnwrite(&setup, 128 * 1024, 10.0).expect("probe ok");
        let r = nnread(&setup, 128 * 1024, 10.0).expect("probe ok");
        assert!((w.avg_total_w - r.avg_total_w).abs() < 1.5);
    }

    #[test]
    fn probes_run_for_the_requested_duration() {
        let r = nnwrite(&ExperimentSetup::noiseless(), 128 * 1024, 5.0).expect("probe ok");
        let t = r.timeline.end().as_secs_f64();
        assert!((5.0..6.0).contains(&t), "ran {t}s");
    }

    #[test]
    fn malformed_probe_config_is_a_diagnostic_not_a_panic() {
        // A probe window the 256 MiB scratch device cannot hold: the error
        // comes back as a StorageError value with a printable message.
        let err = nnwrite(&ExperimentSetup::noiseless(), 1024 * 1024, 1.0e9)
            .expect_err("device must fill");
        assert!(!err.to_string().is_empty());
    }
}
