//! Interactive steering: a resumable in-situ pipeline that renders
//! incrementally and answers what-if questions about the *remaining* run.
//!
//! The batch pipelines in [`crate::pipeline`] run start-to-finish and report
//! afterwards. A steering session instead holds the solver live: the client
//! advances virtual time in slices, re-renders the current field on demand,
//! and adjusts parameters (I/O interval, render resolution, camera) mid-run.
//! Before committing an adjustment, the client can ask for the **energy
//! delta** it would cause. That delta is computed by replaying only the
//! affected phase spans — the per-step activity schedule — on a scratch
//! [`Node`], never by re-running the solver or renderer: per-step costs in
//! this model are state-independent, so the replay is bit-identical to a
//! full recompute while doing none of the stencil or rasterization work.
//!
//! Everything here is deterministic. Frames are hashed with the same FNV-1a
//! the batch pipelines use for snapshot checksums, so two sessions that apply
//! the same adjustments at the same steps produce byte-identical transcripts
//! for any solver thread count and across reruns.

use crate::config::PipelineConfig;
use crate::pipeline::{fnv1a, PipelineError};
use greenness_heatsim::{Grid, HeatSolver};
use greenness_platform::{AccessPattern, Activity, Node, Phase};
use greenness_viz::{encode_ppm, ppm_size_bytes, render_field, Colormap};

/// A parameter change a steering client may apply mid-run.
#[derive(Debug, Clone, PartialEq)]
pub enum Adjustment {
    /// Render every `n`-th step from now on (must be ≥ 1).
    IoInterval(u64),
    /// Change the output image resolution.
    Resolution {
        /// New image width, pixels (must be ≥ 1).
        width: usize,
        /// New image height, pixels (must be ≥ 1).
        height: usize,
    },
    /// Re-aim the "camera": colormap and value range of the transfer
    /// function. Free in the energy model (same pixel count), but changes
    /// the bytes of every subsequent frame.
    Camera {
        /// New colormap.
        colormap: Colormap,
        /// New explicit value range, or `None` for auto-scaling.
        range: Option<(f64, f64)>,
    },
}

impl Adjustment {
    /// A stable lowercase label for transcripts and trace events.
    pub fn label(&self) -> &'static str {
        match self {
            Adjustment::IoInterval(_) => "io_interval",
            Adjustment::Resolution { .. } => "resolution",
            Adjustment::Camera { .. } => "camera",
        }
    }

    /// Canonical encoding used in cache keys and transcripts. Floats are
    /// rendered through their shortest round-trip form, so equal values
    /// always encode identically.
    pub fn canonical(&self) -> String {
        match self {
            Adjustment::IoInterval(n) => format!("io_interval={n}"),
            Adjustment::Resolution { width, height } => {
                format!("resolution={width}x{height}")
            }
            Adjustment::Camera { colormap, range } => match range {
                Some((lo, hi)) => format!("camera={colormap:?}/{lo}..{hi}"),
                None => format!("camera={colormap:?}/auto"),
            },
        }
    }
}

/// What a render produced: enough to reproduce and compare transcripts
/// without shipping pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameStamp {
    /// Simulation step the frame shows.
    pub step: u64,
    /// Image width, pixels.
    pub width: usize,
    /// Image height, pixels.
    pub height: usize,
    /// FNV-1a hash of the encoded PPM bytes.
    pub hash: u64,
    /// Encoded size, bytes.
    pub bytes: u64,
}

impl FrameStamp {
    /// One-line transcript form: `step=12 1024x768 5fa3… (786447 B)`.
    pub fn transcript_line(&self) -> String {
        format!(
            "step={} {}x{} {:016x} ({} B)",
            self.step, self.width, self.height, self.hash, self.bytes
        )
    }
}

/// What-if answer: the projected remaining energy before and after an
/// adjustment, computed by schedule replay (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhatIfDelta {
    /// Projected energy to finish the run under the current parameters, J.
    pub baseline_j: f64,
    /// Projected energy to finish under the adjusted parameters, J.
    pub adjusted_j: f64,
}

impl WhatIfDelta {
    /// Signed change in remaining energy, J (negative = the adjustment
    /// saves energy).
    pub fn delta_j(&self) -> f64 {
        self.adjusted_j - self.baseline_j
    }
}

/// An in-situ pipeline held open for steering: live solver, live energy
/// timeline, adjustable parameters.
#[derive(Debug, Clone)]
pub struct SteeringPipeline {
    cfg: PipelineConfig,
    node: Node,
    solver: HeatSolver,
    step: u64,
    frames_rendered: u64,
    bytes_written: u64,
}

impl SteeringPipeline {
    /// Open a session over `cfg` with `jobs` solver threads. The thread
    /// count changes wall-clock speed only — never output bytes.
    ///
    /// # Errors
    /// [`PipelineError::Config`] for a zero `io_interval`, and solver
    /// validation errors as [`PipelineError::Solver`].
    pub fn new(cfg: &PipelineConfig, jobs: usize) -> Result<SteeringPipeline, PipelineError> {
        if cfg.io_interval == 0 {
            return Err(PipelineError::Config(
                "io_interval must be at least 1".to_string(),
            ));
        }
        let initial = Grid::from_fn(cfg.grid_nx, cfg.grid_ny, |x, y| {
            // Same warm Gaussian patch the batch pipelines start from.
            0.3 * (-((x - 0.5).powi(2) + (y - 0.4).powi(2)) * 40.0).exp()
        });
        let mut solver = HeatSolver::new(initial, cfg.solver.clone())?;
        solver.set_jobs(jobs.max(1));
        Ok(SteeringPipeline {
            cfg: cfg.clone(),
            node: Node::new(greenness_platform::HardwareSpec::table1()),
            solver,
            step: 0,
            frames_rendered: 0,
            bytes_written: 0,
        })
    }

    /// Current simulation step (0 before the first [`advance`](Self::advance)).
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Total steps the run was configured for.
    pub fn timesteps(&self) -> u64 {
        self.cfg.timesteps
    }

    /// True once the configured timestep budget is exhausted.
    pub fn finished(&self) -> bool {
        self.step >= self.cfg.timesteps
    }

    /// Virtual seconds elapsed on the session node.
    pub fn virtual_time_s(&self) -> f64 {
        self.node.now().as_secs_f64()
    }

    /// Energy spent so far, J.
    pub fn energy_j(&self) -> f64 {
        self.node.timeline().total_energy_j()
    }

    /// Stencil steps actually executed (the expensive work what-if replay
    /// avoids).
    pub fn solver_steps(&self) -> u64 {
        self.solver.steps_taken()
    }

    /// Frames rendered so far (scheduled and on-demand).
    pub fn frames_rendered(&self) -> u64 {
        self.frames_rendered
    }

    /// Image bytes charged to the virtual disk so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// The live configuration (reflects applied adjustments).
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Apply an adjustment to the remaining run.
    ///
    /// # Errors
    /// [`PipelineError::Config`] for a zero interval or a zero-pixel
    /// resolution.
    pub fn adjust(&mut self, adj: &Adjustment) -> Result<(), PipelineError> {
        match *adj {
            Adjustment::IoInterval(n) => {
                if n == 0 {
                    return Err(PipelineError::Config(
                        "io_interval must be at least 1".to_string(),
                    ));
                }
                self.cfg.io_interval = n;
            }
            Adjustment::Resolution { width, height } => {
                if width == 0 || height == 0 {
                    return Err(PipelineError::Config(format!(
                        "render resolution must be at least 1x1, got {width}x{height}"
                    )));
                }
                self.cfg.render.width = width;
                self.cfg.render.height = height;
            }
            Adjustment::Camera { colormap, range } => {
                self.cfg.render.colormap = colormap;
                self.cfg.render.range = range;
            }
        }
        Ok(())
    }

    /// Advance up to `steps` simulation steps (clamped to the configured
    /// budget), rendering at every step divisible by the live `io_interval`.
    /// Returns the stamps of the frames produced, in step order.
    pub fn advance(&mut self, steps: u64) -> Vec<FrameStamp> {
        let cells = (self.cfg.grid_nx * self.cfg.grid_ny) as u64;
        let stop = self.cfg.timesteps.min(self.step.saturating_add(steps));
        let mut frames = Vec::new();
        while self.step < stop {
            self.step += 1;
            self.solver.step();
            self.node.tracer().count("solver.steps", 1);
            self.node
                .execute(self.cfg.sim_cost.activity(cells), Phase::Simulation);
            if self.step % self.cfg.io_interval == 0 {
                frames.push(self.render_frame());
            }
        }
        frames
    }

    /// Render the current field immediately — the incremental re-render a
    /// client requests right after an adjustment, without waiting for the
    /// next scheduled frame.
    pub fn render_now(&mut self) -> FrameStamp {
        self.render_frame()
    }

    fn render_frame(&mut self) -> FrameStamp {
        let pixels = (self.cfg.render.width * self.cfg.render.height) as u64;
        self.node.execute(
            Activity::MemTraffic {
                bytes: self.cfg.snapshot_bytes(),
            },
            Phase::Visualization,
        );
        self.node
            .execute(self.cfg.render_cost.activity(pixels), Phase::Visualization);
        let image = render_field(self.solver.grid(), &self.cfg.render);
        let ppm = encode_ppm(&image);
        self.node.execute(
            frame_write_activity(ppm.len() as u64, self.cfg.chunk_bytes),
            Phase::ImageWrite,
        );
        self.frames_rendered += 1;
        self.bytes_written += ppm.len() as u64;
        FrameStamp {
            step: self.step,
            width: self.cfg.render.width,
            height: self.cfg.render.height,
            hash: fnv1a(&ppm),
            bytes: ppm.len() as u64,
        }
    }

    /// Projected energy to finish the run under the live parameters, J.
    /// Pure schedule replay: no solver or renderer work.
    pub fn projected_remaining_j(&self) -> f64 {
        replay_remaining(&self.node, &self.cfg, self.step)
    }

    /// What-if: projected remaining energy before/after `adj`, without
    /// applying it. Both sides are schedule replays, so the answer costs no
    /// stencil or rasterization work.
    ///
    /// # Errors
    /// Same validation as [`adjust`](Self::adjust).
    pub fn whatif(&self, adj: &Adjustment) -> Result<WhatIfDelta, PipelineError> {
        let mut trial = self.clone_cfg_only();
        trial.adjust(adj)?;
        Ok(WhatIfDelta {
            baseline_j: replay_remaining(&self.node, &self.cfg, self.step),
            adjusted_j: replay_remaining(&self.node, &trial.cfg, self.step),
        })
    }

    /// Ground truth for tests and audits: actually run the remaining steps
    /// (cloned solver, real stencil and renderer) under `cfg` and measure
    /// the energy. Bit-identical to [`projected_remaining_j`](Self::projected_remaining_j)
    /// because per-step costs are state-independent — but it pays for every
    /// stencil update and rasterized pixel the replay skips.
    pub fn full_recompute_remaining_j(&self, cfg: &PipelineConfig) -> f64 {
        let cells = (cfg.grid_nx * cfg.grid_ny) as u64;
        let pixels = (cfg.render.width * cfg.render.height) as u64;
        let mut solver = self.solver.clone();
        let mut probe = Node::new(self.node.spec().clone());
        for k in self.step + 1..=cfg.timesteps {
            solver.step();
            probe.execute(cfg.sim_cost.activity(cells), Phase::Simulation);
            if k % cfg.io_interval == 0 {
                probe.execute(
                    Activity::MemTraffic {
                        bytes: cfg.snapshot_bytes(),
                    },
                    Phase::Visualization,
                );
                probe.execute(cfg.render_cost.activity(pixels), Phase::Visualization);
                let ppm = encode_ppm(&render_field(solver.grid(), &cfg.render));
                probe.execute(
                    frame_write_activity(ppm.len() as u64, cfg.chunk_bytes),
                    Phase::ImageWrite,
                );
            }
        }
        probe.timeline().total_energy_j()
    }

    /// A copy that shares configuration but owns nothing live — used to
    /// validate trial adjustments without touching the session.
    fn clone_cfg_only(&self) -> SteeringPipeline {
        SteeringPipeline {
            cfg: self.cfg.clone(),
            node: Node::new(self.node.spec().clone()),
            solver: self.solver.clone(),
            step: self.step,
            frames_rendered: 0,
            bytes_written: 0,
        }
    }
}

/// The per-frame image-write charge. Steering charges the activity directly
/// (no [`greenness_storage::FileSystem`]) precisely so that per-frame cost is
/// independent of filesystem state and the schedule replay stays exact.
fn frame_write_activity(bytes: u64, chunk_bytes: usize) -> Activity {
    Activity::DiskWrite {
        bytes,
        pattern: AccessPattern::Chunked {
            op_bytes: chunk_bytes as u64,
        },
        buffered: true,
    }
}

/// Replay the remaining activity schedule of `cfg` from `step` on a scratch
/// node and return its total energy. Frame sizes come from
/// [`ppm_size_bytes`], which is exact for the PPM encoder, so the replayed
/// charges are the same bytes the live path would write.
fn replay_remaining(node: &Node, cfg: &PipelineConfig, step: u64) -> f64 {
    let cells = (cfg.grid_nx * cfg.grid_ny) as u64;
    let pixels = (cfg.render.width * cfg.render.height) as u64;
    let frame_bytes = ppm_size_bytes(cfg.render.width, cfg.render.height) as u64;
    let mut probe = Node::new(node.spec().clone());
    for k in step + 1..=cfg.timesteps {
        probe.execute(cfg.sim_cost.activity(cells), Phase::Simulation);
        if k % cfg.io_interval == 0 {
            probe.execute(
                Activity::MemTraffic {
                    bytes: cfg.snapshot_bytes(),
                },
                Phase::Visualization,
            );
            probe.execute(cfg.render_cost.activity(pixels), Phase::Visualization);
            probe.execute(
                frame_write_activity(frame_bytes, cfg.chunk_bytes),
                Phase::ImageWrite,
            );
        }
    }
    probe.timeline().total_energy_j()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> SteeringPipeline {
        SteeringPipeline::new(&PipelineConfig::small(2), 1).expect("session opens")
    }

    #[test]
    fn advance_renders_on_the_interval_and_tracks_progress() {
        let mut s = session();
        let frames = s.advance(5);
        assert_eq!(s.step(), 5);
        assert_eq!(
            frames.iter().map(|f| f.step).collect::<Vec<_>>(),
            vec![2, 4]
        );
        assert_eq!(s.frames_rendered(), 2);
        assert!(s.energy_j() > 0.0 && s.virtual_time_s() > 0.0);
        // Clamped at the configured budget.
        let rest = s.advance(100);
        assert!(s.finished());
        assert_eq!(rest.last().map(|f| f.step), Some(10));
    }

    #[test]
    fn transcripts_are_identical_across_jobs() {
        let run = |jobs: usize| -> Vec<String> {
            let mut s = SteeringPipeline::new(&PipelineConfig::small(2), jobs).expect("opens");
            let mut lines = Vec::new();
            lines.extend(s.advance(4).iter().map(FrameStamp::transcript_line));
            s.adjust(&Adjustment::Resolution {
                width: 96,
                height: 96,
            })
            .expect("valid");
            lines.push(s.render_now().transcript_line());
            lines.extend(s.advance(6).iter().map(FrameStamp::transcript_line));
            lines
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn camera_changes_frame_bytes_but_not_energy_projection() {
        let mut s = session();
        s.advance(2);
        let before = s.render_now();
        let wi = s
            .whatif(&Adjustment::Camera {
                colormap: Colormap::Viridis,
                range: None,
            })
            .expect("valid");
        assert_eq!(wi.delta_j(), 0.0, "camera is free in the energy model");
        s.adjust(&Adjustment::Camera {
            colormap: Colormap::Viridis,
            range: None,
        })
        .expect("valid");
        let after = s.render_now();
        assert_eq!(before.bytes, after.bytes);
        assert_ne!(before.hash, after.hash, "colormap must change the pixels");
    }

    #[test]
    fn whatif_replay_matches_full_recompute_without_solver_work() {
        let mut s = session();
        s.advance(3);
        let steps_before = s.solver_steps();
        let adj = Adjustment::IoInterval(5);
        let wi = s.whatif(&adj).expect("valid");
        // The replay did no stencil work on the live solver.
        assert_eq!(s.solver_steps(), steps_before);
        // Ground truth: run the remainder for real, both ways.
        let full_base = s.full_recompute_remaining_j(s.config());
        let mut trial = s.config().clone();
        trial.io_interval = 5;
        let full_adj = s.full_recompute_remaining_j(&trial);
        assert!(
            (wi.baseline_j - full_base).abs() <= 1e-9,
            "baseline drifted"
        );
        assert!((wi.adjusted_j - full_adj).abs() <= 1e-9, "adjusted drifted");
        // Thinning I/O from every 2nd to every 5th step must save energy.
        assert!(wi.delta_j() < 0.0);
    }

    #[test]
    fn invalid_adjustments_are_rejected_as_values() {
        let mut s = session();
        assert!(matches!(
            s.adjust(&Adjustment::IoInterval(0)),
            Err(PipelineError::Config(_))
        ));
        assert!(matches!(
            s.whatif(&Adjustment::Resolution {
                width: 0,
                height: 64
            }),
            Err(PipelineError::Config(_))
        ));
    }
}
