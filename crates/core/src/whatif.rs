//! The §V-D what-if analysis.
//!
//! The paper's pipelines do sequential I/O, but real applications often
//! don't. Using the fio measurements (Table III), §V-D argues: an
//! application with *random* I/O behavior (one 4 GB read + one 4 GB write
//! pass) would save **242.2 kJ** (238.6 + 3.6) by going in-situ — but if it
//! instead adopted software-directed data reorganization, its passes become
//! sequential and the residual I/O cost is only **7.3 kJ** (4.2 + 3.1),
//! while exploratory analysis is retained.

use greenness_platform::Node;
use greenness_storage::{fio, FioJob, FioKind, FioResult, NullBlockDevice, StorageError};

use crate::experiment::ExperimentSetup;

/// Why the §V-D analysis could not be derived. Reachable from the serve
/// `whatif` op, so reported as a value (surfaced as a protocol error
/// envelope) rather than a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum WhatIfError {
    /// A fio job failed to run (malformed configuration).
    Fio(StorageError),
    /// The result set was missing one of the four Table III kinds — the
    /// analysis would have nothing to sum for that column.
    MissingKind(FioKind),
}

impl std::fmt::Display for WhatIfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WhatIfError::Fio(e) => write!(f, "fio failed: {e}"),
            WhatIfError::MissingKind(k) => {
                write!(f, "fio results missing the {k:?} column of Table III")
            }
        }
    }
}

impl std::error::Error for WhatIfError {}

impl From<StorageError> for WhatIfError {
    fn from(e: StorageError) -> Self {
        WhatIfError::Fio(e)
    }
}

/// The §V-D numbers, derived from freshly-run fio jobs.
#[derive(Debug, Clone)]
pub struct WhatIfAnalysis {
    /// All four Table III results, in table column order.
    pub fio: Vec<FioResult>,
    /// Energy a random-I/O application spends on its I/O passes — what
    /// in-situ would eliminate, kJ (paper: 242.2).
    pub random_io_energy_kj: f64,
    /// Energy the same passes cost after data reorganization, kJ
    /// (paper: 7.3).
    pub reorganized_io_energy_kj: f64,
}

impl WhatIfAnalysis {
    /// Run the four Table III fio jobs at `total_bytes` (paper: 4 GiB) and
    /// derive the §V-D comparison. A malformed job configuration or an
    /// incomplete result set is reported as a [`WhatIfError`] instead of
    /// panicking.
    pub fn run(setup: &ExperimentSetup, total_bytes: u64) -> Result<WhatIfAnalysis, WhatIfError> {
        let mut fio_results = Vec::with_capacity(4);
        for kind in FioKind::ALL {
            // Each job on a fresh node, as separate fio invocations would be.
            let mut node = Node::new(setup.spec.clone());
            node.set_monitoring_overhead_w(setup.monitoring_overhead_w);
            let mut dev = NullBlockDevice::with_capacity_bytes(total_bytes);
            let job = FioJob {
                total_bytes,
                ..FioJob::table3(kind)
            };
            fio_results.push(fio::run(&mut node, &mut dev, &job)?);
        }
        Self::from_results(fio_results)
    }

    /// Derive the comparison from an already-run result set. Each Table III
    /// column must be present exactly once; a missing kind surfaces as
    /// [`WhatIfError::MissingKind`] — the condition the old code turned into
    /// a process-killing `.expect("all four kinds ran")`.
    pub fn from_results(fio_results: Vec<FioResult>) -> Result<WhatIfAnalysis, WhatIfError> {
        let energy = |k: FioKind| -> Result<f64, WhatIfError> {
            fio_results
                .iter()
                .find(|r| r.kind == k)
                .map(|r| r.full_system_energy_kj)
                .ok_or(WhatIfError::MissingKind(k))
        };
        Ok(WhatIfAnalysis {
            random_io_energy_kj: energy(FioKind::RandomRead)? + energy(FioKind::RandomWrite)?,
            reorganized_io_energy_kj: energy(FioKind::SequentialRead)?
                + energy(FioKind::SequentialWrite)?,
            fio: fio_results,
        })
    }

    /// The headline ratio: how much of the random-I/O energy reorganization
    /// retains (the paper: 7.3 / 242.2 ≈ 3%).
    pub fn retained_fraction(&self) -> f64 {
        if self.random_io_energy_kj <= 0.0 {
            0.0
        } else {
            self.reorganized_io_energy_kj / self.random_io_energy_kj
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_at_4gib() {
        let w = WhatIfAnalysis::run(&ExperimentSetup::noiseless(), 4 * 1024 * 1024 * 1024).unwrap();
        // Paper: 242.2 kJ vs 7.3 kJ.
        assert!(
            (w.random_io_energy_kj - 242.2).abs() < 10.0,
            "{}",
            w.random_io_energy_kj
        );
        assert!(
            (w.reorganized_io_energy_kj - 7.3).abs() < 0.4,
            "{}",
            w.reorganized_io_energy_kj
        );
        assert!(w.retained_fraction() < 0.05);
        assert_eq!(w.fio.len(), 4);
    }

    #[test]
    fn missing_kind_is_a_structured_error_not_a_panic() {
        let full = WhatIfAnalysis::run(&ExperimentSetup::noiseless(), 64 * 1024 * 1024)
            .unwrap()
            .fio;
        // Drop one column: the analysis must refuse as a value.
        let partial: Vec<FioResult> = full
            .into_iter()
            .filter(|r| r.kind != FioKind::RandomWrite)
            .collect();
        let err = WhatIfAnalysis::from_results(partial).expect_err("incomplete set");
        assert_eq!(err, WhatIfError::MissingKind(FioKind::RandomWrite));
        assert!(err.to_string().contains("missing"));
        // An empty set fails on the first column it looks for.
        assert!(matches!(
            WhatIfAnalysis::from_results(Vec::new()),
            Err(WhatIfError::MissingKind(_))
        ));
    }

    #[test]
    fn scales_down_with_job_size() {
        let big =
            WhatIfAnalysis::run(&ExperimentSetup::noiseless(), 4 * 1024 * 1024 * 1024).unwrap();
        let small = WhatIfAnalysis::run(&ExperimentSetup::noiseless(), 1024 * 1024 * 1024).unwrap();
        assert!(small.random_io_energy_kj < big.random_io_energy_kj / 3.0);
    }
}
