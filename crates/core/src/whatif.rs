//! The §V-D what-if analysis.
//!
//! The paper's pipelines do sequential I/O, but real applications often
//! don't. Using the fio measurements (Table III), §V-D argues: an
//! application with *random* I/O behavior (one 4 GB read + one 4 GB write
//! pass) would save **242.2 kJ** (238.6 + 3.6) by going in-situ — but if it
//! instead adopted software-directed data reorganization, its passes become
//! sequential and the residual I/O cost is only **7.3 kJ** (4.2 + 3.1),
//! while exploratory analysis is retained.

use greenness_platform::Node;
use greenness_storage::{fio, FioJob, FioKind, FioResult, NullBlockDevice, StorageError};

use crate::experiment::ExperimentSetup;

/// The §V-D numbers, derived from freshly-run fio jobs.
#[derive(Debug, Clone)]
pub struct WhatIfAnalysis {
    /// All four Table III results, in table column order.
    pub fio: Vec<FioResult>,
    /// Energy a random-I/O application spends on its I/O passes — what
    /// in-situ would eliminate, kJ (paper: 242.2).
    pub random_io_energy_kj: f64,
    /// Energy the same passes cost after data reorganization, kJ
    /// (paper: 7.3).
    pub reorganized_io_energy_kj: f64,
}

impl WhatIfAnalysis {
    /// Run the four Table III fio jobs at `total_bytes` (paper: 4 GiB) and
    /// derive the §V-D comparison. A malformed job configuration is reported
    /// as a [`StorageError`] instead of panicking.
    pub fn run(setup: &ExperimentSetup, total_bytes: u64) -> Result<WhatIfAnalysis, StorageError> {
        let mut fio_results = Vec::with_capacity(4);
        for kind in FioKind::ALL {
            // Each job on a fresh node, as separate fio invocations would be.
            let mut node = Node::new(setup.spec.clone());
            node.set_monitoring_overhead_w(setup.monitoring_overhead_w);
            let mut dev = NullBlockDevice::with_capacity_bytes(total_bytes);
            let job = FioJob {
                total_bytes,
                ..FioJob::table3(kind)
            };
            fio_results.push(fio::run(&mut node, &mut dev, &job)?);
        }
        let energy = |k: FioKind| {
            fio_results
                .iter()
                .find(|r| r.kind == k)
                .expect("all four kinds ran")
                .full_system_energy_kj
        };
        Ok(WhatIfAnalysis {
            random_io_energy_kj: energy(FioKind::RandomRead) + energy(FioKind::RandomWrite),
            reorganized_io_energy_kj: energy(FioKind::SequentialRead)
                + energy(FioKind::SequentialWrite),
            fio: fio_results,
        })
    }

    /// The headline ratio: how much of the random-I/O energy reorganization
    /// retains (the paper: 7.3 / 242.2 ≈ 3%).
    pub fn retained_fraction(&self) -> f64 {
        if self.random_io_energy_kj <= 0.0 {
            0.0
        } else {
            self.reorganized_io_energy_kj / self.random_io_energy_kj
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_at_4gib() {
        let w = WhatIfAnalysis::run(&ExperimentSetup::noiseless(), 4 * 1024 * 1024 * 1024).unwrap();
        // Paper: 242.2 kJ vs 7.3 kJ.
        assert!(
            (w.random_io_energy_kj - 242.2).abs() < 10.0,
            "{}",
            w.random_io_energy_kj
        );
        assert!(
            (w.reorganized_io_energy_kj - 7.3).abs() < 0.4,
            "{}",
            w.reorganized_io_energy_kj
        );
        assert!(w.retained_fraction() < 0.05);
        assert_eq!(w.fio.len(), 4);
    }

    #[test]
    fn scales_down_with_job_size() {
        let big =
            WhatIfAnalysis::run(&ExperimentSetup::noiseless(), 4 * 1024 * 1024 * 1024).unwrap();
        let small = WhatIfAnalysis::run(&ExperimentSetup::noiseless(), 1024 * 1024 * 1024).unwrap();
        assert!(small.random_io_energy_kj < big.random_io_energy_kj / 3.0);
    }
}
