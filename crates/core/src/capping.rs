//! Power capping — the governor behind the paper's Figure 9 remark.
//!
//! The paper singles out peak power as "an important metric for power-capped
//! systems". This module provides the runtime those systems use: a governor
//! that, given a full-system budget, DVFS-scales the compute phase so the
//! node never exceeds the cap, and a sweep that quantifies the resulting
//! time/energy trade for the in-situ pipeline (the peak phase is the same
//! simulation in both pipelines, so one sweep covers both).

use greenness_heatsim::{Grid, HeatSolver};
use greenness_platform::{Node, Phase};
use greenness_storage::{FileSystem, FsConfig, MemBlockDevice};
use greenness_viz::{encode_ppm, render_field};
use serde::{Deserialize, Serialize};

use crate::config::PipelineConfig;
use crate::pipeline::{write_chunked, PipelineError};

/// Result of one capped run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CappedRun {
    /// The full-system budget, watts.
    pub cap_w: f64,
    /// The DVFS scale the governor selected for the compute phase.
    pub freq_scale: f64,
    /// Virtual execution time, seconds.
    pub execution_time_s: f64,
    /// Full-system energy, joules.
    pub energy_j: f64,
    /// Observed peak full-system power, watts.
    pub peak_power_w: f64,
}

/// Choose the highest DVFS scale whose simulation-phase draw stays at or
/// under `cap_w` on `node`'s hardware, by bisection over the cube-law power
/// model. Returns `None` if even the lowest clock exceeds the cap (the cap
/// is below the machine's static floor plus minimum dynamic draw).
pub fn freq_scale_for_cap(node: &Node, cfg: &PipelineConfig, cap_w: f64) -> Option<f64> {
    let cells = (cfg.grid_nx * cfg.grid_ny) as u64;
    let draw_at = |scale: f64| -> f64 {
        let mut spec = node.spec().clone();
        spec.cpu = spec.cpu.with_freq_scale(scale);
        let probe = Node::new(spec);
        let (_, draw) = probe.cost_of(cfg.sim_cost.activity(cells));
        draw.system_w()
    };
    if draw_at(1.0) <= cap_w {
        return Some(1.0);
    }
    if draw_at(0.1) > cap_w {
        return None;
    }
    let (mut lo, mut hi) = (0.1f64, 1.0f64);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if draw_at(mid) <= cap_w {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Run the in-situ pipeline under a full-system power cap. Returns
/// `Ok(None)` when the cap is infeasible for this hardware.
///
/// # Errors
/// The usual pipeline solver/storage errors — reachable from CLI flags and
/// serve requests, so reported as values rather than panics.
pub fn run_capped_insitu(
    cfg: &PipelineConfig,
    cap_w: f64,
) -> Result<Option<CappedRun>, PipelineError> {
    let mut node = Node::new(greenness_platform::HardwareSpec::table1());
    let Some(freq_scale) = freq_scale_for_cap(&node, cfg, cap_w) else {
        return Ok(None);
    };
    if cfg.io_interval == 0 {
        return Err(PipelineError::Config(
            "io_interval must be at least 1".to_string(),
        ));
    }
    let scaled_spec = {
        let mut s = node.spec().clone();
        s.cpu = s.cpu.with_freq_scale(freq_scale);
        s
    };
    let scaled = Node::new(scaled_spec);

    let mut fs = FileSystem::format(
        MemBlockDevice::with_capacity_bytes(cfg.device_bytes),
        FsConfig::default(),
    );
    let initial = Grid::from_fn(cfg.grid_nx, cfg.grid_ny, |x, y| {
        0.3 * (-((x - 0.5).powi(2) + (y - 0.4).powi(2)) * 40.0).exp()
    });
    let mut solver = HeatSolver::new(initial, cfg.solver.clone())?;
    let cells = (cfg.grid_nx * cfg.grid_ny) as u64;
    let pixels = (cfg.render.width * cfg.render.height) as u64;

    for step in 1..=cfg.timesteps {
        solver.step();
        let (secs, draw) = scaled.cost_of(cfg.sim_cost.activity(cells));
        node.execute_raw(secs, draw, Phase::Simulation);
        if step % cfg.io_interval != 0 {
            continue;
        }
        // Rendering is memory-bound; its draw sits far below the cap, so it
        // runs at full clock (race-to-idle within the budget).
        node.execute(cfg.render_cost.activity(pixels), Phase::Visualization);
        let image = render_field(solver.grid(), &cfg.render);
        let ppm = encode_ppm(&image);
        write_chunked(
            &mut node,
            &mut fs,
            &format!("frame{step:04}.ppm"),
            &ppm,
            cfg.chunk_bytes,
            Phase::ImageWrite,
        )?;
    }
    fs.sync(&mut node, Phase::CacheControl);
    fs.drop_caches();

    Ok(Some(CappedRun {
        cap_w,
        freq_scale,
        execution_time_s: node.now().as_secs_f64(),
        energy_j: node.timeline().total_energy_j(),
        peak_power_w: node.timeline().peak_power_w(),
    }))
}

/// Sweep a set of caps; infeasible caps are skipped.
///
/// # Errors
/// Propagates the first [`PipelineError`] from a feasible capped run.
pub fn cap_sweep(cfg: &PipelineConfig, caps_w: &[f64]) -> Result<Vec<CappedRun>, PipelineError> {
    let mut out = Vec::with_capacity(caps_w.len());
    for &cap in caps_w {
        if let Some(run) = run_capped_insitu(cfg, cap)? {
            out.push(run);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PipelineConfig {
        let mut c = PipelineConfig::small(1);
        c.timesteps = 6;
        c
    }

    #[test]
    fn governor_respects_the_cap() {
        for cap in [143.0, 135.0, 128.0, 124.0] {
            let run = run_capped_insitu(&cfg(), cap)
                .expect("run ok")
                .expect("feasible cap");
            assert!(
                run.peak_power_w <= cap + 0.5,
                "cap {cap}: peak {} exceeds budget",
                run.peak_power_w
            );
        }
    }

    #[test]
    fn generous_caps_run_at_full_clock() {
        let run = run_capped_insitu(&cfg(), 200.0)
            .expect("run ok")
            .expect("feasible");
        assert_eq!(run.freq_scale, 1.0);
    }

    #[test]
    fn tighter_caps_cost_time() {
        let loose = run_capped_insitu(&cfg(), 143.0)
            .expect("run ok")
            .expect("feasible");
        let tight = run_capped_insitu(&cfg(), 125.0)
            .expect("run ok")
            .expect("feasible");
        assert!(tight.freq_scale < loose.freq_scale);
        assert!(tight.execution_time_s > loose.execution_time_s);
    }

    #[test]
    fn infeasible_caps_are_rejected() {
        // Below the static floor (≈105 W) no clock can satisfy the budget.
        assert!(run_capped_insitu(&cfg(), 100.0).expect("run ok").is_none());
    }

    #[test]
    fn sweep_skips_infeasible_points_and_is_monotone_in_time() {
        let runs = cap_sweep(&cfg(), &[100.0, 125.0, 135.0, 150.0]).expect("sweep ok");
        assert_eq!(runs.len(), 3, "the 100 W point must be dropped");
        for pair in runs.windows(2) {
            assert!(
                pair[0].execution_time_s >= pair[1].execution_time_s - 1e-9,
                "looser caps must not be slower: {pair:?}"
            );
        }
    }
}
