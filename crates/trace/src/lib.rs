//! Deterministic observability for the greenness simulator.
//!
//! The paper's argument is an *attribution* argument — a joule belongs to a
//! phase, a device, a byte movement (§V-C's static-vs-dynamic split). The
//! simulator computes those attributions on virtual time, which means a trace
//! of the run can be **exactly** reproducible: no wall clocks, no thread
//! interleavings, no sampling jitter. This crate provides the two halves of
//! that observability layer:
//!
//! * an **event journal** — virtual-timestamped JSONL spans
//!   (`begin`/`end`) and instant events emitted through the [`TraceSink`]
//!   trait. When tracing is off the hot path costs a single branch on an
//!   `Option`.
//! * a **metrics registry** — named monotonic counters and gauges
//!   ([`MetricsRegistry`]), snapshotted per phase and per sweep job.
//!
//! The [`summarize`] module parses a journal back, reconstructs per-phase
//! power/energy tables with bit-identical arithmetic to
//! `Timeline::phase_energy`, and audits span nesting and timestamp
//! monotonicity — a built-in consistency check on the measurement path.
//!
//! The crate is dependency-free and sits at the bottom of the workspace
//! stack so every other crate can emit into it. Timestamps are integer
//! nanoseconds of virtual time (the same representation as
//! `platform::SimTime`), names are plain strings, and all JSON is emitted
//! with round-trippable `{:?}` float formatting so journals are
//! byte-identical across `--jobs` values.

pub mod hash;
mod json;
mod metrics;
mod sink;
pub mod summarize;
mod tracer;

pub use json::{escape_json, fmt_f64, parse_flat_object, JsonValue};
pub use metrics::{percentile_nearest_rank, Histogram, MetricsRegistry, MetricsSnapshot};
pub use sink::{EventKind, JsonlSink, MemoryHandle, MemorySink, TraceEvent, TraceSink, Value};
pub use tracer::{TraceOutput, Tracer};

/// Version tag written as the first line of every journal file.
pub const TRACE_SCHEMA: &str = "greenness-trace/v1";
/// Version tag embedded in every metrics file.
pub const METRICS_SCHEMA: &str = "greenness-metrics/v1";

/// The header line (with trailing newline) that starts a journal file.
pub fn journal_header() -> String {
    format!("{{\"schema\":\"{TRACE_SCHEMA}\"}}\n")
}

/// Wrap one or more drained metrics registries into a versioned metrics
/// file. Each entry is a `(label, registry)` pair — a single run uses one
/// entry, a sweep uses one entry per job in job-id order.
pub fn metrics_file_json(entries: &[(String, MetricsRegistry)]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{METRICS_SCHEMA}\",\n"));
    s.push_str("  \"runs\": [\n");
    for (i, (label, reg)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"label\": \"{}\", \"metrics\": {}}}{}\n",
            escape_json(label),
            reg.to_json(),
            comma
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_is_inert_and_cheap() {
        let t = Tracer::off();
        assert!(!t.is_on());
        t.count("cache.hits", 3);
        t.begin(0, "phase", vec![("phase", Value::from("simulation"))]);
        t.end(10, "phase", vec![]);
        assert_eq!(t.counter("cache.hits"), 0);
        assert!(t.drain().is_none());
    }

    #[test]
    fn jsonl_sink_renders_deterministic_lines() {
        let t = Tracer::jsonl();
        t.begin(0, "run", vec![("pipeline", Value::from("post"))]);
        t.instant(
            1_500_000_000,
            "activity",
            vec![
                ("kind", Value::from("disk_read")),
                ("bytes", Value::from(4096u64)),
                ("secs", Value::from(0.25f64)),
            ],
        );
        t.count("disk.bytes_read", 4096);
        t.end(2_000_000_000, "run", vec![]);
        let out = t.drain().expect("on");
        assert_eq!(
            out.journal,
            "{\"t_ns\":0,\"ev\":\"begin\",\"name\":\"run\",\"pipeline\":\"post\"}\n\
             {\"t_ns\":1500000000,\"ev\":\"event\",\"name\":\"activity\",\"kind\":\"disk_read\",\"bytes\":4096,\"secs\":0.25}\n\
             {\"t_ns\":2000000000,\"ev\":\"end\",\"name\":\"run\"}\n"
        );
        assert_eq!(out.metrics.counter("disk.bytes_read"), 4096);
        // Drained: a second drain sees an empty journal.
        assert_eq!(t.drain().expect("still on").journal, "");
    }

    #[test]
    fn memory_sink_exposes_structured_events() {
        let (t, handle) = Tracer::memory();
        t.begin(5, "phase", vec![("phase", Value::from("write"))]);
        t.end(9, "phase", vec![]);
        let events = handle.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!(events[0].t_ns, 5);
        assert_eq!(events[1].kind, EventKind::End);
        assert_eq!(events[1].name, "phase");
    }

    #[test]
    fn metrics_registry_counts_and_snapshots() {
        let mut m = MetricsRegistry::default();
        m.incr("solver.steps", 10);
        m.incr("solver.steps", 5);
        m.set_gauge("energy.system_j", 42.5);
        m.snapshot("phase:simulation");
        m.incr("solver.steps", 1);
        assert_eq!(m.counter("solver.steps"), 16);
        assert_eq!(m.snapshots().len(), 1);
        assert_eq!(m.snapshots()[0].counters["solver.steps"], 15);
        let json = m.to_json();
        assert!(json.contains("\"solver.steps\":16"));
        assert!(json.contains("\"energy.system_j\":42.5"));
        assert!(json.contains("\"phase:simulation\""));
    }

    #[test]
    fn metrics_file_wraps_schema() {
        let mut m = MetricsRegistry::default();
        m.incr("a", 1);
        let f = metrics_file_json(&[("job:0".to_string(), m)]);
        assert!(f.contains(METRICS_SCHEMA));
        assert!(f.contains("\"label\": \"job:0\""));
    }
}
