//! BLAKE2s-256 (RFC 7693), implemented in-repo — the workspace vendors no
//! crypto crate, and the cache only needs a stable, well-distributed content
//! address, not a certified implementation. Unkeyed, 32-byte digest.

/// SHA-256 initialization vector, shared by BLAKE2s (RFC 7693 §2.6).
const IV: [u32; 8] = [
    0x6A09_E667,
    0xBB67_AE85,
    0x3C6E_F372,
    0xA54F_F53A,
    0x510E_527F,
    0x9B05_688C,
    0x1F83_D9AB,
    0x5BE0_CD19,
];

/// Message-word schedule, one permutation per round (RFC 7693 §2.7).
const SIGMA: [[usize; 16]; 10] = [
    [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
    [14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3],
    [11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4],
    [7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8],
    [9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13],
    [2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9],
    [12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11],
    [13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10],
    [6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5],
    [10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0],
];

/// Incremental BLAKE2s-256 hasher.
pub struct Blake2s256 {
    h: [u32; 8],
    t: u64,
    buf: [u8; 64],
    buflen: usize,
}

impl Default for Blake2s256 {
    fn default() -> Self {
        let mut h = IV;
        // Parameter block word 0: digest length 32, no key, fanout 1, depth 1.
        h[0] ^= 0x0101_0020;
        Blake2s256 {
            h,
            t: 0,
            buf: [0; 64],
            buflen: 0,
        }
    }
}

impl Blake2s256 {
    /// Absorb `data`. The buffered block is only compressed once more input
    /// arrives, so the final block is always available for the last-block
    /// flag at [`finalize`](Self::finalize) time.
    pub fn update(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            if self.buflen == 64 {
                self.t += 64;
                compress(&mut self.h, &self.buf, self.t, false);
                self.buflen = 0;
            }
            let n = (64 - self.buflen).min(data.len());
            self.buf[self.buflen..self.buflen + n].copy_from_slice(&data[..n]);
            self.buflen += n;
            data = &data[n..];
        }
    }

    /// Pad and compress the final block, returning the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        self.t += self.buflen as u64;
        self.buf[self.buflen..].fill(0);
        compress(&mut self.h, &self.buf, self.t, true);
        let mut out = [0u8; 32];
        for (i, word) in self.h.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }
}

/// Text can be streamed straight into the hasher (the cache-key path
/// serializes canonical JSON directly into it, skipping the intermediate
/// `String`).
impl std::fmt::Write for Blake2s256 {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.update(s.as_bytes());
        Ok(())
    }
}

/// One-shot digest.
pub fn blake2s256(data: &[u8]) -> [u8; 32] {
    let mut h = Blake2s256::default();
    h.update(data);
    h.finalize()
}

/// Lowercase hex rendering of a digest.
pub fn hex(digest: &[u8; 32]) -> String {
    let mut s = String::with_capacity(64);
    for b in digest {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn g(v: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize, x: u32, y: u32) {
    v[a] = v[a].wrapping_add(v[b]).wrapping_add(x);
    v[d] = (v[d] ^ v[a]).rotate_right(16);
    v[c] = v[c].wrapping_add(v[d]);
    v[b] = (v[b] ^ v[c]).rotate_right(12);
    v[a] = v[a].wrapping_add(v[b]).wrapping_add(y);
    v[d] = (v[d] ^ v[a]).rotate_right(8);
    v[c] = v[c].wrapping_add(v[d]);
    v[b] = (v[b] ^ v[c]).rotate_right(7);
}

fn compress(h: &mut [u32; 8], block: &[u8; 64], t: u64, last: bool) {
    let mut m = [0u32; 16];
    for (word, chunk) in m.iter_mut().zip(block.chunks_exact(4)) {
        *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    let mut v = [0u32; 16];
    v[..8].copy_from_slice(h);
    v[8..].copy_from_slice(&IV);
    v[12] ^= t as u32;
    v[13] ^= (t >> 32) as u32;
    if last {
        v[14] ^= 0xFFFF_FFFF;
    }
    for s in &SIGMA {
        g(&mut v, 0, 4, 8, 12, m[s[0]], m[s[1]]);
        g(&mut v, 1, 5, 9, 13, m[s[2]], m[s[3]]);
        g(&mut v, 2, 6, 10, 14, m[s[4]], m[s[5]]);
        g(&mut v, 3, 7, 11, 15, m[s[6]], m[s[7]]);
        g(&mut v, 0, 5, 10, 15, m[s[8]], m[s[9]]);
        g(&mut v, 1, 6, 11, 12, m[s[10]], m[s[11]]);
        g(&mut v, 2, 7, 8, 13, m[s[12]], m[s[13]]);
        g(&mut v, 3, 4, 9, 14, m[s[14]], m[s[15]]);
    }
    for i in 0..8 {
        h[i] ^= v[i] ^ v[i + 8];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc7693_test_vectors() {
        // RFC 7693 Appendix B plus the standard empty-input vector.
        assert_eq!(
            hex(&blake2s256(b"abc")),
            "508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982"
        );
        assert_eq!(
            hex(&blake2s256(b"")),
            "69217a3079908094e11121d042354a7c1f55b6482ca1a51e1b250dfd1ed0eef9"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let whole = blake2s256(&data);
        for chunk in [1usize, 3, 63, 64, 65, 128, 999] {
            let mut h = Blake2s256::default();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn exact_block_multiples_hash_correctly() {
        // 64- and 128-byte inputs exercise the "buffered block is the last
        // block" path.
        let a = blake2s256(&[0u8; 64]);
        let b = blake2s256(&[0u8; 128]);
        assert_ne!(a, b);
        let mut h = Blake2s256::default();
        h.update(&[0u8; 64]);
        h.update(&[0u8; 64]);
        assert_eq!(h.finalize(), b);
    }
}
