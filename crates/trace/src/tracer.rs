//! The cloneable tracer handle threaded through the simulator.

use std::sync::{Arc, Mutex, MutexGuard};

use crate::metrics::MetricsRegistry;
use crate::sink::{EventKind, JsonlSink, MemoryHandle, MemorySink, TraceEvent, TraceSink, Value};

struct Inner {
    sink: Box<dyn TraceSink>,
    metrics: MetricsRegistry,
}

/// A shared handle to one run's journal sink and metrics registry.
///
/// `Tracer::off()` (the default) is a `None` inside — every emit/count call
/// then costs exactly one branch and touches nothing else, so instrumented
/// hot paths stay hot. Clones share the same sink and registry;
/// `Arc<Mutex<_>>` keeps types like `Node` `Send` even though a tracer is
/// only ever used from the worker thread that owns its run.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<Inner>>>,
}

/// Everything a traced run produced, taken by [`Tracer::drain`].
#[derive(Debug, Clone)]
pub struct TraceOutput {
    /// JSONL event lines (no schema header; see [`crate::journal_header`]).
    pub journal: String,
    /// The drained metrics registry.
    pub metrics: MetricsRegistry,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("on", &self.is_on()).finish()
    }
}

impl Tracer {
    /// The disabled tracer: records nothing, costs one branch per call.
    pub fn off() -> Self {
        Tracer { inner: None }
    }

    /// A tracer recording into `sink`.
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(Inner {
                sink,
                metrics: MetricsRegistry::default(),
            }))),
        }
    }

    /// A tracer rendering JSONL lines into an in-memory buffer.
    pub fn jsonl() -> Self {
        Tracer::new(Box::new(JsonlSink::new()))
    }

    /// A tracer storing structured events, plus the handle observing them.
    pub fn memory() -> (Self, MemoryHandle) {
        let (sink, handle) = MemorySink::new();
        (Tracer::new(Box::new(sink)), handle)
    }

    /// Whether tracing is enabled.
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, Inner>> {
        self.inner.as_ref().map(|i| i.lock().expect("tracer lock"))
    }

    fn record(
        &self,
        t_ns: u64,
        kind: EventKind,
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) {
        if let Some(mut inner) = self.lock() {
            inner.sink.record(&TraceEvent {
                t_ns,
                kind,
                name,
                fields,
            });
        }
    }

    /// Open a span.
    pub fn begin(&self, t_ns: u64, name: &'static str, fields: Vec<(&'static str, Value)>) {
        self.record(t_ns, EventKind::Begin, name, fields);
    }

    /// Close the innermost open span (must carry the same `name`).
    pub fn end(&self, t_ns: u64, name: &'static str, fields: Vec<(&'static str, Value)>) {
        self.record(t_ns, EventKind::End, name, fields);
    }

    /// Record an instant event.
    pub fn instant(&self, t_ns: u64, name: &'static str, fields: Vec<(&'static str, Value)>) {
        self.record(t_ns, EventKind::Instant, name, fields);
    }

    /// Add `by` to counter `name`.
    pub fn count(&self, name: &'static str, by: u64) {
        if let Some(mut inner) = self.lock() {
            inner.metrics.incr(name, by);
        }
    }

    /// Set gauge `name`.
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(mut inner) = self.lock() {
            inner.metrics.set_gauge(name, value);
        }
    }

    /// Current counter value (0 when off or never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().map_or(0, |inner| inner.metrics.counter(name))
    }

    /// Record a labelled metrics snapshot.
    pub fn snapshot(&self, label: &str) {
        if let Some(mut inner) = self.lock() {
            inner.metrics.snapshot(label);
        }
    }

    /// Take the journal buffer and metrics registry out of the tracer.
    /// Returns `None` when tracing is off.
    pub fn drain(&self) -> Option<TraceOutput> {
        self.lock().map(|mut inner| TraceOutput {
            journal: inner.sink.drain_jsonl(),
            metrics: std::mem::take(&mut inner.metrics),
        })
    }
}
