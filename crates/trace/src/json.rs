//! Hand-rolled JSON helpers: the workspace vendors no `serde_json`, so the
//! journal writer emits lines by string assembly and the summarizer parses
//! them back with a minimal flat-object scanner. Floats are formatted with
//! `{:?}` (shortest round-trip), so a value survives emit → parse exactly —
//! the property the 1e-9 J energy-reconstruction audit relies on.

/// Escape a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Round-trippable float formatting; non-finite values become `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// A scalar from a flat JSON object. Numbers keep their raw text so callers
/// can choose integer or float interpretation without precision loss.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// Raw number token, e.g. `"1500000000"` or `"0.25"`.
    Num(String),
    /// Decoded string contents.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// Number as f64 (exact for round-trip `{:?}` output).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Number as u64 (integral tokens only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// String contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a single-line flat JSON object (string/number/bool/null values, no
/// nesting) into key/value pairs in source order. This is all the journal
/// format needs; anything else is a malformed line.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let bytes = line.trim().as_bytes();
    let mut i = 0usize;
    let err = |msg: &str, at: usize| format!("{msg} at byte {at}");
    let skip_ws = |bytes: &[u8], mut i: usize| {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        i
    };
    i = skip_ws(bytes, i);
    if i >= bytes.len() || bytes[i] != b'{' {
        return Err(err("expected '{'", i));
    }
    i += 1;
    let mut out = Vec::new();
    loop {
        i = skip_ws(bytes, i);
        if i < bytes.len() && bytes[i] == b'}' {
            i += 1;
            break;
        }
        let (key, next) = parse_string(bytes, i)?;
        i = skip_ws(bytes, next);
        if i >= bytes.len() || bytes[i] != b':' {
            return Err(err("expected ':'", i));
        }
        i = skip_ws(bytes, i + 1);
        let (value, next) = parse_value(bytes, i)?;
        out.push((key, value));
        i = skip_ws(bytes, next);
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {
                i += 1;
                break;
            }
            _ => return Err(err("expected ',' or '}'", i)),
        }
    }
    if skip_ws(bytes, i) != bytes.len() {
        return Err(err("trailing garbage", i));
    }
    Ok(out)
}

fn parse_string(bytes: &[u8], mut i: usize) -> Result<(String, usize), String> {
    if bytes.get(i) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {i}"));
    }
    i += 1;
    let mut s = String::new();
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((s, i + 1)),
            b'\\' => {
                i += 1;
                match bytes.get(i) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(i + 1..i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {i}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {i}"))?;
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        i += 4;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
                i += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (journal strings are UTF-8).
                let rest = std::str::from_utf8(&bytes[i..])
                    .map_err(|_| format!("invalid UTF-8 at byte {i}"))?;
                let c = rest.chars().next().ok_or("truncated string")?;
                s.push(c);
                i += c.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_value(bytes: &[u8], i: usize) -> Result<(JsonValue, usize), String> {
    match bytes.get(i) {
        Some(b'"') => {
            let (s, next) = parse_string(bytes, i)?;
            Ok((JsonValue::Str(s), next))
        }
        Some(b't') if bytes[i..].starts_with(b"true") => Ok((JsonValue::Bool(true), i + 4)),
        Some(b'f') if bytes[i..].starts_with(b"false") => Ok((JsonValue::Bool(false), i + 5)),
        Some(b'n') if bytes[i..].starts_with(b"null") => Ok((JsonValue::Null, i + 4)),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let mut j = i;
            while j < bytes.len()
                && (bytes[j].is_ascii_digit()
                    || matches!(bytes[j], b'-' | b'+' | b'.' | b'e' | b'E'))
            {
                j += 1;
            }
            let raw = std::str::from_utf8(&bytes[i..j]).expect("ascii");
            Ok((JsonValue::Num(raw.to_string()), j))
        }
        _ => Err(format!("unexpected value at byte {i}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_object_round_trips() {
        let line =
            r#"{"t_ns":1500000000,"ev":"event","name":"activity","secs":0.25,"ok":true,"x":null}"#;
        let kv = parse_flat_object(line).unwrap();
        assert_eq!(kv[0].0, "t_ns");
        assert_eq!(kv[0].1.as_u64(), Some(1_500_000_000));
        assert_eq!(kv[1].1.as_str(), Some("event"));
        assert_eq!(kv[3].1.as_f64(), Some(0.25));
        assert_eq!(kv[4].1, JsonValue::Bool(true));
        assert_eq!(kv[5].1, JsonValue::Null);
    }

    #[test]
    fn escaped_strings_decode() {
        let line = "{\"k\":\"a\\\"b\\\\c\\n\\u0041\"}";
        let kv = parse_flat_object(line).unwrap();
        assert_eq!(kv[0].1.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn f64_round_trip_is_exact() {
        for v in [0.1, 1.0 / 3.0, 1e-300, 123456.789012345, -0.0, 15.258789e-6] {
            let s = fmt_f64(v);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_flat_object("not json").is_err());
        assert!(parse_flat_object("{\"a\":1").is_err());
        assert!(parse_flat_object("{\"a\":{}}").is_err());
    }
}
