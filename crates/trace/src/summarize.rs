//! Journal post-processing: reconstruct per-phase power/energy tables from a
//! `greenness-trace/v1` journal and audit the journal's structure.
//!
//! The reconstruction replays the `"segment"` dump events (one per merged
//! timeline segment) with **the same arithmetic** `Timeline::phase_energy`
//! uses — per-channel `draw_w * secs` accumulated in segment order, with
//! `secs = dur_ns / 1e9` — so a well-formed journal reproduces the
//! simulator's per-phase energy bit-for-bit. The `"phase_summary"` events
//! the run emits from the live `Timeline` serve as the cross-check: any
//! disagreement beyond 1e-9 J is reported as an audit error.
//!
//! The audit also verifies span structure: every `begin` has a matching
//! `end` (innermost-first), timestamps are monotone non-decreasing within a
//! job, and job spans do not nest.

use crate::json::{parse_flat_object, JsonValue};
use crate::TRACE_SCHEMA;

/// One row of the reconstructed per-phase table (aggregated over all jobs
/// in the journal).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// Phase label, e.g. `"simulation"`.
    pub phase: String,
    /// Total wall (virtual) seconds spent in the phase.
    pub time_s: f64,
    /// Reconstructed system energy in joules.
    pub energy_j: f64,
    /// System energy as reported by the run's `phase_summary` audit events
    /// (`None` if the journal carries no summary for this phase).
    pub reported_j: Option<f64>,
}

impl PhaseRow {
    /// Mean system power over the phase.
    pub fn avg_power_w(&self) -> f64 {
        if self.time_s > 0.0 {
            self.energy_j / self.time_s
        } else {
            0.0
        }
    }
}

/// Result of summarizing a journal.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Total event lines parsed (excluding the schema header).
    pub events: usize,
    /// Number of sweep-job spans (0 for a single-run journal).
    pub jobs: usize,
    /// Per-phase rows in first-appearance order.
    pub rows: Vec<PhaseRow>,
    /// Reconstructed total system energy across all phases and jobs.
    pub total_energy_j: f64,
    /// Structural and consistency violations found by the audit (empty for
    /// a healthy journal).
    pub audit_errors: Vec<String>,
    /// Spans whose begin/end pairing was checked.
    pub spans_checked: usize,
    /// (job, phase) pairs whose reconstructed energy was cross-checked
    /// against a `phase_summary` event.
    pub phases_checked: usize,
}

impl Summary {
    /// True when the audit found no violations.
    pub fn audit_ok(&self) -> bool {
        self.audit_errors.is_empty()
    }

    /// Render the per-phase table as aligned text.
    pub fn table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<14} {:>12} {:>16} {:>12}\n",
            "phase", "time [s]", "energy [J]", "avg [W]"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<14} {:>12.3} {:>16.6} {:>12.3}\n",
                r.phase,
                r.time_s,
                r.energy_j,
                r.avg_power_w()
            ));
        }
        s.push_str(&format!(
            "{:<14} {:>12} {:>16.6}\n",
            "total", "", self.total_energy_j
        ));
        s
    }
}

/// Per-phase accumulator replaying segment events with `Timeline`'s exact
/// arithmetic.
#[derive(Debug, Clone, Default)]
struct PhaseAcc {
    dur_ns: u64,
    package_j: f64,
    dram_j: f64,
    disk_j: f64,
    net_j: f64,
    board_j: f64,
    reported_j: Option<f64>,
}

impl PhaseAcc {
    fn system_j(&self) -> f64 {
        // Same association order as EnergyBreakdown::system_j.
        self.package_j + self.dram_j + self.disk_j + self.net_j + self.board_j
    }
}

#[derive(Debug, Default)]
struct JobScope {
    // First-appearance ordered (phase label → accumulator).
    phases: Vec<(String, PhaseAcc)>,
}

impl JobScope {
    fn acc(&mut self, phase: &str) -> &mut PhaseAcc {
        if let Some(i) = self.phases.iter().position(|(p, _)| p == phase) {
            &mut self.phases[i].1
        } else {
            self.phases.push((phase.to_string(), PhaseAcc::default()));
            &mut self.phases.last_mut().expect("just pushed").1
        }
    }
}

fn field<'a>(kv: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    kv.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Parse and audit a journal (schema header + JSONL event lines).
///
/// Returns `Err` only for unreadable input (missing/unknown schema header,
/// unparseable line); semantic problems land in [`Summary::audit_errors`].
pub fn summarize(journal: &str) -> Result<Summary, String> {
    let mut lines = journal
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or("empty journal")?;
    let header_kv = parse_flat_object(header).map_err(|e| format!("bad schema header: {e}"))?;
    match field(&header_kv, "schema").and_then(JsonValue::as_str) {
        Some(s) if s == TRACE_SCHEMA => {}
        Some(s) => return Err(format!("unsupported schema {s:?} (want {TRACE_SCHEMA:?})")),
        None => return Err("journal missing schema header".to_string()),
    }

    let mut sum = Summary::default();
    // Span stack: (name, open t_ns).
    let mut stack: Vec<(String, u64)> = Vec::new();
    let mut last_t: u64 = 0;
    let mut scope = JobScope::default();
    let mut in_job = false;

    let close_scope = |sum: &mut Summary, scope: JobScope| {
        for (phase, acc) in scope.phases {
            let energy = acc.system_j();
            let time_s = acc.dur_ns as f64 / 1e9;
            if let Some(reported) = acc.reported_j {
                sum.phases_checked += 1;
                if (energy - reported).abs() > 1e-9 {
                    sum.audit_errors.push(format!(
                        "phase {phase:?}: reconstructed {energy} J disagrees with \
                         reported {reported} J by more than 1e-9"
                    ));
                }
            }
            sum.total_energy_j += energy;
            if let Some(row) = sum.rows.iter_mut().find(|r| r.phase == phase) {
                row.time_s += time_s;
                row.energy_j += energy;
                if let Some(r) = acc.reported_j {
                    *row.reported_j.get_or_insert(0.0) += r;
                }
            } else {
                sum.rows.push(PhaseRow {
                    phase,
                    time_s,
                    energy_j: energy,
                    reported_j: acc.reported_j,
                });
            }
        }
    };

    for (lineno, line) in lines {
        let kv = parse_flat_object(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        sum.events += 1;
        let t_ns = field(&kv, "t_ns")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("line {}: missing t_ns", lineno + 1))?;
        let ev = field(&kv, "ev")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("line {}: missing ev", lineno + 1))?
            .to_string();
        let name = field(&kv, "name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("line {}: missing name", lineno + 1))?
            .to_string();

        // Each sweep job restarts virtual time at zero.
        let resets_clock = ev == "begin" && name == "job";
        if resets_clock {
            if !stack.is_empty() {
                sum.audit_errors.push(format!(
                    "line {}: job begins inside open span {:?}",
                    lineno + 1,
                    stack.last().map(|(n, _)| n.clone()).unwrap_or_default()
                ));
                stack.clear();
            }
            if in_job {
                close_scope(&mut sum, std::mem::take(&mut scope));
            }
            in_job = true;
            sum.jobs += 1;
            last_t = 0;
        } else if t_ns < last_t {
            sum.audit_errors.push(format!(
                "line {}: timestamp {t_ns} precedes previous {last_t}",
                lineno + 1
            ));
        }
        last_t = last_t.max(t_ns);

        match ev.as_str() {
            "begin" => stack.push((name, t_ns)),
            "end" => match stack.pop() {
                Some((open, t0)) => {
                    sum.spans_checked += 1;
                    if open != name {
                        sum.audit_errors.push(format!(
                            "line {}: end {name:?} closes open span {open:?}",
                            lineno + 1
                        ));
                    }
                    if t_ns < t0 {
                        sum.audit_errors.push(format!(
                            "line {}: span {name:?} ends at {t_ns} before it began at {t0}",
                            lineno + 1
                        ));
                    }
                    if name == "job" {
                        close_scope(&mut sum, std::mem::take(&mut scope));
                        in_job = false;
                    }
                }
                None => sum
                    .audit_errors
                    .push(format!("line {}: end {name:?} without begin", lineno + 1)),
            },
            "event" => match name.as_str() {
                "segment" => {
                    let phase = field(&kv, "phase")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("other")
                        .to_string();
                    let dur_ns = field(&kv, "dur_ns")
                        .and_then(JsonValue::as_u64)
                        .unwrap_or(0);
                    let secs = dur_ns as f64 / 1e9;
                    let w = |key: &str| field(&kv, key).and_then(JsonValue::as_f64).unwrap_or(0.0);
                    let acc = scope.acc(&phase);
                    acc.dur_ns += dur_ns;
                    // Exactly Timeline::phase_energy's fold: per-channel
                    // draw × secs added in segment order.
                    acc.package_j += w("package_w") * secs;
                    acc.dram_j += w("dram_w") * secs;
                    acc.disk_j += w("disk_w") * secs;
                    acc.net_j += w("net_w") * secs;
                    acc.board_j += w("board_w") * secs;
                }
                "phase_summary" => {
                    let phase = field(&kv, "phase")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("other")
                        .to_string();
                    let system = field(&kv, "system_j").and_then(JsonValue::as_f64);
                    scope.acc(&phase).reported_j = system;
                }
                _ => {}
            },
            other => {
                sum.audit_errors
                    .push(format!("line {}: unknown ev {other:?}", lineno + 1));
            }
        }
    }

    if !stack.is_empty() {
        let open: Vec<String> = stack.iter().map(|(n, _)| n.clone()).collect();
        sum.audit_errors
            .push(format!("journal ends with open spans: {open:?}"));
    }
    close_scope(&mut sum, scope);
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal_header;

    fn seg(t: u64, dur: u64, phase: &str, pkg: f64) -> String {
        format!(
            "{{\"t_ns\":{t},\"ev\":\"event\",\"name\":\"segment\",\"start_ns\":0,\
             \"dur_ns\":{dur},\"phase\":\"{phase}\",\"package_w\":{pkg:?},\
             \"dram_w\":0.0,\"disk_w\":0.0,\"net_w\":0.0,\"board_w\":0.0}}\n"
        )
    }

    #[test]
    fn reconstructs_energy_and_passes_audit() {
        let mut j = journal_header();
        j.push_str("{\"t_ns\":0,\"ev\":\"begin\",\"name\":\"run\"}\n");
        j.push_str(&seg(10, 2_000_000_000, "simulation", 100.0));
        j.push_str(&seg(10, 1_000_000_000, "write", 50.0));
        j.push_str(
            "{\"t_ns\":10,\"ev\":\"event\",\"name\":\"phase_summary\",\
             \"phase\":\"simulation\",\"system_j\":200.0}\n",
        );
        j.push_str("{\"t_ns\":10,\"ev\":\"end\",\"name\":\"run\"}\n");
        let s = summarize(&j).unwrap();
        assert!(s.audit_ok(), "{:?}", s.audit_errors);
        assert_eq!(s.rows.len(), 2);
        assert_eq!(s.rows[0].phase, "simulation");
        assert_eq!(s.rows[0].energy_j, 200.0);
        assert_eq!(s.rows[0].reported_j, Some(200.0));
        assert_eq!(s.rows[1].energy_j, 50.0);
        assert_eq!(s.total_energy_j, 250.0);
        assert_eq!(s.phases_checked, 1);
        assert_eq!(s.spans_checked, 1);
    }

    #[test]
    fn detects_unbalanced_spans_and_backwards_time() {
        let mut j = journal_header();
        j.push_str("{\"t_ns\":5,\"ev\":\"begin\",\"name\":\"run\"}\n");
        j.push_str("{\"t_ns\":6,\"ev\":\"begin\",\"name\":\"phase\"}\n");
        j.push_str("{\"t_ns\":3,\"ev\":\"end\",\"name\":\"measure\"}\n");
        let s = summarize(&j).unwrap();
        assert!(!s.audit_ok());
        assert!(s.audit_errors.iter().any(|e| e.contains("precedes")));
        assert!(s
            .audit_errors
            .iter()
            .any(|e| e.contains("closes open span")));
        assert!(s.audit_errors.iter().any(|e| e.contains("open spans")));
    }

    #[test]
    fn mismatched_summary_is_flagged() {
        let mut j = journal_header();
        j.push_str(&seg(0, 1_000_000_000, "read", 10.0));
        j.push_str(
            "{\"t_ns\":0,\"ev\":\"event\",\"name\":\"phase_summary\",\
             \"phase\":\"read\",\"system_j\":11.0}\n",
        );
        let s = summarize(&j).unwrap();
        assert!(s.audit_errors.iter().any(|e| e.contains("disagrees")));
    }

    #[test]
    fn job_spans_reset_the_clock_and_scope() {
        let mut j = journal_header();
        for id in 0..2 {
            j.push_str(&format!(
                "{{\"t_ns\":0,\"ev\":\"begin\",\"name\":\"job\",\"job\":{id}}}\n"
            ));
            j.push_str(&seg(0, 1_000_000_000, "simulation", 100.0));
            j.push_str(&format!(
                "{{\"t_ns\":1000000000,\"ev\":\"end\",\"name\":\"job\",\"job\":{id}}}\n"
            ));
        }
        let s = summarize(&j).unwrap();
        assert!(s.audit_ok(), "{:?}", s.audit_errors);
        assert_eq!(s.jobs, 2);
        assert_eq!(s.rows.len(), 1);
        assert_eq!(s.rows[0].energy_j, 200.0);
    }

    #[test]
    fn rejects_missing_schema() {
        assert!(summarize("").is_err());
        assert!(summarize("{\"schema\":\"something-else/v9\"}\n").is_err());
        assert!(summarize("{\"t_ns\":0,\"ev\":\"begin\",\"name\":\"run\"}\n").is_err());
    }
}
