//! Named monotonic counters and gauges, snapshotted at phase and job
//! boundaries. Keys are `&'static str` so incrementing a counter on the hot
//! path allocates nothing; `BTreeMap` keeps JSON output deterministically
//! ordered.

use std::collections::BTreeMap;

use crate::json::{escape_json, fmt_f64};

/// Point-in-time copy of the registry taken by [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Label, e.g. `"phase:simulation"` or `"run"`.
    pub label: String,
    /// Counter values at snapshot time.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge values at snapshot time.
    pub gauges: BTreeMap<&'static str, f64>,
}

/// The metrics registry: monotonic counters, last-write-wins gauges, and an
/// ordered list of snapshots.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    snapshots: Vec<MetricsSnapshot>,
}

impl MetricsRegistry {
    /// Add `by` to counter `name` (creating it at zero).
    pub fn incr(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Record a labelled snapshot of the current counters and gauges.
    pub fn snapshot(&mut self, label: &str) {
        self.snapshots.push(MetricsSnapshot {
            label: label.to_string(),
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
        });
    }

    /// Snapshots in recording order.
    pub fn snapshots(&self) -> &[MetricsSnapshot] {
        &self.snapshots
    }

    /// Compact single-line JSON object:
    /// `{"counters":{...},"gauges":{...},"snapshots":[...]}`. The
    /// `greenness-metrics/v1` schema tag is added by the file wrapper
    /// ([`crate::metrics_file_json`]).
    pub fn to_json(&self) -> String {
        fn counters_json(m: &BTreeMap<&'static str, u64>) -> String {
            let body: Vec<String> = m.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
            format!("{{{}}}", body.join(","))
        }
        fn gauges_json(m: &BTreeMap<&'static str, f64>) -> String {
            let body: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("\"{k}\":{}", fmt_f64(*v)))
                .collect();
            format!("{{{}}}", body.join(","))
        }
        let snaps: Vec<String> = self
            .snapshots
            .iter()
            .map(|s| {
                format!(
                    "{{\"label\":\"{}\",\"counters\":{},\"gauges\":{}}}",
                    escape_json(&s.label),
                    counters_json(&s.counters),
                    gauges_json(&s.gauges)
                )
            })
            .collect();
        format!(
            "{{\"counters\":{},\"gauges\":{},\"snapshots\":[{}]}}",
            counters_json(&self.counters),
            gauges_json(&self.gauges),
            snaps.join(",")
        )
    }
}
