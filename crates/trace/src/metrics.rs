//! Named monotonic counters, gauges, and latency histograms, snapshotted at
//! phase and job boundaries. Keys are `&'static str` so incrementing a
//! counter on the hot path allocates nothing; `BTreeMap` keeps JSON output
//! deterministically ordered.

use std::collections::BTreeMap;

use crate::json::{escape_json, fmt_f64};

/// Number of log-spaced histogram buckets. Bucket `i` covers
/// `(2^(i-31), 2^(i-30)]`, so the range spans ≈4.7e-10 .. 8.6e9 — enough for
/// nanosecond latencies and multi-gigajoule energies alike.
const HIST_BUCKETS: usize = 64;

/// Upper bound of bucket `i`.
fn bucket_bound(i: usize) -> f64 {
    (2.0f64).powi(i as i32 - 30)
}

/// A fixed-bucket, log-spaced histogram of non-negative observations.
///
/// Buckets are compile-time constants, so two histograms fed the same
/// observations in any order render byte-identical JSON — the property the
/// serve-layer replay determinism check relies on. Quantiles are estimated
/// by linear interpolation inside the owning bucket and clamped to the
/// observed `[min, max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// Record one observation. Negative and non-finite values are clamped
    /// to 0 (they land in the first bucket).
    pub fn observe(&mut self, value: f64) {
        let v = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        let idx = (0..HIST_BUCKETS)
            .find(|&i| v <= bucket_bound(i))
            .unwrap_or(HIST_BUCKETS - 1);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) by rank-walking the
    /// buckets and interpolating linearly inside the owning bucket. Returns
    /// 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c;
            if (next as f64) >= rank {
                let lo = if i == 0 { 0.0 } else { bucket_bound(i - 1) };
                let hi = bucket_bound(i);
                let frac = (rank - seen as f64) / c as f64;
                let est = lo + (hi - lo) * frac.clamp(0.0, 1.0);
                return est.clamp(self.min, self.max);
            }
            seen = next;
        }
        self.max
    }

    /// Render as a compact JSON object. Only non-empty buckets appear, keyed
    /// by their upper bound in round-trippable float formatting.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| format!("\"{}\":{}", fmt_f64(bucket_bound(i)), c))
            .collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":{{{}}}}}",
            self.count,
            fmt_f64(self.sum),
            fmt_f64(if self.count == 0 { 0.0 } else { self.min }),
            fmt_f64(if self.count == 0 { 0.0 } else { self.max }),
            fmt_f64(self.quantile(0.50)),
            fmt_f64(self.quantile(0.90)),
            fmt_f64(self.quantile(0.99)),
            buckets.join(",")
        )
    }
}

/// Exact nearest-rank percentile (`p` in `[0, 1]`) over raw samples: the
/// smallest sample such that at least `ceil(p * n)` samples are ≤ it.
///
/// `samples` must already be sorted ascending. Unlike
/// [`Histogram::quantile`], which interpolates inside log buckets (an
/// *estimate*), this is the textbook definition: p50 of `[1, 2, 3, 4]` is
/// exactly 2, p99 of a single sample is that sample, and no percentile ever
/// reads past the end of the data. Returns 0 for an empty slice.
pub fn percentile_nearest_rank(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let n = samples.len();
    let rank = (p.clamp(0.0, 1.0) * n as f64).ceil() as usize;
    samples[rank.clamp(1, n) - 1]
}

/// Point-in-time copy of the registry taken by [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Label, e.g. `"phase:simulation"` or `"run"`.
    pub label: String,
    /// Counter values at snapshot time.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge values at snapshot time.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Histogram states at snapshot time (empty unless the run observed
    /// histogram samples).
    pub histograms: BTreeMap<&'static str, Histogram>,
}

/// The metrics registry: monotonic counters, last-write-wins gauges,
/// log-bucket histograms, and an ordered list of snapshots.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    snapshots: Vec<MetricsSnapshot>,
}

impl MetricsRegistry {
    /// Add `by` to counter `name` (creating it at zero).
    pub fn incr(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Record `value` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    /// Histogram `name`, if any observation was ever recorded into it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Record a labelled snapshot of the current counters, gauges, and
    /// histograms.
    pub fn snapshot(&mut self, label: &str) {
        self.snapshots.push(MetricsSnapshot {
            label: label.to_string(),
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        });
    }

    /// Snapshots in recording order.
    pub fn snapshots(&self) -> &[MetricsSnapshot] {
        &self.snapshots
    }

    /// Compact single-line JSON object:
    /// `{"counters":{...},"gauges":{...},"snapshots":[...]}`, with a
    /// `"histograms"` member appearing only when observations were recorded
    /// (so pre-histogram artifacts stay byte-stable). The
    /// `greenness-metrics/v1` schema tag is added by the file wrapper
    /// ([`crate::metrics_file_json`]).
    pub fn to_json(&self) -> String {
        fn counters_json(m: &BTreeMap<&'static str, u64>) -> String {
            let body: Vec<String> = m.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
            format!("{{{}}}", body.join(","))
        }
        fn gauges_json(m: &BTreeMap<&'static str, f64>) -> String {
            let body: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("\"{k}\":{}", fmt_f64(*v)))
                .collect();
            format!("{{{}}}", body.join(","))
        }
        fn histograms_json(m: &BTreeMap<&'static str, Histogram>) -> String {
            if m.is_empty() {
                return String::new();
            }
            let body: Vec<String> = m
                .iter()
                .map(|(k, h)| format!("\"{k}\":{}", h.to_json()))
                .collect();
            format!(",\"histograms\":{{{}}}", body.join(","))
        }
        let snaps: Vec<String> = self
            .snapshots
            .iter()
            .map(|s| {
                format!(
                    "{{\"label\":\"{}\",\"counters\":{},\"gauges\":{}{}}}",
                    escape_json(&s.label),
                    counters_json(&s.counters),
                    gauges_json(&s.gauges),
                    histograms_json(&s.histograms)
                )
            })
            .collect();
        format!(
            "{{\"counters\":{},\"gauges\":{}{},\"snapshots\":[{}]}}",
            counters_json(&self.counters),
            gauges_json(&self.gauges),
            histograms_json(&self.histograms),
            snaps.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = Histogram::default();
        for i in 1..=1000u32 {
            h.observe(i as f64 / 1000.0); // 0.001 .. 1.0
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 0.5005).abs() < 1e-9);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!((0.25..=0.75).contains(&p50), "p50 {p50}");
        assert!(p99 > p50);
        assert!(p99 <= 1.0, "p99 {p99} exceeds max");
    }

    #[test]
    fn histogram_is_order_independent() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let vals = [0.003, 1.25, 0.5, 17.0, 0.0001, 0.5];
        for v in vals {
            a.observe(v);
        }
        for v in vals.iter().rev() {
            b.observe(*v);
        }
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn histogram_handles_degenerate_inputs() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        h.observe(f64::NAN);
        h.observe(-3.0);
        h.observe(1e300); // beyond the last bound: clamped to the last bucket
        assert_eq!(h.count(), 3);
        assert!(h.to_json().contains("\"count\":3"));
    }

    #[test]
    fn nearest_rank_percentiles_are_exact_at_tiny_n() {
        // n = 1: every percentile is the one sample — the old bucketed
        // estimate could return an interpolated value below it, and a
        // naive `(p * n) as usize` index would read sorted[1], past the end.
        let one = [7.25];
        for p in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(percentile_nearest_rank(&one, p), 7.25, "p = {p}");
        }
        // n = 4, hand-computed nearest ranks: p50 → ceil(2) = rank 2,
        // p90 → ceil(3.6) = rank 4, p99 → ceil(3.96) = rank 4 (not index 4).
        let four = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_nearest_rank(&four, 0.50), 2.0);
        assert_eq!(percentile_nearest_rank(&four, 0.90), 4.0);
        assert_eq!(percentile_nearest_rank(&four, 0.99), 4.0);
        assert_eq!(percentile_nearest_rank(&four, 1.00), 4.0);
        // p = 0 clamps to the smallest sample rather than rank 0.
        assert_eq!(percentile_nearest_rank(&four, 0.0), 1.0);
        assert_eq!(percentile_nearest_rank(&[], 0.5), 0.0);
    }

    #[test]
    fn registry_histograms_only_render_when_used() {
        let mut m = MetricsRegistry::default();
        m.incr("a", 1);
        m.snapshot("s");
        assert!(!m.to_json().contains("histograms"));
        m.observe("serve.virtual_s", 0.25);
        m.snapshot("t");
        let json = m.to_json();
        assert!(json.contains("\"histograms\":{\"serve.virtual_s\""));
        assert_eq!(m.histogram("serve.virtual_s").unwrap().count(), 1);
        // The first snapshot predates the histogram and stays clean.
        assert!(m.snapshots()[0].histograms.is_empty());
        assert_eq!(m.snapshots()[1].histograms.len(), 1);
    }
}
