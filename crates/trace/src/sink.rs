//! Trace events and the sinks that receive them.

use std::sync::{Arc, Mutex};

use crate::json::{escape_json, fmt_f64};

/// A field value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (byte counts, block indices, nanoseconds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (seconds, watts, joules) — rendered round-trippably.
    F64(f64),
    /// String (phase labels, activity kinds, device states).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    fn render(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) => fmt_f64(*v),
            Value::Str(s) => format!("\"{}\"", escape_json(s)),
            Value::Bool(b) => b.to_string(),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Span boundary or instant event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span opens at `t_ns`.
    Begin,
    /// Span closes at `t_ns` (must match the innermost open span's name).
    End,
    /// Point event.
    Instant,
}

impl EventKind {
    /// The `ev` field value in the JSONL encoding.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::End => "end",
            EventKind::Instant => "event",
        }
    }
}

/// One journal entry: a virtual timestamp, a kind, a name, and flat fields.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual time in integer nanoseconds (same representation as
    /// `platform::SimTime`).
    pub t_ns: u64,
    /// Span boundary or instant.
    pub kind: EventKind,
    /// Event name (e.g. `"phase"`, `"activity"`, `"rapl.poll"`).
    pub name: &'static str,
    /// Flat key/value payload, emitted in order.
    pub fields: Vec<(&'static str, Value)>,
}

impl TraceEvent {
    /// Render as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = format!(
            "{{\"t_ns\":{},\"ev\":\"{}\",\"name\":\"{}\"",
            self.t_ns,
            self.kind.label(),
            self.name
        );
        for (k, v) in &self.fields {
            s.push_str(&format!(",\"{}\":{}", k, v.render()));
        }
        s.push('}');
        s
    }
}

/// Receives trace events. Implementations must be cheap: the tracer already
/// guards every call behind its on/off branch.
pub trait TraceSink: Send {
    /// Record one event.
    fn record(&mut self, ev: &TraceEvent);
    /// Take the accumulated JSONL buffer (empty for sinks that do not
    /// render, e.g. [`MemorySink`]).
    fn drain_jsonl(&mut self) -> String {
        String::new()
    }
}

/// Renders each event immediately into an in-memory JSONL buffer. The
/// buffer contains event lines only — the `greenness-trace/v1` schema header
/// is prepended by whoever writes the journal file (see
/// [`crate::journal_header`]), so per-job buffers can be concatenated.
#[derive(Debug, Default)]
pub struct JsonlSink {
    buf: String,
}

impl JsonlSink {
    /// An empty sink.
    pub fn new() -> Self {
        JsonlSink::default()
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.buf.push_str(&ev.to_jsonl());
        self.buf.push('\n');
    }

    fn drain_jsonl(&mut self) -> String {
        std::mem::take(&mut self.buf)
    }
}

/// Shared handle onto a [`MemorySink`]'s event list (for tests and
/// in-process inspection).
#[derive(Debug, Clone, Default)]
pub struct MemoryHandle {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl MemoryHandle {
    /// Snapshot of all recorded events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("memory sink lock").clone()
    }
}

/// Stores structured events for inspection instead of rendering them.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl MemorySink {
    /// A new sink plus the handle that observes it.
    pub fn new() -> (Self, MemoryHandle) {
        let events = Arc::new(Mutex::new(Vec::new()));
        (
            MemorySink {
                events: Arc::clone(&events),
            },
            MemoryHandle { events },
        )
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, ev: &TraceEvent) {
        self.events
            .lock()
            .expect("memory sink lock")
            .push(ev.clone());
    }
}
