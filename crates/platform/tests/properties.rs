//! Property-based tests for the platform substrate.

use greenness_platform::{
    AccessPattern, Activity, HardwareSpec, Node, Phase, PowerDraw, Segment, SimDuration, SimTime,
    Timeline,
};
use proptest::prelude::*;

fn arb_draw() -> impl Strategy<Value = PowerDraw> {
    (
        0.0..200.0f64,
        0.0..50.0f64,
        0.0..20.0f64,
        0.0..5.0f64,
        0.0..80.0f64,
    )
        .prop_map(|(package_w, dram_w, disk_w, net_w, board_w)| PowerDraw {
            package_w,
            dram_w,
            disk_w,
            net_w,
            board_w,
        })
}

fn arb_phase() -> impl Strategy<Value = Phase> {
    prop::sample::select(Phase::ALL.to_vec())
}

fn arb_timeline() -> impl Strategy<Value = Timeline> {
    prop::collection::vec((1u64..5_000_000_000, arb_draw(), arb_phase()), 1..40).prop_map(|spans| {
        let mut tl = Timeline::new();
        let mut t = SimTime::ZERO;
        for (ns, draw, phase) in spans {
            let duration = SimDuration::from_nanos(ns);
            tl.push(Segment {
                start: t,
                duration,
                draw,
                phase,
            });
            t += duration;
        }
        tl
    })
}

proptest! {
    /// Total energy equals the closed-form sum of segment power × duration.
    #[test]
    fn energy_integration_is_exact(tl in arb_timeline()) {
        let expected: f64 = tl
            .segments()
            .iter()
            .map(|s| s.draw.system_w() * s.duration.as_secs_f64())
            .sum();
        prop_assert!((tl.total_energy_j() - expected).abs() <= 1e-9 * expected.max(1.0));
    }

    /// Energy over the full window equals total energy; windows partition.
    #[test]
    fn energy_between_partitions(tl in arb_timeline(), cut_frac in 0.0..1.0f64) {
        let end = tl.end();
        let cut = SimTime::from_nanos((end.as_nanos() as f64 * cut_frac) as u64);
        let a = tl.energy_between(SimTime::ZERO, cut).system_j();
        let b = tl.energy_between(cut, end).system_j();
        let total = tl.total_energy_j();
        prop_assert!((a + b - total).abs() <= 1e-6 * total.max(1.0), "{a} + {b} != {total}");
    }

    /// Phase durations sum to the full run length, and phase energies to the
    /// total energy.
    #[test]
    fn phase_accounting_partitions(tl in arb_timeline()) {
        let dur_sum: SimDuration = Phase::ALL.iter().map(|&p| tl.phase_duration(p)).sum();
        prop_assert_eq!(dur_sum.as_nanos(), tl.end().as_nanos());
        let e_sum: f64 = Phase::ALL.iter().map(|&p| tl.phase_energy(p).system_j()).sum();
        let total = tl.total_energy_j();
        prop_assert!((e_sum - total).abs() <= 1e-6 * total.max(1.0));
    }

    /// Average power is always between the min and max segment power.
    #[test]
    fn average_power_is_bounded_by_extremes(tl in arb_timeline()) {
        let avg = tl.average_power_w();
        let lo = tl.segments().iter().map(|s| s.draw.system_w()).fold(f64::INFINITY, f64::min);
        let hi = tl.peak_power_w();
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9, "{lo} <= {avg} <= {hi}");
    }

    /// draw_at agrees with the owning segment for every sampled instant.
    #[test]
    fn draw_at_matches_segments(tl in arb_timeline(), frac in 0.0..1.0f64) {
        let t = SimTime::from_nanos((tl.end().as_nanos() as f64 * frac) as u64);
        if t < tl.end() {
            let seg = tl
                .segments()
                .iter()
                .find(|s| s.start <= t && t < s.end())
                .expect("contiguous timeline must contain t");
            prop_assert_eq!(tl.draw_at(t), seg.draw);
        }
    }

    /// Disk transfer time is monotone non-decreasing in bytes for every
    /// pattern, and positive power only when time is positive.
    #[test]
    fn disk_time_monotone_in_bytes(
        a in 1u64..1_000_000_000,
        b in 1u64..1_000_000_000,
        pat_sel in 0u8..3,
        op in 512u64..1_048_576,
        qd in 1u32..64,
    ) {
        use greenness_platform::disk::{DiskModel, IoDir};
        let d = DiskModel::seagate_7200rpm_500gb();
        let pattern = match pat_sel {
            0 => AccessPattern::Sequential,
            1 => AccessPattern::Chunked { op_bytes: op },
            _ => AccessPattern::Random { op_bytes: op, queue_depth: qd },
        };
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for dir in [IoDir::Read, IoDir::Write] {
            let c_lo = d.transfer(lo, dir, pattern);
            let c_hi = d.transfer(hi, dir, pattern);
            prop_assert!(c_hi.seconds >= c_lo.seconds,
                "bytes {lo}->{hi} gave {} -> {}", c_lo.seconds, c_hi.seconds);
            prop_assert!(c_lo.dyn_w >= 0.0 && c_lo.dyn_w.is_finite());
        }
    }

    /// Node execution always produces physical draws and a contiguous clock.
    #[test]
    fn node_execution_is_physical(
        acts in prop::collection::vec(0u8..6, 1..20),
        bytes in 1u64..50_000_000,
        flops in 1.0..1e12f64,
    ) {
        let mut node = Node::new(HardwareSpec::table1());
        for a in acts {
            let activity = match a {
                0 => Activity::compute(flops, 16),
                1 => Activity::write_seq(bytes),
                2 => Activity::read_seq(bytes),
                3 => Activity::DiskRead {
                    bytes,
                    pattern: AccessPattern::Random { op_bytes: 4096, queue_depth: 32 },
                    buffered: false,
                },
                4 => Activity::idle_secs(0.5),
                _ => Activity::MemTraffic { bytes },
            };
            let e = node.execute(activity, Phase::Other);
            prop_assert!(e.draw.is_physical());
            // Every draw is at least the static floor.
            prop_assert!(e.draw.system_w() >= node.spec().static_w() - 1e-9);
        }
        prop_assert_eq!(node.timeline().end(), node.now());
    }
}

/// An arbitrary unit of node work covering every `Activity` variant.
fn arb_activity() -> impl Strategy<Value = Activity> {
    prop_oneof![
        (1.0..1e11f64, 1u32..32, 0u64..100_000_000).prop_map(|(flops, cores, dram_bytes)| {
            Activity::Compute {
                flops,
                cores,
                intensity: 0.8,
                dram_bytes,
            }
        }),
        (1u64..50_000_000, any::<bool>()).prop_map(|(bytes, buffered)| Activity::DiskRead {
            bytes,
            pattern: AccessPattern::Sequential,
            buffered,
        }),
        (1u64..50_000_000, any::<bool>()).prop_map(|(bytes, buffered)| Activity::DiskWrite {
            bytes,
            pattern: AccessPattern::Chunked { op_bytes: 1 << 20 },
            buffered,
        }),
        (1u32..16).prop_map(|seeks| Activity::DiskBarrier { seeks }),
        (1u64..50_000_000).prop_map(|bytes| Activity::MemTraffic { bytes }),
        (0u64..50_000_000, 0u32..64)
            .prop_map(|(bytes, messages)| Activity::NetTransfer { bytes, messages }),
        (0.01..2.0f64).prop_map(Activity::idle_secs),
    ]
}

/// Independent model of the byte counters the tracer must keep: exactly the
/// accounting the energy model applies (buffered disk I/O moves `bytes * 2`
/// through DRAM — device + user copy; network transfers charge DRAM only
/// when they take virtual time).
#[derive(Debug, Default, PartialEq, Eq)]
struct ByteModel {
    reads: u64,
    writes: u64,
    barriers: u64,
    seeks: u64,
    bytes_read: u64,
    bytes_written: u64,
    dram_bytes: u64,
    net_bytes: u64,
    net_messages: u64,
}

impl ByteModel {
    fn apply(&mut self, node: &Node, activity: &Activity) {
        match *activity {
            Activity::Compute { dram_bytes, .. } => self.dram_bytes += dram_bytes,
            Activity::DiskRead {
                bytes, buffered, ..
            } => {
                self.reads += 1;
                self.bytes_read += bytes;
                if buffered {
                    self.dram_bytes += bytes * 2;
                }
            }
            Activity::DiskWrite {
                bytes, buffered, ..
            } => {
                self.writes += 1;
                self.bytes_written += bytes;
                if buffered {
                    self.dram_bytes += bytes * 2;
                }
            }
            Activity::DiskBarrier { seeks } => {
                self.barriers += 1;
                self.seeks += u64::from(seeks);
            }
            Activity::MemTraffic { bytes } => self.dram_bytes += bytes,
            Activity::NetTransfer { bytes, messages } => {
                self.net_bytes += bytes;
                self.net_messages += u64::from(messages);
                if node.cost_of(*activity).0 > 0.0 {
                    self.dram_bytes += bytes;
                }
            }
            Activity::Idle { .. } => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The metrics registry's byte counters match the energy model's own
    /// accounting for arbitrary activity sequences.
    #[test]
    fn byte_counters_mirror_the_energy_model(
        ops in prop::collection::vec(arb_activity(), 1..40),
    ) {
        let mut node = Node::new(HardwareSpec::table1());
        let (tracer, _events) = greenness_trace::Tracer::memory();
        node.set_tracer(tracer);
        let mut model = ByteModel::default();
        for activity in &ops {
            model.apply(&node, activity);
            node.execute(*activity, Phase::Other);
        }
        let t = node.tracer();
        prop_assert_eq!(t.counter("activity.count"), ops.len() as u64);
        prop_assert_eq!(t.counter("disk.reads"), model.reads);
        prop_assert_eq!(t.counter("disk.writes"), model.writes);
        prop_assert_eq!(t.counter("disk.barriers"), model.barriers);
        prop_assert_eq!(t.counter("disk.seeks"), model.seeks);
        prop_assert_eq!(t.counter("disk.bytes_read"), model.bytes_read);
        prop_assert_eq!(t.counter("disk.bytes_written"), model.bytes_written);
        prop_assert_eq!(t.counter("dram.bytes"), model.dram_bytes);
        prop_assert_eq!(t.counter("net.bytes"), model.net_bytes);
        prop_assert_eq!(t.counter("net.messages"), model.net_messages);
    }

    /// Any traced activity sequence yields a journal the summarizer audits
    /// clean: spans balance innermost-first and timestamps never go back.
    #[test]
    fn traced_journals_are_well_formed(
        ops in prop::collection::vec((arb_activity(), 0usize..Phase::ALL.len()), 1..40),
    ) {
        let mut node = Node::new(HardwareSpec::table1());
        node.set_tracer(greenness_trace::Tracer::jsonl());
        node.tracer().begin(0, "run", Vec::new());
        for (activity, phase) in &ops {
            node.execute(*activity, Phase::ALL[*phase]);
        }
        node.finish_trace();
        let end = node.now().as_nanos();
        node.tracer().end(end, "run", Vec::new());
        let out = node.tracer().drain().expect("tracer is on");
        let journal = format!("{}{}", greenness_trace::journal_header(), out.journal);
        let summary = greenness_trace::summarize::summarize(&journal).expect("parseable journal");
        prop_assert!(summary.audit_ok(), "audit errors: {:?}", summary.audit_errors);
        prop_assert!(summary.spans_checked >= 1);
        prop_assert!(summary.events >= ops.len());
    }
}
