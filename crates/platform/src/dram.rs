//! DRAM timing and power model.
//!
//! Models the 4× 16 GB DDR3-1333 DIMMs of Table I: a constant background
//! (refresh + standby) power plus a dynamic component proportional to the
//! byte traffic an activity generates. The per-byte access energy is the
//! standard ≈0.5 nJ/B figure for DDR3, which reproduces the ≈6 W DRAM
//! dynamic power of the Figure 5 simulation phase at ≈12.6 GB/s of traffic.

use serde::{Deserialize, Serialize};

/// Timing and power model for the node's memory subsystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    /// Installed capacity in bytes (Table I: 64 GiB).
    pub capacity_bytes: u64,
    /// Peak sustainable bandwidth, bytes/s (4 channels of DDR3-1333 ≈ 42 GB/s
    /// peak; ≈60% sustainable).
    pub bandwidth_bytes_per_s: f64,
    /// Background (refresh/standby) power for all DIMMs, watts.
    pub background_w: f64,
    /// Access energy per byte moved, joules.
    pub energy_per_byte_j: f64,
}

impl DramModel {
    /// The Table I memory: 4× 16 GB DDR3-1333.
    pub fn ddr3_1333_64gib() -> Self {
        DramModel {
            capacity_bytes: 64 * crate::units::GIB,
            bandwidth_bytes_per_s: 25.0e9,
            background_w: 10.0,
            energy_per_byte_j: 0.5e-9,
        }
    }

    /// Dynamic DRAM power while `bytes` are moved over `secs` seconds, watts.
    /// Returns zero for degenerate durations.
    pub fn dynamic_w(&self, bytes: u64, secs: f64) -> f64 {
        if secs <= 0.0 {
            return 0.0;
        }
        let rate = (bytes as f64 / secs).min(self.bandwidth_bytes_per_s);
        rate * self.energy_per_byte_j
    }

    /// Seconds to move `bytes` at full memory bandwidth (used when an
    /// activity is purely a memory copy).
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth_bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::GIB;

    #[test]
    fn capacity_matches_table1() {
        assert_eq!(DramModel::ddr3_1333_64gib().capacity_bytes, 64 * GIB);
    }

    #[test]
    fn simulation_phase_dynamic_power_calibration() {
        let dram = DramModel::ddr3_1333_64gib();
        // 19.8 GB over 1.57 s ≈ 12.6 GB/s ⇒ ≈6.3 W (DESIGN.md §4).
        let w = dram.dynamic_w(19_800_000_000, 1.57);
        assert!((w - 6.3).abs() < 0.05, "got {w}");
    }

    #[test]
    fn dynamic_power_caps_at_bandwidth() {
        let dram = DramModel::ddr3_1333_64gib();
        let capped = dram.dynamic_w(u64::MAX, 1.0);
        assert!((capped - 25.0e9 * 0.5e-9).abs() < 1e-9);
    }

    #[test]
    fn degenerate_duration_is_zero_power() {
        let dram = DramModel::ddr3_1333_64gib();
        assert_eq!(dram.dynamic_w(1_000_000, 0.0), 0.0);
        assert_eq!(dram.dynamic_w(1_000_000, -1.0), 0.0);
    }

    #[test]
    fn transfer_time_is_linear_in_bytes() {
        let dram = DramModel::ddr3_1333_64gib();
        let t1 = dram.transfer_seconds(GIB);
        let t2 = dram.transfer_seconds(2 * GIB);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }
}
