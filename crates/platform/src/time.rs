//! Deterministic virtual time.
//!
//! All timing in the simulator is integer nanoseconds. Model code computes
//! durations in `f64` seconds (bandwidths, seek times, …) and converts at the
//! boundary with [`SimDuration::from_secs_f64`], which rounds to the nearest
//! nanosecond. Using integers for the clock itself keeps long runs exactly
//! reproducible and makes time comparisons total.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// Nanoseconds per second, as used by the conversions below.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// A duration of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of exactly `ns` nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// A duration of exactly `us` microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// A duration of exactly `ms` milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// A duration of exactly `s` seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Convert from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative and non-finite inputs saturate to zero; model code treats a
    /// nonsensical negative duration as "no time passed" rather than
    /// propagating NaNs into the clock.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// This duration in whole nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.max(rhs.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.min(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// An instant of virtual time: nanoseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the run.
    pub const ZERO: SimTime = SimTime(0);

    /// An instant `ns` nanoseconds after the start of the run.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Convert from fractional seconds since the start of the run.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(SimDuration::from_secs_f64(s).as_nanos())
    }

    /// Nanoseconds since the start of the run.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the start of the run.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`. Panics in debug builds if `earlier` is
    /// later than `self`.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "duration_since: earlier > self");
        SimDuration(self.0 - earlier.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_seconds() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_rounds_to_nearest_nanosecond() {
        let d = SimDuration::from_secs_f64(1e-9 * 0.6);
        assert_eq!(d.as_nanos(), 1);
        let d = SimDuration::from_secs_f64(1e-9 * 0.4);
        assert_eq!(d.as_nanos(), 0);
    }

    #[test]
    fn negative_and_nan_durations_saturate_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(250);
        assert_eq!(t1.as_nanos(), 250_000_000);
        assert_eq!(t1 - t0, SimDuration::from_millis(250));
        assert_eq!(t1.duration_since(t0).as_secs_f64(), 0.25);
    }

    #[test]
    fn duration_sum_and_scaling() {
        let parts = [
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
            SimDuration::from_millis(30),
        ];
        let total: SimDuration = parts.iter().copied().sum();
        assert_eq!(total, SimDuration::from_millis(60));
        assert_eq!(total * 2, SimDuration::from_millis(120));
        assert_eq!(total / 3, SimDuration::from_millis(20));
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(7);
        assert!(a < b);
        assert_eq!(a.max(a), a);
    }
}
