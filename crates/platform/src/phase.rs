//! Pipeline phase labels attached to every power-timeline segment.
//!
//! The paper's analysis is phase-structured: Figure 4 reports the share of
//! execution time per stage, Figure 5 shows the distinct power phases of the
//! post-processing pipeline, and the Section V-C breakdown attributes energy
//! to stages. Tagging each segment at the platform layer lets all of those be
//! derived from a single timeline.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The stage of the visualization pipeline a power segment belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// Heat-transfer simulation timesteps.
    Simulation,
    /// Writing raw simulation snapshots to disk (post-processing phase 1).
    Write,
    /// Reading raw snapshots back from disk (post-processing phase 2).
    Read,
    /// Rendering a snapshot into an image.
    Visualization,
    /// Writing rendered images to disk (the in-situ pipeline's only output).
    ImageWrite,
    /// `sync` + `drop_caches` housekeeping between stages (paper §IV-C).
    CacheControl,
    /// The node is idle.
    Idle,
    /// Standalone I/O probes and benchmarks (nnread/nnwrite, fio).
    IoBench,
    /// Network transfer (in-transit extension).
    Network,
    /// Anything else.
    Other,
}

impl Phase {
    /// All phases, in display order.
    pub const ALL: [Phase; 10] = [
        Phase::Simulation,
        Phase::Write,
        Phase::Read,
        Phase::Visualization,
        Phase::ImageWrite,
        Phase::CacheControl,
        Phase::Idle,
        Phase::IoBench,
        Phase::Network,
        Phase::Other,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Simulation => "simulation",
            Phase::Write => "write",
            Phase::Read => "read",
            Phase::Visualization => "visualization",
            Phase::ImageWrite => "image-write",
            Phase::CacheControl => "cache-control",
            Phase::Idle => "idle",
            Phase::IoBench => "io-bench",
            Phase::Network => "network",
            Phase::Other => "other",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let labels: Vec<_> = Phase::ALL.iter().map(|p| p.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(Phase::Simulation.to_string(), "simulation");
        assert_eq!(Phase::ImageWrite.to_string(), "image-write");
    }
}
