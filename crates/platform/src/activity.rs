//! Descriptions of work the node performs.
//!
//! Application code (solver, storage stack, renderer) does its *actual* work
//! on real data, then reports what it did as an [`Activity`]; the node's
//! device models convert the description into virtual time and power. This
//! split keeps the computation genuine while the energy accounting stays
//! deterministic and calibrated.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// How a block of device I/O is laid out on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// One contiguous streaming transfer.
    Sequential,
    /// Contiguous data consumed in cold `op_bytes` chunks (a read-ahead
    /// window); each chunk pays a short settle + rotational latency.
    Chunked {
        /// Bytes fetched per chunk.
        op_bytes: u64,
    },
    /// Uniformly scattered `op_bytes` operations; each pays full positioning,
    /// amortized by NCQ when `queue_depth > 1`.
    Random {
        /// Bytes per operation.
        op_bytes: u64,
        /// Outstanding requests the device may reorder.
        queue_depth: u32,
    },
}

/// One unit of work for the node to execute and account.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Activity {
    /// Floating-point computation on `cores` cores.
    Compute {
        /// Total floating-point operations performed.
        flops: f64,
        /// Cores kept busy.
        cores: u32,
        /// Arithmetic intensity in `[0, 1]`; scales per-core dynamic power
        /// (1.0 = a dense compute kernel, lower for memory- or
        /// branch-bound work such as rasterization).
        intensity: f64,
        /// DRAM traffic generated, bytes.
        dram_bytes: u64,
    },
    /// Read `bytes` from the storage device.
    DiskRead {
        /// Bytes transferred.
        bytes: u64,
        /// Device-level layout of the transfer.
        pattern: AccessPattern,
        /// Buffered (page-cache) I/O keeps one core busy copying and charges
        /// the CPU's `io_assist_w`; direct I/O (fio) does not.
        buffered: bool,
    },
    /// Write `bytes` to the storage device.
    DiskWrite {
        /// Bytes transferred.
        bytes: u64,
        /// Device-level layout of the transfer.
        pattern: AccessPattern,
        /// See [`Activity::DiskRead::buffered`].
        buffered: bool,
    },
    /// Pure positioning work: journal commits, fsync barriers.
    DiskBarrier {
        /// Number of full positioning operations.
        seeks: u32,
    },
    /// A memory-to-memory copy (in-memory staging, in-situ hand-off).
    MemTraffic {
        /// Bytes copied.
        bytes: u64,
    },
    /// Ship data over the NIC (in-transit extension).
    NetTransfer {
        /// Bytes sent.
        bytes: u64,
        /// Number of messages (latency is per message).
        messages: u32,
    },
    /// Do nothing for a fixed span of time.
    Idle {
        /// How long to idle.
        duration: SimDuration,
    },
}

impl Activity {
    /// Dense compute on `cores` cores at full intensity with no modeled DRAM
    /// traffic.
    pub fn compute(flops: f64, cores: u32) -> Activity {
        Activity::Compute {
            flops,
            cores,
            intensity: 1.0,
            dram_bytes: 0,
        }
    }

    /// Buffered sequential write of `bytes`.
    pub fn write_seq(bytes: u64) -> Activity {
        Activity::DiskWrite {
            bytes,
            pattern: AccessPattern::Sequential,
            buffered: true,
        }
    }

    /// Buffered sequential read of `bytes`.
    pub fn read_seq(bytes: u64) -> Activity {
        Activity::DiskRead {
            bytes,
            pattern: AccessPattern::Sequential,
            buffered: true,
        }
    }

    /// Idle for `secs` seconds.
    pub fn idle_secs(secs: f64) -> Activity {
        Activity::Idle {
            duration: SimDuration::from_secs_f64(secs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_constructors() {
        match Activity::compute(1e9, 16) {
            Activity::Compute {
                flops,
                cores,
                intensity,
                dram_bytes,
            } => {
                assert_eq!(flops, 1e9);
                assert_eq!(cores, 16);
                assert_eq!(intensity, 1.0);
                assert_eq!(dram_bytes, 0);
            }
            _ => panic!("wrong variant"),
        }
        match Activity::idle_secs(2.0) {
            Activity::Idle { duration } => assert_eq!(duration, SimDuration::from_secs(2)),
            _ => panic!("wrong variant"),
        }
    }
}
