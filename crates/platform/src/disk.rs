//! Storage-device timing and power model.
//!
//! Models the Seagate 500 GB 7200 rpm HDD of Table I, plus SSD and NVRAM
//! variants for the paper's future-work list. The HDD model is mechanism-
//! based: average seek + rotational latency per positioning, streaming media
//! rate for transfers, an on-disk write cache whose elevator scheduling makes
//! *random writes almost as fast as sequential writes* (the paper's Table III
//! shows 31.0 s vs 27.0 s for 4 GB), and NCQ-style queueing that shortens the
//! effective positioning time of queued random reads.
//!
//! Effective rates and power deltas are calibrated to Table III of the paper
//! (see DESIGN.md §4): 4 GiB sequential read in 35.9 s at +13.5 W,
//! random 4 KiB reads at ≈2.15 ms/op at +2.5 W, sequential write in 27.0 s at
//! +10.9 W, random write in ≈31 s at +13.4 W.

use serde::{Deserialize, Serialize};

use crate::activity::AccessPattern;
use crate::units::GIB;

/// The device technology being modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiskKind {
    /// Rotating hard disk (the paper's testbed device).
    Hdd,
    /// SATA solid-state drive (paper future work).
    Ssd,
    /// Byte-addressable non-volatile memory / PMem (paper future work).
    Nvram,
    /// A DRAM-backed staging tier (deep-memory-hierarchy burst buffers).
    Dram,
    /// PCIe NVMe solid-state drive.
    Nvme,
}

/// The direction of a device transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoDir {
    /// Data moves from the device to memory.
    Read,
    /// Data moves from memory to the device.
    Write,
}

/// Cost of one device operation: how long it took and the average power the
/// device drew *above idle* while it ran.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskOpCost {
    /// Duration of the operation in seconds.
    pub seconds: f64,
    /// Average device power above idle during the operation, watts.
    pub dyn_w: f64,
}

/// Timing and power model for the node's storage device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskModel {
    /// Device technology.
    pub kind: DiskKind,
    /// Capacity in bytes (Table I: 500 GB).
    pub capacity_bytes: u64,
    /// Average positioning time (seek, for HDDs) in seconds.
    pub avg_seek_s: f64,
    /// Short positioning time (track-to-track settle) in seconds.
    pub settle_seek_s: f64,
    /// Average rotational latency in seconds (zero for SSD/NVRAM).
    pub rot_latency_s: f64,
    /// Effective streaming read rate, bytes/s.
    pub seq_read_rate: f64,
    /// Effective streaming write rate, bytes/s (write caching makes this
    /// higher than the read rate on the paper's disk).
    pub seq_write_rate: f64,
    /// Whether the on-device write cache (and elevator reordering) is enabled.
    pub write_cache: bool,
    /// Random-write slowdown relative to sequential when the write cache
    /// reorders: `t_random = t_seq / elevator_efficiency`.
    pub elevator_efficiency: f64,
    /// NCQ scaling: effective positioning time divides by
    /// `1 + ncq_k·log2(queue_depth)`.
    pub ncq_k: f64,
    /// Idle (spinning / powered) device power, watts.
    pub idle_w: f64,
    /// Extra power while positioning (mostly rotational wait), watts.
    pub seek_w: f64,
    /// Extra power during journal-commit barriers (seeks plus platter
    /// writes), watts.
    pub journal_w: f64,
    /// Extra power while streaming reads, watts.
    pub read_w: f64,
    /// Extra power while streaming writes, watts.
    pub write_w: f64,
    /// Extra power during cached random write-back (streaming + elevator
    /// repositioning), watts.
    pub elevator_w: f64,
}

impl DiskModel {
    /// The Table I device: Seagate 500 GB 7200 rpm, calibrated to Table III.
    pub fn seagate_7200rpm_500gb() -> Self {
        DiskModel {
            kind: DiskKind::Hdd,
            capacity_bytes: 500_000_000_000,
            avg_seek_s: 8.5e-3,
            settle_seek_s: 1.0e-3,
            rot_latency_s: 60.0 / (2.0 * 7200.0), // ≈4.17 ms
            seq_read_rate: 4.0 * GIB as f64 / 35.9,
            seq_write_rate: 4.0 * GIB as f64 / 27.0,
            write_cache: true,
            elevator_efficiency: 27.0 / 31.0,
            ncq_k: 1.0,
            idle_w: 5.0,
            seek_w: 2.32,
            journal_w: 4.0,
            read_w: 13.5,
            write_w: 10.9,
            elevator_w: 13.4,
        }
    }

    /// A SATA SSD (future-work variant): no mechanical positioning, ≈0.1 ms
    /// random access, 450/400 MB/s streaming.
    pub fn sata_ssd_512gb() -> Self {
        DiskModel {
            kind: DiskKind::Ssd,
            capacity_bytes: 512_000_000_000,
            avg_seek_s: 0.1e-3,
            settle_seek_s: 0.02e-3,
            rot_latency_s: 0.0,
            seq_read_rate: 450.0e6,
            seq_write_rate: 400.0e6,
            write_cache: true,
            elevator_efficiency: 0.95,
            ncq_k: 1.0,
            idle_w: 1.2,
            seek_w: 1.0,
            journal_w: 1.5,
            read_w: 3.0,
            write_w: 3.5,
            elevator_w: 3.5,
        }
    }

    /// NVRAM / NVDIMM-class storage (future-work variant): ≈10 µs access,
    /// 2 GB/s streaming.
    pub fn nvram_256gb() -> Self {
        DiskModel {
            kind: DiskKind::Nvram,
            capacity_bytes: 256_000_000_000,
            avg_seek_s: 10.0e-6,
            settle_seek_s: 2.0e-6,
            rot_latency_s: 0.0,
            seq_read_rate: 2.0e9,
            seq_write_rate: 1.6e9,
            write_cache: false,
            elevator_efficiency: 1.0,
            ncq_k: 1.0,
            idle_w: 0.5,
            seek_w: 0.2,
            journal_w: 0.5,
            read_w: 2.0,
            write_w: 2.5,
            elevator_w: 2.5,
        }
    }

    /// A DRAM staging tier treated as a storage device (the fastest rung of
    /// the deep memory hierarchy): DDR3-1333-class streaming, sub-µs access,
    /// and a small constant power for the DIMM region it pins.
    pub fn dram_tier_32gb() -> Self {
        DiskModel {
            kind: DiskKind::Dram,
            capacity_bytes: 32_000_000_000,
            avg_seek_s: 0.2e-6,
            settle_seek_s: 0.05e-6,
            rot_latency_s: 0.0,
            seq_read_rate: 12.8e9,
            seq_write_rate: 12.8e9,
            write_cache: false,
            elevator_efficiency: 1.0,
            ncq_k: 1.0,
            idle_w: 2.0,
            seek_w: 0.5,
            journal_w: 1.0,
            read_w: 4.0,
            write_w: 4.0,
            elevator_w: 4.0,
        }
    }

    /// A PCIe NVMe SSD: ≈20 µs access, 3.2/2.2 GB/s streaming, controller
    /// write cache.
    pub fn nvme_ssd_1tb() -> Self {
        DiskModel {
            kind: DiskKind::Nvme,
            capacity_bytes: 1_000_000_000_000,
            avg_seek_s: 20.0e-6,
            settle_seek_s: 5.0e-6,
            rot_latency_s: 0.0,
            seq_read_rate: 3.2e9,
            seq_write_rate: 2.2e9,
            write_cache: true,
            elevator_efficiency: 0.97,
            ncq_k: 1.0,
            idle_w: 2.0,
            seek_w: 1.2,
            journal_w: 2.0,
            read_w: 6.0,
            write_w: 8.0,
            elevator_w: 8.0,
        }
    }

    /// The device zoo: every modeled tier technology from fastest to
    /// slowest, with its conventional short name. The placement studies and
    /// the README device table are generated from this list.
    pub fn device_zoo() -> Vec<(&'static str, DiskModel)> {
        vec![
            ("dram", Self::dram_tier_32gb()),
            ("pmem", Self::nvram_256gb()),
            ("nvme", Self::nvme_ssd_1tb()),
            ("ssd", Self::sata_ssd_512gb()),
            ("hdd", Self::seagate_7200rpm_500gb()),
        ]
    }

    /// A copy with the write cache (and elevator reordering) disabled —
    /// the `ablate_write_cache` study.
    pub fn without_write_cache(&self) -> Self {
        DiskModel {
            write_cache: false,
            ..self.clone()
        }
    }

    /// A RAID-0 stripe over `n` copies of this device (paper future work:
    /// "evaluation on systems using RAID disks"). Streaming bandwidth scales
    /// with the member count; positioning latency does not (all members
    /// seek in parallel for a striped request); idle and active power scale
    /// with the member count.
    pub fn raid0(&self, n: u32) -> Self {
        assert!(n >= 1, "RAID-0 needs at least one member");
        let k = n as f64;
        DiskModel {
            capacity_bytes: self.capacity_bytes * n as u64,
            seq_read_rate: self.seq_read_rate * k,
            seq_write_rate: self.seq_write_rate * k,
            idle_w: self.idle_w * k,
            seek_w: self.seek_w * k,
            journal_w: self.journal_w * k,
            read_w: self.read_w * k,
            write_w: self.write_w * k,
            elevator_w: self.elevator_w * k,
            // Independent spindles service queued random ops concurrently.
            ncq_k: self.ncq_k * k,
            ..self.clone()
        }
    }

    /// A RAID-1 mirror pair: capacity and write bandwidth of one member,
    /// reads load-balanced across both (≈1.8× streaming), power of two.
    pub fn raid1(&self) -> Self {
        DiskModel {
            seq_read_rate: self.seq_read_rate * 1.8,
            idle_w: self.idle_w * 2.0,
            seek_w: self.seek_w * 2.0,
            journal_w: self.journal_w * 2.0,
            read_w: self.read_w * 1.8,
            write_w: self.write_w * 2.0,
            elevator_w: self.elevator_w * 2.0,
            ncq_k: self.ncq_k * 2.0,
            ..self.clone()
        }
    }

    fn ncq_factor(&self, queue_depth: u32) -> f64 {
        let qd = queue_depth.max(1) as f64;
        1.0 + self.ncq_k * qd.log2()
    }

    fn streaming_rate(&self, dir: IoDir) -> f64 {
        match dir {
            IoDir::Read => self.seq_read_rate,
            IoDir::Write => self.seq_write_rate,
        }
    }

    fn transfer_w(&self, dir: IoDir) -> f64 {
        match dir {
            IoDir::Read => self.read_w,
            IoDir::Write => self.write_w,
        }
    }

    /// Blend positioning and transfer time into one averaged cost.
    fn blended(&self, position_s: f64, transfer_s: f64, dir: IoDir) -> DiskOpCost {
        let total = position_s + transfer_s;
        if total <= 0.0 {
            return DiskOpCost {
                seconds: 0.0,
                dyn_w: 0.0,
            };
        }
        let energy_above_idle = position_s * self.seek_w + transfer_s * self.transfer_w(dir);
        DiskOpCost {
            seconds: total,
            dyn_w: energy_above_idle / total,
        }
    }

    /// Cost of transferring `bytes` in direction `dir` with the given access
    /// pattern.
    pub fn transfer(&self, bytes: u64, dir: IoDir, pattern: AccessPattern) -> DiskOpCost {
        if bytes == 0 {
            return DiskOpCost {
                seconds: 0.0,
                dyn_w: 0.0,
            };
        }
        let rate = self.streaming_rate(dir);
        match pattern {
            AccessPattern::Sequential => {
                // One initial positioning, then streaming.
                self.blended(
                    self.avg_seek_s + self.rot_latency_s,
                    bytes as f64 / rate,
                    dir,
                )
            }
            AccessPattern::Chunked { op_bytes } => {
                // Cold chunked access: a short settle + rotational miss per
                // chunk (read-ahead window), then the chunk transfer.
                let op = op_bytes.max(1).min(bytes);
                let ops = bytes.div_ceil(op) as f64;
                let position = ops * (self.settle_seek_s + self.rot_latency_s);
                self.blended(position, bytes as f64 / rate, dir)
            }
            AccessPattern::Random {
                op_bytes,
                queue_depth,
            } => {
                let op = op_bytes.max(1).min(bytes);
                let ops = bytes.div_ceil(op) as f64;
                if dir == IoDir::Write && self.write_cache {
                    // The on-disk cache absorbs random writes and the
                    // elevator writes them back in near-sequential order
                    // (Table III: 31.0 s vs 27.0 s for 4 GB).
                    let secs = bytes as f64 / rate / self.elevator_efficiency;
                    return DiskOpCost {
                        seconds: secs,
                        dyn_w: self.elevator_w,
                    };
                }
                // Uncached random access: full positioning per op, shortened
                // by NCQ for queued requests.
                let position =
                    ops * (self.avg_seek_s + self.rot_latency_s) / self.ncq_factor(queue_depth);
                self.blended(position, bytes as f64 / rate, dir)
            }
        }
    }

    /// Cost of `count` pure positioning operations (journal commits, fsync
    /// barriers): no data transfer, seek power.
    pub fn barrier(&self, count: u32) -> DiskOpCost {
        let secs = count as f64 * (self.avg_seek_s + self.rot_latency_s);
        DiskOpCost {
            seconds: secs,
            dyn_w: if count > 0 { self.journal_w } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{GIB, KIB};

    fn hdd() -> DiskModel {
        DiskModel::seagate_7200rpm_500gb()
    }

    #[test]
    fn table3_sequential_read() {
        let c = hdd().transfer(4 * GIB, IoDir::Read, AccessPattern::Sequential);
        assert!((c.seconds - 35.9).abs() < 0.1, "got {}", c.seconds);
        assert!((c.dyn_w - 13.5).abs() < 0.1, "got {}", c.dyn_w);
    }

    #[test]
    fn table3_random_read() {
        let c = hdd().transfer(
            4 * GIB,
            IoDir::Read,
            AccessPattern::Random {
                op_bytes: 4 * KIB,
                queue_depth: 32,
            },
        );
        // Paper: 2230 s at +2.5 W.
        assert!((c.seconds - 2230.0).abs() < 50.0, "got {}", c.seconds);
        assert!((c.dyn_w - 2.5).abs() < 0.1, "got {}", c.dyn_w);
    }

    #[test]
    fn table3_sequential_write() {
        let c = hdd().transfer(4 * GIB, IoDir::Write, AccessPattern::Sequential);
        assert!((c.seconds - 27.0).abs() < 0.1, "got {}", c.seconds);
        assert!((c.dyn_w - 10.9).abs() < 0.2, "got {}", c.dyn_w);
    }

    #[test]
    fn table3_random_write_absorbed_by_write_cache() {
        let c = hdd().transfer(
            4 * GIB,
            IoDir::Write,
            AccessPattern::Random {
                op_bytes: 4 * KIB,
                queue_depth: 32,
            },
        );
        assert!((c.seconds - 31.0).abs() < 0.2, "got {}", c.seconds);
        assert!((c.dyn_w - 13.4).abs() < 0.1, "got {}", c.dyn_w);
    }

    #[test]
    fn disabling_write_cache_makes_random_writes_seek_bound() {
        let nc = hdd().without_write_cache();
        let c = nc.transfer(
            GIB,
            IoDir::Write,
            AccessPattern::Random {
                op_bytes: 4 * KIB,
                queue_depth: 1,
            },
        );
        // Every 4 KiB op pays a full seek + rotation: ≈12.7 ms × 262144 ops.
        assert!(c.seconds > 3000.0, "got {}", c.seconds);
    }

    #[test]
    fn ncq_shortens_random_reads() {
        let d = hdd();
        let qd1 = d.transfer(
            GIB,
            IoDir::Read,
            AccessPattern::Random {
                op_bytes: 4 * KIB,
                queue_depth: 1,
            },
        );
        let qd32 = d.transfer(
            GIB,
            IoDir::Read,
            AccessPattern::Random {
                op_bytes: 4 * KIB,
                queue_depth: 32,
            },
        );
        assert!(qd32.seconds < qd1.seconds / 4.0);
    }

    #[test]
    fn chunked_reads_pay_per_chunk_rotation() {
        let d = hdd();
        let seq = d.transfer(
            2 * crate::units::MIB,
            IoDir::Read,
            AccessPattern::Sequential,
        );
        let chunked = d.transfer(
            2 * crate::units::MIB,
            IoDir::Read,
            AccessPattern::Chunked { op_bytes: 8 * KIB },
        );
        assert!(
            chunked.seconds > seq.seconds,
            "{} vs {}",
            chunked.seconds,
            seq.seconds
        );
    }

    #[test]
    fn zero_bytes_cost_nothing() {
        let c = hdd().transfer(0, IoDir::Read, AccessPattern::Sequential);
        assert_eq!(c.seconds, 0.0);
        assert_eq!(c.dyn_w, 0.0);
    }

    #[test]
    fn barriers_cost_seeks() {
        let d = hdd();
        let b = d.barrier(6);
        assert!((b.seconds - 6.0 * (8.5e-3 + 60.0 / 14400.0)).abs() < 1e-9);
        assert_eq!(b.dyn_w, d.journal_w);
        assert_eq!(d.barrier(0).seconds, 0.0);
    }

    #[test]
    fn ssd_random_reads_are_orders_of_magnitude_faster_than_hdd() {
        let hdd_cost = hdd().transfer(
            GIB,
            IoDir::Read,
            AccessPattern::Random {
                op_bytes: 4 * KIB,
                queue_depth: 32,
            },
        );
        let ssd_cost = DiskModel::sata_ssd_512gb().transfer(
            GIB,
            IoDir::Read,
            AccessPattern::Random {
                op_bytes: 4 * KIB,
                queue_depth: 32,
            },
        );
        assert!(hdd_cost.seconds / ssd_cost.seconds > 20.0);
    }

    #[test]
    fn nvram_is_faster_still() {
        let ssd = DiskModel::sata_ssd_512gb().transfer(GIB, IoDir::Read, AccessPattern::Sequential);
        let nv = DiskModel::nvram_256gb().transfer(GIB, IoDir::Read, AccessPattern::Sequential);
        assert!(nv.seconds < ssd.seconds);
    }

    #[test]
    fn op_bytes_larger_than_request_is_clamped() {
        let d = hdd();
        let c = d.transfer(
            4 * KIB,
            IoDir::Read,
            AccessPattern::Random {
                op_bytes: GIB,
                queue_depth: 1,
            },
        );
        assert!(c.seconds > 0.0 && c.seconds < 0.1);
    }
}

#[cfg(test)]
mod raid_tests {
    use super::*;
    use crate::activity::AccessPattern;
    use crate::units::{GIB, KIB};

    #[test]
    fn raid0_scales_streaming_but_not_latency() {
        let base = DiskModel::seagate_7200rpm_500gb();
        let r4 = base.raid0(4);
        let seq_base = base.transfer(4 * GIB, IoDir::Read, AccessPattern::Sequential);
        let seq_r4 = r4.transfer(4 * GIB, IoDir::Read, AccessPattern::Sequential);
        assert!(seq_r4.seconds < seq_base.seconds / 3.0);
        // Single-op positioning is unchanged.
        assert_eq!(r4.avg_seek_s, base.avg_seek_s);
        assert_eq!(r4.capacity_bytes, 4 * base.capacity_bytes);
    }

    #[test]
    fn raid0_burns_more_idle_power() {
        let base = DiskModel::seagate_7200rpm_500gb();
        assert!((base.raid0(4).idle_w - 4.0 * base.idle_w).abs() < 1e-9);
    }

    #[test]
    fn raid0_random_reads_benefit_from_parallel_spindles() {
        let base = DiskModel::seagate_7200rpm_500gb();
        let r4 = base.raid0(4);
        let pat = AccessPattern::Random {
            op_bytes: 4 * KIB,
            queue_depth: 32,
        };
        let t_base = base.transfer(GIB, IoDir::Read, pat).seconds;
        let t_r4 = r4.transfer(GIB, IoDir::Read, pat).seconds;
        assert!(t_r4 < t_base / 2.0, "{t_r4} vs {t_base}");
    }

    #[test]
    fn raid1_mirrors_capacity_and_write_rate() {
        let base = DiskModel::seagate_7200rpm_500gb();
        let m = base.raid1();
        assert_eq!(m.capacity_bytes, base.capacity_bytes);
        assert_eq!(m.seq_write_rate, base.seq_write_rate);
        assert!(m.seq_read_rate > base.seq_read_rate);
        assert!(m.idle_w > base.idle_w);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn raid0_of_zero_is_rejected() {
        let _ = DiskModel::seagate_7200rpm_500gb().raid0(0);
    }
}
