//! The node's power history: a sequence of piecewise-constant power segments.
//!
//! Every [`Activity`](crate::Activity) the node executes appends one segment
//! `(start, duration, per-subsystem draw, phase)`. Segments are contiguous and
//! non-overlapping by construction (the node is a single sequential workload,
//! as in the paper's single-application testbed). Energy integration over a
//! piecewise-constant function is exact — no quadrature error — so the
//! instrumentation layer can be validated against closed-form sums.

use serde::{Deserialize, Serialize};

use crate::phase::Phase;
use crate::power::{EnergyBreakdown, PowerDraw};
use crate::time::{SimDuration, SimTime};

/// One piecewise-constant span of the node's power history.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// When the span begins.
    pub start: SimTime,
    /// How long the draw is held.
    pub duration: SimDuration,
    /// Per-subsystem power during the span.
    pub draw: PowerDraw,
    /// Pipeline stage this span belongs to.
    pub phase: Phase,
}

impl Segment {
    /// The instant the span ends.
    #[inline]
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    /// Energy consumed during the span, per subsystem.
    pub fn energy(&self) -> EnergyBreakdown {
        let mut e = EnergyBreakdown::ZERO;
        e.accumulate(self.draw, self.duration.as_secs_f64());
        e
    }
}

/// The complete, ordered power history of a node run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timeline {
    segments: Vec<Segment>,
}

impl Timeline {
    /// An empty timeline starting at `t = 0`.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// All segments, in time order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments recorded.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The instant the recorded history ends (total run time).
    pub fn end(&self) -> SimTime {
        self.segments.last().map_or(SimTime::ZERO, Segment::end)
    }

    /// Append a segment. Panics if it does not start exactly where the
    /// previous one ended — the node is a single sequential workload and a gap
    /// or overlap indicates an accounting bug. The *first* segment may start
    /// anywhere: a timeline can describe a history that begins mid-run (e.g.
    /// a clipped view), and instants before that start draw zero power.
    pub fn push(&mut self, seg: Segment) {
        if let Some(last) = self.segments.last() {
            assert_eq!(
                seg.start,
                last.end(),
                "timeline segments must be contiguous (gap/overlap at {})",
                seg.start
            );
        }
        assert!(
            seg.draw.is_physical(),
            "non-physical power draw {:?}",
            seg.draw
        );
        if seg.duration.is_zero() {
            return; // zero-length spans carry no energy and only bloat the history
        }
        // Merge with the previous segment when the draw and phase are
        // identical; long runs of identical I/O chunks collapse to one span.
        if let Some(last) = self.segments.last_mut() {
            if last.draw == seg.draw && last.phase == seg.phase {
                last.duration += seg.duration;
                return;
            }
        }
        self.segments.push(seg);
    }

    /// Exact full-system energy of the whole run, in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.energy().system_j()
    }

    /// Exact per-subsystem energy of the whole run.
    pub fn energy(&self) -> EnergyBreakdown {
        self.segments.iter().map(Segment::energy).sum()
    }

    /// Exact per-subsystem energy between two instants (clipping segments).
    pub fn energy_between(&self, from: SimTime, to: SimTime) -> EnergyBreakdown {
        let mut e = EnergyBreakdown::ZERO;
        if to <= from {
            return e;
        }
        for seg in &self.segments {
            if seg.end() <= from {
                continue;
            }
            if seg.start >= to {
                break;
            }
            let lo = seg.start.max(from);
            let hi = seg.end().min(to);
            e.accumulate(seg.draw, hi.duration_since(lo).as_secs_f64());
        }
        e
    }

    /// The draw in effect at instant `t` (the segment containing `t`;
    /// zero draw before the history starts and past its end).
    pub fn draw_at(&self, t: SimTime) -> PowerDraw {
        // Binary search over segment starts; segments are sorted and contiguous.
        let idx = self.segments.partition_point(|s| s.start <= t);
        if idx == 0 {
            // `t` precedes the first segment: nothing was drawing yet.
            return PowerDraw::ZERO;
        }
        let seg = &self.segments[idx - 1];
        if t < seg.end() {
            seg.draw
        } else {
            PowerDraw::ZERO
        }
    }

    /// Time-averaged full-system power over the whole run, in watts.
    pub fn average_power_w(&self) -> f64 {
        let t = self.end().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.total_energy_j() / t
        }
    }

    /// Peak full-system power over the whole run, in watts. For a
    /// piecewise-constant history this is exact (the max over segments).
    pub fn peak_power_w(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| s.draw.system_w())
            .fold(0.0, f64::max)
    }

    /// Total time spent in `phase`.
    pub fn phase_duration(&self, phase: Phase) -> SimDuration {
        self.segments
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.duration)
            .sum()
    }

    /// Total energy consumed in `phase`.
    pub fn phase_energy(&self, phase: Phase) -> EnergyBreakdown {
        self.segments
            .iter()
            .filter(|s| s.phase == phase)
            .map(Segment::energy)
            .sum()
    }

    /// Time-averaged full-system power while in `phase`, in watts
    /// (zero if the phase never ran).
    pub fn phase_average_power_w(&self, phase: Phase) -> f64 {
        let t = self.phase_duration(phase).as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.phase_energy(phase).system_j() / t
        }
    }

    /// `(phase, duration)` for every phase that appears, in [`Phase::ALL`] order.
    pub fn phase_breakdown(&self) -> Vec<(Phase, SimDuration)> {
        Phase::ALL
            .iter()
            .map(|&p| (p, self.phase_duration(p)))
            .filter(|(_, d)| !d.is_zero())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(start_s: u64, dur_s: u64, system_w: f64, phase: Phase) -> Segment {
        Segment {
            start: SimTime::from_nanos(start_s * 1_000_000_000),
            duration: SimDuration::from_secs(dur_s),
            draw: PowerDraw {
                board_w: system_w,
                ..PowerDraw::ZERO
            },
            phase,
        }
    }

    #[test]
    fn push_and_integrate() {
        let mut tl = Timeline::new();
        tl.push(seg(0, 10, 100.0, Phase::Simulation));
        tl.push(seg(10, 5, 120.0, Phase::Write));
        assert_eq!(tl.end().as_secs_f64(), 15.0);
        assert!((tl.total_energy_j() - (1000.0 + 600.0)).abs() < 1e-9);
        assert!((tl.average_power_w() - 1600.0 / 15.0).abs() < 1e-9);
        assert!((tl.peak_power_w() - 120.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn push_rejects_gaps() {
        let mut tl = Timeline::new();
        tl.push(seg(0, 10, 100.0, Phase::Simulation));
        tl.push(seg(11, 5, 120.0, Phase::Write));
    }

    #[test]
    fn identical_adjacent_segments_merge() {
        let mut tl = Timeline::new();
        tl.push(seg(0, 1, 100.0, Phase::Write));
        tl.push(seg(1, 1, 100.0, Phase::Write));
        tl.push(seg(2, 1, 100.0, Phase::Read));
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.phase_duration(Phase::Write), SimDuration::from_secs(2));
    }

    #[test]
    fn zero_length_segments_are_dropped() {
        let mut tl = Timeline::new();
        tl.push(seg(0, 0, 100.0, Phase::Idle));
        assert!(tl.is_empty());
    }

    #[test]
    fn energy_between_clips_segments() {
        let mut tl = Timeline::new();
        tl.push(seg(0, 10, 100.0, Phase::Simulation));
        tl.push(seg(10, 10, 200.0, Phase::Write));
        let e = tl
            .energy_between(SimTime::from_secs_f64(5.0), SimTime::from_secs_f64(15.0))
            .system_j();
        assert!((e - (5.0 * 100.0 + 5.0 * 200.0)).abs() < 1e-9);
        // Degenerate and out-of-range windows.
        let z = tl.energy_between(SimTime::from_secs_f64(7.0), SimTime::from_secs_f64(7.0));
        assert_eq!(z.system_j(), 0.0);
        let tail = tl
            .energy_between(SimTime::from_secs_f64(19.0), SimTime::from_secs_f64(99.0))
            .system_j();
        assert!((tail - 200.0).abs() < 1e-9);
    }

    #[test]
    fn draw_at_finds_the_containing_segment() {
        let mut tl = Timeline::new();
        tl.push(seg(0, 10, 100.0, Phase::Simulation));
        tl.push(seg(10, 10, 200.0, Phase::Write));
        assert_eq!(tl.draw_at(SimTime::ZERO).system_w(), 100.0);
        assert_eq!(tl.draw_at(SimTime::from_secs_f64(9.999)).system_w(), 100.0);
        assert_eq!(tl.draw_at(SimTime::from_secs_f64(10.0)).system_w(), 200.0);
        assert_eq!(tl.draw_at(SimTime::from_secs_f64(25.0)).system_w(), 0.0);
    }

    #[test]
    fn draw_at_is_zero_before_the_history_starts() {
        // A timeline that begins mid-run (first segment at t = 5 s).
        let mut tl = Timeline::new();
        tl.push(seg(5, 10, 100.0, Phase::Simulation));
        tl.push(seg(15, 5, 200.0, Phase::Write));
        // Before the first segment: zero, not the first segment's draw.
        assert_eq!(tl.draw_at(SimTime::ZERO), PowerDraw::ZERO);
        assert_eq!(tl.draw_at(SimTime::from_secs_f64(4.999)), PowerDraw::ZERO);
        // Exact start boundary belongs to the first segment.
        assert_eq!(tl.draw_at(SimTime::from_secs_f64(5.0)).system_w(), 100.0);
        // Interior boundary belongs to the later segment; exact end is past-end.
        assert_eq!(tl.draw_at(SimTime::from_secs_f64(15.0)).system_w(), 200.0);
        assert_eq!(tl.draw_at(SimTime::from_secs_f64(20.0)), PowerDraw::ZERO);
        assert_eq!(tl.draw_at(SimTime::from_secs_f64(99.0)), PowerDraw::ZERO);
        // An empty timeline draws nothing anywhere.
        assert_eq!(Timeline::new().draw_at(SimTime::ZERO), PowerDraw::ZERO);
    }

    #[test]
    fn phase_accounting() {
        let mut tl = Timeline::new();
        tl.push(seg(0, 6, 143.0, Phase::Simulation));
        tl.push(seg(6, 4, 115.0, Phase::Write));
        tl.push(seg(10, 6, 143.0, Phase::Simulation));
        assert_eq!(
            tl.phase_duration(Phase::Simulation),
            SimDuration::from_secs(12)
        );
        assert!((tl.phase_average_power_w(Phase::Simulation) - 143.0).abs() < 1e-9);
        assert!((tl.phase_energy(Phase::Write).system_j() - 460.0).abs() < 1e-9);
        let breakdown = tl.phase_breakdown();
        assert_eq!(breakdown.len(), 2);
        assert_eq!(tl.phase_average_power_w(Phase::Read), 0.0);
    }
}
