//! Whole-node hardware specification (the paper's Table I).

use serde::{Deserialize, Serialize};

use crate::cpu::CpuModel;
use crate::disk::DiskModel;
use crate::dram::DramModel;
use crate::net::NetModel;

/// Complete hardware description of the node under test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// Human-readable name for reports.
    pub name: String,
    /// CPU packages.
    pub cpu: CpuModel,
    /// Memory subsystem.
    pub dram: DramModel,
    /// Storage device.
    pub disk: DiskModel,
    /// Network interface.
    pub net: NetModel,
    /// Constant draw of motherboard, fans, PSU losses, watts.
    pub board_w: f64,
}

impl HardwareSpec {
    /// The paper's testbed (Table I): dual-socket Xeon E5-2665 @ 2.4 GHz,
    /// 20 MB LLC, 64 GB DDR3-1333, Seagate 500 GB 7200 rpm HDD, 6 Gb/s SATA.
    ///
    /// The `board_w` constant is chosen so the full-system *static* power is
    /// ≈104.9 W, the figure the paper's Table II implies
    /// (115.1 W total − 10.3 W dynamic during the `nnread` probe).
    pub fn table1() -> Self {
        HardwareSpec {
            name: "2x Intel Xeon E5-2665, 64 GB DDR3-1333, Seagate 7200rpm 500GB".to_string(),
            cpu: CpuModel::e5_2665_pair(),
            dram: DramModel::ddr3_1333_64gib(),
            disk: DiskModel::seagate_7200rpm_500gb(),
            net: NetModel::ten_gbe(),
            board_w: 49.9,
        }
    }

    /// The Table I node with its HDD swapped for a SATA SSD (future work).
    pub fn table1_with_ssd() -> Self {
        HardwareSpec {
            name: "Table I node with SATA SSD".to_string(),
            disk: DiskModel::sata_ssd_512gb(),
            ..Self::table1()
        }
    }

    /// The Table I node with its HDD swapped for NVRAM-class storage
    /// (future work).
    pub fn table1_with_nvram() -> Self {
        HardwareSpec {
            name: "Table I node with NVRAM storage".to_string(),
            disk: DiskModel::nvram_256gb(),
            ..Self::table1()
        }
    }

    /// Full-system power when completely idle, watts.
    pub fn static_w(&self) -> f64 {
        self.cpu.idle_w() + self.dram.background_w + self.disk.idle_w + self.board_w
    }

    /// The Table I rows as `(field, value)` pairs, for the `repro table1`
    /// report.
    pub fn table1_rows(&self) -> Vec<(&'static str, String)> {
        vec![
            (
                "CPU",
                format!(
                    "{}x {}-core package",
                    self.cpu.sockets, self.cpu.cores_per_socket
                ),
            ),
            (
                "CPU frequency",
                format!("{:.1} GHz", self.cpu.base_freq_hz / 1e9),
            ),
            (
                "Memory size",
                crate::units::format_bytes(self.dram.capacity_bytes),
            ),
            (
                "Storage size",
                format!("{} GB", self.disk.capacity_bytes / 1_000_000_000),
            ),
            (
                "Disk",
                match self.disk.kind {
                    crate::disk::DiskKind::Hdd => "7200rpm hard disk".to_string(),
                    crate::disk::DiskKind::Ssd => "SATA SSD".to_string(),
                    crate::disk::DiskKind::Nvram => "NVRAM".to_string(),
                    crate::disk::DiskKind::Dram => "DRAM tier".to_string(),
                    crate::disk::DiskKind::Nvme => "NVMe SSD".to_string(),
                },
            ),
            ("Static (idle) power", format!("{:.1} W", self.static_w())),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_power_matches_table2_inference() {
        // 115.1 W (nnread total) − 10.3 W (nnread dynamic) ≈ 104.8 W.
        let spec = HardwareSpec::table1();
        assert!(
            (spec.static_w() - 104.9).abs() < 0.2,
            "got {}",
            spec.static_w()
        );
    }

    #[test]
    fn ssd_variant_lowers_static_power() {
        assert!(HardwareSpec::table1_with_ssd().static_w() < HardwareSpec::table1().static_w());
    }

    #[test]
    fn table1_rows_render() {
        let rows = HardwareSpec::table1().table1_rows();
        assert!(rows
            .iter()
            .any(|(k, v)| *k == "CPU frequency" && v == "2.4 GHz"));
        assert!(rows
            .iter()
            .any(|(k, v)| *k == "Memory size" && v == "64 GiB"));
    }
}
