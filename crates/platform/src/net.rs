//! Network interface model (multi-node / in-transit extension).
//!
//! The paper's future-work list includes studying network I/O on multi-node
//! systems; the `greenness-core` crate uses this model for its in-transit
//! pipeline extension, where raw data is shipped to a staging node instead of
//! the local disk.

use serde::{Deserialize, Serialize};

/// Timing and power model for the node's NIC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetModel {
    /// Effective bandwidth, bytes/s.
    pub bandwidth_bytes_per_s: f64,
    /// Extra NIC power while transferring, watts (idle NIC power is folded
    /// into the board constant).
    pub active_w: f64,
    /// Per-message latency, seconds.
    pub latency_s: f64,
}

impl NetModel {
    /// A 10 GbE NIC at ≈80% efficiency.
    pub fn ten_gbe() -> Self {
        NetModel {
            bandwidth_bytes_per_s: 1.0e9,
            active_w: 2.5,
            latency_s: 50.0e-6,
        }
    }

    /// Seconds to send `bytes` as `messages` messages.
    pub fn transfer_seconds(&self, bytes: u64, messages: u32) -> f64 {
        messages as f64 * self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::GIB;

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let net = NetModel::ten_gbe();
        let t = net.transfer_seconds(GIB, 1);
        assert!((t - (GIB as f64 / 1.0e9 + 50.0e-6)).abs() < 1e-9);
    }

    #[test]
    fn latency_dominates_many_small_messages() {
        let net = NetModel::ten_gbe();
        let t = net.transfer_seconds(1024, 10_000);
        assert!(t > 0.5);
    }
}
