//! Byte-size and rate constants shared across the workspace.

/// One kibibyte (2^10 bytes).
pub const KIB: u64 = 1024;
/// One mebibyte (2^20 bytes).
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte (2^30 bytes).
pub const GIB: u64 = 1024 * MIB;

/// Format a byte count with a binary-prefix unit, for reports.
pub fn format_bytes(bytes: u64) -> String {
    if bytes >= GIB && bytes % GIB == 0 {
        format!("{} GiB", bytes / GIB)
    } else if bytes >= MIB && bytes % MIB == 0 {
        format!("{} MiB", bytes / MIB)
    } else if bytes >= KIB && bytes % KIB == 0 {
        format!("{} KiB", bytes / KIB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(MIB, 1_048_576);
        assert_eq!(GIB, 1_073_741_824);
    }

    #[test]
    fn formatting_picks_the_largest_exact_unit() {
        assert_eq!(format_bytes(4 * GIB), "4 GiB");
        assert_eq!(format_bytes(128 * KIB), "128 KiB");
        assert_eq!(format_bytes(3 * MIB), "3 MiB");
        assert_eq!(format_bytes(1000), "1000 B");
        assert_eq!(format_bytes(MIB + KIB), "1025 KiB");
    }
}
