//! Instantaneous per-subsystem power draw.
//!
//! The paper's measurement methodology resolves the node into four channels:
//! processor package (RAPL PKG), DRAM (RAPL DRAM), the full system (Wattsup
//! wall meter), and "rest of system" — disk, network, motherboard, fans —
//! estimated as `system - package - dram` (§IV-B). We carry the disk and NIC
//! separately so model code stays physical; the instrumentation layer lumps
//! them into "rest" exactly as the paper's subtraction does.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

use serde::{Deserialize, Serialize};

/// Power drawn by each node subsystem at some instant, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerDraw {
    /// Both CPU packages combined (what RAPL PKG would report, summed).
    pub package_w: f64,
    /// All DIMMs combined (what RAPL DRAM would report, summed).
    pub dram_w: f64,
    /// The storage device.
    pub disk_w: f64,
    /// The network interface.
    pub net_w: f64,
    /// Motherboard, fans, PSU losses — everything else.
    pub board_w: f64,
}

impl PowerDraw {
    /// Zero draw on every channel.
    pub const ZERO: PowerDraw = PowerDraw {
        package_w: 0.0,
        dram_w: 0.0,
        disk_w: 0.0,
        net_w: 0.0,
        board_w: 0.0,
    };

    /// Full-system power: what a wall meter sees.
    #[inline]
    pub fn system_w(&self) -> f64 {
        self.package_w + self.dram_w + self.disk_w + self.net_w + self.board_w
    }

    /// The paper's "rest of system" channel: `system - package - dram`.
    #[inline]
    pub fn rest_w(&self) -> f64 {
        self.disk_w + self.net_w + self.board_w
    }

    /// True if every channel is finite and non-negative.
    pub fn is_physical(&self) -> bool {
        [
            self.package_w,
            self.dram_w,
            self.disk_w,
            self.net_w,
            self.board_w,
        ]
        .iter()
        .all(|w| w.is_finite() && *w >= 0.0)
    }
}

impl Add for PowerDraw {
    type Output = PowerDraw;
    #[inline]
    fn add(self, rhs: PowerDraw) -> PowerDraw {
        PowerDraw {
            package_w: self.package_w + rhs.package_w,
            dram_w: self.dram_w + rhs.dram_w,
            disk_w: self.disk_w + rhs.disk_w,
            net_w: self.net_w + rhs.net_w,
            board_w: self.board_w + rhs.board_w,
        }
    }
}

impl AddAssign for PowerDraw {
    #[inline]
    fn add_assign(&mut self, rhs: PowerDraw) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for PowerDraw {
    type Output = PowerDraw;
    #[inline]
    fn mul(self, k: f64) -> PowerDraw {
        PowerDraw {
            package_w: self.package_w * k,
            dram_w: self.dram_w * k,
            disk_w: self.disk_w * k,
            net_w: self.net_w * k,
            board_w: self.board_w * k,
        }
    }
}

impl Sum for PowerDraw {
    fn sum<I: Iterator<Item = PowerDraw>>(iter: I) -> PowerDraw {
        iter.fold(PowerDraw::ZERO, Add::add)
    }
}

/// Energy accumulated per subsystem, in joules. Mirrors [`PowerDraw`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy consumed by the CPU packages.
    pub package_j: f64,
    /// Energy consumed by DRAM.
    pub dram_j: f64,
    /// Energy consumed by the storage device.
    pub disk_j: f64,
    /// Energy consumed by the NIC.
    pub net_j: f64,
    /// Energy consumed by the rest of the board.
    pub board_j: f64,
}

impl EnergyBreakdown {
    /// Zero energy on every channel.
    pub const ZERO: EnergyBreakdown = EnergyBreakdown {
        package_j: 0.0,
        dram_j: 0.0,
        disk_j: 0.0,
        net_j: 0.0,
        board_j: 0.0,
    };

    /// Total (full-system) energy.
    #[inline]
    pub fn system_j(&self) -> f64 {
        self.package_j + self.dram_j + self.disk_j + self.net_j + self.board_j
    }

    /// Accumulate `draw` held for `secs` seconds.
    #[inline]
    pub fn accumulate(&mut self, draw: PowerDraw, secs: f64) {
        self.package_j += draw.package_w * secs;
        self.dram_j += draw.dram_w * secs;
        self.disk_j += draw.disk_w * secs;
        self.net_j += draw.net_w * secs;
        self.board_j += draw.board_w * secs;
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    #[inline]
    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            package_j: self.package_j + rhs.package_j,
            dram_j: self.dram_j + rhs.dram_j,
            disk_j: self.disk_j + rhs.disk_j,
            net_j: self.net_j + rhs.net_j,
            board_j: self.board_j + rhs.board_j,
        }
    }
}

impl Sum for EnergyBreakdown {
    fn sum<I: Iterator<Item = EnergyBreakdown>>(iter: I) -> EnergyBreakdown {
        iter.fold(EnergyBreakdown::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draw() -> PowerDraw {
        PowerDraw {
            package_w: 40.0,
            dram_w: 10.0,
            disk_w: 5.0,
            net_w: 1.0,
            board_w: 49.0,
        }
    }

    #[test]
    fn system_is_sum_of_channels() {
        assert!((draw().system_w() - 105.0).abs() < 1e-12);
    }

    #[test]
    fn rest_matches_paper_subtraction() {
        let d = draw();
        assert!((d.rest_w() - (d.system_w() - d.package_w - d.dram_w)).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let d = draw() + draw();
        assert!((d.system_w() - 210.0).abs() < 1e-12);
        let h = draw() * 0.5;
        assert!((h.system_w() - 52.5).abs() < 1e-12);
    }

    #[test]
    fn physicality_check_rejects_negative_and_nan() {
        let mut d = draw();
        assert!(d.is_physical());
        d.disk_w = -1.0;
        assert!(!d.is_physical());
        d.disk_w = f64::NAN;
        assert!(!d.is_physical());
    }

    #[test]
    fn energy_accumulation_is_power_times_time() {
        let mut e = EnergyBreakdown::ZERO;
        e.accumulate(draw(), 2.0);
        assert!((e.system_j() - 210.0).abs() < 1e-9);
        assert!((e.package_j - 80.0).abs() < 1e-9);
    }
}
