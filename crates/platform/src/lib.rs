//! # greenness-platform
//!
//! Node-level hardware and energy models for studying the *greenness* (power,
//! energy, energy efficiency) of simulation + visualization pipelines.
//!
//! This crate is the bottom substrate of the `greenness` workspace. It models a
//! single HPC node — the dual-socket Intel Sandy Bridge machine of Table I of
//! the paper — as a set of subsystems (CPU package, DRAM, disk, NIC,
//! rest-of-system), each with a calibrated power model, driven by a
//! deterministic virtual clock.
//!
//! The central abstraction is the [`Node`]: application-level code (the heat
//! solver, the storage stack, the renderer) describes the work it actually
//! performed as an [`Activity`] (flops computed, bytes transferred, pixels
//! shaded, …); the node converts that work into virtual time via the device
//! timing models and appends a piecewise-constant power segment to its
//! [`Timeline`]. Power instrumentation (the `greenness-power` crate) then
//! samples and integrates the timeline exactly as an external wall meter or
//! the RAPL interface would.
//!
//! Everything is deterministic: the clock is integer nanoseconds, model
//! arithmetic is pure, and no wall-clock time or OS randomness is consulted.
//!
//! ```
//! use greenness_platform::{Node, HardwareSpec, Activity, Phase};
//!
//! let mut node = Node::new(HardwareSpec::table1());
//! // One second of full-tilt compute on all 16 cores.
//! let flops = node.spec().cpu.peak_flops(16);
//! node.execute(Activity::compute(flops, 16), Phase::Simulation);
//! let e = node.timeline().total_energy_j();
//! assert!(e > 100.0); // more than 100 W for one second
//! ```

pub mod activity;
pub mod cpu;
pub mod disk;
pub mod dram;
pub mod net;
pub mod node;
pub mod phase;
pub mod power;
pub mod spec;
pub mod time;
pub mod timeline;
pub mod units;

pub use activity::{AccessPattern, Activity};
pub use cpu::CpuModel;
pub use disk::{DiskKind, DiskModel};
pub use dram::DramModel;
pub use net::NetModel;
pub use node::{Executed, Node};
pub use phase::Phase;
pub use power::PowerDraw;
pub use spec::HardwareSpec;
pub use time::{SimDuration, SimTime};
pub use timeline::{Segment, Timeline};
