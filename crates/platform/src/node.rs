//! The node under test: executes activities, advances the virtual clock, and
//! records the power timeline.

use greenness_trace::{Tracer, Value};
use serde::{Deserialize, Serialize};

use crate::activity::Activity;
use crate::disk::IoDir;
use crate::phase::Phase;
use crate::power::PowerDraw;
use crate::spec::HardwareSpec;
use crate::time::{SimDuration, SimTime};
use crate::timeline::{Segment, Timeline};

/// Result of executing one activity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Executed {
    /// When the activity started.
    pub start: SimTime,
    /// How long it took.
    pub duration: SimDuration,
    /// The power drawn while it ran.
    pub draw: PowerDraw,
}

impl Executed {
    /// The instant the activity finished.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    /// Full-system energy the activity consumed, joules.
    pub fn energy_j(&self) -> f64 {
        self.draw.system_w() * self.duration.as_secs_f64()
    }

    /// Disk power above idle during the activity — the paper's Table III
    /// "disk dynamic power" metric. The caller supplies the device idle power.
    pub fn disk_dyn_w(&self, disk_idle_w: f64) -> f64 {
        (self.draw.disk_w - disk_idle_w).max(0.0)
    }
}

/// A simulated HPC node: hardware models + virtual clock + power history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    spec: HardwareSpec,
    now: SimTime,
    timeline: Timeline,
    /// Extra package power while energy monitoring is attached. The paper
    /// measured +0.2 W for 1 Hz RAPL polling (§IV-B).
    monitoring_overhead_w: f64,
    /// Observability handle; `Tracer::off()` costs one branch per activity.
    tracer: Tracer,
    /// Phase whose journal span is currently open.
    open_phase: Option<Phase>,
    /// Disk activity state ("idle"/"read"/"write"/"barrier") for
    /// state-transition events.
    disk_state: &'static str,
}

impl Node {
    /// A fresh node at `t = 0` with the given hardware.
    pub fn new(spec: HardwareSpec) -> Self {
        Node {
            spec,
            now: SimTime::ZERO,
            timeline: Timeline::new(),
            monitoring_overhead_w: 0.0,
            tracer: Tracer::off(),
            open_phase: None,
            disk_state: "idle",
        }
    }

    /// Attach a tracer: subsequent activities emit journal events and bump
    /// metrics counters through it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The attached tracer (off by default). Cloning it is cheap — clones
    /// share the same journal and registry.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Close the open phase span (if any) and take a final per-phase metrics
    /// snapshot. Call once when the run is over, before reading the journal.
    pub fn finish_trace(&mut self) {
        if let Some(phase) = self.open_phase.take() {
            let t = self.now.as_nanos();
            self.tracer
                .end(t, "phase", vec![("phase", Value::from(phase.label()))]);
            self.tracer.snapshot(&format!("phase:{}", phase.label()));
        }
    }

    /// The node's hardware description.
    pub fn spec(&self) -> &HardwareSpec {
        &self.spec
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The power history recorded so far.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Consume the node, returning its timeline.
    pub fn into_timeline(self) -> Timeline {
        self.timeline
    }

    /// Attach (or detach, with `0.0`) an energy monitor drawing
    /// `overhead_w` extra package power from now on.
    pub fn set_monitoring_overhead_w(&mut self, overhead_w: f64) {
        self.monitoring_overhead_w = overhead_w.max(0.0);
    }

    /// The attached monitor's package-power overhead, watts. External device
    /// models (e.g. the tiered store) add this to their own busy draws so
    /// their segments compose bit-identically with [`Self::cost_of`]'s.
    pub fn monitoring_overhead_w(&self) -> f64 {
        self.monitoring_overhead_w
    }

    /// The baseline draw with every subsystem idle.
    pub fn idle_draw(&self) -> PowerDraw {
        PowerDraw {
            package_w: self.spec.cpu.idle_w() + self.monitoring_overhead_w,
            dram_w: self.spec.dram.background_w,
            disk_w: self.spec.disk.idle_w,
            net_w: 0.0,
            board_w: self.spec.board_w,
        }
    }

    /// Execute `activity` under `phase`: advance the clock and append a power
    /// segment. Returns what was recorded.
    pub fn execute(&mut self, activity: Activity, phase: Phase) -> Executed {
        let (secs, draw) = self.cost_of(activity);
        if self.tracer.is_on() {
            self.trace_activity(Some(&activity), phase, secs, &draw);
        }
        let duration = SimDuration::from_secs_f64(secs);
        let start = self.now;
        let seg = Segment {
            start,
            duration,
            draw,
            phase,
        };
        self.timeline.push(seg);
        self.now += duration;
        Executed {
            start,
            duration,
            draw,
        }
    }

    /// Record an explicit `(seconds, draw)` span — for callers that costed
    /// an activity against a *different* hardware configuration (e.g. a
    /// DVFS-scaled CPU) and replay it here. The draw must be physical.
    pub fn execute_raw(&mut self, secs: f64, draw: PowerDraw, phase: Phase) -> Executed {
        if self.tracer.is_on() {
            self.trace_activity(None, phase, secs, &draw);
        }
        let duration = SimDuration::from_secs_f64(secs);
        let start = self.now;
        self.timeline.push(Segment {
            start,
            duration,
            draw,
            phase,
        });
        self.now += duration;
        Executed {
            start,
            duration,
            draw,
        }
    }

    /// Journal + metrics for one activity (tracing is already known to be
    /// on). Phase transitions open/close spans and snapshot the registry;
    /// byte counters mirror the energy model's accounting exactly: buffered
    /// disk I/O moves `bytes * 2` through DRAM (device + user copy), network
    /// transfers charge DRAM only when they take time.
    fn trace_activity(
        &mut self,
        activity: Option<&Activity>,
        phase: Phase,
        secs: f64,
        draw: &PowerDraw,
    ) {
        let t = self.now.as_nanos();
        if self.open_phase != Some(phase) {
            if let Some(prev) = self.open_phase {
                self.tracer
                    .end(t, "phase", vec![("phase", Value::from(prev.label()))]);
                self.tracer.snapshot(&format!("phase:{}", prev.label()));
            }
            self.tracer
                .begin(t, "phase", vec![("phase", Value::from(phase.label()))]);
            self.open_phase = Some(phase);
        }
        let (kind, disk_state) = match activity {
            Some(Activity::Compute { .. }) => ("compute", "idle"),
            Some(Activity::DiskRead { .. }) => ("disk_read", "read"),
            Some(Activity::DiskWrite { .. }) => ("disk_write", "write"),
            Some(Activity::DiskBarrier { .. }) => ("disk_barrier", "barrier"),
            Some(Activity::MemTraffic { .. }) => ("mem_traffic", "idle"),
            Some(Activity::NetTransfer { .. }) => ("net_transfer", "idle"),
            Some(Activity::Idle { .. }) => ("idle", "idle"),
            None => ("raw", "idle"),
        };
        if disk_state != self.disk_state {
            self.tracer.instant(
                t,
                "disk.state",
                vec![
                    ("from", Value::from(self.disk_state)),
                    ("to", Value::from(disk_state)),
                ],
            );
            self.tracer.count("disk.state_transitions", 1);
            self.disk_state = disk_state;
        }
        let mut bytes = 0u64;
        match activity {
            Some(&Activity::Compute { dram_bytes, .. }) => {
                self.tracer.count("dram.bytes", dram_bytes);
            }
            Some(&Activity::DiskRead {
                bytes: b, buffered, ..
            }) => {
                bytes = b;
                self.tracer.count("disk.reads", 1);
                self.tracer.count("disk.bytes_read", b);
                if buffered {
                    self.tracer.count("dram.bytes", b * 2);
                }
            }
            Some(&Activity::DiskWrite {
                bytes: b, buffered, ..
            }) => {
                bytes = b;
                self.tracer.count("disk.writes", 1);
                self.tracer.count("disk.bytes_written", b);
                if buffered {
                    self.tracer.count("dram.bytes", b * 2);
                }
            }
            Some(&Activity::DiskBarrier { seeks }) => {
                self.tracer.count("disk.barriers", 1);
                self.tracer.count("disk.seeks", u64::from(seeks));
            }
            Some(&Activity::MemTraffic { bytes: b }) => {
                bytes = b;
                self.tracer.count("dram.bytes", b);
            }
            Some(&Activity::NetTransfer { bytes: b, messages }) => {
                bytes = b;
                self.tracer.count("net.bytes", b);
                self.tracer.count("net.messages", u64::from(messages));
                if secs > 0.0 {
                    self.tracer.count("dram.bytes", b);
                }
            }
            Some(&Activity::Idle { .. }) | None => {}
        }
        self.tracer.count("activity.count", 1);
        self.tracer.instant(
            t,
            "activity",
            vec![
                ("phase", Value::from(phase.label())),
                ("kind", Value::from(kind)),
                ("secs", Value::from(secs)),
                ("bytes", Value::from(bytes)),
                ("package_w", Value::from(draw.package_w)),
                ("dram_w", Value::from(draw.dram_w)),
                ("disk_w", Value::from(draw.disk_w)),
                ("net_w", Value::from(draw.net_w)),
                ("board_w", Value::from(draw.board_w)),
            ],
        );
    }

    /// Compute the `(seconds, draw)` an activity would cost without executing
    /// it — used by planners such as the pipeline advisor.
    pub fn cost_of(&self, activity: Activity) -> (f64, PowerDraw) {
        let spec = &self.spec;
        let mut draw = self.idle_draw();
        let secs = match activity {
            Activity::Compute {
                flops,
                cores,
                intensity,
                dram_bytes,
            } => {
                let secs = spec.cpu.compute_seconds(flops, cores);
                draw.package_w = spec.cpu.busy_w(cores, intensity) + self.monitoring_overhead_w;
                draw.dram_w += spec.dram.dynamic_w(dram_bytes, secs);
                secs
            }
            Activity::DiskRead {
                bytes,
                pattern,
                buffered,
            } => {
                let cost = spec.disk.transfer(bytes, IoDir::Read, pattern);
                draw.disk_w += cost.dyn_w;
                if buffered {
                    draw.package_w = spec.cpu.io_busy_w(true) + self.monitoring_overhead_w;
                    draw.dram_w += spec.dram.dynamic_w(bytes * 2, cost.seconds);
                }
                cost.seconds
            }
            Activity::DiskWrite {
                bytes,
                pattern,
                buffered,
            } => {
                let cost = spec.disk.transfer(bytes, IoDir::Write, pattern);
                draw.disk_w += cost.dyn_w;
                if buffered {
                    draw.package_w = spec.cpu.io_busy_w(false) + self.monitoring_overhead_w;
                    draw.dram_w += spec.dram.dynamic_w(bytes * 2, cost.seconds);
                }
                cost.seconds
            }
            Activity::DiskBarrier { seeks } => {
                // Journal commits keep the kernel busy alongside the disk.
                let cost = spec.disk.barrier(seeks);
                draw.disk_w += cost.dyn_w;
                if seeks > 0 {
                    draw.package_w = spec.cpu.io_busy_w(false) + self.monitoring_overhead_w;
                }
                cost.seconds
            }
            Activity::MemTraffic { bytes } => {
                let secs = spec.dram.transfer_seconds(bytes);
                draw.package_w = spec.cpu.io_busy_w(false) + self.monitoring_overhead_w;
                draw.dram_w += spec.dram.dynamic_w(bytes, secs);
                secs
            }
            Activity::NetTransfer { bytes, messages } => {
                let secs = spec.net.transfer_seconds(bytes, messages);
                draw.net_w += spec.net.active_w;
                draw.package_w = spec.cpu.io_busy_w(false) + self.monitoring_overhead_w;
                if secs > 0.0 {
                    draw.dram_w += spec.dram.dynamic_w(bytes, secs);
                }
                secs
            }
            Activity::Idle { duration } => duration.as_secs_f64(),
        };
        (secs, draw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::AccessPattern;
    use crate::units::{GIB, KIB};

    fn node() -> Node {
        Node::new(HardwareSpec::table1())
    }

    #[test]
    fn idle_draw_is_static_power() {
        let n = node();
        assert!((n.idle_draw().system_w() - n.spec().static_w()).abs() < 1e-9);
    }

    #[test]
    fn simulation_phase_power_matches_fig5() {
        // Full-tilt 16-core compute at the calibrated DRAM traffic rate draws
        // ≈143 W full-system (the Figure 5 simulation-phase level).
        let mut n = node();
        let flops = n.spec().cpu.sustained_flops(16) * 1.57; // 1.57 s of work
        let e = n.execute(
            Activity::Compute {
                flops,
                cores: 16,
                intensity: 1.0,
                dram_bytes: 19_800_000_000,
            },
            Phase::Simulation,
        );
        assert!((e.duration.as_secs_f64() - 1.57).abs() < 0.01);
        let sys = e.draw.system_w();
        assert!((sys - 143.0).abs() < 0.5, "got {sys}");
        // Processor trace ≈71.8 W, DRAM trace ≈16.3 W (Fig. 5 levels).
        assert!((e.draw.package_w - 71.8).abs() < 0.1);
        assert!((e.draw.dram_w - 16.3).abs() < 0.2);
    }

    #[test]
    fn fio_sequential_read_power_matches_table3() {
        let mut n = node();
        let e = n.execute(
            Activity::DiskRead {
                bytes: 4 * GIB,
                pattern: AccessPattern::Sequential,
                buffered: false,
            },
            Phase::IoBench,
        );
        // Paper: 35.9 s at 118 W full-system, disk dynamic 13.5 W.
        assert!((e.duration.as_secs_f64() - 35.9).abs() < 0.1);
        assert!(
            (e.draw.system_w() - 118.0).abs() < 0.6,
            "got {}",
            e.draw.system_w()
        );
        assert!((e.disk_dyn_w(n.spec().disk.idle_w) - 13.5).abs() < 0.1);
    }

    #[test]
    fn fio_random_read_power_matches_table3() {
        let mut n = node();
        let e = n.execute(
            Activity::DiskRead {
                bytes: 4 * GIB,
                pattern: AccessPattern::Random {
                    op_bytes: 4 * KIB,
                    queue_depth: 32,
                },
                buffered: false,
            },
            Phase::IoBench,
        );
        assert!((e.duration.as_secs_f64() - 2230.0).abs() < 50.0);
        assert!(
            (e.draw.system_w() - 107.0).abs() < 0.6,
            "got {}",
            e.draw.system_w()
        );
    }

    #[test]
    fn buffered_io_charges_cpu_assist() {
        let mut n = node();
        let direct = n.cost_of(Activity::DiskRead {
            bytes: GIB,
            pattern: AccessPattern::Sequential,
            buffered: false,
        });
        let buffered = n.cost_of(Activity::DiskRead {
            bytes: GIB,
            pattern: AccessPattern::Sequential,
            buffered: true,
        });
        assert!(buffered.1.package_w > direct.1.package_w + 5.0);
        // Same device time either way.
        assert!((buffered.0 - direct.0).abs() < 1e-12);
        let _ = n.execute(Activity::idle_secs(1.0), Phase::Idle);
    }

    #[test]
    fn clock_advances_and_timeline_is_contiguous() {
        let mut n = node();
        n.execute(Activity::idle_secs(2.0), Phase::Idle);
        n.execute(Activity::compute(1e9, 16), Phase::Simulation);
        n.execute(Activity::write_seq(128 * KIB), Phase::Write);
        assert_eq!(n.timeline().end(), n.now());
        assert!(n.now().as_secs_f64() > 2.0);
    }

    #[test]
    fn monitoring_overhead_raises_package_power() {
        let mut n = node();
        let before = n.idle_draw().package_w;
        n.set_monitoring_overhead_w(0.2);
        assert!((n.idle_draw().package_w - before - 0.2).abs() < 1e-12);
        // Negative overheads are clamped.
        n.set_monitoring_overhead_w(-5.0);
        assert_eq!(n.idle_draw().package_w, before);
    }

    #[test]
    fn idle_energy_is_static_power_times_time() {
        let mut n = node();
        n.execute(Activity::idle_secs(10.0), Phase::Idle);
        let e = n.timeline().total_energy_j();
        assert!((e - n.spec().static_w() * 10.0).abs() < 1e-6);
    }

    #[test]
    fn cost_of_does_not_advance_clock() {
        let n = node();
        let (secs, _) = n.cost_of(Activity::compute(1e12, 16));
        assert!(secs > 0.0);
        assert_eq!(n.now(), SimTime::ZERO);
        assert!(n.timeline().is_empty());
    }
}
