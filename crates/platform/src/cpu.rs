//! CPU package timing and power model.
//!
//! Models the two Intel Xeon E5-2665 packages of Table I. Power is
//! `idle + active`, where the active (dynamic) part scales with the number of
//! busy cores, their arithmetic intensity, and — for the DVFS extension — the
//! cube of the frequency scale (dynamic power `∝ f·V²` with `V ∝ f`).
//!
//! Calibration (see DESIGN.md §4): the simulation phase of the paper's proxy
//! app draws ≈143 W full-system, of which ≈31.8 W is package dynamic power at
//! 16 busy cores; package idle is ≈40 W for both sockets combined, consistent
//! with the ≈53–73 W processor trace of Figure 5.

use serde::{Deserialize, Serialize};

/// Timing and power model for the node's CPU packages (all sockets combined).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Number of sockets (Table I: 2).
    pub sockets: u32,
    /// Cores per socket (Table I: 8).
    pub cores_per_socket: u32,
    /// Nominal core frequency in Hz (Table I: 2.4 GHz).
    pub base_freq_hz: f64,
    /// Double-precision flops per core per cycle (Sandy Bridge AVX: 8).
    pub flops_per_cycle: f64,
    /// Fraction of peak a real stencil/FEM kernel sustains.
    pub compute_efficiency: f64,
    /// Idle power per socket, watts.
    pub idle_w_per_socket: f64,
    /// Dynamic power per fully-busy core at base frequency, watts.
    pub active_w_per_core: f64,
    /// Extra uncore power per socket while any of its cores is busy, watts.
    pub uncore_active_w_per_socket: f64,
    /// Package power uplift while servicing *buffered* reads (page-cache
    /// copy-to-user, read-ahead bookkeeping). Direct I/O (fio) bypasses this.
    /// Calibrated so the nnread probe averages 115.1 W (Table II).
    pub io_assist_read_w: f64,
    /// Package power uplift while servicing *buffered* writes and journal
    /// commits. Calibrated so the nnwrite probe averages 114.8 W (Table II).
    pub io_assist_write_w: f64,
    /// DVFS frequency multiplier in `(0, 1]`; 1.0 = nominal 2.4 GHz.
    pub freq_scale: f64,
}

impl CpuModel {
    /// The Table I processor: 2× 8-core E5-2665 @ 2.4 GHz.
    pub fn e5_2665_pair() -> Self {
        CpuModel {
            sockets: 2,
            cores_per_socket: 8,
            base_freq_hz: 2.4e9,
            flops_per_cycle: 8.0,
            compute_efficiency: 0.25,
            idle_w_per_socket: 20.0,
            active_w_per_core: 1.8,
            uncore_active_w_per_socket: 1.5,
            io_assist_read_w: 7.6,
            io_assist_write_w: 6.0,
            freq_scale: 1.0,
        }
    }

    /// Total core count across all sockets.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Theoretical peak flop rate of `cores` busy cores at the current DVFS
    /// point, in flops/s.
    pub fn peak_flops(&self, cores: u32) -> f64 {
        let cores = cores.min(self.total_cores());
        cores as f64 * self.base_freq_hz * self.freq_scale * self.flops_per_cycle
    }

    /// Sustained flop rate (peak × efficiency) of `cores` busy cores.
    pub fn sustained_flops(&self, cores: u32) -> f64 {
        self.peak_flops(cores) * self.compute_efficiency
    }

    /// Seconds to execute `flops` floating-point operations on `cores` cores.
    pub fn compute_seconds(&self, flops: f64, cores: u32) -> f64 {
        let rate = self.sustained_flops(cores);
        if rate <= 0.0 {
            return 0.0;
        }
        flops / rate
    }

    /// Idle package power (all sockets), watts.
    pub fn idle_w(&self) -> f64 {
        self.sockets as f64 * self.idle_w_per_socket
    }

    /// Package power with `cores` busy at the given arithmetic `intensity`
    /// (0–1), watts. Dynamic power scales with `freq_scale³` (DVFS).
    pub fn busy_w(&self, cores: u32, intensity: f64) -> f64 {
        let cores = cores.min(self.total_cores());
        let intensity = intensity.clamp(0.0, 1.0);
        if cores == 0 || intensity == 0.0 {
            return self.idle_w();
        }
        // Busy cores fill sockets in order; each touched socket wakes its uncore.
        let sockets_touched = cores.div_ceil(self.cores_per_socket);
        let dvfs = self.freq_scale.powi(3);
        let core_dyn = cores as f64 * self.active_w_per_core * intensity * dvfs;
        let uncore = sockets_touched as f64 * self.uncore_active_w_per_socket * dvfs;
        self.idle_w() + core_dyn + uncore
    }

    /// Package power while servicing buffered I/O, watts.
    pub fn io_busy_w(&self, is_read: bool) -> f64 {
        self.idle_w()
            + if is_read {
                self.io_assist_read_w
            } else {
                self.io_assist_write_w
            }
    }

    /// A copy of this model re-clocked to `scale × base frequency`.
    /// `scale` is clamped to `[0.1, 1.0]`.
    pub fn with_freq_scale(&self, scale: f64) -> Self {
        CpuModel {
            freq_scale: scale.clamp(0.1, 1.0),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_core_count() {
        let cpu = CpuModel::e5_2665_pair();
        assert_eq!(cpu.total_cores(), 16);
    }

    #[test]
    fn idle_power_matches_calibration() {
        let cpu = CpuModel::e5_2665_pair();
        assert!((cpu.idle_w() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn fully_busy_power_matches_calibration() {
        let cpu = CpuModel::e5_2665_pair();
        // 40 idle + 16×1.8 core + 2×1.5 uncore = 71.8 W (the Fig. 5 sim trace).
        assert!((cpu.busy_w(16, 1.0) - 71.8).abs() < 1e-9);
    }

    #[test]
    fn one_core_wakes_one_uncore() {
        let cpu = CpuModel::e5_2665_pair();
        assert!((cpu.busy_w(1, 1.0) - (40.0 + 1.8 + 1.5)).abs() < 1e-9);
        // Ninth core spills onto the second socket.
        assert!((cpu.busy_w(9, 1.0) - (40.0 + 9.0 * 1.8 + 3.0)).abs() < 1e-9);
    }

    #[test]
    fn zero_intensity_is_idle() {
        let cpu = CpuModel::e5_2665_pair();
        assert_eq!(cpu.busy_w(16, 0.0), cpu.idle_w());
        assert_eq!(cpu.busy_w(0, 1.0), cpu.idle_w());
    }

    #[test]
    fn core_count_saturates_at_hardware_limit() {
        let cpu = CpuModel::e5_2665_pair();
        assert_eq!(cpu.busy_w(99, 1.0), cpu.busy_w(16, 1.0));
        assert_eq!(cpu.peak_flops(99), cpu.peak_flops(16));
    }

    #[test]
    fn compute_time_scales_inversely_with_cores() {
        let cpu = CpuModel::e5_2665_pair();
        let t16 = cpu.compute_seconds(1e12, 16);
        let t8 = cpu.compute_seconds(1e12, 8);
        assert!((t8 / t16 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dvfs_slows_compute_and_cuts_dynamic_power_cubically() {
        let cpu = CpuModel::e5_2665_pair();
        let half = cpu.with_freq_scale(0.5);
        assert!(
            (half.compute_seconds(1e12, 16) / cpu.compute_seconds(1e12, 16) - 2.0).abs() < 1e-9
        );
        let dyn_full = cpu.busy_w(16, 1.0) - cpu.idle_w();
        let dyn_half = half.busy_w(16, 1.0) - half.idle_w();
        assert!((dyn_half / dyn_full - 0.125).abs() < 1e-9);
    }

    #[test]
    fn freq_scale_is_clamped() {
        let cpu = CpuModel::e5_2665_pair().with_freq_scale(7.0);
        assert_eq!(cpu.freq_scale, 1.0);
        let cpu = CpuModel::e5_2665_pair().with_freq_scale(0.0);
        assert_eq!(cpu.freq_scale, 0.1);
    }
}
