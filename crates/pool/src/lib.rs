//! # greenness-pool
//!
//! The workspace's one thread pool: a bounded **work-stealing** executor
//! built on `std::thread::scope` + `std::sync::mpsc`, with no external
//! dependencies (the crate registry is not always reachable from the build
//! hosts, so everything below `shims/` must be std-only).
//!
//! It started life inside `greenness_core::sweep` (PR 1), was shared with
//! the placement sweep (PR 6), and now lives in its own leaf crate so
//! layers *below* `core` — the heat solver's domain-decomposed
//! [`HeatSolver::step`](../greenness_heatsim/struct.HeatSolver.html) tiles —
//! can schedule onto the same pool shape.
//!
//! Determinism contract, unchanged from the sweep executor: which worker
//! *runs* a job never affects the job's result; results are delivered to
//! the caller with their submission index, so callers reassemble outputs in
//! an order that does not depend on scheduling. Every user of this pool is
//! pinned bit-identical across worker counts by its own suite
//! (`tests/parallel_determinism.rs`, `tests/placement_determinism.rs`, and
//! the stencil jobs-1-vs-8 tests in `tests/bench_trajectory.rs`).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Mutex, PoisonError};

/// Lock a queue, treating a poisoned mutex as usable: the deques hold plain
/// `usize` ids and every critical section is a single push/pop, so a panic
/// elsewhere cannot leave them mid-mutation.
fn lock_queue(q: &Mutex<VecDeque<usize>>) -> std::sync::MutexGuard<'_, VecDeque<usize>> {
    q.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Run job indices `0..total` on `workers` threads (clamped to
/// `1..=total`), calling `exec` on whatever worker picked each index and
/// `on_collected` on the **calling** thread as results arrive (arrival
/// order is scheduling-dependent; callers index into their own slot table).
/// A panicking job is caught on its worker and delivered as `Err(message)`.
///
/// Per-worker deques are dealt round-robin. A worker pops from the front of
/// its own deque and steals from the *back* of the busiest other deque, the
/// classic Arora-Blumofe-Plaxton shape, here with plain mutexed deques: the
/// batch is fixed (no dynamic spawning), so lock-free machinery would buy
/// nothing this side of thousands of jobs.
pub fn run_pool<R: Send>(
    total: usize,
    workers: usize,
    exec: &(dyn Fn(usize) -> R + Sync),
    on_collected: &mut dyn FnMut(usize, Result<R, String>),
) {
    if total == 0 {
        return;
    }
    let workers = workers.clamp(1, total);

    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..total {
        lock_queue(&queues[i % workers]).push_back(i);
    }

    let (tx, rx) = mpsc::channel::<(usize, Result<R, String>)>();
    std::thread::scope(|scope| {
        for me in 0..workers {
            let tx = tx.clone();
            let queues = &queues;
            scope.spawn(move || loop {
                let next = pop_own(&queues[me]).or_else(|| steal_other(queues, me));
                let Some(idx) = next else { break };
                let outcome = catch_unwind(AssertUnwindSafe(|| exec(idx)))
                    .map_err(|payload| panic_message(payload.as_ref()));
                if tx.send((idx, outcome)).is_err() {
                    break; // collector gone; nothing left to report to
                }
            });
        }
        drop(tx);
        for (idx, outcome) in rx {
            on_collected(idx, outcome);
        }
    });
}

/// Best-effort stringification of a caught panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn pop_own(queue: &Mutex<VecDeque<usize>>) -> Option<usize> {
    lock_queue(queue).pop_front()
}

fn steal_other(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    // Steal from the currently longest queue; ties break toward the lowest
    // worker index. Which worker *runs* a job never affects its result.
    let victim = queues
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != me)
        .max_by_key(|(i, q)| (lock_queue(q).len(), usize::MAX - i))?;
    victim
        .1
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_index_runs_exactly_once_for_any_worker_count() {
        for workers in [1, 2, 3, 8, 100] {
            let total = 37;
            let runs: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
            let mut collected = vec![false; total];
            run_pool(
                total,
                workers,
                &|idx| {
                    runs[idx].fetch_add(1, Ordering::SeqCst);
                    idx * 3
                },
                &mut |idx, outcome| {
                    assert_eq!(outcome.expect("no panic"), idx * 3);
                    assert!(!collected[idx], "index {idx} delivered twice");
                    collected[idx] = true;
                },
            );
            assert!(runs.iter().all(|r| r.load(Ordering::SeqCst) == 1));
            assert!(collected.iter().all(|c| *c), "workers = {workers}");
        }
    }

    #[test]
    fn zero_jobs_is_a_no_op() {
        run_pool(0, 4, &|idx| idx, &mut |_, _| {
            panic!("no job should run");
        });
    }

    #[test]
    fn a_panicking_job_is_delivered_as_an_error_value() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut outcomes: Vec<Result<usize, String>> = (0..3).map(|_| Ok(0)).collect();
        run_pool(
            3,
            2,
            &|idx| {
                if idx == 1 {
                    panic!("job {idx} exploded");
                }
                idx
            },
            &mut |idx, outcome| outcomes[idx] = outcome,
        );
        std::panic::set_hook(hook);
        assert_eq!(outcomes[0], Ok(0));
        assert_eq!(outcomes[2], Ok(2));
        let err = outcomes[1].as_ref().expect_err("job 1 panicked");
        assert!(err.contains("exploded"), "{err}");
    }
}
