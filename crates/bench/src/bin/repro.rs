//! Regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p greenness-bench --bin repro            # everything
//! cargo run --release -p greenness-bench --bin repro fig10 table3
//! cargo run --release -p greenness-bench --bin repro --jobs 8   # parallel grid
//! ```
//!
//! Artifacts: `table1 fig4 fig5 fig6 table2 fig7 fig8 fig9 fig10 fig11
//! breakdown table3 whatif ext`. Figure time-series (5, 6) are additionally
//! written as CSV under `./repro_out/`, and every grid run writes the
//! per-job results manifest `./repro_out/manifest.json`.
//!
//! `--jobs N` sets the worker-thread count of the sweep executor (default:
//! all cores). Artifacts and the manifest are **byte-identical for every
//! `--jobs` value**: each grid job derives its RNG seed from its job key,
//! never from scheduling (see `greenness_core::sweep`).
//!
//! `--trace PATH` writes the grid's `greenness-trace/v1` event journal and
//! `--metrics PATH` its `greenness-metrics/v1` counter/gauge registry when
//! the case-study grid runs (both are byte-identical across `--jobs`
//! values; inspect a journal with `greenness trace summarize PATH`).
//!
//! `--alpha A` / `--dt D` override the solver's diffusivity and timestep on
//! every case-study config; overrides are validated up front and a config
//! that fails [`greenness_heatsim::SolverConfig::validate`] (non-finite,
//! negative, or CFL-unstable) exits 2 with a structured message.

use std::collections::BTreeSet;

use greenness_bench::default_jobs;
use greenness_core::breakdown::CaseBreakdown;
use greenness_core::sweep::{self, SweepJob};
use greenness_core::whatif::WhatIfAnalysis;
use greenness_core::{
    probes, report, CaseComparison, ExperimentSetup, PipelineConfig, PipelineKind,
};
use greenness_platform::{HardwareSpec, Phase};
use greenness_power::PowerProfile;

const ARTIFACTS: &[&str] = &[
    "table1",
    "fig4",
    "fig5",
    "fig6",
    "table2",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "breakdown",
    "table3",
    "whatif",
    "ext",
];

struct Lazy {
    setup: ExperimentSetup,
    jobs: usize,
    alpha: Option<f64>,
    dt: Option<f64>,
    trace_path: Option<String>,
    metrics_path: Option<String>,
    cases: Option<Vec<CaseComparison>>,
    nnprobes: Option<(probes::ProbeResult, probes::ProbeResult)>,
}

impl Lazy {
    fn cases(&mut self) -> &[CaseComparison] {
        if self.cases.is_none() {
            eprintln!(
                "[repro] running all case studies (both pipelines x 3) on {} worker(s)...",
                self.jobs
            );
            let t0 = std::time::Instant::now();
            let mut grid = sweep::case_grid(&self.setup, &[1, 2, 3]);
            for job in &mut grid {
                if let Some(a) = self.alpha {
                    job.cfg.solver.alpha = a;
                }
                if let Some(d) = self.dt {
                    job.cfg.solver.dt = d;
                }
            }
            let results = sweep::run_sweep(grid, self.jobs, &|done, total, key| {
                eprintln!("[sweep] {done}/{total} done: {key}");
            })
            .unwrap_or_else(|e| {
                eprintln!("[repro] case-study grid failed: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "[repro] grid finished in {:.2} s host wall-clock ({} jobs, {} workers)",
                t0.elapsed().as_secs_f64(),
                results.len(),
                self.jobs
            );
            let manifest = sweep::manifest_json(&results);
            std::fs::write("repro_out/manifest.json", manifest).expect("write manifest");
            eprintln!("[repro] wrote repro_out/manifest.json");
            if let Some(path) = &self.trace_path {
                let journal = sweep::sweep_journal(&results).expect("grid ran traced");
                std::fs::write(path, journal).expect("write trace journal");
                eprintln!("[repro] wrote {path}");
            }
            if let Some(path) = &self.metrics_path {
                let metrics = sweep::sweep_metrics_json(&results).expect("grid ran traced");
                std::fs::write(path, metrics).expect("write metrics registry");
                eprintln!("[repro] wrote {path}");
            }
            self.cases = Some(sweep::comparisons(&results));
        }
        self.cases.as_ref().expect("just computed")
    }

    fn nnprobes(&mut self) -> &(probes::ProbeResult, probes::ProbeResult) {
        if self.nnprobes.is_none() {
            eprintln!("[repro] running nnread/nnwrite probes (50 s each)...");
            let probe = |r: Result<probes::ProbeResult, _>| {
                r.unwrap_or_else(|e| {
                    eprintln!("[repro] probe failed: {e}");
                    std::process::exit(1);
                })
            };
            self.nnprobes = Some((
                probe(probes::nnread(&self.setup, 128 * 1024, 50.0)),
                probe(probes::nnwrite(&self.setup, 128 * 1024, 50.0)),
            ));
        }
        self.nnprobes.as_ref().expect("just computed")
    }
}

fn pair_rows(
    cases: &[CaseComparison],
    f: impl Fn(&CaseComparison) -> (f64, f64),
    prec: usize,
) -> Vec<Vec<String>> {
    cases
        .iter()
        .map(|c| {
            let (insitu, post) = f(c);
            vec![
                format!("Case study {}", c.case),
                report::f(insitu, prec),
                report::f(post, prec),
            ]
        })
        .collect()
}

fn emit_pair_table(
    title: &str,
    cases: &[CaseComparison],
    f: impl Fn(&CaseComparison) -> (f64, f64),
    prec: usize,
) {
    print!(
        "\n{}",
        report::render_table(
            title,
            &["", "In-situ", "Traditional"],
            &pair_rows(cases, f, prec)
        )
    );
}

/// Parsed command-line options.
struct Cli {
    jobs: usize,
    alpha: Option<f64>,
    dt: Option<f64>,
    trace_path: Option<String>,
    metrics_path: Option<String>,
    fault_seed: Option<u64>,
    rest: Vec<String>,
}

/// Split `--jobs N` / `--jobs=N` / `-j N`, the observability flags
/// `--trace PATH` / `--metrics PATH`, and `--fault-seed N` out of the raw
/// argument list.
fn parse_cli(args: Vec<String>) -> Cli {
    fn count(s: &str) -> usize {
        s.parse().unwrap_or_else(|_| {
            eprintln!("invalid worker count: {s}");
            std::process::exit(2);
        })
    }
    fn seed(s: &str) -> u64 {
        s.parse().unwrap_or_else(|_| {
            eprintln!("invalid fault seed: {s}");
            std::process::exit(2);
        })
    }
    fn solver_param(s: &str, what: &str) -> f64 {
        s.parse().unwrap_or_else(|_| {
            eprintln!("invalid {what}: {s}");
            std::process::exit(2);
        })
    }
    let mut cli = Cli {
        jobs: default_jobs(),
        alpha: None,
        dt: None,
        trace_path: None,
        metrics_path: None,
        fault_seed: None,
        rest: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        if a == "--jobs" || a == "-j" {
            cli.jobs = count(&value(&a));
        } else if let Some(n) = a.strip_prefix("--jobs=") {
            cli.jobs = count(n);
        } else if a == "--trace" {
            cli.trace_path = Some(value(&a));
        } else if let Some(p) = a.strip_prefix("--trace=") {
            cli.trace_path = Some(p.to_string());
        } else if a == "--metrics" {
            cli.metrics_path = Some(value(&a));
        } else if let Some(p) = a.strip_prefix("--metrics=") {
            cli.metrics_path = Some(p.to_string());
        } else if a == "--fault-seed" {
            cli.fault_seed = Some(seed(&value(&a)));
        } else if let Some(n) = a.strip_prefix("--fault-seed=") {
            cli.fault_seed = Some(seed(n));
        } else if a == "--alpha" {
            cli.alpha = Some(solver_param(&value(&a), "alpha"));
        } else if let Some(v) = a.strip_prefix("--alpha=") {
            cli.alpha = Some(solver_param(v, "alpha"));
        } else if a == "--dt" {
            cli.dt = Some(solver_param(&value(&a), "dt"));
        } else if let Some(v) = a.strip_prefix("--dt=") {
            cli.dt = Some(solver_param(v, "dt"));
        } else {
            cli.rest.push(a);
        }
    }
    cli.jobs = cli.jobs.max(1);
    cli
}

fn main() {
    let cli = parse_cli(std::env::args().skip(1).collect());
    // Solver overrides are usage input: validate them against every case
    // config up front so a bad --alpha/--dt exits 2 before any work runs.
    if cli.alpha.is_some() || cli.dt.is_some() {
        for n in [1, 2, 3] {
            let mut cfg = PipelineConfig::case_study(n);
            if let Some(a) = cli.alpha {
                cfg.solver.alpha = a;
            }
            if let Some(d) = cli.dt {
                cfg.solver.dt = d;
            }
            if let Err(e) = cfg.solver.validate(cfg.grid_nx, cfg.grid_ny) {
                eprintln!("invalid solver config for case {n}: {e}");
                std::process::exit(2);
            }
        }
    }
    let (jobs, args) = (cli.jobs, cli.rest);
    let wanted: BTreeSet<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ARTIFACTS.iter().map(|s| s.to_string()).collect()
    } else {
        for a in &args {
            assert!(
                ARTIFACTS.contains(&a.as_str()),
                "unknown artifact '{a}'; available: {ARTIFACTS:?}"
            );
        }
        args.into_iter().collect()
    };
    // Either observability flag turns on the event journal + metrics
    // registry for every grid job (deterministic: byte-identical output
    // for every --jobs value).
    let setup = ExperimentSetup {
        trace: cli.trace_path.is_some() || cli.metrics_path.is_some(),
        // Seeded fault injection: each grid job derives its own fault
        // schedule from this base plan and its job key, so artifacts stay
        // byte-identical for every --jobs value.
        faults: cli.fault_seed.map(greenness_faults::FaultPlan::with_seed),
        ..ExperimentSetup::default()
    };
    let mut lazy = Lazy {
        setup,
        jobs,
        alpha: cli.alpha,
        dt: cli.dt,
        trace_path: cli.trace_path,
        metrics_path: cli.metrics_path,
        cases: None,
        nnprobes: None,
    };
    std::fs::create_dir_all("repro_out").expect("create ./repro_out");

    if wanted.contains("table1") {
        let rows: Vec<Vec<String>> = HardwareSpec::table1()
            .table1_rows()
            .into_iter()
            .map(|(k, v)| vec![k.to_string(), v])
            .collect();
        print!(
            "\n{}",
            report::render_table(
                "Table I — hardware specification",
                &["H/W Type", "H/W Detail"],
                &rows
            )
        );
    }

    if wanted.contains("fig4") {
        let rows: Vec<Vec<String>> = lazy
            .cases()
            .iter()
            .map(|c| {
                vec![
                    format!("Case study {}", c.case),
                    report::pct(c.post.time_pct(Phase::Simulation)),
                    report::pct(c.post.time_pct(Phase::Write)),
                    report::pct(c.post.time_pct(Phase::Read)),
                    report::pct(c.post.time_pct(Phase::Visualization)),
                ]
            })
            .collect();
        print!(
            "\n{}",
            report::render_table(
                "Figure 4 — % execution time per stage (post-processing)",
                &["", "Simulation", "Write", "Read", "Visualization"],
                &rows
            )
        );
        println!("(paper: 33/30/27/10, 50/22/21/7, 80/9/8/3)");
    }

    if wanted.contains("fig5") {
        println!("\nFigure 5 — power profiles (system channel sparklines; CSVs in ./repro_out/)");
        let panels = "abcdef".as_bytes();
        // Recompute profiles noiselessly? No: use the measured (noisy) ones,
        // as the paper's plots come from the real meters.
        let cases: Vec<(u32, String, PowerProfile)> = lazy
            .cases()
            .iter()
            .flat_map(|c| {
                [
                    (
                        c.case,
                        "post-processing".to_string(),
                        c.post.profile.clone(),
                    ),
                    (c.case, "in-situ".to_string(), c.insitu.profile.clone()),
                ]
            })
            .collect();
        for (k, (case, kind, profile)) in cases.into_iter().enumerate() {
            let panel = panels[k] as char;
            let path = format!("repro_out/fig5{panel}_{kind}_case{case}.csv");
            std::fs::write(&path, profile.to_csv()).expect("write CSV");
            println!(
                "  5{panel} {kind:>16} case {case}: {:>4} samples, avg {:>5.1} W  {}",
                profile.len(),
                profile.average_system_w(),
                profile.ascii_sparkline(48),
            );
        }
    }

    if wanted.contains("fig6") {
        let (read, write) = lazy.nnprobes().clone();
        println!("\nFigure 6 — nnread/nnwrite stage power profiles (CSVs in ./repro_out/)");
        for p in [&read, &write] {
            let profile = PowerProfile::measure(&p.timeline, &lazy.setup.meter);
            std::fs::write(format!("repro_out/fig6_{}.csv", p.name), profile.to_csv())
                .expect("write CSV");
            println!(
                "  {:>7}: avg {:>5.1} W over {:>4.0} s  {}",
                p.name,
                p.avg_total_w,
                p.timeline.end().as_secs_f64(),
                profile.ascii_sparkline(48),
            );
        }
    }

    if wanted.contains("table2") {
        let (read, write) = lazy.nnprobes().clone();
        let rows = vec![
            vec![
                "Avg. Power (Total)".to_string(),
                report::f(read.avg_total_w, 1),
                report::f(write.avg_total_w, 1),
            ],
            vec![
                "Avg. Power (Dynamic)".to_string(),
                report::f(read.avg_dynamic_w, 1),
                report::f(write.avg_dynamic_w, 1),
            ],
        ];
        print!(
            "\n{}",
            report::render_table(
                "Table II — properties of nnread and nnwrite stages",
                &["Metric", "nnread", "nnwrite"],
                &rows
            )
        );
        println!("(paper: 115.1/114.8 total, 10.3/10.0 dynamic)");
    }

    if wanted.contains("fig7") {
        emit_pair_table(
            "Figure 7 — execution time (s)",
            lazy.cases(),
            CaseComparison::execution_times_s,
            1,
        );
        let reductions: Vec<String> = lazy
            .cases()
            .iter()
            .map(|c| report::pct(c.time_reduction_pct()))
            .collect();
        println!("in-situ time reduction: {}", reductions.join(", "));
        println!("(the paper's text claims 92/52/26% here, inconsistent with its Figs 8-10; see EXPERIMENTS.md)");
    }

    if wanted.contains("fig8") {
        emit_pair_table(
            "Figure 8 — average power (W)",
            lazy.cases(),
            CaseComparison::average_powers_w,
            1,
        );
        let incs: Vec<String> = lazy
            .cases()
            .iter()
            .map(|c| report::pct(c.power_increase_pct()))
            .collect();
        println!(
            "in-situ power increase: {} (paper: 8/5/3%)",
            incs.join(", ")
        );
    }

    if wanted.contains("fig9") {
        emit_pair_table(
            "Figure 9 — peak power (W)",
            lazy.cases(),
            CaseComparison::peak_powers_w,
            1,
        );
        println!("(paper: no significant difference)");
    }

    if wanted.contains("fig10") {
        emit_pair_table(
            "Figure 10 — energy (J)",
            lazy.cases(),
            |c| c.energies_j(),
            0,
        );
        let savings: Vec<String> = lazy
            .cases()
            .iter()
            .map(|c| report::pct(c.energy_savings_pct()))
            .collect();
        println!(
            "in-situ energy savings: {} (paper: 43/30/18%)",
            savings.join(", ")
        );
    }

    if wanted.contains("fig11") {
        emit_pair_table(
            "Figure 11 — energy efficiency (normalized)",
            lazy.cases(),
            CaseComparison::normalized_efficiencies,
            2,
        );
        let gains: Vec<String> = lazy
            .cases()
            .iter()
            .map(|c| report::pct(c.efficiency_improvement_pct()))
            .collect();
        println!(
            "in-situ efficiency improvement: {} (paper: 22% to 72%)",
            gains.join(", ")
        );
    }

    if wanted.contains("breakdown") {
        // §V-C for case study 1.
        let setup = lazy.setup.clone();
        let case1 = lazy
            .cases()
            .iter()
            .find(|c| c.case == 1)
            .expect("case 1 ran")
            .clone();
        eprintln!("[repro] running the §V-C breakdown (probes + estimator)...");
        let b = CaseBreakdown::analyze(&case1, &setup, 128 * 1024, 50.0).unwrap_or_else(|e| {
            eprintln!("[repro] breakdown probes failed: {e}");
            std::process::exit(1);
        });
        println!("\nSection V-C — energy savings breakdown (case study 1)");
        println!("  total savings : {:>7.2} kJ", b.savings.total_j / 1000.0);
        println!(
            "  static (idle-time) : {:>7.2} kJ  ({:.0}%)   [paper: 12.8 kJ, 91%]",
            b.savings.static_j / 1000.0,
            b.savings.static_pct()
        );
        println!(
            "  dynamic (data mvmt): {:>7.2} kJ  ({:.0}%)   [paper:  1.2 kJ,  9%]",
            b.savings.dynamic_j / 1000.0,
            b.savings.dynamic_pct()
        );
    }

    if wanted.contains("table3") || wanted.contains("whatif") {
        eprintln!("[repro] running the four 4 GiB fio jobs...");
        let analysis = match WhatIfAnalysis::run(&lazy.setup, 4 * 1024 * 1024 * 1024) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("[repro] fio matrix failed: {e}");
                std::process::exit(1);
            }
        };
        if wanted.contains("table3") {
            let headers = ["Metric", "Seq Read", "Rand Read", "Seq Write", "Rand Write"];
            let col = |f: &dyn Fn(&greenness_storage::FioResult) -> String| -> Vec<String> {
                analysis.fio.iter().map(f).collect()
            };
            let mut rows = Vec::new();
            for (name, vals) in [
                (
                    "Execution time (s)",
                    col(&|r| report::f(r.execution_time_s, 1)),
                ),
                (
                    "Full-system power (W)",
                    col(&|r| report::f(r.full_system_power_w, 1)),
                ),
                (
                    "Disk dynamic power (W)",
                    col(&|r| report::f(r.disk_dyn_power_w, 1)),
                ),
                (
                    "Disk dynamic energy (kJ)",
                    col(&|r| report::f(r.disk_dyn_energy_kj, 2)),
                ),
                (
                    "Full-system energy (kJ)",
                    col(&|r| report::f(r.full_system_energy_kj, 1)),
                ),
            ] {
                let mut row = vec![name.to_string()];
                row.extend(vals);
                rows.push(row);
            }
            print!(
                "\n{}",
                report::render_table("Table III — fio tests", &headers, &rows)
            );
            println!("(paper rows: 35.9/2230.0/27.0/31.0 s; 118/107/115.4/117.9 W; 13.5/2.5/10.9/13.4 W)");
        }
        if wanted.contains("whatif") {
            println!("\nSection V-D — what-if for a random-I/O application");
            println!(
                "  adopt in-situ        : saves {:>6.1} kJ per pass pair   [paper: 242.2 kJ]",
                analysis.random_io_energy_kj
            );
            println!(
                "  adopt reorganization : loses only {:>5.1} kJ ({:.1}%)      [paper: 7.3 kJ]",
                analysis.reorganized_io_energy_kj,
                analysis.retained_fraction() * 100.0
            );
        }
    }
    if wanted.contains("ext") {
        print_extensions(&lazy.setup, jobs);
    }
    println!();
}

/// Future-work extension studies (not in the paper's evaluation): storage
/// technologies, distributed pipelines, data-reduction variants, DVFS, and
/// the fitted disk-energy model.
fn print_extensions(setup: &ExperimentSetup, jobs: usize) {
    use greenness_cluster::{run_cluster, ClusterConfig, ClusterKind};
    use greenness_core::variants::{run_variant, CodecChoice, Variant};
    use greenness_core::PipelineConfig;
    use greenness_platform::Node;

    eprintln!("[repro] running extension studies...");

    // Storage technologies (§VI-A: SSD / NVRAM / RAID) — an 8-job grid
    // (4 specs × both pipelines) submitted through the sweep executor.
    let cfg = PipelineConfig::case_study(1);
    let mut raid_spec = HardwareSpec::table1();
    raid_spec.disk = raid_spec.disk.raid0(4);
    raid_spec.name = "Table I node with 4x RAID-0 HDDs".into();
    let specs = [
        HardwareSpec::table1(),
        raid_spec,
        HardwareSpec::table1_with_ssd(),
        HardwareSpec::table1_with_nvram(),
    ];
    let grid: Vec<SweepJob> = specs
        .iter()
        .flat_map(|spec| {
            [PipelineKind::PostProcessing, PipelineKind::InSitu].map(|kind| SweepJob {
                case: 1,
                kind,
                cfg: cfg.clone(),
                setup: ExperimentSetup {
                    spec: spec.clone(),
                    ..setup.clone()
                },
            })
        })
        .collect();
    let results = sweep::run_sweep(grid, jobs, &|done, total, key| {
        eprintln!("[sweep] {done}/{total} done: {key}");
    })
    .unwrap_or_else(|e| {
        eprintln!("[repro] storage-technology grid failed: {e}");
        std::process::exit(1);
    });
    let mut rows = Vec::new();
    for (spec, cmp) in specs.iter().zip(sweep::comparisons(&results)) {
        rows.push(vec![
            spec.name
                .split(',')
                .next()
                .unwrap_or(&spec.name)
                .to_string(),
            report::f(cmp.post.metrics.execution_time_s, 1),
            report::f(cmp.post.metrics.energy_j / 1000.0, 1),
            report::pct(cmp.energy_savings_pct()),
        ]);
    }
    print!(
        "\n{}",
        report::render_table(
            "Extension — case study 1 across storage technologies",
            &["Device", "T_post (s)", "E_post (kJ)", "In-situ savings"],
            &rows
        )
    );

    // Distributed pipelines.
    let ccfg = ClusterConfig::small(4, 2);
    let mut rows = Vec::new();
    for kind in [
        ClusterKind::PostProcessing,
        ClusterKind::InSitu,
        ClusterKind::InTransit,
    ] {
        let r = run_cluster(kind, &ccfg).unwrap_or_else(|e| {
            eprintln!("[repro] cluster {kind:?} failed: {e}");
            std::process::exit(1);
        });
        rows.push(vec![
            format!("{kind:?}"),
            report::f(r.makespan_s, 2),
            report::f(r.total_energy_j / 1000.0, 2),
            report::f(r.average_power_w, 0),
        ]);
    }
    print!(
        "\n{}",
        report::render_table(
            "Extension — distributed pipelines (4 compute + 2 PFS + 1 viz)",
            &["Pipeline", "Makespan (s)", "Energy (kJ)", "Avg W"],
            &rows
        )
    );

    // Data-reduction variants on the case-1 workload.
    let mut rows = Vec::new();
    for (name, v) in [
        ("sampled (stride 4)", Variant::SampledPost { stride: 4 }),
        (
            "compressed lossless",
            Variant::CompressedPost {
                codec: CodecChoice::Lossless,
            },
        ),
        (
            "compressed quant16",
            Variant::CompressedPost {
                codec: CodecChoice::Quantized,
            },
        ),
        ("image DB (3 views)", Variant::ImageDatabase { views: 3 }),
    ] {
        let mut node = Node::new(setup.spec.clone());
        let out = run_variant(v, &mut node, &cfg);
        rows.push(vec![
            name.to_string(),
            report::f(out.execution_time_s, 1),
            report::f(out.energy_j / 1000.0, 1),
            format!("{:.1}x", out.reduction_factor()),
            if out.verified {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    print!(
        "\n{}",
        report::render_table(
            "Extension — pipeline variants (case-1 workload)",
            &[
                "Variant",
                "Time (s)",
                "Energy (kJ)",
                "Reduction",
                "Verified"
            ],
            &rows
        )
    );

    // DVFS sweep on the in-situ pipeline.
    let mut rows = Vec::new();
    for scale in [1.0, 0.8, 0.6, 0.5] {
        let mut node = Node::new(setup.spec.clone());
        let out = run_variant(Variant::DvfsSim { freq_scale: scale }, &mut node, &cfg);
        rows.push(vec![
            format!("{:.0}%", scale * 100.0),
            report::f(out.execution_time_s, 1),
            report::f(out.energy_j / 1000.0, 1),
            report::f(out.energy_j / out.execution_time_s, 1),
        ]);
    }
    print!(
        "\n{}",
        report::render_table(
            "Extension — DVFS sweep (in-situ, simulation clock)",
            &["Clock", "Time (s)", "Energy (kJ)", "Avg W"],
            &rows
        )
    );
}
