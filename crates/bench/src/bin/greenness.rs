//! `greenness` — the command-line front end.
//!
//! ```text
//! greenness case <1|2|3>                run one case study, both pipelines
//! greenness sweep [--jobs N] [--trace J] [--metrics M]
//!                                       full 3-case grid on the parallel executor
//! greenness trace summarize <journal>   reconstruct + audit a trace journal
//! greenness fio [bytes]                 Table III fio matrix (default 4 GiB)
//! greenness probes                      Table II nnread/nnwrite probes
//! greenness cluster [--kind K] [...]    case-study grid over the distributed pipelines
//! greenness cap <watts> [watts...]      power-cap sweep (in-situ)
//! greenness adaptive [threshold]        adaptive runtime demo
//! greenness advisor <bytes> <passes> <seq|rand> <explore|no-explore>
//! greenness serve [--addr A]            NDJSON query server (greenness-serve/v1)
//! greenness steer [--shards N]          scripted interactive steering session
//! greenness fleet [--shards N]          sharded fleet router over in-process shards
//! greenness query <addr> <json>         one request against a running server
//! greenness bench-serve ...             load harness (closed/open loop, --replay, fleet)
//! ```
//!
//! Everything prints fixed-width tables; see the `repro` binary for the
//! paper's full table/figure set.

use greenness_cluster::{ClusterKind, StagingConfig, WireCodec};
use greenness_core::adaptive::{run_adaptive, AdaptivePolicy};
use greenness_core::advisor::{recommend, IoBehavior, Technique, WorkloadProfile};
use greenness_core::capping::cap_sweep;
use greenness_core::cluster_sweep;
use greenness_core::placement;
use greenness_core::sweep;
use greenness_core::whatif::WhatIfAnalysis;
use greenness_core::{probes, report, CaseComparison, ExperimentSetup, PipelineConfig};
use greenness_faults::FaultPlan;
use greenness_fleet::{Fleet, FleetConfig, FleetServer};
use greenness_platform::{HardwareSpec, Node};
use greenness_serve::{LoadMode, Server, ServiceConfig};

/// The single usage block every argument error funnels into; all paths
/// exit 2.
fn usage() -> ! {
    eprintln!(
        "usage: greenness <command>\n\
         \n\
         commands:\n\
         \x20 case <1|2|3> [--alpha A] [--dt D]    one case study, both pipelines\n\
         \x20 sweep [--jobs N]                     full 3-case grid, parallel + manifest\n\
         \x20 placement [--jobs N] [--scale S]     tiered-storage policy grid (S: small|paper)\n\
         \x20 fio [bytes]                          Table III matrix (default 4 GiB)\n\
         \x20 probes                               Table II nnread/nnwrite probes\n\
         \x20 cluster [--kind post|insitu|intransit] [--staging-nodes N]\n\
         \x20         [--queue-depth D] [--wire-codec none|delta-rle|quant8]\n\
         \x20         [--jobs N]                   case-study grid over the distributed pipelines\n\
         \x20 cap <watts> [watts ...]              power-cap sweep (in-situ)\n\
         \x20 adaptive [io-energy-threshold]       adaptive runtime demo\n\
         \x20 advisor <bytes> <passes> <seq|rand> <explore|no-explore>\n\
         \x20 trace summarize <journal>            reconstruct + audit a trace journal\n\
         \x20 serve [--addr A] [--jobs N]          NDJSON query server (greenness-serve/v1)\n\
         \x20 steer [--shards N] [--jobs N]        scripted steering session through the fleet\n\
         \x20       [--session NAME] [--fault-seed N] [--out FILE]\n\
         \x20 fleet [--shards N] [--replicas K]    consistent-hash fleet router (greenness fleet)\n\
         \x20 query <addr> <json-request>          one request against a running server\n\
         \x20 bench-serve --addr A [...]           live load harness (closed/open loop)\n\
         \x20 bench-serve --replay [...]           deterministic in-process replay\n\
         \x20 bench [--reps N] [--quick] [--out F] hot-path micro suite -> BENCH_7.json\n\
         \n\
         sweep and placement also accept --trace PATH / --metrics PATH (event\n\
         journal + metrics registry; byte-identical for every --jobs value)\n\
         serve also accepts --cache-bytes B / --slots S / --queue-depth Q\n\
         fleet also accepts --addr A --ring-seed S --vnodes V --shard-addrs (debug\n\
         listeners) plus the serve tuning flags, applied per shard\n\
         bench-serve accepts --requests N --conns C --mode closed|open --rate R,\n\
         and with --replay: --jobs J --out FILE --metrics-out FILE; adding\n\
         --shards N runs the open-loop fleet replay (--replicas K --ring-seed S\n\
         --universe U --zipf S --report-out FILE --shard-metrics-out FILE);\n\
         --sessions N interleaves N scripted steering sessions instead\n\
         sweep, placement, cluster, serve, fleet, and bench-serve --replay accept\n\
         --fault-seed N (seeded fault injection with retry/recovery; deterministic\n\
         per seed — for fleet this includes shard churn)"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid {what}: {s}");
        std::process::exit(2);
    })
}

fn cmd_case(args: &[String]) {
    let mut n: u32 = 1;
    let mut alpha: Option<f64> = None;
    let mut dt: Option<f64> = None;
    let mut it = args.iter();
    let mut saw_n = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--alpha" => alpha = Some(parse(it.next().unwrap_or_else(|| usage()), "alpha")),
            "--dt" => dt = Some(parse(it.next().unwrap_or_else(|| usage()), "dt")),
            s if !saw_n => {
                n = parse(s, "case number");
                saw_n = true;
            }
            _ => usage(),
        }
    }
    if !(1..=3).contains(&n) {
        eprintln!("case studies are 1-3");
        std::process::exit(2);
    }
    let mut cfg = PipelineConfig::case_study(n);
    if let Some(a) = alpha {
        cfg.solver.alpha = a;
    }
    if let Some(d) = dt {
        cfg.solver.dt = d;
    }
    if let Err(e) = cfg.solver.validate(cfg.grid_nx, cfg.grid_ny) {
        eprintln!("invalid solver config: {e}");
        std::process::exit(2);
    }
    eprintln!("running case study {n} (both pipelines)...");
    let cmp =
        CaseComparison::run_config(n, &cfg, &ExperimentSetup::default()).unwrap_or_else(|e| {
            eprintln!("pipeline run failed: {e}");
            std::process::exit(2);
        });
    let rows = vec![
        vec![
            "Execution time (s)".into(),
            report::f(cmp.insitu.metrics.execution_time_s, 1),
            report::f(cmp.post.metrics.execution_time_s, 1),
        ],
        vec![
            "Average power (W)".into(),
            report::f(cmp.insitu.metrics.average_power_w, 1),
            report::f(cmp.post.metrics.average_power_w, 1),
        ],
        vec![
            "Peak power (W)".into(),
            report::f(cmp.insitu.metrics.peak_power_w, 1),
            report::f(cmp.post.metrics.peak_power_w, 1),
        ],
        vec![
            "Energy (kJ)".into(),
            report::f(cmp.insitu.metrics.energy_j / 1000.0, 1),
            report::f(cmp.post.metrics.energy_j / 1000.0, 1),
        ],
    ];
    print!(
        "{}",
        report::render_table(
            &format!("Case study {n}"),
            &["Metric", "In-situ", "Traditional"],
            &rows
        )
    );
    println!("energy savings: {}", report::pct(cmp.energy_savings_pct()));
}

fn cmd_sweep(args: &[String]) {
    let mut jobs = greenness_bench::default_jobs();
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut fault_seed: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" | "-j" => {
                jobs = it
                    .next()
                    .map(|s| parse(s, "worker count"))
                    .unwrap_or_else(|| usage())
            }
            "--trace" => trace_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--metrics" => metrics_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--fault-seed" => {
                fault_seed = Some(
                    it.next()
                        .map(|s| parse(s, "fault seed"))
                        .unwrap_or_else(|| usage()),
                )
            }
            other => {
                if let Some(n) = other.strip_prefix("--jobs=") {
                    jobs = parse(n, "worker count");
                } else if let Some(p) = other.strip_prefix("--trace=") {
                    trace_path = Some(p.to_string());
                } else if let Some(p) = other.strip_prefix("--metrics=") {
                    metrics_path = Some(p.to_string());
                } else if let Some(n) = other.strip_prefix("--fault-seed=") {
                    fault_seed = Some(parse(n, "fault seed"));
                } else {
                    usage()
                }
            }
        }
    }
    let setup = ExperimentSetup {
        trace: trace_path.is_some() || metrics_path.is_some(),
        // Each grid job derives its own schedule from this base plan and its
        // job key, so results stay byte-identical for every --jobs value.
        faults: fault_seed.map(FaultPlan::with_seed),
        ..ExperimentSetup::default()
    };
    eprintln!("running the full case-study grid on {jobs} worker(s)...");
    let t0 = std::time::Instant::now();
    let results = greenness_bench::run_case_grid(&setup, jobs, &|done, total, key| {
        eprintln!("[sweep] {done}/{total} done: {key}");
    })
    .unwrap_or_else(|e| {
        eprintln!("case-study grid failed: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "grid finished in {:.2} s host wall-clock",
        t0.elapsed().as_secs_f64()
    );
    std::fs::create_dir_all("repro_out").expect("create ./repro_out");
    std::fs::write("repro_out/manifest.json", sweep::manifest_json(&results))
        .expect("write manifest");
    eprintln!("wrote repro_out/manifest.json");
    if let Some(path) = &trace_path {
        let journal = sweep::sweep_journal(&results).expect("grid ran traced");
        std::fs::write(path, journal).expect("write trace journal");
        eprintln!("wrote {path}");
    }
    if let Some(path) = &metrics_path {
        let metrics = sweep::sweep_metrics_json(&results).expect("grid ran traced");
        std::fs::write(path, metrics).expect("write metrics registry");
        eprintln!("wrote {path}");
    }
    let mut rows = Vec::new();
    for c in sweep::comparisons(&results) {
        rows.push(vec![
            format!("Case study {}", c.case),
            report::f(c.insitu.metrics.energy_j / 1000.0, 1),
            report::f(c.post.metrics.energy_j / 1000.0, 1),
            report::pct(c.energy_savings_pct()),
            report::pct(c.time_reduction_pct()),
        ]);
    }
    print!(
        "{}",
        report::render_table(
            "Case-study grid",
            &[
                "",
                "In-situ (kJ)",
                "Traditional (kJ)",
                "Energy saved",
                "Time saved"
            ],
            &rows
        )
    );
}

fn cmd_placement(args: &[String]) {
    let mut jobs = greenness_bench::default_jobs();
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut fault_seed: Option<u64> = None;
    let mut scale = placement::PlacementScale::Small;
    let parse_scale = |s: &str| {
        placement::PlacementScale::parse(s).unwrap_or_else(|| {
            eprintln!("invalid scale: {s} (small|paper)");
            std::process::exit(2);
        })
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" | "-j" => {
                jobs = it
                    .next()
                    .map(|s| parse(s, "worker count"))
                    .unwrap_or_else(|| usage())
            }
            "--trace" => trace_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--metrics" => metrics_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--fault-seed" => {
                fault_seed = Some(
                    it.next()
                        .map(|s| parse(s, "fault seed"))
                        .unwrap_or_else(|| usage()),
                )
            }
            "--scale" => scale = parse_scale(it.next().unwrap_or_else(|| usage())),
            other => {
                if let Some(n) = other.strip_prefix("--jobs=") {
                    jobs = parse(n, "worker count");
                } else if let Some(p) = other.strip_prefix("--trace=") {
                    trace_path = Some(p.to_string());
                } else if let Some(p) = other.strip_prefix("--metrics=") {
                    metrics_path = Some(p.to_string());
                } else if let Some(n) = other.strip_prefix("--fault-seed=") {
                    fault_seed = Some(parse(n, "fault seed"));
                } else if let Some(s) = other.strip_prefix("--scale=") {
                    scale = parse_scale(s);
                } else {
                    usage()
                }
            }
        }
    }
    let setup = placement::PlacementSetup {
        scale,
        trace: trace_path.is_some() || metrics_path.is_some(),
        faults: fault_seed.map(FaultPlan::with_seed),
        ..placement::PlacementSetup::default()
    };
    eprintln!(
        "running the placement grid ({} scale) on {jobs} worker(s)...",
        scale.label()
    );
    let t0 = std::time::Instant::now();
    let results = placement::run_placement(
        placement::placement_grid(),
        &setup,
        jobs,
        &|done, total, key| {
            eprintln!("[placement] {done}/{total} done: {key}");
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("placement grid failed: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "grid finished in {:.2} s host wall-clock",
        t0.elapsed().as_secs_f64()
    );
    std::fs::create_dir_all("repro_out").expect("create ./repro_out");
    std::fs::write(
        "repro_out/placement.json",
        placement::placement_manifest_json(scale, &results),
    )
    .expect("write placement manifest");
    eprintln!("wrote repro_out/placement.json");
    if let Some(path) = &trace_path {
        let journal = placement::placement_journal(&results).expect("grid ran traced");
        std::fs::write(path, journal).expect("write trace journal");
        eprintln!("wrote {path}");
    }
    if let Some(path) = &metrics_path {
        let metrics = placement::placement_metrics_json(&results).expect("grid ran traced");
        std::fs::write(path, metrics).expect("write metrics registry");
        eprintln!("wrote {path}");
    }
    let mut rows = Vec::new();
    for r in &results {
        rows.push(vec![
            r.key.clone(),
            report::f(r.time_s, 2),
            report::f(r.energy_j, 1),
            report::f(r.read_energy_j, 1),
            format!("{}", r.promotes),
            format!("{}", r.demotes),
            if r.verified {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    print!(
        "{}",
        report::render_table(
            &format!("Placement grid ({} scale)", scale.label()),
            &[
                "workload/policy",
                "Time (s)",
                "Energy (J)",
                "Read (J)",
                "Promo",
                "Demo",
                "Verified"
            ],
            &rows
        )
    );
    if let Some(noop) = placement::noop_gap_ratio(&results) {
        println!(
            "random/sequential read-energy ratio under noop: {noop:.1}x (the Table III cliff)"
        );
        for policy in ["freq-recency", "energy-greedy"] {
            if let Some(r) = placement::gap_ratio_under(&results, policy) {
                println!("  under {policy}: {r:.1}x");
            }
        }
    }
}

fn cmd_fio(args: &[String]) {
    let bytes: u64 = args
        .first()
        .map(|s| parse(s, "byte count"))
        .unwrap_or(4 << 30);
    eprintln!("running fio matrix at {} bytes...", bytes);
    let w = match WhatIfAnalysis::run(&ExperimentSetup::default(), bytes) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("fio matrix failed: {e}");
            std::process::exit(1);
        }
    };
    let mut rows = Vec::new();
    for r in &w.fio {
        rows.push(vec![
            r.kind.label().to_string(),
            report::f(r.execution_time_s, 1),
            report::f(r.full_system_power_w, 1),
            report::f(r.disk_dyn_power_w, 1),
            report::f(r.full_system_energy_kj, 1),
        ]);
    }
    print!(
        "{}",
        report::render_table(
            "fio matrix",
            &["Job", "Time (s)", "System W", "Disk dyn W", "Energy (kJ)"],
            &rows
        )
    );
    println!(
        "random-I/O app: in-situ saves {:.1} kJ; reorganization retains only {:.1} kJ",
        w.random_io_energy_kj, w.reorganized_io_energy_kj
    );
}

fn cmd_probes() {
    let setup = ExperimentSetup::default();
    eprintln!("running nnread/nnwrite probes (50 s each)...");
    let probe = |r: Result<probes::ProbeResult, greenness_storage::StorageError>| {
        r.unwrap_or_else(|e| {
            eprintln!("probe failed: {e}");
            std::process::exit(1);
        })
    };
    let read = probe(probes::nnread(&setup, 128 * 1024, 50.0));
    let write = probe(probes::nnwrite(&setup, 128 * 1024, 50.0));
    let rows = vec![
        vec![
            "Avg. Power (Total)".into(),
            report::f(read.avg_total_w, 1),
            report::f(write.avg_total_w, 1),
        ],
        vec![
            "Avg. Power (Dynamic)".into(),
            report::f(read.avg_dynamic_w, 1),
            report::f(write.avg_dynamic_w, 1),
        ],
    ];
    print!(
        "{}",
        report::render_table("Probe stages", &["Metric", "nnread", "nnwrite"], &rows)
    );
}

fn cmd_cluster(args: &[String]) {
    let mut jobs = greenness_bench::default_jobs();
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut fault_seed: Option<u64> = None;
    let mut kind: Option<ClusterKind> = None;
    let mut staging = StagingConfig::default();
    let parse_kind = |s: &str| {
        ClusterKind::parse(s).unwrap_or_else(|| {
            eprintln!("invalid kind: {s} (post|insitu|intransit)");
            std::process::exit(2);
        })
    };
    let parse_codec = |s: &str| {
        WireCodec::parse(s).unwrap_or_else(|| {
            eprintln!("invalid wire codec: {s} (none|delta-rle|quant8)");
            std::process::exit(2);
        })
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" | "-j" => {
                jobs = it
                    .next()
                    .map(|s| parse(s, "worker count"))
                    .unwrap_or_else(|| usage())
            }
            "--trace" => trace_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--metrics" => metrics_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--fault-seed" => {
                fault_seed = Some(
                    it.next()
                        .map(|s| parse(s, "fault seed"))
                        .unwrap_or_else(|| usage()),
                )
            }
            "--kind" => kind = Some(parse_kind(it.next().unwrap_or_else(|| usage()))),
            "--staging-nodes" => {
                staging.staging_nodes = it
                    .next()
                    .map(|s| parse(s, "staging node count"))
                    .unwrap_or_else(|| usage())
            }
            "--queue-depth" => {
                staging.queue_depth = it
                    .next()
                    .map(|s| parse(s, "queue depth"))
                    .unwrap_or_else(|| usage())
            }
            "--wire-codec" => {
                staging.wire_codec = parse_codec(it.next().unwrap_or_else(|| usage()))
            }
            other => {
                if let Some(n) = other.strip_prefix("--jobs=") {
                    jobs = parse(n, "worker count");
                } else if let Some(p) = other.strip_prefix("--trace=") {
                    trace_path = Some(p.to_string());
                } else if let Some(p) = other.strip_prefix("--metrics=") {
                    metrics_path = Some(p.to_string());
                } else if let Some(n) = other.strip_prefix("--fault-seed=") {
                    fault_seed = Some(parse(n, "fault seed"));
                } else if let Some(k) = other.strip_prefix("--kind=") {
                    kind = Some(parse_kind(k));
                } else if let Some(n) = other.strip_prefix("--staging-nodes=") {
                    staging.staging_nodes = parse(n, "staging node count");
                } else if let Some(n) = other.strip_prefix("--queue-depth=") {
                    staging.queue_depth = parse(n, "queue depth");
                } else if let Some(c) = other.strip_prefix("--wire-codec=") {
                    staging.wire_codec = parse_codec(c);
                } else {
                    usage()
                }
            }
        }
    }
    let setup = cluster_sweep::ClusterSetup {
        staging,
        faults: fault_seed.map(FaultPlan::with_seed),
        trace: trace_path.is_some() || metrics_path.is_some(),
    };
    let grid = cluster_sweep::cluster_jobs(kind);
    eprintln!(
        "running the cluster grid ({} cell(s), staging {} node(s), depth {}, wire {}) on \
         {jobs} worker(s)...",
        grid.len(),
        staging.staging_nodes,
        staging.queue_depth,
        staging.wire_codec.label()
    );
    let t0 = std::time::Instant::now();
    let results = cluster_sweep::run_cluster_sweep(grid, &setup, jobs, &|done, total, key| {
        eprintln!("[cluster] {done}/{total} done: {key}");
    })
    .unwrap_or_else(|e| {
        eprintln!("cluster grid failed: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "grid finished in {:.2} s host wall-clock",
        t0.elapsed().as_secs_f64()
    );
    std::fs::create_dir_all("repro_out").expect("create ./repro_out");
    std::fs::write(
        "repro_out/cluster.json",
        cluster_sweep::cluster_manifest_json(&setup, &results),
    )
    .expect("write cluster manifest");
    eprintln!("wrote repro_out/cluster.json");
    if let Some(path) = &trace_path {
        let journal = cluster_sweep::cluster_journal(&results).expect("grid ran traced");
        std::fs::write(path, journal).expect("write trace journal");
        eprintln!("wrote {path}");
    }
    if let Some(path) = &metrics_path {
        let metrics = cluster_sweep::cluster_metrics_json(&results).expect("grid ran traced");
        std::fs::write(path, metrics).expect("write metrics registry");
        eprintln!("wrote {path}");
    }
    let mut rows = Vec::new();
    for r in &results {
        if r.summary.total_faults() > 0 {
            eprintln!("{} ran degraded: {}", r.key, r.summary.describe());
        }
        rows.push(vec![
            r.key.clone(),
            report::f(r.report.makespan_s, 2),
            report::f(r.report.total_energy_j / 1000.0, 2),
            report::f(r.report.average_power_w, 0),
            format!("{}", r.report.fabric_bytes),
            format!("{}", r.report.pfs_bytes),
            if r.report.verified {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    print!(
        "{}",
        report::render_table(
            "Distributed pipelines (case-study grid)",
            &[
                "case/kind",
                "Makespan (s)",
                "Energy (kJ)",
                "Avg W",
                "Fabric B",
                "PFS B",
                "Verified"
            ],
            &rows
        )
    );
}

fn cmd_cap(args: &[String]) {
    if args.is_empty() {
        usage();
    }
    let caps: Vec<f64> = args.iter().map(|s| parse(s, "cap in watts")).collect();
    let cfg = PipelineConfig::case_study(1);
    eprintln!(
        "sweeping {} power caps over the in-situ pipeline...",
        caps.len()
    );
    let runs = cap_sweep(&cfg, &caps).unwrap_or_else(|e| {
        eprintln!("capped run failed: {e}");
        std::process::exit(2);
    });
    if runs.is_empty() {
        println!("no feasible cap (the node's floor is ~123.5 W)");
        return;
    }
    let mut rows = Vec::new();
    for r in &runs {
        rows.push(vec![
            report::f(r.cap_w, 0),
            format!("{:.0}%", r.freq_scale * 100.0),
            report::f(r.execution_time_s, 1),
            report::f(r.energy_j / 1000.0, 1),
            report::f(r.peak_power_w, 1),
        ]);
    }
    print!(
        "{}",
        report::render_table(
            "Power-cap sweep (in-situ)",
            &["Cap (W)", "Clock", "Time (s)", "Energy (kJ)", "Peak (W)"],
            &rows
        )
    );
}

fn cmd_adaptive(args: &[String]) {
    let threshold: f64 = args.first().map(|s| parse(s, "threshold")).unwrap_or(0.15);
    let cfg = PipelineConfig::case_study(1);
    let policy = AdaptivePolicy {
        window_steps: 5,
        io_energy_threshold: threshold,
    };
    eprintln!("running the adaptive runtime (threshold {threshold})...");
    let mut node = Node::new(HardwareSpec::table1());
    let r = run_adaptive(&mut node, &cfg, &policy).unwrap_or_else(|e| {
        eprintln!("adaptive run failed: {e}");
        std::process::exit(2);
    });
    match r.switched_at_step {
        Some(step) => println!("switched to in-situ after step {step}"),
        None => println!("stayed in post-processing for the whole run"),
    }
    println!(
        "time {:.1} s, energy {:.1} kJ, {} raw snapshots kept, {} images written",
        r.execution_time_s,
        r.energy_j / 1000.0,
        r.snapshots_kept,
        r.images_written
    );
}

fn cmd_trace(args: &[String]) {
    let (Some(verb), Some(path)) = (args.first(), args.get(1)) else {
        usage()
    };
    if verb != "summarize" {
        usage();
    }
    let journal = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let summary = match greenness_trace::summarize::summarize(&journal) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{} event(s), {} job(s), {} span(s) checked, {} phase cross-check(s)",
        summary.events, summary.jobs, summary.spans_checked, summary.phases_checked
    );
    print!("{}", summary.table());
    if summary.audit_ok() {
        println!("audit: OK");
    } else {
        eprintln!("audit: {} violation(s)", summary.audit_errors.len());
        for e in &summary.audit_errors {
            eprintln!("  - {e}");
        }
        std::process::exit(1);
    }
}

fn cmd_advisor(args: &[String]) {
    if args.len() < 4 {
        usage();
    }
    let bytes: u64 = parse(&args[0], "byte count");
    let passes: u32 = parse(&args[1], "pass count");
    let behavior = match args[2].as_str() {
        "seq" => IoBehavior::Sequential,
        "rand" => IoBehavior::Random { op_bytes: 4096 },
        other => {
            eprintln!("expected seq|rand, got {other}");
            std::process::exit(2);
        }
    };
    let needs_exploration = match args[3].as_str() {
        "explore" => true,
        "no-explore" => false,
        other => {
            eprintln!("expected explore|no-explore, got {other}");
            std::process::exit(2);
        }
    };
    let w = WorkloadProfile {
        pass_bytes: bytes,
        passes,
        behavior,
        needs_exploration,
        min_keep_fraction: 1.0,
    };
    let a = recommend(&HardwareSpec::table1(), &w);
    println!("current I/O energy : {:.2} kJ", a.current_io_j / 1000.0);
    println!("in-situ            : {:.2} kJ", a.insitu_io_j / 1000.0);
    println!(
        "reorganized        : {:.2} kJ (one-time {:.2} kJ)",
        (a.reorg_cost_j + a.reorg_pass_j * passes.max(1) as f64) / 1000.0,
        a.reorg_cost_j / 1000.0
    );
    let verdict = match a.technique {
        Technique::InSitu => "go in-situ".to_string(),
        Technique::Reorganize => "reorganize the data layout".to_string(),
        Technique::DataSampling { keep_fraction } => {
            format!("sample (keep {:.0}%)", keep_fraction * 100.0)
        }
        Technique::KeepPostProcessing => "keep post-processing".to_string(),
    };
    println!("recommendation     : {verdict}");
}

fn cmd_serve(args: &[String]) {
    let mut addr = "127.0.0.1:0".to_string();
    let mut config = ServiceConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |what: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--addr" => addr = take("--addr"),
            "--jobs" | "-j" => config.jobs = parse(&take("--jobs"), "worker count"),
            "--cache-bytes" => config.cache_bytes = parse(&take("--cache-bytes"), "cache budget"),
            "--slots" => config.slots = parse(&take("--slots"), "slot count"),
            "--queue-depth" => config.queue_depth = parse(&take("--queue-depth"), "queue depth"),
            "--fault-seed" => {
                config.faults = Some(FaultPlan::with_seed(parse(
                    &take("--fault-seed"),
                    "fault seed",
                )))
            }
            _ => usage(),
        }
    }
    let server = Server::start(&addr, config).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    // The smoke harness greps this exact line for the ephemeral port.
    println!("listening on {}", server.addr());
    use std::io::Write as _;
    std::io::stdout().flush().expect("flush stdout");
    eprintln!("serving greenness-serve/v1; send {{\"op\":\"shutdown\"}} to drain");
    server.run_to_completion();
    eprintln!("drained; bye");
}

fn cmd_fleet(args: &[String]) {
    let mut addr = "127.0.0.1:0".to_string();
    let mut config = FleetConfig::default();
    let mut shard_addrs = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |what: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--addr" => addr = take("--addr"),
            "--shards" => config.shards = parse(&take("--shards"), "shard count"),
            "--replicas" => config.replicas = parse(&take("--replicas"), "replica count"),
            "--ring-seed" => config.ring_seed = parse(&take("--ring-seed"), "ring seed"),
            "--vnodes" => config.vnodes = parse(&take("--vnodes"), "vnode count"),
            "--jobs" | "-j" => config.jobs = parse(&take("--jobs"), "worker count"),
            "--cache-bytes" => config.cache_bytes = parse(&take("--cache-bytes"), "cache budget"),
            "--slots" => config.slots = parse(&take("--slots"), "slot count"),
            "--queue-depth" => config.queue_depth = parse(&take("--queue-depth"), "queue depth"),
            "--hot-threshold" => {
                config.hot_threshold = parse(&take("--hot-threshold"), "hot threshold")
            }
            "--fault-seed" => {
                config.faults = Some(FaultPlan::with_seed(parse(
                    &take("--fault-seed"),
                    "fault seed",
                )))
            }
            "--shard-addrs" => shard_addrs = true,
            _ => usage(),
        }
    }
    if config.shards == 0 {
        eprintln!("--shards must be at least 1");
        std::process::exit(2);
    }
    let fleet = std::sync::Arc::new(Fleet::new(config));
    let server = FleetServer::start(&addr, std::sync::Arc::clone(&fleet)).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    // The smoke harness greps this exact line for the ephemeral port.
    println!("listening on {}", server.addr());
    // Optional per-shard debug listeners: a direct window onto one shard's
    // cache and metrics, bypassing the router. Churn only removes a shard
    // from the *ring*; its debug port stays up until drain.
    let mut shard_servers = Vec::new();
    if shard_addrs {
        for id in 0..config.shards {
            let service = fleet.shard_service(id).expect("shard exists at boot");
            let shard = Server::start_with_service("127.0.0.1:0", service).unwrap_or_else(|e| {
                eprintln!("cannot bind shard {id} listener: {e}");
                std::process::exit(1);
            });
            println!("shard {id} listening on {}", shard.addr());
            shard_servers.push(shard);
        }
    }
    use std::io::Write as _;
    std::io::stdout().flush().expect("flush stdout");
    eprintln!(
        "routing over {} shard(s), {}-way replication, ring seed {}; send {{\"op\":\"shutdown\"}} to drain",
        config.shards, config.replicas, config.ring_seed
    );
    server.run_to_completion();
    for shard in shard_servers {
        shard.shutdown();
        shard.join();
    }
    eprintln!("drained; bye");
}

fn cmd_query(args: &[String]) {
    let (Some(addr), Some(request)) = (args.first(), args.get(1)) else {
        usage()
    };
    let response = greenness_serve::query(addr, request).unwrap_or_else(|e| {
        eprintln!("query to {addr} failed: {e}");
        std::process::exit(1);
    });
    println!("{response}");
    // Exit nonzero on a protocol-level error so shell callers can assert.
    let ok = greenness_serve::json::Json::parse(&response)
        .ok()
        .and_then(|doc| doc.get("ok").and_then(|v| v.as_bool()))
        .unwrap_or(false);
    if !ok {
        std::process::exit(1);
    }
}

/// The fixed scripted steering session used by `greenness steer`, the
/// `bench-serve --sessions` harness, and CI's byte-compare smoke: attach,
/// three adjust/render rounds (I/O cadence, resolution, camera), a
/// mid-session re-attach (the resume path), a final render, detach. `id0`
/// offsets request ids so interleaved sessions stay globally unique.
fn steer_script(session: &str, id0: u64) -> Vec<String> {
    let ops = [
        format!(
            r#""op":"steer.attach","params":{{"session":"{session}","interval":2,"timesteps":12}}"#
        ),
        format!(r#""op":"steer.render","params":{{"session":"{session}","seq":1,"steps":3}}"#),
        format!(
            r#""op":"steer.adjust","params":{{"session":"{session}","seq":2,"kind":"io_interval","io_interval":3}}"#
        ),
        format!(r#""op":"steer.render","params":{{"session":"{session}","seq":3,"steps":3}}"#),
        format!(
            r#""op":"steer.adjust","params":{{"session":"{session}","seq":4,"kind":"resolution","width":96,"height":96}}"#
        ),
        format!(r#""op":"steer.render","params":{{"session":"{session}","seq":5,"steps":2}}"#),
        format!(
            r#""op":"steer.adjust","params":{{"session":"{session}","seq":6,"kind":"camera","colormap":"viridis","range":[0.0,0.3]}}"#
        ),
        format!(
            r#""op":"steer.attach","params":{{"session":"{session}","interval":2,"timesteps":12}}"#
        ),
        format!(r#""op":"steer.render","params":{{"session":"{session}","seq":7,"steps":4}}"#),
        format!(r#""op":"steer.detach","params":{{"session":"{session}","seq":8}}"#),
    ];
    ops.iter()
        .enumerate()
        .map(|(i, body)| {
            format!(
                "{{\"schema\":\"{}\",\"id\":{},{body}}}",
                greenness_serve::SCHEMA,
                id0 + i as u64 + 1
            )
        })
        .collect()
}

fn cmd_steer(args: &[String]) {
    let mut shards = 4u32;
    let mut jobs = 1usize;
    let mut session = String::from("s1");
    let mut fault_seed: Option<u64> = None;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |what: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--shards" => shards = parse(&take("--shards"), "shard count"),
            "--jobs" | "-j" => jobs = parse(&take("--jobs"), "worker count"),
            "--session" => session = take("--session"),
            "--fault-seed" => fault_seed = Some(parse(&take("--fault-seed"), "fault seed")),
            "--out" => out = Some(take("--out")),
            _ => usage(),
        }
    }
    // The scripted session runs through the fleet router so churn and
    // connection drops exercise the re-home/replay machinery; the reply
    // transcript is byte-identical across --jobs, across reruns, and across
    // fault seeds (the router absorbs every fault before replying).
    let fleet = Fleet::new(FleetConfig {
        shards,
        jobs,
        faults: fault_seed.map(FaultPlan::with_seed),
        ..FleetConfig::default()
    });
    let mut transcript = String::new();
    for line in steer_script(&session, 0) {
        let outcome = fleet.handle_line(&line);
        transcript.push_str(&outcome.line);
        transcript.push('\n');
        if !outcome.line.contains("\"ok\":true") {
            eprint!("{transcript}");
            eprintln!("steering script failed on: {line}");
            std::process::exit(1);
        }
    }
    match &out {
        Some(path) => {
            std::fs::write(path, &transcript).expect("write steering transcript");
            eprintln!("wrote {path}");
        }
        None => print!("{transcript}"),
    }
    let m = fleet.metrics_clone();
    eprintln!(
        "session '{session}': {} op(s) ok, {} rehome(s), {} op(s) replayed, {} drop-resume retr(ies)",
        m.counter("fleet.ok"),
        m.counter("fleet.session.rehomed"),
        m.counter("fleet.session.replayed"),
        m.counter("retries.fleet.session.resume"),
    );
}

fn cmd_bench_serve(args: &[String]) {
    let mut replay = false;
    let mut addr: Option<String> = None;
    let mut requests = 20usize;
    let mut conns = 4usize;
    let mut jobs = greenness_bench::default_jobs();
    let mut mode = "closed".to_string();
    let mut rate: Option<f64> = None;
    let mut out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut fault_seed: Option<u64> = None;
    let mut shards: Option<u32> = None;
    let mut replicas = 2usize;
    let mut ring_seed = 42u64;
    let mut universe = greenness_fleet::DEFAULT_UNIVERSE;
    let mut zipf = greenness_fleet::DEFAULT_ZIPF_S;
    let mut report_out: Option<String> = None;
    let mut shard_metrics_out: Option<String> = None;
    let mut sessions = 0usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |what: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--replay" => replay = true,
            "--addr" => addr = Some(take("--addr")),
            "--requests" | "-n" => requests = parse(&take("--requests"), "request count"),
            "--conns" | "-c" => conns = parse(&take("--conns"), "connection count"),
            "--jobs" | "-j" => jobs = parse(&take("--jobs"), "worker count"),
            "--mode" => mode = take("--mode"),
            "--rate" => rate = Some(parse(&take("--rate"), "request rate")),
            "--out" => out = Some(take("--out")),
            "--metrics-out" => metrics_out = Some(take("--metrics-out")),
            "--fault-seed" => fault_seed = Some(parse(&take("--fault-seed"), "fault seed")),
            "--shards" => shards = Some(parse(&take("--shards"), "shard count")),
            "--replicas" => replicas = parse(&take("--replicas"), "replica count"),
            "--ring-seed" => ring_seed = parse(&take("--ring-seed"), "ring seed"),
            "--universe" => universe = parse(&take("--universe"), "key universe"),
            "--zipf" => zipf = parse(&take("--zipf"), "zipf exponent"),
            "--report-out" => report_out = Some(take("--report-out")),
            "--shard-metrics-out" => shard_metrics_out = Some(take("--shard-metrics-out")),
            "--sessions" => sessions = parse(&take("--sessions"), "session count"),
            _ => usage(),
        }
    }
    if sessions > 0 {
        // Steering-session harness: N scripted sessions interleaved
        // round-robin against one in-process service. Injected connection
        // drops are retried like the stateless replay harness — the drop
        // fires *after* the op commits, so the retry hits the engine's
        // sequence-replay path and the transcript stays byte-identical.
        if !replay {
            eprintln!("--sessions implies --replay (the session harness is replay-only)");
            usage()
        }
        let service = greenness_serve::Service::new(ServiceConfig {
            jobs,
            session_slots: sessions.max(8),
            faults: fault_seed.map(FaultPlan::with_seed),
            ..ServiceConfig::default()
        });
        let scripts: Vec<Vec<String>> = (0..sessions)
            .map(|s| steer_script(&format!("s{s}"), (s as u64) * 100))
            .collect();
        let mut responses = String::new();
        let mut retries = 0u64;
        for phase in 0..scripts[0].len() {
            for script in &scripts {
                let line = &script[phase];
                let mut outcome = service.handle_line(line);
                let mut budget = 8u32;
                while outcome.dropped && budget > 0 {
                    retries += 1;
                    budget -= 1;
                    outcome = service.handle_line(line);
                }
                let reply = outcome.line();
                if !reply.contains("\"ok\":true") {
                    eprintln!("session harness failed on: {line}\n  reply: {reply}");
                    std::process::exit(1);
                }
                responses.push_str(&reply);
                responses.push('\n');
            }
        }
        if retries > 0 {
            eprintln!(
                "session replay ran degraded: {retries} dropped op(s) retried via seq-replay"
            );
        }
        match &out {
            Some(path) => {
                std::fs::write(path, &responses).expect("write session response log");
                eprintln!("wrote {path}");
            }
            None => print!("{responses}"),
        }
        let m = service.metrics_clone();
        if let Some(path) = &metrics_out {
            std::fs::write(path, m.to_json()).expect("write metrics snapshot");
            eprintln!("wrote {path}");
        }
        eprintln!(
            "{sessions} session(s): {} attach(es), {} adjust(s), {} incremental render(s), {} cached delta(s), {} computed delta(s), {} seq-replay(s)",
            m.counter("steer.attach"),
            m.counter("steer.adjust"),
            m.counter("steer.render.incremental"),
            m.counter("steer.delta.cached"),
            m.counter("steer.delta.computed"),
            m.counter("steer.replayed"),
        );
        return;
    }
    if let Some(shards) = shards {
        // Fleet replay: open-loop on the virtual clock, Zipfian keys. The
        // response log and the fleet metrics are byte-identical across
        // --jobs always, and across --shards in the fault-free regime.
        if !replay {
            eprintln!("--shards implies --replay (the fleet harness is replay-only)");
            usage()
        }
        let workload = greenness_fleet::fleet_workload(requests, universe, zipf, ring_seed);
        let result = greenness_fleet::run_fleet_replay(
            FleetConfig {
                shards,
                replicas,
                ring_seed,
                jobs,
                faults: fault_seed.map(FaultPlan::with_seed),
                ..FleetConfig::default()
            },
            &workload,
            rate.unwrap_or(greenness_fleet::DEFAULT_RATE_RPS),
        );
        if result.reroutes > 0 {
            eprintln!(
                "fleet replay ran degraded: {} reroute hop(s) around dropped shard connections",
                result.reroutes
            );
        }
        match &out {
            Some(path) => {
                std::fs::write(path, &result.responses).expect("write response log");
                eprintln!("wrote {path}");
            }
            None => print!("{}", result.responses),
        }
        if let Some(path) = &metrics_out {
            std::fs::write(path, &result.fleet_metrics).expect("write fleet metrics");
            eprintln!("wrote {path}");
        }
        if let Some(path) = &shard_metrics_out {
            std::fs::write(path, &result.shard_metrics).expect("write shard metrics");
            eprintln!("wrote {path}");
        }
        match &report_out {
            Some(path) => {
                std::fs::write(path, &result.report).expect("write fleet report");
                eprintln!("wrote {path}");
            }
            None => eprintln!("{}", result.report),
        }
        return;
    }
    if replay {
        let workload = greenness_serve::replay_workload(requests);
        let result = greenness_serve::run_replay(
            ServiceConfig {
                jobs,
                faults: fault_seed.map(FaultPlan::with_seed),
                ..ServiceConfig::default()
            },
            &workload,
        );
        if result.retries > 0 {
            eprintln!(
                "replay ran degraded: {} dropped request(s) retried to completion",
                result.retries
            );
        }
        match &out {
            Some(path) => {
                std::fs::write(path, &result.responses).expect("write response log");
                eprintln!("wrote {path}");
            }
            None => print!("{}", result.responses),
        }
        if let Some(path) = &metrics_out {
            std::fs::write(path, &result.metrics).expect("write metrics snapshot");
            eprintln!("wrote {path}");
        }
        return;
    }
    let Some(addr) = addr else {
        eprintln!("bench-serve needs --addr (or --replay)");
        usage()
    };
    if fault_seed.is_some() {
        eprintln!("note: --fault-seed applies to --replay; for live runs start the server with --fault-seed");
    }
    let load_mode = match mode.as_str() {
        "closed" => LoadMode::Closed,
        "open" => LoadMode::Open {
            rate_rps: rate.unwrap_or(50.0),
        },
        other => {
            eprintln!("unknown mode {other} (expected closed|open)");
            std::process::exit(2);
        }
    };
    eprintln!("driving {requests} request(s) at {addr} over {conns} connection(s)...");
    let report = greenness_serve::run_load(&addr, requests, conns, load_mode).unwrap_or_else(|e| {
        eprintln!("load run failed: {e}");
        std::process::exit(1);
    });
    println!("{}", report.to_json());
}

fn cmd_bench(args: &[String]) {
    let mut config = greenness_bench::perf::BenchConfig::default();
    let mut out = String::from("BENCH_7.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reps" => config.reps = parse(it.next().unwrap_or_else(|| usage()), "reps"),
            "--jobs" => config.jobs = parse(it.next().unwrap_or_else(|| usage()), "jobs"),
            "--out" => out = it.next().unwrap_or_else(|| usage()).clone(),
            "--quick" => config.quick = true,
            _ => usage(),
        }
    }
    if config.reps == 0 || config.jobs == 0 {
        eprintln!("--reps and --jobs must be at least 1");
        std::process::exit(2);
    }
    eprintln!(
        "running hot-path suite ({} rep(s){})...",
        config.reps,
        if config.quick { ", quick" } else { "" }
    );
    let suite = greenness_bench::perf::run_suite(&config).unwrap_or_else(|e| {
        eprintln!("bench failed: {e}");
        std::process::exit(2);
    });
    print!("{}", greenness_bench::perf::suite_table(&suite));
    let json = greenness_bench::perf::suite_json(&config, &suite);
    std::fs::write(&out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "case" => cmd_case(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "placement" => cmd_placement(&args[1..]),
        "fio" => cmd_fio(&args[1..]),
        "probes" => cmd_probes(),
        "cluster" => cmd_cluster(&args[1..]),
        "cap" => cmd_cap(&args[1..]),
        "adaptive" => cmd_adaptive(&args[1..]),
        "advisor" => cmd_advisor(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "steer" => cmd_steer(&args[1..]),
        "fleet" => cmd_fleet(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "bench-serve" => cmd_bench_serve(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        _ => usage(),
    }
}
