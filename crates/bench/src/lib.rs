//! # greenness-bench
//!
//! The benchmark harness: shared runners used by the `repro` binary (which
//! regenerates every table and figure of the paper) and by the criterion
//! bench targets (`figures`, `table3_fio`, `ablations`, `micro`).

use greenness_core::{CaseComparison, ExperimentSetup};
use rayon::prelude::*;

/// Run all three §IV-C case studies (both pipelines each), in parallel.
pub fn run_all_cases(setup: &ExperimentSetup) -> Vec<CaseComparison> {
    let mut cases: Vec<CaseComparison> = [1u32, 2, 3]
        .into_par_iter()
        .map(|n| CaseComparison::run_case(n, setup))
        .collect();
    cases.sort_by_key(|c| c.case);
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_case_runs_are_ordered_and_complete() {
        // Scaled-down smoke test of the parallel runner path.
        let setup = ExperimentSetup::noiseless();
        let cases: Vec<_> = [1u32, 2, 3]
            .into_iter()
            .map(|n| {
                let cfg = greenness_core::PipelineConfig::small(match n {
                    1 => 1,
                    2 => 2,
                    _ => 8,
                });
                CaseComparison::run_config(n, &cfg, &setup)
            })
            .collect();
        assert_eq!(cases.iter().map(|c| c.case).collect::<Vec<_>>(), vec![1, 2, 3]);
        for c in &cases {
            assert!(c.post.metrics.energy_j > 0.0);
        }
    }
}
