//! # greenness-bench
//!
//! The benchmark harness: shared runners used by the `repro` binary (which
//! regenerates every table and figure of the paper) and by the criterion
//! bench targets (`figures`, `table3_fio`, `ablations`, `micro`).
//!
//! All grid execution goes through `greenness_core::sweep`, the
//! deterministic work-stealing executor: results (and the manifest written
//! by `repro`) are bit-identical for any `--jobs` value.

pub mod perf;

use greenness_core::sweep::{self, JobResult};
use greenness_core::{CaseComparison, ExperimentSetup};

/// Default worker count: one per available core, capped by the job count
/// inside the executor.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run all three §IV-C case studies (both pipelines each) on `jobs` worker
/// threads, reporting progress through `on_done`. Returns the raw per-job
/// results in submission order (the manifest's input).
///
/// # Errors
/// Propagates a [`sweep::SweepError`] when a grid job panicked or the grid
/// was malformed.
pub fn run_case_grid(
    setup: &ExperimentSetup,
    jobs: usize,
    on_done: sweep::Progress<'_>,
) -> Result<Vec<JobResult>, sweep::SweepError> {
    sweep::run_sweep(sweep::case_grid(setup, &[1, 2, 3]), jobs, on_done)
}

/// Run all three §IV-C case studies (both pipelines each), in parallel on
/// all available cores.
///
/// # Errors
/// Propagates a [`sweep::SweepError`] from the executor.
pub fn run_all_cases(setup: &ExperimentSetup) -> Result<Vec<CaseComparison>, sweep::SweepError> {
    let results = run_case_grid(setup, default_jobs(), &sweep::silent_progress())?;
    Ok(sweep::comparisons(&results))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_case_runs_are_ordered_and_complete() {
        // Scaled-down smoke test of the parallel runner path.
        let setup = ExperimentSetup::noiseless();
        let configs: Vec<_> = [(1u32, 1u64), (2, 2), (3, 8)]
            .into_iter()
            .map(|(n, interval)| (n, greenness_core::PipelineConfig::small(interval)))
            .collect();
        let jobs = sweep::config_grid(&setup, &configs);
        let results = sweep::run_sweep(jobs, 4, &sweep::silent_progress()).expect("sweep ok");
        let cases = sweep::comparisons(&results);
        assert_eq!(
            cases.iter().map(|c| c.case).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        for c in &cases {
            assert!(c.post.metrics.energy_j > 0.0);
        }
    }
}
