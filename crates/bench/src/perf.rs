//! The `greenness bench` harness: a reproducible performance trajectory for
//! the repo's hot paths.
//!
//! A handful of code paths dominate host CPU time across the paper's
//! experiments — the FTCS stencil step, snapshot encoding on the
//! per-iteration dump path, cache-key canonicalization in the serve layer,
//! and (per request, fleet-wide) the router's consistent-hash lookup and
//! Zipfian workload sampler. This module measures each with deterministic
//! workloads and reports median-of-N wall-clock plus derived throughput, so
//! `BENCH_<n>.json` files committed by successive optimization passes form
//! a comparable trajectory.
//!
//! Determinism discipline mirrors the sweep executor's: every workload also
//! emits **counters** (FNV-1a checksums of its outputs, plus exact work
//! tallies) that must be byte-identical across reps, runs, and `--jobs`
//! values — only the wall-clock fields may vary between hosts. The fast
//! stencil path is additionally gated against the retained naive reference
//! (`HeatSolver::step_reference`) inside the suite itself: if the checksums
//! diverge, the bench aborts rather than report a speedup for wrong answers.
//!
//! Output schema (`greenness-bench/v1`) is a single stable JSON object; see
//! [`suite_json`].

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use greenness_codec::rle::Rle;
use greenness_codec::transpose::TransposeRle;
use greenness_codec::ScratchCodec;
use greenness_core::PipelineConfig;
use greenness_fleet::{Ring, Zipf, DEFAULT_VNODES};
use greenness_heatsim::{Boundary, Grid, HeatSolver};
use greenness_serve::protocol::parse_request;
use greenness_serve::replay_workload;
use greenness_trace::{fmt_f64, percentile_nearest_rank};

/// How to run the suite.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Wall-clock repetitions per workload (the median is reported).
    pub reps: usize,
    /// Shrink workloads ~4× for CI smoke runs.
    pub quick: bool,
    /// Worker threads for the solver's row-parallel step. Counters must not
    /// depend on this; the suite re-checks that invariant every run.
    pub jobs: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            reps: 5,
            quick: false,
            jobs: 1,
        }
    }
}

/// One measured workload.
#[derive(Debug, Clone)]
pub struct BenchMeasurement {
    /// Stable bench name, e.g. `stencil.fast.dirichlet`.
    pub name: &'static str,
    /// Human-readable workload size, e.g. `192x192x60`.
    pub workload: String,
    /// Median wall-clock of the reps, seconds.
    pub median_wall_s: f64,
    /// Work units per second at the median rep.
    pub throughput: f64,
    /// Throughput unit, e.g. `cells/s`.
    pub unit: &'static str,
    /// Deterministic counters (checksums and exact work tallies); identical
    /// across reps, runs, and `--jobs` values.
    pub counters: BTreeMap<&'static str, u64>,
}

/// The whole suite's results plus derived cross-bench ratios.
#[derive(Debug, Clone)]
pub struct BenchSuite {
    /// Per-workload measurements, in fixed order.
    pub benches: Vec<BenchMeasurement>,
    /// Derived ratios, e.g. `stencil_speedup_dirichlet` (fast over naive
    /// cells/s on the identical workload).
    pub derived: BTreeMap<&'static str, f64>,
}

/// 64-bit FNV-1a folded over 8-byte words (byte-at-a-time tail) — the
/// suite's output checksum. The word stride keeps the harness's hashing
/// cost negligible next to the workloads it checksums: the byte-at-a-time
/// fold cost as much as the transpose encode it was checksumming, so half
/// of BENCH_5's `codec.transpose_rle` wall-clock was the *harness*.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &b in chunks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Time `f` up to `reps` times. An interrupted rep (the workload panicked
/// mid-flight) is excluded from the timing sample instead of leaving a
/// zero or partial wall in it; the median is the nearest-rank p50 over
/// **exactly the completed reps** — `walls[len / 2]` picked the upper
/// middle on even-and-tiny rep counts, silently reporting the worse of two
/// walls as "the median". Counters of completed reps must still repeat
/// exactly (that assert stays fatal — drift means wrong answers, not bad
/// luck). With zero completed reps there is nothing to report and the
/// workload's name comes back as the error.
fn measure<F>(
    name: &'static str,
    workload: String,
    unit: &'static str,
    reps: usize,
    mut f: F,
) -> Result<BenchMeasurement, String>
where
    F: FnMut() -> (f64, BTreeMap<&'static str, u64>),
{
    let reps = reps.max(1);
    let mut walls = Vec::with_capacity(reps);
    let mut work = 0.0;
    let mut counters: Option<BTreeMap<&'static str, u64>> = None;
    for rep in 0..reps {
        let t0 = Instant::now();
        let completed = catch_unwind(AssertUnwindSafe(&mut f));
        let wall = t0.elapsed().as_secs_f64();
        let (w, c) = match completed {
            Ok(result) => result,
            Err(_) => {
                eprintln!("{name}: rep {rep} interrupted; excluded from the timing sample");
                continue;
            }
        };
        walls.push(wall);
        if let Some(prev) = &counters {
            assert_eq!(prev, &c, "{name}: counters drifted at rep {rep}");
        }
        counters = Some(c);
        work = w;
    }
    if walls.is_empty() {
        return Err(format!("{name}: no rep completed"));
    }
    walls.sort_by(f64::total_cmp);
    let median_wall_s = percentile_nearest_rank(&walls, 0.50);
    Ok(BenchMeasurement {
        name,
        workload,
        median_wall_s,
        throughput: work / median_wall_s.max(1e-12),
        unit,
        counters: counters.unwrap_or_default(),
    })
}

/// Deterministic initial field shared by the stencil workloads.
fn bench_field(nx: usize, ny: usize) -> Grid {
    Grid::from_fn(nx, ny, |x, y| {
        0.5 + 0.25 * (x * 6.0).sin() * (y * 4.0).cos()
    })
}

/// Run the stencil workload and return `(cell_updates, counters)`. `jobs`
/// drives the solver's row-band decomposition; `jobs = 1` is the
/// sequential fast path.
fn stencil(
    nx: usize,
    ny: usize,
    steps: u64,
    boundary: Boundary,
    fast: bool,
    jobs: usize,
) -> (f64, BTreeMap<&'static str, u64>) {
    let mut cfg = PipelineConfig::default_solver(nx, ny);
    cfg.boundary = boundary;
    let mut solver = HeatSolver::new(bench_field(nx, ny), cfg).expect("stable bench config");
    solver.set_jobs(jobs);
    for _ in 0..steps {
        if fast {
            solver.step();
        } else {
            solver.step_reference();
        }
    }
    let mut counters = BTreeMap::new();
    counters.insert("checksum", fnv1a(&solver.grid().to_bytes()));
    counters.insert("cell_updates", solver.cell_updates());
    (solver.cell_updates() as f64, counters)
}

/// Run the whole suite. Panics (before writing anything) if any workload's
/// counters drift across reps or the fast stencil diverges from the naive
/// reference — a bench must never certify a speedup for different answers.
/// Returns `Err` when a workload completes zero reps (the CLI maps this to
/// its uniform exit-2 path).
pub fn run_suite(config: &BenchConfig) -> Result<BenchSuite, String> {
    let reps = config.reps;
    // Workload sizes: big enough that the stencil interior dominates, small
    // enough that a full 5-rep suite stays in seconds.
    let (nx, ny, steps) = if config.quick {
        (96, 96, 24u64)
    } else {
        (192, 192, 60u64)
    };
    let stencil_desc = format!("{nx}x{ny}x{steps}");
    let mut benches = Vec::new();

    for (bname, boundary) in [
        ("dirichlet", Boundary::Dirichlet(0.0)),
        ("neumann", Boundary::Neumann),
    ] {
        let fast_name: &'static str = match bname {
            "dirichlet" => "stencil.fast.dirichlet",
            _ => "stencil.fast.neumann",
        };
        let naive_name: &'static str = match bname {
            "dirichlet" => "stencil.naive.dirichlet",
            _ => "stencil.naive.neumann",
        };
        let fast = measure(fast_name, stencil_desc.clone(), "cells/s", reps, || {
            stencil(nx, ny, steps, boundary, true, 1)
        })?;
        let naive = measure(naive_name, stencil_desc.clone(), "cells/s", reps, || {
            stencil(nx, ny, steps, boundary, false, 1)
        })?;
        assert_eq!(
            fast.counters["checksum"], naive.counters["checksum"],
            "{bname}: fast stencil path diverged from the naive reference"
        );
        benches.push(fast);
        benches.push(naive);
    }

    // The domain-decomposed step at the configured worker count, gated
    // in-run on bit-identity with the sequential fast path: threading may
    // change wall-clock, never bytes.
    let threaded = measure(
        "stencil.threaded",
        format!("{stencil_desc} jobs={}", config.jobs),
        "cells/s",
        reps,
        || stencil(nx, ny, steps, Boundary::Dirichlet(0.0), true, config.jobs),
    )?;
    let sequential_dirichlet = benches
        .iter()
        .find(|b| b.name == "stencil.fast.dirichlet")
        .expect("measured above");
    assert_eq!(
        threaded.counters["checksum"], sequential_dirichlet.counters["checksum"],
        "threaded stencil diverged from the sequential fast path"
    );
    assert_eq!(
        threaded.counters["cell_updates"],
        sequential_dirichlet.counters["cell_updates"]
    );
    benches.push(threaded);

    // Snapshot encoding on the dump path: one warmed ScratchCodec reused
    // across every encode, exactly as the compressed pipeline variant holds
    // it. 8 encodes per rep ≈ one case study's I/O steps.
    let field_bytes = bench_field(nx, ny).to_bytes();
    let encodes_per_rep = 8u64;
    let mut transpose = ScratchCodec::new(Box::new(TransposeRle));
    let codec_desc = format!("{}B x{encodes_per_rep}", field_bytes.len());
    benches.push(measure(
        "codec.transpose_rle",
        codec_desc.clone(),
        "bytes/s",
        reps,
        || {
            let mut out_hash = 0u64;
            let mut bytes_out = 0u64;
            for k in 0..encodes_per_rep {
                let encoded = transpose
                    .try_encode(&field_bytes)
                    .expect("aligned finite field");
                bytes_out += encoded.len() as u64;
                // Every iteration encodes the same input, so one checksum
                // of the final encoding covers them all; hashing inside
                // the loop only times the harness, not the codec.
                if k + 1 == encodes_per_rep {
                    out_hash = fnv1a(encoded);
                }
            }
            let bytes_in = field_bytes.len() as u64 * encodes_per_rep;
            let mut counters = BTreeMap::new();
            counters.insert("checksum", out_hash);
            counters.insert("bytes_in", bytes_in);
            counters.insert("bytes_out", bytes_out);
            (bytes_in as f64, counters)
        },
    )?);

    // Byte-level RLE on run-heavy data (the rendered-image shape): the
    // batched run scan vs the old byte-at-a-time loop.
    let rle_input: Vec<u8> = (0..field_bytes.len())
        .map(|i| ((i / 97) % 251) as u8)
        .collect();
    let mut rle = ScratchCodec::new(Box::new(Rle));
    benches.push(measure(
        "codec.rle",
        format!("{}B x{encodes_per_rep}", rle_input.len()),
        "bytes/s",
        reps,
        || {
            let mut out_hash = 0u64;
            let mut bytes_out = 0u64;
            for k in 0..encodes_per_rep {
                let encoded = rle.try_encode(&rle_input).expect("rle is total");
                bytes_out += encoded.len() as u64;
                if k + 1 == encodes_per_rep {
                    out_hash = fnv1a(encoded);
                }
            }
            let bytes_in = rle_input.len() as u64 * encodes_per_rep;
            let mut counters = BTreeMap::new();
            counters.insert("checksum", out_hash);
            counters.insert("bytes_in", bytes_in);
            counters.insert("bytes_out", bytes_out);
            (bytes_in as f64, counters)
        },
    )?);

    // Cache-key canonicalization: parse + single-pass canonical hash of the
    // serve harness's replay mix.
    let requests = replay_workload(if config.quick { 100 } else { 400 });
    benches.push(measure(
        "serve.cache_key",
        format!("{} requests", requests.len()),
        "keys/s",
        reps,
        || {
            let mut key_hash = 0xcbf2_9ce4_8422_2325u64;
            for line in &requests {
                let request = parse_request(line).expect("templates are valid");
                key_hash ^= fnv1a(&request.cache_key);
                key_hash = key_hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut counters = BTreeMap::new();
            counters.insert("checksum", key_hash);
            counters.insert("keys", requests.len() as u64);
            (requests.len() as f64, counters)
        },
    )?);

    // Fleet router overhead: consistent-hash lookups over a warm ring. This
    // is the per-request cost the fleet front tier adds before any shard
    // does work, so regressions here tax every query in the fleet harness.
    let route_keys = if config.quick { 20_000u64 } else { 80_000u64 };
    let ring = Ring::new(42, 8, DEFAULT_VNODES);
    benches.push(measure(
        "fleet.route",
        format!("{route_keys} keys, 8 shards x{DEFAULT_VNODES} vnodes"),
        "keys/s",
        reps,
        || {
            let mut route_hash = 0xcbf2_9ce4_8422_2325u64;
            for i in 0..route_keys {
                let key = format!("fleet/key/{i}");
                let shard = ring.route(key.as_bytes()).expect("non-empty ring");
                route_hash ^= u64::from(shard) + 1;
                route_hash = route_hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut counters = BTreeMap::new();
            counters.insert("checksum", route_hash);
            counters.insert("keys", route_keys);
            (route_keys as f64, counters)
        },
    )?);

    // Zipfian rank generation: the fleet workload's popularity sampler
    // (binary search over a precomputed CDF, stateless per index).
    let zipf_draws = if config.quick { 50_000u64 } else { 200_000u64 };
    let zipf = Zipf::new(4096, 1.1, 42);
    benches.push(measure(
        "fleet.zipf",
        format!("{zipf_draws} draws, universe 4096 s=1.1"),
        "draws/s",
        reps,
        || {
            let mut rank_hash = 0xcbf2_9ce4_8422_2325u64;
            for i in 0..zipf_draws {
                rank_hash ^= zipf.rank(i);
                rank_hash = rank_hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut counters = BTreeMap::new();
            counters.insert("checksum", rank_hash);
            counters.insert("draws", zipf_draws);
            (zipf_draws as f64, counters)
        },
    )?);

    let mut derived = BTreeMap::new();
    let throughput = |name: &str| {
        benches
            .iter()
            .find(|b| b.name == name)
            .map(|b| b.throughput)
            .unwrap_or(0.0)
    };
    derived.insert(
        "stencil_speedup_dirichlet",
        throughput("stencil.fast.dirichlet") / throughput("stencil.naive.dirichlet").max(1e-12),
    );
    derived.insert(
        "stencil_speedup_neumann",
        throughput("stencil.fast.neumann") / throughput("stencil.naive.neumann").max(1e-12),
    );
    // Threaded over sequential on the same workload: > 1 only with real
    // cores to spare; ~1 or below on a single-core host, where the bands
    // serialize behind pool overhead. Reported honestly either way.
    derived.insert(
        "stencil_threaded_scaling",
        throughput("stencil.threaded") / throughput("stencil.fast.dirichlet").max(1e-12),
    );

    Ok(BenchSuite { benches, derived })
}

/// Render the suite as one `greenness-bench/v1` JSON document (trailing
/// newline included). Counter order is the BTreeMap's, so two runs with
/// equal counters serialize those fields identically.
pub fn suite_json(config: &BenchConfig, suite: &BenchSuite) -> String {
    let benches: Vec<String> = suite
        .benches
        .iter()
        .map(|b| {
            let counters: Vec<String> = b
                .counters
                .iter()
                .map(|(k, v)| format!("\"{k}\":{v}"))
                .collect();
            format!(
                "{{\"name\":\"{}\",\"workload\":\"{}\",\"median_wall_s\":{},\"throughput\":{},\"unit\":\"{}\",\"counters\":{{{}}}}}",
                b.name,
                b.workload,
                fmt_f64(b.median_wall_s),
                fmt_f64(b.throughput),
                b.unit,
                counters.join(",")
            )
        })
        .collect();
    let derived: Vec<String> = suite
        .derived
        .iter()
        .map(|(k, v)| format!("\"{k}\":{}", fmt_f64(*v)))
        .collect();
    format!(
        "{{\"schema\":\"greenness-bench/v1\",\"bench_id\":\"BENCH_7\",\"reps\":{},\"quick\":{},\"jobs\":{},\"benches\":[{}],\"derived\":{{{}}}}}\n",
        config.reps.max(1),
        config.quick,
        config.jobs,
        benches.join(","),
        derived.join(",")
    )
}

/// Fixed-width summary table for the CLI.
pub fn suite_table(suite: &BenchSuite) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:>14} {:>16} {:<8}\n",
        "bench", "median (ms)", "throughput", "unit"
    ));
    for b in &suite.benches {
        out.push_str(&format!(
            "{:<26} {:>14.3} {:>16.3e} {:<8}\n",
            b.name,
            b.median_wall_s * 1e3,
            b.throughput,
            b.unit
        ));
    }
    for (k, v) in &suite.derived {
        out.push_str(&format!("{k}: {v:.2}x\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_counters_are_deterministic_across_jobs() {
        let quick = BenchConfig {
            reps: 1,
            quick: true,
            jobs: 1,
        };
        let a = run_suite(&quick).expect("suite completes at jobs=1");
        let b = run_suite(&BenchConfig { jobs: 8, ..quick }).expect("suite completes at jobs=8");
        let counters = |s: &BenchSuite| {
            s.benches
                .iter()
                .map(|m| (m.name, m.counters.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(counters(&a), counters(&b));
        assert_eq!(a.benches.len(), 10);
        let by_name = |s: &BenchSuite, name: &str| {
            s.benches
                .iter()
                .find(|m| m.name == name)
                .map(|m| m.counters.clone())
                .expect("bench present")
        };
        // The threaded stencil must do exactly the same work as the
        // sequential fast path, at every jobs value.
        assert_eq!(
            by_name(&a, "stencil.threaded"),
            by_name(&a, "stencil.fast.dirichlet")
        );
        assert_eq!(
            by_name(&b, "stencil.threaded"),
            by_name(&b, "stencil.fast.dirichlet")
        );
        for (k, v) in &a.derived {
            assert!(v.is_finite() && *v > 0.0, "{k} = {v}");
        }
    }

    #[test]
    fn measure_excludes_interrupted_reps_and_errs_on_zero_completed() {
        // Silence the default panic hook for the deliberately-panicking
        // reps below; restore it before asserting so a failed assert still
        // prints normally.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));

        // Rep 0 panics mid-flight; reps 1..3 complete with identical
        // counters. The sample must be the two completed reps — Ok, with
        // the completed reps' counters.
        let mut rep = 0usize;
        let partial = measure("test.partial", "tiny".into(), "ops/s", 3, || {
            rep += 1;
            if rep == 1 {
                panic!("injected interruption");
            }
            let mut counters = BTreeMap::new();
            counters.insert("checksum", 42u64);
            (1.0, counters)
        });

        // Every rep panics: nothing to report.
        let empty = measure("test.empty", "tiny".into(), "ops/s", 2, || {
            panic!("injected interruption");
        });

        std::panic::set_hook(prev);

        let partial = partial.expect("two completed reps are a valid sample");
        assert_eq!(partial.counters.get("checksum"), Some(&42));
        assert!(partial.median_wall_s >= 0.0 && partial.median_wall_s.is_finite());
        let message = empty.expect_err("zero completed reps cannot be summarized");
        assert!(message.contains("test.empty"), "{message}");
    }

    #[test]
    fn json_is_schema_tagged_and_stable_modulo_wall_clock() {
        let cfg = BenchConfig {
            reps: 1,
            quick: true,
            jobs: 1,
        };
        let json = suite_json(&cfg, &run_suite(&cfg).expect("suite completes"));
        assert!(json.starts_with("{\"schema\":\"greenness-bench/v1\""));
        assert!(json.contains("\"bench_id\":\"BENCH_7\""));
        assert!(json.contains("\"name\":\"stencil.fast.dirichlet\""));
        assert!(json.contains("\"name\":\"stencil.threaded\""));
        assert!(json.contains("\"name\":\"fleet.route\""));
        assert!(json.contains("\"name\":\"fleet.zipf\""));
        assert!(json.contains("\"stencil_speedup_dirichlet\":"));
        assert!(json.contains("\"stencil_threaded_scaling\":"));
        assert!(json.ends_with("}\n"));
    }
}
