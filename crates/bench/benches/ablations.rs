//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each bench prints the *virtual-domain* outcome of the ablation once
//! (the scientific result), then times the host-side cost of the code path.

use criterion::{criterion_group, criterion_main, Criterion};
use greenness_core::{experiment, pipeline::PipelineKind, ExperimentSetup, PipelineConfig};
use greenness_platform::{AccessPattern, Activity, HardwareSpec, Node, Phase};
use greenness_storage::{FileSystem, FsConfig, MemBlockDevice};
use greenness_viz::stride_sample;
use std::hint::black_box;
use std::sync::Once;

static PRINTED: Once = Once::new();

/// Cold vs warm reads: why the paper's `sync; drop_caches` discipline
/// matters. Without the drop, the post-processing read phase is served from
/// RAM and the I/O cost evaporates.
fn ablate_page_cache(c: &mut Criterion) {
    let run = |drop_caches: bool| -> f64 {
        let mut node = Node::new(HardwareSpec::table1());
        let mut fs = FileSystem::format(
            MemBlockDevice::with_capacity_bytes(16 * 1024 * 1024),
            FsConfig::default(),
        );
        let data = vec![7u8; 1024 * 1024];
        fs.write(&mut node, "f", 0, &data, Phase::Write).unwrap();
        fs.sync(&mut node, Phase::CacheControl);
        if drop_caches {
            fs.drop_caches();
        }
        let t0 = node.now();
        fs.read(&mut node, "f", 0, data.len() as u64, Phase::Read)
            .unwrap();
        (node.now() - t0).as_secs_f64()
    };
    PRINTED.call_once(|| {
        println!(
            "[ablate_page_cache] 1 MiB read: cold {:.3}s vs warm {:.6}s of virtual time",
            run(true),
            run(false)
        );
    });
    c.bench_function("ablate_page_cache_cold_read", |b| {
        b.iter(|| black_box(run(true)))
    });
}

/// On-disk write cache on/off: the mechanism behind Table III's cheap
/// random writes.
fn ablate_write_cache(c: &mut Criterion) {
    let run = |cache: bool| -> f64 {
        let mut spec = HardwareSpec::table1();
        if !cache {
            spec.disk = spec.disk.without_write_cache();
        }
        let node = Node::new(spec);
        let (secs, _) = node.cost_of(Activity::DiskWrite {
            bytes: 256 * 1024 * 1024,
            pattern: AccessPattern::Random {
                op_bytes: 4096,
                queue_depth: 32,
            },
            buffered: false,
        });
        secs
    };
    println!(
        "[ablate_write_cache] 256 MiB random write: cached {:.1}s vs uncached {:.1}s of virtual time",
        run(true),
        run(false)
    );
    c.bench_function("ablate_write_cache_model", |b| {
        b.iter(|| black_box((run(true), run(false))))
    });
}

/// NCQ queue-depth sweep for random reads.
fn ablate_ncq(c: &mut Criterion) {
    let run = |qd: u32| -> f64 {
        let node = Node::new(HardwareSpec::table1());
        let (secs, _) = node.cost_of(Activity::DiskRead {
            bytes: 256 * 1024 * 1024,
            pattern: AccessPattern::Random {
                op_bytes: 4096,
                queue_depth: qd,
            },
            buffered: false,
        });
        secs
    };
    let sweep: Vec<(u32, f64)> = [1, 2, 4, 8, 16, 32].iter().map(|&q| (q, run(q))).collect();
    println!("[ablate_ncq] 256 MiB random read vs queue depth: {sweep:.1?}");
    c.bench_function("ablate_ncq_sweep", |b| {
        b.iter(|| {
            for qd in [1u32, 2, 4, 8, 16, 32] {
                black_box(run(qd));
            }
        })
    });
}

/// DVFS: frequency scaling trades time for power on the compute phase —
/// one of the "alternative techniques" the paper's §V-C points at for
/// static-energy reduction.
fn ablate_dvfs(c: &mut Criterion) {
    let run = |scale: f64| -> (f64, f64) {
        let mut spec = HardwareSpec::table1();
        spec.cpu = spec.cpu.with_freq_scale(scale);
        let node = Node::new(spec);
        let (secs, draw) = node.cost_of(Activity::compute(1.0e12, 16));
        (secs, draw.system_w() * secs)
    };
    let sweep: Vec<(f64, f64, f64)> = [1.0, 0.8, 0.6, 0.5]
        .iter()
        .map(|&s| (s, run(s).0, run(s).1))
        .collect();
    println!("[ablate_dvfs] 1 Tflop at freq scale (scale, secs, joules): {sweep:.1?}");
    c.bench_function("ablate_dvfs_sweep", |b| {
        b.iter(|| {
            for s in [1.0, 0.8, 0.6, 0.5] {
                black_box(run(s));
            }
        })
    });
}

/// Data sampling: how stride decimation shrinks snapshot I/O volume (the
/// dynamic-energy optimization, refs [21]–[23]).
fn ablate_sampling(c: &mut Criterion) {
    let field = greenness_heatsim::Grid::from_fn(256, 256, |x, y| (x * 7.0).sin() + y);
    let volumes: Vec<(usize, u64)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&s| (s, stride_sample(&field, s).snapshot_bytes()))
        .collect();
    println!("[ablate_sampling] snapshot bytes vs stride: {volumes:?}");
    c.bench_function("ablate_sampling_stride4", |b| {
        b.iter(|| black_box(stride_sample(&field, 4)))
    });
}

/// Host-side parallelism of the real solver (rayon thread count).
fn ablate_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_parallelism");
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("solver_256x256_{threads}thr"), |b| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            b.iter(|| {
                pool.install(|| {
                    let g = greenness_heatsim::Grid::from_fn(256, 256, |x, y| x * y);
                    let mut s = greenness_heatsim::HeatSolver::new(
                        g,
                        greenness_core::PipelineConfig::default_solver(256, 256),
                    )
                    .expect("stable config");
                    s.run(10);
                    black_box(s.grid().total())
                })
            })
        });
    }
    group.finish();
}

/// Compression codecs on real solver output: ratio + host throughput.
fn ablate_compression(c: &mut Criterion) {
    use greenness_codec::{quant::Quant16, transpose::TransposeRle, Codec};
    let field = {
        let mut s = greenness_heatsim::HeatSolver::new(
            greenness_heatsim::Grid::from_fn(256, 256, |x, y| {
                0.3 * (-((x - 0.5).powi(2) + (y - 0.4).powi(2)) * 40.0).exp()
            }),
            greenness_core::PipelineConfig::default_solver(256, 256),
        )
        .expect("stable config");
        s.run(20);
        s.grid().clone()
    };
    let bytes = field.to_bytes();
    let lossless = TransposeRle.encode(&bytes).len();
    let quant = Quant16.encode(&bytes).len();
    println!(
        "[ablate_compression] 256x256 snapshot: raw {} B, lossless {} B ({:.2}x), quant16 {} B ({:.2}x)",
        bytes.len(),
        lossless,
        bytes.len() as f64 / lossless as f64,
        quant,
        bytes.len() as f64 / quant as f64,
    );
    let mut group = c.benchmark_group("ablate_compression");
    group.bench_function("transpose_rle_encode", |b| {
        b.iter(|| black_box(TransposeRle.encode(&bytes)))
    });
    group.bench_function("quant16_encode", |b| {
        b.iter(|| black_box(Quant16.encode(&bytes)))
    });
    group.finish();
}

/// RAID-0 member sweep: streaming time vs static disk power.
fn ablate_raid(c: &mut Criterion) {
    let run = |members: u32| -> (f64, f64) {
        let mut spec = HardwareSpec::table1();
        spec.disk = spec.disk.raid0(members);
        let node = Node::new(spec);
        let (secs, draw) = node.cost_of(Activity::DiskRead {
            bytes: 4 * 1024 * 1024 * 1024,
            pattern: AccessPattern::Sequential,
            buffered: false,
        });
        (secs, draw.disk_w)
    };
    let sweep: Vec<(u32, f64, f64)> = [1, 2, 4, 8]
        .iter()
        .map(|&m| {
            let (t, w) = run(m);
            (m, t, w)
        })
        .collect();
    println!("[ablate_raid] 4 GiB stream (members, secs, disk W): {sweep:.1?}");
    c.bench_function("ablate_raid_sweep", |b| {
        b.iter(|| {
            for m in [1u32, 2, 4, 8] {
                black_box(run(m));
            }
        })
    });
}

/// Cluster compute-node scaling (the multi-node future-work study).
fn ablate_cluster_scaling(c: &mut Criterion) {
    use greenness_cluster::{run_cluster, ClusterConfig, ClusterKind};
    let mut group = c.benchmark_group("ablate_cluster_scaling");
    for nodes in [2usize, 4] {
        group.bench_function(format!("post_processing_{nodes}nodes"), |b| {
            b.iter(|| {
                let mut cfg = ClusterConfig::small(nodes, 2);
                cfg.timesteps = 4;
                black_box(run_cluster(ClusterKind::PostProcessing, &cfg).unwrap())
            })
        });
    }
    group.finish();
}

/// Pipeline variants (sampling / compression / DVFS / image DB).
fn ablate_variants(c: &mut Criterion) {
    use greenness_core::variants::{run_variant, CodecChoice, Variant};
    let mut cfg = PipelineConfig::small(1);
    cfg.timesteps = 4;
    let mut group = c.benchmark_group("ablate_variants");
    let variants = [
        ("sampled4", Variant::SampledPost { stride: 4 }),
        (
            "quant16",
            Variant::CompressedPost {
                codec: CodecChoice::Quantized,
            },
        ),
        ("dvfs08", Variant::DvfsSim { freq_scale: 0.8 }),
        ("imagedb2", Variant::ImageDatabase { views: 2 }),
    ];
    for (name, v) in variants {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut node = Node::new(HardwareSpec::table1());
                black_box(run_variant(v, &mut node, &cfg))
            })
        });
    }
    group.finish();
}

/// End-to-end pipeline experiment at small scale — the unit of work the
/// figure benches repeat.
fn ablate_pipeline_end_to_end(c: &mut Criterion) {
    let cfg = PipelineConfig::small(1);
    let setup = ExperimentSetup::noiseless();
    c.bench_function("pipeline_small_post_processing", |b| {
        b.iter(|| black_box(experiment::run(PipelineKind::PostProcessing, &cfg, &setup)))
    });
    c.bench_function("pipeline_small_insitu", |b| {
        b.iter(|| black_box(experiment::run(PipelineKind::InSitu, &cfg, &setup)))
    });
    c.bench_function("pipeline_small_intransit", |b| {
        b.iter(|| black_box(experiment::run(PipelineKind::InTransit, &cfg, &setup)))
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablate_page_cache, ablate_write_cache, ablate_ncq, ablate_dvfs,
        ablate_sampling, ablate_parallelism, ablate_compression, ablate_raid,
        ablate_cluster_scaling, ablate_variants, ablate_pipeline_end_to_end
}
criterion_main!(ablations);
