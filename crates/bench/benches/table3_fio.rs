//! Criterion benches for Table III (fio) and the §V-D what-if.
//!
//! The 4 GiB model-only jobs exercise the disk timing/power model at the
//! paper's scale; the verified job additionally moves and checks real bytes.

use criterion::{criterion_group, criterion_main, Criterion};
use greenness_core::whatif::WhatIfAnalysis;
use greenness_core::ExperimentSetup;
use greenness_platform::{HardwareSpec, Node};
use greenness_storage::{fio, FioJob, FioKind, MemBlockDevice, NullBlockDevice};
use std::hint::black_box;

const GIB4: u64 = 4 * 1024 * 1024 * 1024;

fn table3_jobs(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_fio");
    for kind in FioKind::ALL {
        group.bench_function(kind.label().replace(' ', "_").to_lowercase(), |b| {
            b.iter(|| {
                let mut node = Node::new(HardwareSpec::table1());
                let mut dev = NullBlockDevice::with_capacity_bytes(GIB4);
                black_box(fio::run(&mut node, &mut dev, &FioJob::table3(kind)).unwrap())
            })
        });
    }
    group.finish();
}

fn table3_verified_real_bytes(c: &mut Criterion) {
    c.bench_function("table3_verified_8mib", |b| {
        b.iter(|| {
            let mut node = Node::new(HardwareSpec::table1());
            let mut dev = MemBlockDevice::with_capacity_bytes(8 * 1024 * 1024);
            let job = FioJob {
                kind: FioKind::RandomWrite,
                total_bytes: 8 * 1024 * 1024,
                block_bytes: 4096,
                queue_depth: 32,
                verify: true,
            };
            black_box(fio::run(&mut node, &mut dev, &job).unwrap())
        })
    });
}

fn sec5d_whatif(c: &mut Criterion) {
    let setup = ExperimentSetup::noiseless();
    c.bench_function("sec5d_whatif", |b| {
        b.iter(|| black_box(WhatIfAnalysis::run(&setup, GIB4).unwrap()))
    });
}

criterion_group! {
    name = table3;
    config = Criterion::default().sample_size(20);
    targets = table3_jobs, table3_verified_real_bytes, sec5d_whatif
}
criterion_main!(table3);
