//! Micro-benchmarks of the real code paths under the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use greenness_core::PipelineConfig;
use greenness_heatsim::{Grid, HeatSolver};
use greenness_platform::{Phase, PowerDraw, Segment, SimDuration, SimTime, Timeline};
use greenness_power::{RaplDomain, RaplMsr, RaplReader};
use greenness_storage::{BlockDevice, MemBlockDevice, PageCache};
use greenness_viz::{contour_lines, encode_ppm, render_field, RenderOptions};
use std::hint::black_box;

fn solver_step(c: &mut Criterion) {
    let g = Grid::from_fn(512, 512, |x, y| (x * 9.0).sin() * (y * 5.0).cos());
    c.bench_function("solver_step_512x512", |b| {
        let mut s = HeatSolver::new(g.clone(), PipelineConfig::default_solver(512, 512))
            .expect("stable config");
        b.iter(|| {
            s.step();
            black_box(s.steps_taken())
        })
    });
}

fn render_frame(c: &mut Criterion) {
    let g = Grid::from_fn(512, 512, |x, y| x * y);
    let opts = RenderOptions::default();
    c.bench_function("render_frame_512x512", |b| {
        b.iter(|| black_box(render_field(&g, &opts)))
    });
}

fn marching_squares(c: &mut Criterion) {
    let g = Grid::from_fn(256, 256, |x, y| {
        ((x - 0.5).powi(2) + (y - 0.5).powi(2)).sqrt()
    });
    c.bench_function("marching_squares_256x256", |b| {
        b.iter(|| black_box(contour_lines(&g, 0.25)))
    });
}

fn ppm_encode(c: &mut Criterion) {
    let g = Grid::from_fn(256, 256, |x, y| x + y);
    let fb = render_field(
        &g,
        &RenderOptions {
            width: 256,
            height: 256,
            ..Default::default()
        },
    );
    c.bench_function("ppm_encode_256x256", |b| {
        b.iter(|| black_box(encode_ppm(&fb)))
    });
}

fn grid_serialize(c: &mut Criterion) {
    let g = Grid::from_fn(512, 512, |x, y| x - y);
    c.bench_function("grid_to_bytes_512x512", |b| {
        b.iter(|| black_box(g.to_bytes()))
    });
}

fn pagecache_throughput(c: &mut Criterion) {
    c.bench_function("pagecache_write_sync_1mib", |b| {
        b.iter(|| {
            let mut dev = MemBlockDevice::with_capacity_bytes(4 * 1024 * 1024);
            let mut cache = PageCache::new();
            let block = vec![0x42u8; 4096];
            for i in 0..256u64 {
                cache.write_block(&dev, i, 0, &block).unwrap();
            }
            black_box(cache.sync(&mut dev))
        })
    });
    c.bench_function("pagecache_read_hit_1mib", |b| {
        let dev = MemBlockDevice::with_capacity_bytes(4 * 1024 * 1024);
        let mut cache = PageCache::new();
        for i in 0..256u64 {
            cache.read_block(&dev, i);
        }
        b.iter(|| {
            let mut sum = 0u64;
            for i in 0..256u64 {
                let (page, _) = cache.read_block(&dev, i);
                sum += page[0] as u64;
            }
            black_box(sum)
        })
    });
}

fn block_device_round_trip(c: &mut Criterion) {
    c.bench_function("mem_device_rw_4kib", |b| {
        let mut dev = MemBlockDevice::new(1024);
        let data = vec![9u8; 4096];
        let mut buf = vec![0u8; 4096];
        let mut i = 0u64;
        b.iter(|| {
            dev.write_block(i % 1024, &data);
            dev.read_block(i % 1024, &mut buf);
            i += 1;
            black_box(buf[0])
        })
    });
}

fn long_timeline() -> Timeline {
    let mut tl = Timeline::new();
    let mut t = SimTime::ZERO;
    for k in 0..10_000u64 {
        let d = SimDuration::from_millis(50 + (k % 7) * 13);
        tl.push(Segment {
            start: t,
            duration: d,
            draw: PowerDraw {
                package_w: 40.0 + (k % 11) as f64,
                dram_w: 10.0,
                disk_w: 5.0,
                net_w: 0.0,
                board_w: 49.9,
            },
            phase: if k % 3 == 0 {
                Phase::Simulation
            } else {
                Phase::Write
            },
        });
        t += d;
    }
    tl
}

fn timeline_integration(c: &mut Criterion) {
    let tl = long_timeline();
    c.bench_function("timeline_energy_10k_segments", |b| {
        b.iter(|| black_box(tl.total_energy_j()))
    });
    c.bench_function("timeline_window_energy_10k_segments", |b| {
        b.iter(|| {
            black_box(
                tl.energy_between(SimTime::from_secs_f64(100.0), SimTime::from_secs_f64(300.0)),
            )
        })
    });
}

fn rapl_polling(c: &mut Criterion) {
    let tl = long_timeline();
    let msr = RaplMsr::new(&tl);
    let reader = RaplReader::default();
    c.bench_function("rapl_poll_long_run", |b| {
        b.iter(|| black_box(reader.poll(&msr, RaplDomain::Package)))
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = solver_step, render_frame, marching_squares, ppm_encode,
        grid_serialize, pagecache_throughput, block_device_round_trip,
        timeline_integration, rapl_polling
}
criterion_main!(micro);
