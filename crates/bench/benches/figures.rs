//! One criterion group per evaluation figure/analysis of the paper.
//!
//! Each group benchmarks the host-side cost of regenerating its artifact at
//! reduced scale (full-scale regeneration is the `repro` binary's job); the
//! measured work is the *same code path* the artifact uses — pipelines,
//! probes, instrumentation, estimators.

use criterion::{criterion_group, criterion_main, Criterion};
use greenness_core::breakdown::CaseBreakdown;
use greenness_core::{
    experiment, pipeline::PipelineKind, probes, CaseComparison, ExperimentSetup, PipelineConfig,
};
use greenness_platform::Phase;
use greenness_power::PowerProfile;
use std::hint::black_box;

fn cfg() -> PipelineConfig {
    let mut c = PipelineConfig::small(1);
    c.timesteps = 6;
    c
}

fn setup() -> ExperimentSetup {
    ExperimentSetup::noiseless()
}

fn fig04_time_breakdown(c: &mut Criterion) {
    let cfg = cfg();
    let setup = setup();
    c.bench_function("fig04_time_breakdown", |b| {
        b.iter(|| {
            let r = experiment::run(PipelineKind::PostProcessing, &cfg, &setup).expect("run ok");
            black_box(r.phase_rows())
        })
    });
}

fn fig05_power_profiles(c: &mut Criterion) {
    let cfg = cfg();
    let setup = setup();
    let report = experiment::run(PipelineKind::PostProcessing, &cfg, &setup).expect("run ok");
    c.bench_function("fig05_power_profiles", |b| {
        b.iter(|| black_box(PowerProfile::measure(&report.timeline, &setup.meter)))
    });
}

fn fig06_nn_probes(c: &mut Criterion) {
    let setup = setup();
    c.bench_function("fig06_nn_probes", |b| {
        b.iter(|| {
            let r = probes::nnread(&setup, 8 * 1024, 1.0).expect("probe ok");
            let w = probes::nnwrite(&setup, 8 * 1024, 1.0).expect("probe ok");
            black_box((r.avg_total_w, w.avg_total_w))
        })
    });
}

fn comparison_metric(c: &mut Criterion, name: &'static str, f: fn(&CaseComparison) -> (f64, f64)) {
    let cfg = cfg();
    let setup = setup();
    c.bench_function(name, |b| {
        b.iter(|| {
            let cmp = CaseComparison::run_config(1, &cfg, &setup).expect("case runs");
            black_box(f(&cmp))
        })
    });
}

fn fig07_execution_time(c: &mut Criterion) {
    comparison_metric(c, "fig07_execution_time", CaseComparison::execution_times_s);
}

fn fig08_average_power(c: &mut Criterion) {
    comparison_metric(c, "fig08_average_power", CaseComparison::average_powers_w);
}

fn fig09_peak_power(c: &mut Criterion) {
    comparison_metric(c, "fig09_peak_power", CaseComparison::peak_powers_w);
}

fn fig10_energy(c: &mut Criterion) {
    comparison_metric(c, "fig10_energy", |cmp| cmp.energies_j());
}

fn fig11_efficiency(c: &mut Criterion) {
    comparison_metric(
        c,
        "fig11_efficiency",
        CaseComparison::normalized_efficiencies,
    );
}

fn sec5c_savings_breakdown(c: &mut Criterion) {
    let cfg = cfg();
    let setup = setup();
    let cmp = CaseComparison::run_config(1, &cfg, &setup).expect("case runs");
    c.bench_function("sec5c_savings_breakdown", |b| {
        b.iter(|| {
            black_box(CaseBreakdown::analyze(&cmp, &setup, 8 * 1024, 1.0).expect("probes ok"))
        })
    });
}

fn table2_probe_stats(c: &mut Criterion) {
    let setup = setup();
    let probe = probes::nnwrite(&setup, 8 * 1024, 2.0).expect("probe ok");
    c.bench_function("table2_probe_stats", |b| {
        b.iter(|| {
            black_box((
                probe.timeline.average_power_w(),
                probe.timeline.phase_average_power_w(Phase::IoBench),
            ))
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig04_time_breakdown, fig05_power_profiles, fig06_nn_probes,
        fig07_execution_time, fig08_average_power, fig09_peak_power,
        fig10_energy, fig11_efficiency, sec5c_savings_breakdown,
        table2_probe_stats
}
criterion_main!(figures);
