//! Deterministic, seed-driven fault injection for the simulated stack.
//!
//! A [`FaultPlan`] names a seed and per-site fault rates; a [`FaultInjector`]
//! is instantiated at each injection site (one per filesystem, fabric, or
//! service) and asked before every operation whether a fault fires. The
//! decision is a **stateless hash** of `(plan seed, site label, site salt,
//! operation index)` — no shared RNG state — so two runs with the same plan
//! make identical decisions regardless of thread interleaving, and a sweep
//! executed with `--jobs 8` is bit-identical to `--jobs 1`.
//!
//! With no plan configured the injector is simply absent (`Option::None` at
//! every site) and the fault layer costs one branch, leaving every golden
//! output byte-identical to the fault-free build.
//!
//! The hash chain reuses the repo's sweep-seed convention
//! (FNV-1a 64 folded through SplitMix64) so fault schedules compose with the
//! per-job derived RNG seeds from `greenness_core::sweep`.

/// Where in the stack an injector sits. Labels are part of the deterministic
/// schedule: renaming one reshuffles that site's faults (and only that
/// site's).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// `storage::fs` — fsync faults: transient journal-commit errors and
    /// torn writebacks that persist only a prefix of the dirty pages.
    StorageFsync,
    /// `cluster::fabric` — a transfer is dropped (payload lost, must be
    /// resent) or delayed (delivered, but at degraded bandwidth).
    FabricTransfer,
    /// `serve` — the connection is dropped before the response is written.
    ServeConn,
    /// `serve` — the handler is artificially slowed (an overloaded staging
    /// node), observable through retry/latency accounting only.
    ServeHandler,
    /// `storage::tier` — a transient device-level I/O error inside one tier
    /// of a `TieredStore`; the controller retries transparently, costing a
    /// second pass of the transfer.
    TierIo,
    /// `storage::tier` — a block migration between tiers fails: torn (the
    /// destination copy is abandoned half-written) or transient (the copy
    /// never starts). Either way the source copy survives.
    TierMigration,
    /// `fleet` — shard churn: a simulated node loss (the shard's cache is
    /// gone, the ring reroutes around it) or rejoin (a fresh instance takes
    /// its ring positions back and is rebalanced). The entropy word picks
    /// the mode and the victim.
    FleetChurn,
    /// `cluster::staging` — a staging-node frame render is torn (the node
    /// faulted mid-frame); the render must repeat from the assembled slabs,
    /// which stay live in staging memory, so output is never corrupted.
    StagingRender,
}

impl Site {
    /// Stable label hashed into the fault schedule.
    pub fn label(self) -> &'static str {
        match self {
            Site::StorageFsync => "storage.fsync",
            Site::FabricTransfer => "fabric.transfer",
            Site::ServeConn => "serve.conn",
            Site::ServeHandler => "serve.handler",
            Site::TierIo => "tier.io",
            Site::TierMigration => "tier.migration",
            Site::FleetChurn => "fleet.churn",
            Site::StagingRender => "staging.render",
        }
    }

    /// The plan's fault probability for this site.
    pub fn rate(self, plan: &FaultPlan) -> f64 {
        match self {
            Site::StorageFsync => plan.storage_fsync_rate,
            Site::FabricTransfer => plan.fabric_fault_rate,
            Site::ServeConn => plan.serve_drop_rate,
            Site::ServeHandler => plan.serve_slow_rate,
            Site::TierIo => plan.tier_io_rate,
            Site::TierMigration => plan.tier_migration_rate,
            Site::FleetChurn => plan.fleet_churn_rate,
            Site::StagingRender => plan.staging_render_rate,
        }
    }
}

/// A seeded fault schedule: which sites fault, how often, and how patiently
/// the layers above retry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Master seed; every site derives its schedule from it.
    pub seed: u64,
    /// Probability an `fsync` faults (transient error or torn writeback).
    pub storage_fsync_rate: f64,
    /// Probability a fabric transfer is dropped or delayed.
    pub fabric_fault_rate: f64,
    /// Probability a serve connection is dropped before responding.
    pub serve_drop_rate: f64,
    /// Probability a serve handler is slowed.
    pub serve_slow_rate: f64,
    /// Probability a tiered-store transfer hits a transient device error.
    pub tier_io_rate: f64,
    /// Probability a tier migration is torn or aborted.
    pub tier_migration_rate: f64,
    /// Probability a fleet request triggers a shard churn event (node loss
    /// or rejoin) before routing.
    pub fleet_churn_rate: f64,
    /// Probability a staging-node frame render is torn and must repeat.
    pub staging_render_rate: f64,
    /// Bounded retry budget for every recovery loop.
    pub max_retries: u32,
    /// First-retry backoff in (virtual) seconds; doubles per attempt.
    pub backoff_base_s: f64,
}

impl FaultPlan {
    /// The standard chaos plan used by the CLI `--fault-seed` flags: every
    /// site faults at a rate low enough that bounded retry always recovers,
    /// high enough that a short run sees several faults.
    pub fn with_seed(seed: u64) -> Self {
        FaultPlan {
            seed,
            storage_fsync_rate: 0.08,
            fabric_fault_rate: 0.06,
            serve_drop_rate: 0.12,
            serve_slow_rate: 0.10,
            tier_io_rate: 0.05,
            tier_migration_rate: 0.10,
            fleet_churn_rate: 0.05,
            staging_render_rate: 0.06,
            max_retries: 8,
            backoff_base_s: 0.002,
        }
    }

    /// A plan that never fires — useful to exercise the plumbing without
    /// perturbing results.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            storage_fsync_rate: 0.0,
            fabric_fault_rate: 0.0,
            serve_drop_rate: 0.0,
            serve_slow_rate: 0.0,
            tier_io_rate: 0.0,
            tier_migration_rate: 0.0,
            fleet_churn_rate: 0.0,
            staging_render_rate: 0.0,
            ..FaultPlan::with_seed(seed)
        }
    }

    /// Exponential backoff for the given zero-based retry attempt, seconds.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        self.backoff_base_s * f64::from(1u32 << attempt.min(16))
    }

    /// Derive a sub-plan whose schedule is independent of this one —
    /// same rates and retry budget, seed re-keyed by `key`. Used to give
    /// every sweep job its own fault schedule (mirroring the per-job RNG
    /// seeds), so schedules do not depend on job execution order.
    pub fn derive(&self, key: &str) -> Self {
        FaultPlan {
            seed: splitmix64(fnv1a64(key.as_bytes()) ^ self.seed),
            ..*self
        }
    }

    /// An injector for `site`, distinguished from same-site siblings by
    /// `salt` (e.g. an I/O server index).
    pub fn injector(&self, site: Site, salt: u64) -> FaultInjector {
        FaultInjector {
            plan: *self,
            site,
            salt,
            ops: 0,
        }
    }
}

/// Per-site fault source: a deterministic counter over the site's schedule.
///
/// Each call to [`FaultInjector::next`] consumes one operation slot and
/// reports whether that operation faults. The decision depends only on
/// `(plan.seed, site, salt, op index)`, never on wall clock or thread
/// timing.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    site: Site,
    salt: u64,
    ops: u64,
}

impl FaultInjector {
    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Operations consumed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Decide the next operation. Returns `Some(entropy)` when a fault
    /// fires — the entropy word is itself deterministic and lets the site
    /// pick a sub-mode (torn vs transient, drop vs delay) from its bits.
    // Not an Iterator: `None` means "this op runs clean", not exhaustion.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<u64> {
        let op = self.ops;
        self.ops += 1;
        let mut x = splitmix64(self.plan.seed ^ fnv1a64(self.site.label().as_bytes()));
        x = splitmix64(x ^ self.salt);
        x = splitmix64(x ^ op);
        // Top 53 bits → uniform in [0,1); compare against the site's rate.
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.site.rate(&self.plan) {
            Some(splitmix64(x))
        } else {
            None
        }
    }
}

/// FNV-1a 64-bit — the same constants as `greenness_core::sweep`'s job-key
/// hash, so fault seeds and RNG seeds share one derivation convention.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates structured inputs.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fire_pattern(plan: &FaultPlan, site: Site, salt: u64, n: u64) -> Vec<Option<u64>> {
        let mut inj = plan.injector(site, salt);
        (0..n).map(|_| inj.next()).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::with_seed(42);
        assert_eq!(
            fire_pattern(&plan, Site::StorageFsync, 0, 512),
            fire_pattern(&plan, Site::StorageFsync, 0, 512)
        );
    }

    #[test]
    fn different_seeds_salts_and_sites_decorrelate() {
        let a = fire_pattern(&FaultPlan::with_seed(1), Site::StorageFsync, 0, 2048);
        let b = fire_pattern(&FaultPlan::with_seed(2), Site::StorageFsync, 0, 2048);
        let c = fire_pattern(&FaultPlan::with_seed(1), Site::StorageFsync, 1, 2048);
        let d = fire_pattern(&FaultPlan::with_seed(1), Site::FabricTransfer, 0, 2048);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Site rates differ, but even the raw schedules must diverge.
        let fires = |v: &[Option<u64>]| -> Vec<bool> { v.iter().map(Option::is_some).collect() };
        assert_ne!(fires(&a), fires(&d));
    }

    #[test]
    fn empirical_rate_tracks_the_plan() {
        let plan = FaultPlan::with_seed(7);
        let n = 20_000u64;
        let fired = fire_pattern(&plan, Site::ServeConn, 0, n)
            .iter()
            .filter(|f| f.is_some())
            .count() as f64;
        let rate = fired / n as f64;
        assert!(
            (rate - plan.serve_drop_rate).abs() < 0.02,
            "empirical {rate} vs plan {}",
            plan.serve_drop_rate
        );
    }

    #[test]
    fn quiet_plan_never_fires() {
        let plan = FaultPlan::quiet(99);
        for site in [
            Site::StorageFsync,
            Site::FabricTransfer,
            Site::ServeConn,
            Site::ServeHandler,
            Site::TierIo,
            Site::TierMigration,
            Site::FleetChurn,
            Site::StagingRender,
        ] {
            assert!(fire_pattern(&plan, site, 3, 256)
                .iter()
                .all(Option::is_none));
        }
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let plan = FaultPlan::with_seed(0);
        assert_eq!(plan.backoff_s(1), 2.0 * plan.backoff_s(0));
        assert_eq!(plan.backoff_s(3), 8.0 * plan.backoff_s(0));
        // Saturates instead of overflowing the shift.
        assert!(plan.backoff_s(60).is_finite());
    }

    #[test]
    fn derive_rekeys_but_keeps_rates() {
        let plan = FaultPlan::with_seed(11);
        let a = plan.derive("case1/InSitu");
        let b = plan.derive("case2/InSitu");
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.max_retries, plan.max_retries);
        assert_eq!(a.storage_fsync_rate, plan.storage_fsync_rate);
        // Derivation is itself deterministic.
        assert_eq!(a, plan.derive("case1/InSitu"));
    }

    #[test]
    fn entropy_word_is_deterministic_and_varied() {
        let plan = FaultPlan {
            storage_fsync_rate: 1.0,
            ..FaultPlan::with_seed(5)
        };
        let words: Vec<u64> = fire_pattern(&plan, Site::StorageFsync, 0, 64)
            .into_iter()
            .map(|f| f.expect("rate 1.0 always fires"))
            .collect();
        let odd = words.iter().filter(|w| *w & 1 == 1).count();
        assert!(
            (16..=48).contains(&odd),
            "entropy bit 0 is biased: {odd}/64"
        );
    }
}
