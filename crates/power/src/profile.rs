//! Combined power profiles — the data behind Figures 5 and 6.
//!
//! A [`PowerProfile`] merges the two instruments the paper deploys: the
//! Wattsup wall meter gives the *system* channel, RAPL gives *package* and
//! *DRAM*, and the *rest of system* (disk, network, motherboard, fans) is
//! estimated by subtraction, exactly as §IV-B describes.

use greenness_platform::Timeline;
use greenness_trace::Tracer;
use serde::{Deserialize, Serialize};

use crate::rapl::{RaplDomain, RaplMsr, RaplReader};
use crate::wattsup::WattsupMeter;

/// One row of a profile: power per channel at the end of a sampling interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileSample {
    /// End of the sampling interval, seconds since the run started.
    pub t_s: f64,
    /// Full-system power (wall meter), watts.
    pub system_w: f64,
    /// Processor package power (RAPL PKG), watts.
    pub package_w: f64,
    /// DRAM power (RAPL DRAM), watts.
    pub dram_w: f64,
}

impl ProfileSample {
    /// The paper's "rest of system" estimate: `system − package − dram`.
    pub fn rest_w(&self) -> f64 {
        self.system_w - self.package_w - self.dram_w
    }
}

/// A sampled power profile of one pipeline run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PowerProfile {
    /// Samples in time order, equally spaced.
    pub samples: Vec<ProfileSample>,
    /// Sampling period, seconds.
    pub period_s: f64,
}

impl PowerProfile {
    /// Measure a completed run with the paper's instrument pair. The meter
    /// supplies noise configuration and cadence; RAPL is polled at the same
    /// cadence.
    pub fn measure(timeline: &Timeline, meter: &WattsupMeter) -> PowerProfile {
        Self::measure_traced(timeline, meter, &Tracer::off())
    }

    /// [`Self::measure`] with instrumentation routed through `tracer`: both
    /// instruments journal their samples and bump their counters (RAPL wrap
    /// events, dropped wall-meter samples, poll counts).
    pub fn measure_traced(
        timeline: &Timeline,
        meter: &WattsupMeter,
        tracer: &Tracer,
    ) -> PowerProfile {
        let wall = meter.sample_traced(timeline, tracer);
        let msr = RaplMsr::new(timeline);
        let reader = RaplReader {
            period_s: meter.period_s,
        };
        let pkg = reader.poll_traced(&msr, RaplDomain::Package, tracer);
        let dram = reader.poll_traced(&msr, RaplDomain::Dram, tracer);
        let n = wall.len().min(pkg.len()).min(dram.len());
        let samples = (0..n)
            .map(|i| ProfileSample {
                t_s: wall[i].0,
                system_w: wall[i].1,
                package_w: pkg[i].1,
                dram_w: dram[i].1,
            })
            .collect();
        PowerProfile {
            samples,
            period_s: meter.period_s,
        }
    }

    /// Noise-free 1 Hz measurement (regression-friendly).
    pub fn measure_noiseless(timeline: &Timeline) -> PowerProfile {
        Self::measure(timeline, &WattsupMeter::noiseless())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the profile holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Average system power over the profile, watts.
    pub fn average_system_w(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.system_w).sum::<f64>() / self.samples.len() as f64
    }

    /// Peak system power over the profile, watts.
    pub fn peak_system_w(&self) -> f64 {
        self.samples.iter().map(|s| s.system_w).fold(0.0, f64::max)
    }

    /// Energy implied by the profile (reading × period summed), joules.
    pub fn energy_j(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.system_w * self.period_s)
            .sum()
    }

    /// Render as CSV with a header — the format the `repro` binary emits for
    /// the Figure 5/6 series.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_s,system_w,package_w,dram_w,rest_w\n");
        for s in &self.samples {
            out.push_str(&format!(
                "{:.1},{:.1},{:.1},{:.1},{:.1}\n",
                s.t_s,
                s.system_w,
                s.package_w,
                s.dram_w,
                s.rest_w()
            ));
        }
        out
    }

    /// Render a coarse ASCII sparkline of the system channel (used by the
    /// `repro` binary to show the Figure 5 phase structure in a terminal).
    pub fn ascii_sparkline(&self, width: usize) -> String {
        if self.samples.is_empty() || width == 0 {
            return String::new();
        }
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let lo = self
            .samples
            .iter()
            .map(|s| s.system_w)
            .fold(f64::INFINITY, f64::min);
        let hi = self.peak_system_w();
        let span = (hi - lo).max(1e-9);
        let stride = (self.samples.len() as f64 / width as f64).max(1.0);
        let mut out = String::with_capacity(width);
        let mut i = 0.0;
        while (i as usize) < self.samples.len() && out.chars().count() < width {
            let s = &self.samples[i as usize];
            let level = (((s.system_w - lo) / span) * 7.0).round() as usize;
            out.push(GLYPHS[level.min(7)]);
            i += stride;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_platform::{Phase, PowerDraw, Segment, SimDuration, SimTime};

    fn two_phase_timeline() -> Timeline {
        let mut tl = Timeline::new();
        tl.push(Segment {
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(10),
            draw: PowerDraw {
                package_w: 71.8,
                dram_w: 16.3,
                disk_w: 5.0,
                net_w: 0.0,
                board_w: 49.9,
            },
            phase: Phase::Simulation,
        });
        tl.push(Segment {
            start: SimTime::from_secs_f64(10.0),
            duration: SimDuration::from_secs(10),
            draw: PowerDraw {
                package_w: 46.0,
                dram_w: 11.0,
                disk_w: 13.0,
                net_w: 0.0,
                board_w: 49.9,
            },
            phase: Phase::Write,
        });
        tl
    }

    #[test]
    fn measure_combines_both_instruments() {
        let tl = two_phase_timeline();
        let p = PowerProfile::measure_noiseless(&tl);
        assert_eq!(p.len(), 20);
        let first = &p.samples[0];
        assert!((first.system_w - 143.0).abs() < 1.0);
        assert!((first.package_w - 71.8).abs() < 0.1);
        assert!((first.dram_w - 16.3).abs() < 0.1);
        // Rest-of-system = system − package − dram ≈ disk + board.
        assert!((first.rest_w() - 54.9).abs() < 1.5);
    }

    #[test]
    fn profile_sees_the_phase_transition() {
        let tl = two_phase_timeline();
        let p = PowerProfile::measure_noiseless(&tl);
        let early = p.samples[4].system_w;
        let late = p.samples[15].system_w;
        assert!(
            early > late + 15.0,
            "sim phase {early} should exceed write phase {late}"
        );
    }

    #[test]
    fn summary_statistics() {
        let tl = two_phase_timeline();
        let p = PowerProfile::measure_noiseless(&tl);
        assert!((p.peak_system_w() - 143.0).abs() < 1.0);
        assert!((p.average_system_w() - (143.0 + 119.9) / 2.0).abs() < 1.0);
        assert!((p.energy_j() - tl.total_energy_j()).abs() < 30.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let tl = two_phase_timeline();
        let csv = PowerProfile::measure_noiseless(&tl).to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("t_s,system_w,package_w,dram_w,rest_w"));
        assert_eq!(lines.count(), 20);
    }

    #[test]
    fn sparkline_is_width_bounded_and_shows_contrast() {
        let tl = two_phase_timeline();
        let p = PowerProfile::measure_noiseless(&tl);
        let s = p.ascii_sparkline(10);
        assert_eq!(s.chars().count(), 10);
        // High phase then low phase ⇒ first glyph taller than last.
        let first = s.chars().next().unwrap();
        let last = s.chars().last().unwrap();
        assert!(first > last, "{s}");
        assert!(p.ascii_sparkline(0).is_empty());
    }

    #[test]
    fn empty_timeline_gives_empty_profile() {
        let tl = Timeline::new();
        let p = PowerProfile::measure_noiseless(&tl);
        assert!(p.is_empty());
        assert_eq!(p.average_system_w(), 0.0);
        assert_eq!(p.energy_j(), 0.0);
    }
}
