//! # greenness-power
//!
//! Simulated power instrumentation, mirroring the measurement setup of the
//! paper's §IV-B (Figure 3):
//!
//! * a **Wattsup Pro** wall meter ([`wattsup`]) sampling full-system power at
//!   1 Hz with integer-watt resolution and meter-accuracy noise, monitored
//!   out-of-band so it adds no load to the node;
//! * the **Intel RAPL** interface ([`rapl`]), emulated at the MSR level —
//!   energy-unit register, 32-bit wrapping energy-status counters for the
//!   PKG / PP0 / DRAM domains — polled *on* the node at a configurable rate,
//!   adding the +0.2 W overhead the paper measured for 1 Hz polling;
//! * **power profiles** ([`profile`]) combining the two instruments, with the
//!   "rest of system" channel estimated as `system − package − dram`, exactly
//!   the paper's subtraction;
//! * **green metrics** ([`metrics`]): execution time, average power, peak
//!   power, energy, and (normalized) energy efficiency — the quantities of
//!   Figures 7–11;
//! * the **static/dynamic energy-savings decomposition** ([`breakdown`]) of
//!   §V-C.

pub mod breakdown;
pub mod fit;
pub mod metrics;
pub mod profile;
pub mod rapl;
pub mod wattsup;

pub use breakdown::{probe_dynamic_power_w, SavingsBreakdown};
pub use fit::{estimate_static_floor_w, DiskAccessFeatures, DiskEnergyModel};
pub use metrics::GreenMetrics;
pub use profile::{PowerProfile, ProfileSample};
pub use rapl::{RaplDomain, RaplMsr, RaplReader};
pub use wattsup::WattsupMeter;
