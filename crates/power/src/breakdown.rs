//! The §V-C energy-savings decomposition.
//!
//! The paper's key analytical contribution: of the energy in-situ saves, how
//! much comes from *moving less data* (the dynamic component) and how much
//! from *running for less time* (the static component)? The method:
//!
//! 1. run isolated `nnread`/`nnwrite` probe stages and measure their average
//!    *dynamic* power (total minus the system's static floor) — Table II
//!    reports ≈10.3 / 10.0 W;
//! 2. dynamic savings = probe dynamic power × the execution-time difference
//!    between the pipelines;
//! 3. static savings = total savings − dynamic savings.
//!
//! For case study 1 the paper finds 12.8 kJ static vs 1.2 kJ dynamic — i.e.
//! ≈91% of the benefit is simply not idling, which motivates its §V-D
//! argument that data reorganization could green the post-processing
//! pipeline without giving up exploratory analysis.

use greenness_platform::Timeline;
use serde::{Deserialize, Serialize};

/// Average dynamic power of an I/O probe run: its mean system power above
/// the machine's static floor, watts.
pub fn probe_dynamic_power_w(probe: &Timeline, static_floor_w: f64) -> f64 {
    (probe.average_power_w() - static_floor_w).max(0.0)
}

/// The static/dynamic split of the energy one pipeline saves over another.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SavingsBreakdown {
    /// Total energy saved, joules.
    pub total_j: f64,
    /// Savings attributable to reduced data movement (dynamic), joules.
    pub dynamic_j: f64,
    /// Savings attributable to reduced idle/elapsed time (static), joules.
    pub static_j: f64,
}

impl SavingsBreakdown {
    /// Apply the paper's §V-C estimator.
    ///
    /// * `baseline_*` — the post-processing run;
    /// * `improved_*` — the in-situ run;
    /// * `probe_dynamic_w` — average dynamic power of the I/O stages being
    ///   eliminated (from [`probe_dynamic_power_w`], Table II ≈10 W).
    pub fn estimate(
        baseline_energy_j: f64,
        baseline_time_s: f64,
        improved_energy_j: f64,
        improved_time_s: f64,
        probe_dynamic_w: f64,
    ) -> SavingsBreakdown {
        let total_j = baseline_energy_j - improved_energy_j;
        let dt = (baseline_time_s - improved_time_s).max(0.0);
        // Dynamic savings cannot exceed the total (the estimator is a bound,
        // not an oracle).
        let dynamic_j = (probe_dynamic_w * dt).min(total_j.max(0.0));
        SavingsBreakdown {
            total_j,
            dynamic_j,
            static_j: total_j - dynamic_j,
        }
    }

    /// Static share of the savings, percent (the paper's headline 91%).
    pub fn static_pct(&self) -> f64 {
        if self.total_j <= 0.0 {
            0.0
        } else {
            self.static_j / self.total_j * 100.0
        }
    }

    /// Dynamic share of the savings, percent (the paper's 9%).
    pub fn dynamic_pct(&self) -> f64 {
        if self.total_j <= 0.0 {
            0.0
        } else {
            self.dynamic_j / self.total_j * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_platform::{Phase, PowerDraw, Segment, SimDuration, SimTime};

    #[test]
    fn probe_dynamic_power_subtracts_static_floor() {
        let mut tl = Timeline::new();
        tl.push(Segment {
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(50),
            draw: PowerDraw {
                board_w: 115.1,
                ..PowerDraw::ZERO
            },
            phase: Phase::IoBench,
        });
        let dyn_w = probe_dynamic_power_w(&tl, 104.8);
        assert!((dyn_w - 10.3).abs() < 1e-9);
        // Floor above the probe ⇒ clamped to zero, not negative.
        assert_eq!(probe_dynamic_power_w(&tl, 120.0), 0.0);
    }

    #[test]
    fn paper_case1_arithmetic() {
        // E_post ≈ 29.7 kJ over 238 s; E_insitu ≈ 17.0 kJ over 127 s;
        // probe ≈ 10.15 W ⇒ dynamic ≈ 1.13 kJ, static ≈ 11.6 kJ (≈91%).
        let b = SavingsBreakdown::estimate(29_700.0, 238.0, 17_000.0, 127.0, 10.15);
        assert!((b.total_j - 12_700.0).abs() < 1.0);
        assert!((b.dynamic_j - 10.15 * 111.0).abs() < 1.0);
        assert!(
            (b.static_pct() - 91.1).abs() < 1.0,
            "got {}",
            b.static_pct()
        );
        assert!((b.static_pct() + b.dynamic_pct() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_is_capped_at_total() {
        let b = SavingsBreakdown::estimate(1000.0, 100.0, 990.0, 10.0, 50.0);
        assert!((b.dynamic_j - 10.0).abs() < 1e-9);
        assert_eq!(b.static_j, 0.0);
    }

    #[test]
    fn no_improvement_means_no_shares() {
        let b = SavingsBreakdown::estimate(1000.0, 100.0, 1000.0, 100.0, 10.0);
        assert_eq!(b.total_j, 0.0);
        assert_eq!(b.static_pct(), 0.0);
        assert_eq!(b.dynamic_pct(), 0.0);
    }
}
