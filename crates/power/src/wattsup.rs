//! Wattsup Pro wall-meter emulation.
//!
//! The paper's full-system measurements come from a Wattsup Pro between the
//! node and the outlet, read over USB by a *separate* monitoring machine so
//! the instrument adds no load to the system under test (§IV-B, Figure 3).
//! The meter reports one integer-watt reading per second; its rated accuracy
//! is ±1.5%. We reproduce the 1 Hz cadence, the integer quantization, and a
//! seeded Gaussian accuracy error so profiles look and integrate like real
//! meter logs while staying deterministic.

use greenness_platform::{SimTime, Timeline};
use greenness_trace::{Tracer, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A simulated Wattsup Pro meter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WattsupMeter {
    /// Sampling period, seconds (the hardware is fixed at 1 Hz).
    pub period_s: f64,
    /// Relative standard deviation of the accuracy error (rated ±1.5% ≈
    /// a 0.5% σ). Zero disables noise entirely.
    pub noise_rel_sigma: f64,
    /// RNG seed for the accuracy error; same seed ⇒ identical log.
    pub seed: u64,
}

impl Default for WattsupMeter {
    fn default() -> Self {
        WattsupMeter {
            period_s: 1.0,
            noise_rel_sigma: 0.005,
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

impl WattsupMeter {
    /// A noise-free meter (for exact regression tests).
    pub fn noiseless() -> Self {
        WattsupMeter {
            noise_rel_sigma: 0.0,
            ..Self::default()
        }
    }

    /// Sample the completed run: one `(interval_end_s, watts)` reading per
    /// period, each reading the integer-rounded average power over its
    /// interval plus the accuracy error.
    ///
    /// Interval boundaries derive from an integer sample index (no floating
    /// accumulator drift on long runs). Like the real instrument, an
    /// incomplete trailing interval is never reported — but see
    /// [`Self::sample_traced`], which counts the drop.
    pub fn sample(&self, timeline: &Timeline) -> Vec<(f64, f64)> {
        self.sample_traced(timeline, &Tracer::off())
    }

    /// [`Self::sample`] with instrumentation: `wattsup.samples` counts the
    /// readings, `wattsup.dropped_samples` counts the discarded partial
    /// final interval (0 or 1 per run), and each reading is journaled as a
    /// `wattsup.sample` event carrying its interval time in `t_s`.
    pub fn sample_traced(&self, timeline: &Timeline, tracer: &Tracer) -> Vec<(f64, f64)> {
        assert!(self.period_s > 0.0, "sampling period must be positive");
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let end = timeline.end();
        let end_s = end.as_secs_f64();
        let t_ns = end.as_nanos();
        let n = ((end_s + 1e-9) / self.period_s).floor() as u64;
        let mut out = Vec::with_capacity(n as usize);
        for k in 1..=n {
            let t = k as f64 * self.period_s;
            let e = timeline
                .energy_between(
                    SimTime::from_secs_f64(t - self.period_s),
                    SimTime::from_secs_f64(t),
                )
                .system_j();
            let mut w = e / self.period_s;
            if self.noise_rel_sigma > 0.0 {
                // Box–Muller from two uniforms keeps the dependency surface
                // small (rand's StandardNormal lives in rand_distr).
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                w *= 1.0 + self.noise_rel_sigma * z;
            }
            let w = w.round().max(0.0);
            if tracer.is_on() {
                tracer.instant(
                    t_ns,
                    "wattsup.sample",
                    vec![("t_s", Value::from(t)), ("watts", Value::from(w))],
                );
            }
            out.push((t, w));
        }
        tracer.count("wattsup.samples", n);
        if end_s - n as f64 * self.period_s > 1e-9 {
            // The real meter never reports an incomplete interval; record
            // that the tail was discarded instead of silently losing it.
            tracer.count("wattsup.dropped_samples", 1);
        }
        out
    }

    /// Integrate a meter log back into joules (reading × period), as the
    /// paper does when deriving energy from the Wattsup trace.
    pub fn integrate_j(log: &[(f64, f64)], period_s: f64) -> f64 {
        log.iter().map(|(_, w)| w * period_s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_platform::{Phase, PowerDraw, Segment, SimDuration};

    fn constant_timeline(system_w: f64, secs: u64) -> Timeline {
        let mut tl = Timeline::new();
        tl.push(Segment {
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(secs),
            draw: PowerDraw {
                board_w: system_w,
                ..PowerDraw::ZERO
            },
            phase: Phase::Other,
        });
        tl
    }

    #[test]
    fn noiseless_meter_reads_exact_integer_watts() {
        let tl = constant_timeline(143.0, 30);
        let log = WattsupMeter::noiseless().sample(&tl);
        assert_eq!(log.len(), 30);
        assert!(log.iter().all(|(_, w)| *w == 143.0));
    }

    #[test]
    fn readings_are_interval_averages() {
        // 0.5 s at 100 W then 0.5 s at 200 W inside one 1 s interval → 150 W.
        let mut tl = Timeline::new();
        tl.push(Segment {
            start: SimTime::ZERO,
            duration: SimDuration::from_millis(500),
            draw: PowerDraw {
                board_w: 100.0,
                ..PowerDraw::ZERO
            },
            phase: Phase::Other,
        });
        tl.push(Segment {
            start: SimTime::from_secs_f64(0.5),
            duration: SimDuration::from_millis(500),
            draw: PowerDraw {
                board_w: 200.0,
                ..PowerDraw::ZERO
            },
            phase: Phase::Other,
        });
        let log = WattsupMeter::noiseless().sample(&tl);
        assert_eq!(log, vec![(1.0, 150.0)]);
    }

    #[test]
    fn noise_is_deterministic_per_seed_and_small() {
        let tl = constant_timeline(120.0, 100);
        let meter = WattsupMeter::default();
        let a = meter.sample(&tl);
        let b = meter.sample(&tl);
        assert_eq!(a, b, "same seed must give identical logs");
        let other = WattsupMeter { seed: 42, ..meter }.sample(&tl);
        assert_ne!(a, other, "different seeds should differ");
        // All readings within ±5σ of truth.
        for (_, w) in &a {
            assert!(
                (w - 120.0).abs() <= 120.0 * 0.005 * 5.0 + 0.5,
                "reading {w}"
            );
        }
    }

    #[test]
    fn integration_recovers_energy_within_quantization() {
        let tl = constant_timeline(137.0, 60);
        let log = WattsupMeter::noiseless().sample(&tl);
        let e = WattsupMeter::integrate_j(&log, 1.0);
        let truth = tl.total_energy_j();
        assert!((e - truth).abs() <= 0.5 * 60.0, "{e} vs {truth}");
    }

    #[test]
    fn partial_final_interval_is_dropped_like_real_meters() {
        let tl = constant_timeline(100.0, 10);
        // 10 s run, 3 s period → readings at 3, 6, 9; the trailing second is
        // not reported (the meter never completed that interval).
        let meter = WattsupMeter {
            period_s: 3.0,
            ..WattsupMeter::noiseless()
        };
        let log = meter.sample(&tl);
        assert_eq!(log.len(), 3);
        // The traced variant records the drop instead of hiding it.
        let (tracer, _handle) = Tracer::memory();
        meter.sample_traced(&tl, &tracer);
        assert_eq!(tracer.counter("wattsup.samples"), 3);
        assert_eq!(tracer.counter("wattsup.dropped_samples"), 1);
    }

    #[test]
    fn long_runs_do_not_drift_off_interval_boundaries() {
        // 20,000 one-second intervals: a float accumulator would be off the
        // exact boundary by ULP accumulation; the integer index is not.
        let tl = constant_timeline(100.0, 20_000);
        let log = WattsupMeter::noiseless().sample(&tl);
        assert_eq!(log.len(), 20_000);
        for (k, (t, w)) in log.iter().enumerate() {
            assert!((t - (k + 1) as f64).abs() < 1e-9, "sample {k} at {t}");
            assert_eq!(*w, 100.0);
        }
    }
}
