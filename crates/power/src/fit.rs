//! Identification of power models from observations — the modeling half of
//! the paper's §VI-A future work.
//!
//! Two tools:
//!
//! * [`estimate_static_floor_w`] recovers a machine's static power from a
//!   measured profile (low quantile of the system channel) — what an
//!   operator without the Table II probes would do;
//! * [`DiskEnergyModel`] fits the linear model the paper sketches: disk
//!   dynamic energy as a function of *(operation count, bytes moved,
//!   positioning time)*, by ordinary least squares over observed transfers.
//!   A runtime can then predict the energy of a planned access pattern
//!   without executing it, which is what drives technique selection.

use serde::{Deserialize, Serialize};

use crate::profile::PowerProfile;

/// Estimate the static (idle) floor of a profile as its `q`-quantile system
/// power. `q = 0.05` is robust for workloads with any idle/positioning gaps.
pub fn estimate_static_floor_w(profile: &PowerProfile, q: f64) -> f64 {
    if profile.samples.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let mut w: Vec<f64> = profile.samples.iter().map(|s| s.system_w).collect();
    w.sort_by(|a, b| a.total_cmp(b));
    let idx = ((w.len() - 1) as f64 * q).round() as usize;
    w[idx]
}

/// Feature vector of one disk transfer: what the paper says the runtime
/// model should condition on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskAccessFeatures {
    /// Number of device operations issued.
    pub ops: f64,
    /// Bytes moved.
    pub bytes: f64,
    /// Total positioning (seek + rotation) time, seconds.
    pub position_s: f64,
}

/// A fitted linear disk-energy model:
/// `E_dyn ≈ a·ops + b·bytes + c·position_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskEnergyModel {
    /// Joules per operation.
    pub per_op_j: f64,
    /// Joules per byte.
    pub per_byte_j: f64,
    /// Watts during positioning (joules per positioning second).
    pub per_position_w: f64,
}

impl DiskEnergyModel {
    /// Ordinary-least-squares fit of the model over `(features, energy_j)`
    /// observations. Returns `None` when the design matrix is singular
    /// (fewer than three independent observations).
    pub fn fit(samples: &[(DiskAccessFeatures, f64)]) -> Option<DiskEnergyModel> {
        if samples.len() < 3 {
            return None;
        }
        // Normal equations: (XᵀX) β = Xᵀy for the 3-feature design matrix.
        let mut xtx = [[0.0f64; 3]; 3];
        let mut xty = [0.0f64; 3];
        for (f, y) in samples {
            let x = [f.ops, f.bytes, f.position_s];
            for i in 0..3 {
                for j in 0..3 {
                    xtx[i][j] += x[i] * x[j];
                }
                xty[i] += x[i] * y;
            }
        }
        let beta = solve3(xtx, xty)?;
        Some(DiskEnergyModel {
            per_op_j: beta[0],
            per_byte_j: beta[1],
            per_position_w: beta[2],
        })
    }

    /// Predicted dynamic disk energy of a planned access, joules.
    pub fn predict_j(&self, f: DiskAccessFeatures) -> f64 {
        self.per_op_j * f.ops + self.per_byte_j * f.bytes + self.per_position_w * f.position_s
    }

    /// Coefficient of determination over a sample set (1.0 = perfect fit).
    pub fn r_squared(&self, samples: &[(DiskAccessFeatures, f64)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let mean = samples.iter().map(|(_, y)| y).sum::<f64>() / samples.len() as f64;
        let ss_tot: f64 = samples.iter().map(|(_, y)| (y - mean) * (y - mean)).sum();
        let ss_res: f64 = samples
            .iter()
            .map(|(f, y)| {
                let e = y - self.predict_j(*f);
                e * e
            })
            .sum();
        if ss_tot <= 0.0 {
            return if ss_res <= 1e-12 { 1.0 } else { 0.0 };
        }
        1.0 - ss_res / ss_tot
    }
}

/// Solve a 3×3 linear system by Gaussian elimination with partial pivoting.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        // Pivot.
        let pivot = (col..3).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..3 {
            let k = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (c, cell) in a[row].iter_mut().enumerate().skip(col) {
                *cell -= k * pivot_row[c];
            }
            b[row] -= k * b[col];
        }
    }
    // Back-substitute.
    let mut x = [0.0f64; 3];
    for row in (0..3).rev() {
        let mut acc = b[row];
        for c in row + 1..3 {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileSample;

    fn features(ops: f64, bytes: f64, position_s: f64) -> DiskAccessFeatures {
        DiskAccessFeatures {
            ops,
            bytes,
            position_s,
        }
    }

    /// Ground truth generator with known coefficients.
    fn truth(f: DiskAccessFeatures) -> f64 {
        0.002 * f.ops + 1.1e-7 * f.bytes + 2.4 * f.position_s
    }

    fn training_set() -> Vec<(DiskAccessFeatures, f64)> {
        let mut out = Vec::new();
        for ops in [1.0, 16.0, 256.0, 4096.0] {
            for bytes in [4096.0, 131072.0, 4.0e6] {
                for pos in [0.001, 0.1, 2.0] {
                    let f = features(ops, bytes, pos);
                    out.push((f, truth(f)));
                }
            }
        }
        out
    }

    #[test]
    fn recovers_known_coefficients() {
        let model = DiskEnergyModel::fit(&training_set()).expect("fit");
        assert!((model.per_op_j - 0.002).abs() < 1e-9, "{model:?}");
        assert!((model.per_byte_j - 1.1e-7).abs() < 1e-12);
        assert!((model.per_position_w - 2.4).abs() < 1e-9);
        assert!(model.r_squared(&training_set()) > 0.999999);
    }

    #[test]
    fn predicts_held_out_points() {
        let model = DiskEnergyModel::fit(&training_set()).expect("fit");
        let f = features(777.0, 2.5e6, 0.37);
        assert!((model.predict_j(f) - truth(f)).abs() < 1e-6);
    }

    #[test]
    fn fit_survives_noise() {
        let mut noisy = training_set();
        for (k, (_, y)) in noisy.iter_mut().enumerate() {
            // ±2% deterministic "noise".
            *y *= 1.0 + 0.02 * ((k as f64 * 0.7).sin());
        }
        let model = DiskEnergyModel::fit(&noisy).expect("fit");
        assert!(model.r_squared(&noisy) > 0.99);
        assert!((model.per_position_w - 2.4).abs() < 0.2);
    }

    #[test]
    fn degenerate_design_is_rejected() {
        // All observations identical ⇒ singular normal matrix.
        let f = features(10.0, 1000.0, 0.1);
        let samples = vec![(f, truth(f)); 5];
        assert!(DiskEnergyModel::fit(&samples).is_none());
        assert!(DiskEnergyModel::fit(&samples[..2]).is_none());
    }

    #[test]
    fn static_floor_estimation() {
        let samples: Vec<ProfileSample> = (0..100)
            .map(|k| ProfileSample {
                t_s: k as f64,
                // Mostly busy at 140 W with dips to ~105 W.
                system_w: if k % 10 == 0 { 105.0 } else { 140.0 },
                package_w: 0.0,
                dram_w: 0.0,
            })
            .collect();
        let profile = PowerProfile {
            samples,
            period_s: 1.0,
        };
        let floor = estimate_static_floor_w(&profile, 0.05);
        assert!((floor - 105.0).abs() < 1.0, "got {floor}");
        // Degenerate cases.
        assert_eq!(estimate_static_floor_w(&PowerProfile::default(), 0.05), 0.0);
    }
}
