//! MSR-level emulation of Intel's Running Average Power Limit interface.
//!
//! RAPL (David et al., ISLPED'10 — the paper's ref [5]) exposes per-domain
//! energy through model-specific registers: `MSR_RAPL_POWER_UNIT` declares the
//! energy quantum (Sandy Bridge default: 2⁻¹⁶ J ≈ 15.26 µJ) and
//! `MSR_*_ENERGY_STATUS` hold 32-bit counters of consumed quanta that wrap
//! around silently (on a busy Sandy Bridge, roughly once an hour). Tools that
//! read RAPL must handle the units and the wrap; this module reproduces both
//! so that the downstream profile code is exercised exactly like a real
//! RAPL consumer.

use greenness_platform::{SimTime, Timeline};
use greenness_trace::{Tracer, Value};
use serde::{Deserialize, Serialize};

/// A RAPL power domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RaplDomain {
    /// The whole processor package (both sockets summed, as the paper plots).
    Package,
    /// Power-plane 0: the cores. Modeled as package minus a constant uncore
    /// floor.
    Pp0,
    /// The DRAM domain.
    Dram,
}

/// Emulated RAPL model-specific registers over a completed power timeline.
#[derive(Debug, Clone)]
pub struct RaplMsr<'a> {
    timeline: &'a Timeline,
    /// Energy-status-unit exponent from `MSR_RAPL_POWER_UNIT` bits 12:8.
    /// Sandy Bridge reports 16 ⇒ quantum `2⁻¹⁶ J`.
    pub energy_unit_exp: u32,
    /// Constant uncore power subtracted from the package to model PP0, watts.
    pub uncore_floor_w: f64,
}

impl<'a> RaplMsr<'a> {
    /// RAPL registers for a node run, with the Sandy Bridge default unit.
    pub fn new(timeline: &'a Timeline) -> Self {
        RaplMsr {
            timeline,
            energy_unit_exp: 16,
            uncore_floor_w: 14.0,
        }
    }

    /// The energy quantum in joules (`2^-exp`).
    pub fn energy_unit_j(&self) -> f64 {
        (0.5f64).powi(self.energy_unit_exp as i32)
    }

    /// Raw value of `MSR_RAPL_POWER_UNIT` (energy-status units in bits 12:8;
    /// power and time units are filled with the Sandy Bridge defaults 0b0011
    /// and 0b1010).
    pub fn read_power_unit_msr(&self) -> u64 {
        0b0011 | ((self.energy_unit_exp as u64 & 0x1f) << 8) | (0b1010 << 16)
    }

    /// True (unquantized, unwrapped) energy consumed by `domain` up to `t`,
    /// joules.
    pub fn true_energy_j(&self, domain: RaplDomain, t: SimTime) -> f64 {
        let e = self.timeline.energy_between(SimTime::ZERO, t);
        match domain {
            RaplDomain::Package => e.package_j,
            RaplDomain::Pp0 => (e.package_j - self.uncore_floor_w * t.as_secs_f64()).max(0.0),
            RaplDomain::Dram => e.dram_j,
        }
    }

    /// Raw value of the domain's `ENERGY_STATUS` MSR at virtual time `t`:
    /// consumed quanta, truncated to 32 bits (the hardware counter wraps).
    pub fn read_energy_status_msr(&self, domain: RaplDomain, t: SimTime) -> u64 {
        let quanta = (self.true_energy_j(domain, t) / self.energy_unit_j()) as u64;
        quanta & 0xffff_ffff
    }
}

/// A software RAPL poller: reads the energy-status MSRs at a fixed period and
/// reconstructs average power per interval, handling counter wrap-around —
/// the standard consumer-side algorithm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RaplReader {
    /// Polling period, seconds (the paper polls at 1 Hz to minimize
    /// interference).
    pub period_s: f64,
}

impl Default for RaplReader {
    fn default() -> Self {
        RaplReader { period_s: 1.0 }
    }
}

impl RaplReader {
    /// Poll `domain` over the whole run and return `(interval_end_s, watts)`
    /// per interval.
    ///
    /// Interval boundaries come from an integer interval index (`t = k ×
    /// period`), never from a floating accumulator: over a 10,000 s run at a
    /// 1 kHz period an accumulated `t += period` drifts by whole intervals,
    /// skipping or double-sampling near the end. If the run does not end on
    /// an interval boundary a final *partial* interval `(end_s, watts)` is
    /// emitted so the energy tail is not dropped; its power is averaged over
    /// the true remaining width.
    pub fn poll(&self, msr: &RaplMsr<'_>, domain: RaplDomain) -> Vec<(f64, f64)> {
        self.poll_traced(msr, domain, &Tracer::off())
    }

    /// [`Self::poll`] with journal/metrics instrumentation: one `rapl.poll`
    /// event per interval, plus `rapl.polls` / `rapl.wraps` /
    /// `rapl.partial_intervals` counters. Poll events happen after the run
    /// is over, so they carry the end-of-run virtual timestamp and the
    /// interval time in a `t_s` field.
    pub fn poll_traced(
        &self,
        msr: &RaplMsr<'_>,
        domain: RaplDomain,
        tracer: &Tracer,
    ) -> Vec<(f64, f64)> {
        assert!(self.period_s > 0.0, "polling period must be positive");
        let end = msr.timeline.end();
        let end_s = end.as_secs_f64();
        let unit = msr.energy_unit_j();
        let domain_label = match domain {
            RaplDomain::Package => "package",
            RaplDomain::Pp0 => "pp0",
            RaplDomain::Dram => "dram",
        };
        let t_ns = end.as_nanos();
        let mut out = Vec::new();
        let mut prev = msr.read_energy_status_msr(domain, SimTime::ZERO);
        let full = ((end_s + 1e-9) / self.period_s).floor() as u64;
        let sample = |t: f64, at: SimTime, width: f64, prev: &mut u64| -> f64 {
            let now = msr.read_energy_status_msr(domain, at);
            if now < *prev {
                tracer.count("rapl.wraps", 1);
            }
            // 32-bit wrap-aware delta.
            let delta = now.wrapping_sub(*prev) & 0xffff_ffff;
            *prev = now;
            let w = delta as f64 * unit / width;
            tracer.count("rapl.polls", 1);
            if tracer.is_on() {
                tracer.instant(
                    t_ns,
                    "rapl.poll",
                    vec![
                        ("domain", Value::from(domain_label)),
                        ("t_s", Value::from(t)),
                        ("watts", Value::from(w)),
                    ],
                );
            }
            w
        };
        for k in 1..=full {
            let t = k as f64 * self.period_s;
            let w = sample(t, SimTime::from_secs_f64(t), self.period_s, &mut prev);
            out.push((t, w));
        }
        let covered = full as f64 * self.period_s;
        let tail = end_s - covered;
        if tail > 1e-9 {
            let w = sample(end_s, end, tail, &mut prev);
            out.push((end_s, w));
            tracer.count("rapl.partial_intervals", 1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_platform::{Phase, PowerDraw, Segment, SimDuration};

    /// Build a timeline holding `package_w`/`dram_w` constant for `secs`.
    fn constant_timeline(package_w: f64, dram_w: f64, secs: u64) -> Timeline {
        let mut tl = Timeline::new();
        tl.push(Segment {
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(secs),
            draw: PowerDraw {
                package_w,
                dram_w,
                disk_w: 5.0,
                net_w: 0.0,
                board_w: 50.0,
            },
            phase: Phase::Other,
        });
        tl
    }

    #[test]
    fn sandy_bridge_energy_unit() {
        let tl = constant_timeline(70.0, 15.0, 10);
        let msr = RaplMsr::new(&tl);
        assert!((msr.energy_unit_j() - 15.258789e-6).abs() < 1e-9);
        // Bits 12:8 of the unit MSR hold the exponent.
        assert_eq!((msr.read_power_unit_msr() >> 8) & 0x1f, 16);
    }

    #[test]
    fn counter_tracks_true_energy_within_one_quantum() {
        let tl = constant_timeline(70.0, 15.0, 10);
        let msr = RaplMsr::new(&tl);
        let t = SimTime::from_secs_f64(7.0);
        let raw = msr.read_energy_status_msr(RaplDomain::Package, t);
        let reconstructed = raw as f64 * msr.energy_unit_j();
        let truth = msr.true_energy_j(RaplDomain::Package, t);
        assert!(
            (reconstructed - truth).abs() <= msr.energy_unit_j(),
            "{reconstructed} vs {truth}"
        );
    }

    #[test]
    fn reader_reconstructs_constant_power() {
        let tl = constant_timeline(71.8, 16.3, 20);
        let msr = RaplMsr::new(&tl);
        let samples = RaplReader::default().poll(&msr, RaplDomain::Package);
        assert_eq!(samples.len(), 20);
        for (_, w) in &samples {
            assert!((w - 71.8).abs() < 1e-3, "got {w}");
        }
        let dram = RaplReader::default().poll(&msr, RaplDomain::Dram);
        assert!((dram[5].1 - 16.3).abs() < 1e-3);
    }

    #[test]
    fn reader_survives_counter_wraparound() {
        // 2^32 quanta ≈ 65536 J; at 100 W package the counter wraps every
        // ≈655 s. Run for 2000 s and check every reconstructed interval.
        let tl = constant_timeline(100.0, 10.0, 2000);
        let msr = RaplMsr::new(&tl);
        // Confirm at least two wraps actually occur.
        let quanta_total = msr.true_energy_j(RaplDomain::Package, tl.end()) / msr.energy_unit_j();
        assert!(quanta_total > 2.0 * 2f64.powi(32));
        let samples = RaplReader::default().poll(&msr, RaplDomain::Package);
        assert_eq!(samples.len(), 2000);
        for (t, w) in &samples {
            assert!((w - 100.0).abs() < 1e-3, "at t={t}: got {w}");
        }
    }

    #[test]
    fn pp0_is_package_minus_uncore_floor() {
        let tl = constant_timeline(70.0, 10.0, 10);
        let msr = RaplMsr::new(&tl);
        let pkg = msr.true_energy_j(RaplDomain::Package, tl.end());
        let pp0 = msr.true_energy_j(RaplDomain::Pp0, tl.end());
        assert!((pkg - pp0 - 14.0 * 10.0).abs() < 1e-9);
    }

    #[test]
    fn pp0_never_goes_negative() {
        let tl = constant_timeline(5.0, 1.0, 10); // package below uncore floor
        let msr = RaplMsr::new(&tl);
        assert_eq!(msr.true_energy_j(RaplDomain::Pp0, tl.end()), 0.0);
    }

    #[test]
    fn long_run_polled_energy_matches_timeline_within_one_quantum() {
        // Regression for the float-drift + dropped-tail bug: a ≥10,000 s run
        // at 100 W package wraps the 32-bit counter every ≈655 s (15 times
        // here) and ends 0.4 s past an interval boundary. The integer-index
        // poller must visit every 1 s boundary exactly (no skipped or
        // doubled intervals) and emit the trailing partial interval; summed
        // polled energy then telescopes to the final counter value, i.e.
        // matches `Timeline::energy_between` within one 15.26 µJ quantum
        // per interval.
        let mut tl = Timeline::new();
        tl.push(Segment {
            start: SimTime::ZERO,
            duration: SimDuration::from_secs_f64(10_000.4),
            draw: PowerDraw {
                package_w: 100.0,
                dram_w: 10.0,
                disk_w: 5.0,
                net_w: 0.0,
                board_w: 50.0,
            },
            phase: Phase::Other,
        });
        let msr = RaplMsr::new(&tl);
        let quanta_total = msr.true_energy_j(RaplDomain::Package, tl.end()) / msr.energy_unit_j();
        assert!(quanta_total > 15.0 * 2f64.powi(32), "want ≥15 wraps");

        let (tracer, _handle) = Tracer::memory();
        let reader = RaplReader::default();
        let samples = reader.poll_traced(&msr, RaplDomain::Package, &tracer);

        // 10,000 full intervals + 1 partial; boundaries exactly at k·1 s.
        assert_eq!(samples.len(), 10_001);
        for (k, (t, _)) in samples.iter().take(10_000).enumerate() {
            assert!(
                (t - (k + 1) as f64).abs() < 1e-9,
                "interval {k} ends at {t}, drifted off the boundary"
            );
        }
        let (last_t, last_w) = *samples.last().unwrap();
        assert!((last_t - 10_000.4).abs() < 1e-9, "partial tail at {last_t}");
        assert!((last_w - 100.0).abs() < 0.1, "tail power {last_w}");

        // Summed polled energy vs exact timeline energy. Every wrap was
        // observed (power × period ≪ 2^32 quanta), so the quantization
        // error telescopes: well under one quantum per interval.
        let mut polled_j = 0.0;
        let mut prev_t = 0.0;
        for &(t, w) in &samples {
            polled_j += w * (t - prev_t);
            prev_t = t;
        }
        let truth_j = tl.energy_between(SimTime::ZERO, tl.end()).package_j;
        let budget_j = msr.energy_unit_j() * samples.len() as f64;
        assert!(
            (polled_j - truth_j).abs() <= budget_j,
            "polled {polled_j} J vs true {truth_j} J (budget {budget_j} J)"
        );
        // The counters saw every wrap and the one partial interval.
        assert_eq!(tracer.counter("rapl.wraps"), 15);
        assert_eq!(tracer.counter("rapl.partial_intervals"), 1);
        assert_eq!(tracer.counter("rapl.polls"), 10_001);
    }

    #[test]
    fn partial_final_interval_is_emitted_with_true_width() {
        // 10.5 s run, 1 s period: 10 full intervals plus a 0.5 s tail whose
        // energy the old poller silently dropped.
        let mut tl = Timeline::new();
        tl.push(Segment {
            start: SimTime::ZERO,
            duration: SimDuration::from_secs_f64(10.5),
            draw: PowerDraw {
                package_w: 80.0,
                dram_w: 10.0,
                disk_w: 5.0,
                net_w: 0.0,
                board_w: 50.0,
            },
            phase: Phase::Other,
        });
        let msr = RaplMsr::new(&tl);
        let samples = RaplReader::default().poll(&msr, RaplDomain::Package);
        assert_eq!(samples.len(), 11);
        let (t, w) = *samples.last().unwrap();
        assert!((t - 10.5).abs() < 1e-9);
        // Tail power is averaged over the true 0.5 s width, not the period.
        assert!((w - 80.0).abs() < 0.1, "got {w}");
        // And a run that ends exactly on a boundary gains no extra sample.
        let exact = constant_timeline(80.0, 10.0, 10);
        let msr = RaplMsr::new(&exact);
        assert_eq!(
            RaplReader::default().poll(&msr, RaplDomain::Package).len(),
            10
        );
    }

    #[test]
    fn subsecond_polling_is_supported() {
        let tl = constant_timeline(70.0, 10.0, 5);
        let msr = RaplMsr::new(&tl);
        let reader = RaplReader { period_s: 0.001 }; // RAPL updates at ~1 kHz
        let samples = reader.poll(&msr, RaplDomain::Package);
        assert_eq!(samples.len(), 5000);
        // Quantization error at 1 kHz is unit/period = ~15 mW.
        for (_, w) in &samples {
            assert!((w - 70.0).abs() < 0.05, "got {w}");
        }
    }
}
