//! Green metrics: the quantities of Figures 7–11.
//!
//! The paper compares pipelines on execution time (Fig. 7), average power
//! (Fig. 8), peak power (Fig. 9), energy (Fig. 10), and normalized energy
//! efficiency (Fig. 11). [`GreenMetrics`] derives all five, plus the
//! energy-delay products commonly used alongside them, from a completed
//! power timeline and a count of useful work units.

use greenness_platform::Timeline;
use serde::{Deserialize, Serialize};

/// Summary metrics of one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GreenMetrics {
    /// Wall-clock (virtual) execution time, seconds.
    pub execution_time_s: f64,
    /// Time-averaged full-system power, watts.
    pub average_power_w: f64,
    /// Peak full-system power, watts.
    pub peak_power_w: f64,
    /// Full-system energy, joules.
    pub energy_j: f64,
    /// Useful work accomplished (e.g. cell-updates × timesteps); the basis
    /// of the efficiency metric.
    pub work_units: f64,
}

impl GreenMetrics {
    /// Derive metrics from a run's timeline. `work_units` is the useful work
    /// the run accomplished; both pipelines in a comparison must count it the
    /// same way.
    pub fn from_timeline(timeline: &Timeline, work_units: f64) -> GreenMetrics {
        GreenMetrics {
            execution_time_s: timeline.end().as_secs_f64(),
            average_power_w: timeline.average_power_w(),
            peak_power_w: timeline.peak_power_w(),
            energy_j: timeline.total_energy_j(),
            work_units,
        }
    }

    /// Energy efficiency: useful work per joule.
    pub fn efficiency(&self) -> f64 {
        if self.energy_j <= 0.0 {
            0.0
        } else {
            self.work_units / self.energy_j
        }
    }

    /// This run's efficiency normalized against `baseline` (Fig. 11 plots
    /// efficiency normalized to the best performer).
    pub fn normalized_efficiency(&self, baseline: &GreenMetrics) -> f64 {
        let b = baseline.efficiency();
        if b <= 0.0 {
            0.0
        } else {
            self.efficiency() / b
        }
    }

    /// Energy-delay product, J·s.
    pub fn edp(&self) -> f64 {
        self.energy_j * self.execution_time_s
    }

    /// Energy-delay-squared product, J·s².
    pub fn ed2p(&self) -> f64 {
        self.energy_j * self.execution_time_s * self.execution_time_s
    }

    /// Percentage by which `self` improves on `other` for a
    /// lower-is-better quantity, e.g. `time_reduction_vs` = 43 means 43% less.
    pub fn energy_reduction_vs(&self, other: &GreenMetrics) -> f64 {
        percent_reduction(self.energy_j, other.energy_j)
    }

    /// Percent execution-time reduction relative to `other`.
    pub fn time_reduction_vs(&self, other: &GreenMetrics) -> f64 {
        percent_reduction(self.execution_time_s, other.execution_time_s)
    }

    /// Percent average-power *increase* relative to `other` (the paper
    /// reports in-situ drawing 8/5/3% more).
    pub fn power_increase_vs(&self, other: &GreenMetrics) -> f64 {
        if other.average_power_w <= 0.0 {
            0.0
        } else {
            (self.average_power_w / other.average_power_w - 1.0) * 100.0
        }
    }
}

fn percent_reduction(ours: f64, theirs: f64) -> f64 {
    if theirs <= 0.0 {
        0.0
    } else {
        (1.0 - ours / theirs) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_platform::{Phase, PowerDraw, Segment, SimDuration, SimTime};

    fn run(avg_w: f64, secs: u64) -> GreenMetrics {
        let mut tl = Timeline::new();
        tl.push(Segment {
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(secs),
            draw: PowerDraw {
                board_w: avg_w,
                ..PowerDraw::ZERO
            },
            phase: Phase::Other,
        });
        GreenMetrics::from_timeline(&tl, 1000.0)
    }

    #[test]
    fn basic_derivation() {
        let m = run(125.0, 238);
        assert_eq!(m.execution_time_s, 238.0);
        assert!((m.average_power_w - 125.0).abs() < 1e-9);
        assert!((m.energy_j - 29750.0).abs() < 1e-6);
        assert!((m.efficiency() - 1000.0 / 29750.0).abs() < 1e-12);
    }

    #[test]
    fn paper_case1_shape() {
        // Post-processing ≈125 W × 238 s, in-situ ≈133 W × 127 s:
        // energy −43%, time −47%, power +6–8%.
        let post = run(125.0, 238);
        let insitu = run(133.0, 127);
        let esave = insitu.energy_reduction_vs(&post);
        assert!((esave - 43.2).abs() < 1.5, "got {esave}");
        let tsave = insitu.time_reduction_vs(&post);
        assert!((tsave - 46.6).abs() < 1.0, "got {tsave}");
        let pinc = insitu.power_increase_vs(&post);
        assert!((pinc - 6.4).abs() < 1.0, "got {pinc}");
        assert!(insitu.normalized_efficiency(&post) > 1.5);
    }

    #[test]
    fn edp_prefers_fast_and_frugal() {
        let slow = run(100.0, 200);
        let fast = run(110.0, 100);
        assert!(fast.edp() < slow.edp());
        assert!(fast.ed2p() < slow.ed2p());
    }

    #[test]
    fn degenerate_runs_do_not_divide_by_zero() {
        let m = GreenMetrics {
            execution_time_s: 0.0,
            average_power_w: 0.0,
            peak_power_w: 0.0,
            energy_j: 0.0,
            work_units: 0.0,
        };
        assert_eq!(m.efficiency(), 0.0);
        assert_eq!(m.normalized_efficiency(&m), 0.0);
        assert_eq!(m.energy_reduction_vs(&m), 0.0);
        assert_eq!(m.power_increase_vs(&m), 0.0);
    }
}
