//! Property-based tests for the instrumentation layer.

use greenness_platform::{Phase, PowerDraw, Segment, SimDuration, SimTime, Timeline};
use greenness_power::{
    probe_dynamic_power_w, PowerProfile, RaplDomain, RaplMsr, RaplReader, SavingsBreakdown,
    WattsupMeter,
};
use proptest::prelude::*;

fn arb_timeline() -> impl Strategy<Value = Timeline> {
    prop::collection::vec(
        (
            1u64..30_000_000_000,
            20.0..120.0f64,
            1.0..30.0f64,
            30.0..80.0f64,
        ),
        1..25,
    )
    .prop_map(|spans| {
        let mut tl = Timeline::new();
        let mut t = SimTime::ZERO;
        for (ns, package_w, dram_w, board_w) in spans {
            let duration = SimDuration::from_nanos(ns);
            tl.push(Segment {
                start: t,
                duration,
                draw: PowerDraw {
                    package_w,
                    dram_w,
                    disk_w: 5.0,
                    net_w: 0.0,
                    board_w,
                },
                phase: Phase::Other,
            });
            t += duration;
        }
        tl
    })
}

proptest! {
    /// RAPL reconstruction matches true energy within quantization, across
    /// arbitrary timelines (including ones long enough to wrap the counter).
    #[test]
    fn rapl_reconstruction_tracks_truth(tl in arb_timeline()) {
        let msr = RaplMsr::new(&tl);
        let reader = RaplReader::default();
        for domain in [RaplDomain::Package, RaplDomain::Dram] {
            let samples = reader.poll(&msr, domain);
            // Integrate with each interval's actual width: the final
            // interval may be partial (the poller emits the energy tail).
            let mut reconstructed = 0.0;
            let mut prev_t = 0.0;
            for &(t, w) in &samples {
                reconstructed += w * (t - prev_t);
                prev_t = t;
            }
            let truth = msr.true_energy_j(domain, SimTime::from_secs_f64(prev_t));
            // Each interval can lose at most one quantum to truncation.
            let n = samples.len() as f64;
            let tol = (n + 1.0) * msr.energy_unit_j() + 1e-9;
            prop_assert!((reconstructed - truth).abs() <= tol,
                "{domain:?}: {reconstructed} vs {truth} (tol {tol})");
        }
    }

    /// The noiseless wall meter integrates back to true energy within the
    /// integer-watt rounding budget (0.5 J per sample) plus the dropped
    /// partial final interval.
    #[test]
    fn wattsup_integration_error_is_bounded(tl in arb_timeline()) {
        let meter = WattsupMeter::noiseless();
        let log = meter.sample(&tl);
        let measured = WattsupMeter::integrate_j(&log, meter.period_s);
        let covered_s = log.len() as f64 * meter.period_s;
        let truth = tl
            .energy_between(SimTime::ZERO, SimTime::from_secs_f64(covered_s))
            .system_j();
        prop_assert!((measured - truth).abs() <= 0.5 * log.len() as f64 + 1e-6,
            "{measured} vs {truth}");
    }

    /// Profile channels satisfy system = package + dram + rest by
    /// construction, and rest stays non-negative for physical timelines
    /// (modulo rounding of the integer-watt system channel).
    #[test]
    fn profile_channels_are_consistent(tl in arb_timeline()) {
        let p = PowerProfile::measure_noiseless(&tl);
        for s in &p.samples {
            prop_assert!((s.system_w - s.package_w - s.dram_w - s.rest_w()).abs() < 1e-9);
            prop_assert!(s.rest_w() >= -1.0, "rest went negative: {}", s.rest_w());
        }
    }

    /// Savings breakdown always partitions: static + dynamic = total, and the
    /// percentage shares sum to 100 when there are savings.
    #[test]
    fn breakdown_partitions(
        be in 1000.0..100_000.0f64,
        bt in 10.0..1000.0f64,
        frac_e in 0.1..1.0f64,
        frac_t in 0.1..1.0f64,
        probe_w in 0.0..30.0f64,
    ) {
        let b = SavingsBreakdown::estimate(be, bt, be * frac_e, bt * frac_t, probe_w);
        prop_assert!((b.static_j + b.dynamic_j - b.total_j).abs() < 1e-6);
        if b.total_j > 0.0 {
            prop_assert!((b.static_pct() + b.dynamic_pct() - 100.0).abs() < 1e-6);
            prop_assert!(b.dynamic_j >= 0.0);
        }
    }

    /// Probe dynamic power is never negative and is exactly avg − floor when
    /// the probe runs hotter than the floor.
    #[test]
    fn probe_power_clamps(avg_w in 50.0..200.0f64, floor in 50.0..200.0f64) {
        let mut tl = Timeline::new();
        tl.push(Segment {
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(10),
            draw: PowerDraw { board_w: avg_w, ..PowerDraw::ZERO },
            phase: Phase::IoBench,
        });
        let p = probe_dynamic_power_w(&tl, floor);
        prop_assert!(p >= 0.0);
        if avg_w > floor {
            prop_assert!((p - (avg_w - floor)).abs() < 1e-9);
        }
    }
}
