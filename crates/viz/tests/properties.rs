//! Property-based tests for the renderer.

use greenness_heatsim::Grid;
use greenness_viz::{
    contour_lines, decode_ppm, encode_ppm, render_field, stride_sample, threshold_sample, Colormap,
    RenderOptions,
};
use proptest::prelude::*;

fn arb_grid() -> impl Strategy<Value = Grid> {
    (
        3usize..32,
        3usize..32,
        -10.0..10.0f64,
        0.1..20.0f64,
        0.1..20.0f64,
    )
        .prop_map(|(nx, ny, base, fx, fy)| {
            Grid::from_fn(nx, ny, |x, y| base + (fx * x).sin() * (fy * y).cos())
        })
}

proptest! {
    /// PPM encoding round-trips for arbitrary rendered fields.
    #[test]
    fn ppm_round_trip(g in arb_grid(), w in 1usize..64, h in 1usize..64) {
        let fb = render_field(
            &g,
            &RenderOptions { width: w, height: h, colormap: Colormap::Viridis, range: None },
        );
        let back = decode_ppm(&encode_ppm(&fb)).expect("decode");
        prop_assert_eq!(back, fb);
    }

    /// Rendering the same field twice is bit-identical (rayon must not leak
    /// nondeterminism) and every pixel is a valid colormap output.
    #[test]
    fn rendering_is_pure(g in arb_grid()) {
        let opts = RenderOptions { width: 48, height: 48, ..Default::default() };
        let a = render_field(&g, &opts);
        let b = render_field(&g, &opts);
        prop_assert_eq!(&a, &b);
    }

    /// Contour segment endpoints always lie in the unit square, and no
    /// contour exists outside the field's value range.
    #[test]
    fn contours_are_well_formed(g in arb_grid(), t in 0.0..1.0f64) {
        let level = g.min() + t * (g.max() - g.min());
        for s in contour_lines(&g, level) {
            for (x, y) in [s.a, s.b] {
                prop_assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y),
                    "endpoint ({x},{y}) outside unit square");
            }
        }
        prop_assert!(contour_lines(&g, g.max() + 1.0).is_empty());
        prop_assert!(contour_lines(&g, g.min() - 1.0).is_empty());
    }

    /// Stride sampling never invents values outside the source range, and
    /// always shrinks (or keeps) the snapshot size.
    #[test]
    fn sampling_is_conservative(g in arb_grid(), stride in 1usize..8) {
        let s = stride_sample(&g, stride);
        prop_assert!(s.min() >= g.min() - 1e-12);
        prop_assert!(s.max() <= g.max() + 1e-12);
        prop_assert!(s.snapshot_bytes() <= g.snapshot_bytes());
    }

    /// Threshold sampling keeps exactly the cells meeting the threshold.
    #[test]
    fn threshold_is_exact(g in arb_grid(), thr in 0.0..5.0f64) {
        let kept = threshold_sample(&g, thr);
        let expected = g.as_slice().iter().filter(|v| v.abs() >= thr).count();
        prop_assert_eq!(kept.len(), expected);
        for (i, j, v) in kept {
            prop_assert_eq!(g.at(i as usize, j as usize), v);
            prop_assert!(v.abs() >= thr);
        }
    }

    /// Colormaps are total over all inputs including pathological ones.
    #[test]
    fn colormaps_are_total(t in prop::num::f64::ANY) {
        for cm in [Colormap::Viridis, Colormap::Hot, Colormap::CoolWarm, Colormap::Gray] {
            let _ = cm.map(t); // must not panic for NaN/inf/any value
        }
    }
}
