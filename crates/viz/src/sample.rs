//! Data-sampling operators (the paper's refs [21]–[23]).
//!
//! The §V-C discussion distinguishes two optimization families: if the energy
//! saved by in-situ came mostly from *dynamic* (data-movement) power, the
//! right post-processing optimization would be **data sampling** — writing a
//! reduced dataset at some information loss. These operators implement the
//! two standard forms: uniform stride decimation and importance (threshold)
//! triage. The `ablate_sampling` bench sweeps the reduction factor against
//! energy.

use greenness_heatsim::Grid;

/// Decimate `field` by keeping every `stride`-th sample in each dimension.
/// `stride = 1` is the identity.
pub fn stride_sample(field: &Grid, stride: usize) -> Grid {
    assert!(stride >= 1, "stride must be at least 1");
    let nx = field.nx().div_ceil(stride).max(3);
    let ny = field.ny().div_ceil(stride).max(3);
    Grid::from_fn(nx, ny, |u, v| {
        // Map the coarse cell back to the nearest fine sample.
        let i = ((u * field.nx() as f64) as usize).min(field.nx() - 1);
        let j = ((v * field.ny() as f64) as usize).min(field.ny() - 1);
        field.at(i, j)
    })
}

/// Importance triage: keep `(i, j, value)` triples whose |value| ≥
/// `threshold`, as a sparse list — the "data triage" of ref [23].
pub fn threshold_sample(field: &Grid, threshold: f64) -> Vec<(u32, u32, f64)> {
    let mut out = Vec::new();
    for j in 0..field.ny() {
        for i in 0..field.nx() {
            let v = field.at(i, j);
            if v.abs() >= threshold {
                out.push((i as u32, j as u32, v));
            }
        }
    }
    out
}

/// Serialized size of a threshold sample, bytes (two u32 indices + f64).
pub fn threshold_sample_bytes(samples: &[(u32, u32, f64)]) -> u64 {
    (samples.len() * 16) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_one_keeps_resolution() {
        let g = Grid::from_fn(16, 12, |x, y| x + y);
        let s = stride_sample(&g, 1);
        assert_eq!((s.nx(), s.ny()), (16, 12));
    }

    #[test]
    fn stride_reduces_size_and_preserves_range() {
        let g = Grid::from_fn(64, 64, |x, y| x * y);
        let s = stride_sample(&g, 4);
        assert_eq!((s.nx(), s.ny()), (16, 16));
        assert!(s.min() >= g.min() - 1e-12);
        assert!(s.max() <= g.max() + 1e-12);
        // 16x data reduction.
        assert_eq!(s.snapshot_bytes() * 16, g.snapshot_bytes());
    }

    #[test]
    fn huge_strides_clamp_to_minimum_grid() {
        let g = Grid::from_fn(16, 16, |x, _| x);
        let s = stride_sample(&g, 1000);
        assert_eq!((s.nx(), s.ny()), (3, 3));
    }

    #[test]
    fn threshold_keeps_only_important_cells() {
        let mut g = Grid::zeros(8, 8);
        g.set(2, 3, 5.0);
        g.set(6, 1, -7.0);
        g.set(4, 4, 0.5);
        let kept = threshold_sample(&g, 1.0);
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(&(2, 3, 5.0)));
        assert!(kept.contains(&(6, 1, -7.0)));
        assert_eq!(threshold_sample_bytes(&kept), 32);
    }

    #[test]
    fn zero_threshold_keeps_everything() {
        let g = Grid::filled(4, 4, 1.0);
        assert_eq!(threshold_sample(&g, 0.0).len(), 16);
    }
}
