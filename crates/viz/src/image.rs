//! Binary PPM (P6) encode/decode.
//!
//! The in-situ pipeline's only persistent output is rendered images; they are
//! written through the simulated filesystem in this format. PPM keeps the
//! codec dependency-free while remaining a real, openable image format.

use crate::raster::Framebuffer;

/// Encode an image as binary PPM (P6, maxval 255).
pub fn encode_ppm(fb: &Framebuffer) -> Vec<u8> {
    let mut out = format!("P6\n{} {}\n255\n", fb.width(), fb.height()).into_bytes();
    out.extend_from_slice(fb.as_bytes());
    out
}

/// Decode a binary PPM produced by [`encode_ppm`] (P6, maxval 255, single
/// whitespace separators). Returns `None` on any malformation.
pub fn decode_ppm(data: &[u8]) -> Option<Framebuffer> {
    let mut pos = 0usize;
    let mut token = || -> Option<&[u8]> {
        while pos < data.len() && data[pos].is_ascii_whitespace() {
            pos += 1;
        }
        let start = pos;
        while pos < data.len() && !data[pos].is_ascii_whitespace() {
            pos += 1;
        }
        (pos > start).then(|| &data[start..pos])
    };
    if token()? != b"P6" {
        return None;
    }
    let width: usize = std::str::from_utf8(token()?).ok()?.parse().ok()?;
    let height: usize = std::str::from_utf8(token()?).ok()?.parse().ok()?;
    let maxval: usize = std::str::from_utf8(token()?).ok()?.parse().ok()?;
    if maxval != 255 {
        return None;
    }
    // Exactly one whitespace byte after maxval, then raw pixels.
    let body = &data[pos + 1..];
    Framebuffer::from_bytes(width, height, body.to_vec())
}

/// Expected encoded size of a `width × height` PPM, bytes — pipelines use
/// this to budget I/O without encoding first.
pub fn ppm_size_bytes(width: usize, height: usize) -> u64 {
    let header = format!("P6\n{width} {height}\n255\n").len() as u64;
    header + (width * height * 3) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colormap::Colormap;
    use crate::raster::{render_field, RenderOptions};
    use greenness_heatsim::Grid;

    fn test_image() -> Framebuffer {
        let g = Grid::from_fn(16, 16, |x, y| x * y);
        render_field(
            &g,
            &RenderOptions {
                width: 20,
                height: 14,
                colormap: Colormap::Hot,
                range: Some((0.0, 1.0)),
            },
        )
    }

    #[test]
    fn round_trip() {
        let fb = test_image();
        let bytes = encode_ppm(&fb);
        let back = decode_ppm(&bytes).expect("decode");
        assert_eq!(back, fb);
    }

    #[test]
    fn size_prediction_is_exact() {
        let fb = test_image();
        assert_eq!(encode_ppm(&fb).len() as u64, ppm_size_bytes(20, 14));
        // The paper-scale frame: 512×512 ≈ 768 KiB.
        assert_eq!(ppm_size_bytes(512, 512), 15 + 512 * 512 * 3);
    }

    #[test]
    fn header_is_standard() {
        let fb = test_image();
        let bytes = encode_ppm(&fb);
        assert!(bytes.starts_with(b"P6\n20 14\n255\n"));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(decode_ppm(b"").is_none());
        assert!(decode_ppm(b"P5\n2 2\n255\n----").is_none());
        assert!(decode_ppm(b"P6\n2 2\n65535\n").is_none());
        assert!(decode_ppm(b"P6\n2 2\n255\nshort").is_none());
        let fb = test_image();
        let mut truncated = encode_ppm(&fb);
        truncated.pop();
        assert!(decode_ppm(&truncated).is_none());
    }
}
