//! Charge rendering work to the platform.
//!
//! Calibrated so one 512×512 frame costs ≈0.476 s at ≈121 W full-system — the
//! visualization-phase level and duration the paper reports (10% of case-1
//! runtime over 50 frames, Figure 4; second-phase power, §V-A).
//! Rasterization is memory/branch-bound compared to the solver, hence the
//! lower arithmetic intensity (0.45), which is what puts the visualization
//! phase ≈22 W below the simulation phase.

use greenness_platform::Activity;
use serde::{Deserialize, Serialize};

/// Calibrated conversion from pixels shaded to platform compute activities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RenderCostModel {
    /// Flops charged per output pixel (includes field sampling, mapping, and
    /// contour scanning of the paper's renderer).
    pub flops_per_pixel: f64,
    /// DRAM traffic per pixel, bytes.
    pub dram_bytes_per_pixel: f64,
    /// Cores the renderer keeps busy.
    pub cores: u32,
    /// Arithmetic intensity (rasterization is memory-bound: < 1).
    pub intensity: f64,
}

impl Default for RenderCostModel {
    fn default() -> Self {
        RenderCostModel {
            flops_per_pixel: 1.394e5,
            dram_bytes_per_pixel: 2000.0,
            cores: 16,
            intensity: 0.45,
        }
    }
}

impl RenderCostModel {
    /// The compute activity for rendering `pixels` output pixels.
    pub fn activity(&self, pixels: u64) -> Activity {
        Activity::Compute {
            flops: pixels as f64 * self.flops_per_pixel,
            cores: self.cores,
            intensity: self.intensity,
            dram_bytes: (pixels as f64 * self.dram_bytes_per_pixel) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_platform::{HardwareSpec, Node, Phase};

    #[test]
    fn calibrated_frame_cost() {
        let cost = RenderCostModel::default();
        let mut node = Node::new(HardwareSpec::table1());
        let e = node.execute(cost.activity(512 * 512), Phase::Visualization);
        let secs = e.duration.as_secs_f64();
        assert!((secs - 0.476).abs() < 0.01, "got {secs}");
        let sys = e.draw.system_w();
        assert!((sys - 121.0).abs() < 1.0, "got {sys}");
    }

    #[test]
    fn viz_phase_runs_cooler_than_sim_phase() {
        let node = Node::new(HardwareSpec::table1());
        let (_, viz) = node.cost_of(RenderCostModel::default().activity(512 * 512));
        let (_, sim) = node.cost_of(greenness_heatsim::SimCostModel::default().activity(512 * 512));
        let gap = sim.system_w() - viz.system_w();
        // The paper infers a ≈22 W gap between the two phases (§V-A).
        assert!((gap - 22.0).abs() < 2.0, "gap {gap}");
    }
}
