//! Framebuffer and scalar-field rasterization.

use greenness_heatsim::Grid;
use rayon::prelude::*;

use crate::colormap::{Colormap, Rgb};

/// A dense RGB image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    pixels: Vec<u8>, // RGB, row-major
}

impl Framebuffer {
    /// A black image of the given size.
    pub fn new(width: usize, height: usize) -> Framebuffer {
        assert!(width > 0 && height > 0, "framebuffer must be non-empty");
        Framebuffer {
            width,
            height,
            pixels: vec![0; width * height * 3],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixels.
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Raw RGB bytes, row-major.
    pub fn as_bytes(&self) -> &[u8] {
        &self.pixels
    }

    /// Pixel at `(x, y)`.
    pub fn get(&self, x: usize, y: usize) -> Rgb {
        let o = (y * self.width + x) * 3;
        [self.pixels[o], self.pixels[o + 1], self.pixels[o + 2]]
    }

    /// Set pixel `(x, y)`; out-of-bounds coordinates are ignored (clip).
    pub fn set(&mut self, x: usize, y: usize, c: Rgb) {
        if x < self.width && y < self.height {
            let o = (y * self.width + x) * 3;
            self.pixels[o..o + 3].copy_from_slice(&c);
        }
    }

    /// Draw a line with integer Bresenham stepping, clipped to the image.
    pub fn draw_line(&mut self, x0: f64, y0: f64, x1: f64, y1: f64, c: Rgb) {
        let steps = ((x1 - x0).abs().max((y1 - y0).abs()).ceil() as usize).max(1);
        for k in 0..=steps {
            let t = k as f64 / steps as f64;
            let x = x0 + (x1 - x0) * t;
            let y = y0 + (y1 - y0) * t;
            if x >= 0.0 && y >= 0.0 {
                self.set(x.round() as usize, y.round() as usize, c);
            }
        }
    }

    /// Construct from raw RGB bytes.
    pub fn from_bytes(width: usize, height: usize, bytes: Vec<u8>) -> Option<Framebuffer> {
        if width == 0 || height == 0 || bytes.len() != width * height * 3 {
            return None;
        }
        Some(Framebuffer {
            width,
            height,
            pixels: bytes,
        })
    }
}

/// Rendering controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderOptions {
    /// Output width, pixels.
    pub width: usize,
    /// Output height, pixels.
    pub height: usize,
    /// Colormap applied to the normalized field.
    pub colormap: Colormap,
    /// Fixed normalization range; `None` auto-scales to the field's min/max
    /// (auto-scaling differs frame to frame, so pipelines comparing frames
    /// should fix it).
    pub range: Option<(f64, f64)>,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width: 512,
            height: 512,
            colormap: Colormap::Viridis,
            range: None,
        }
    }
}

/// Render `field` into an image by bilinear sampling, rows in parallel.
pub fn render_field(field: &Grid, opts: &RenderOptions) -> Framebuffer {
    let (lo, hi) = opts.range.unwrap_or_else(|| (field.min(), field.max()));
    let span = (hi - lo).max(1e-300);
    let mut fb = Framebuffer::new(opts.width, opts.height);
    let width = opts.width;
    let cm = opts.colormap;
    fb.pixels
        .par_chunks_mut(width * 3)
        .enumerate()
        .for_each(|(y, row)| {
            let v = (y as f64 + 0.5) / opts.height as f64;
            for x in 0..width {
                let u = (x as f64 + 0.5) / width as f64;
                let t = (bilinear(field, u, v) - lo) / span;
                let c = cm.map(t);
                row[x * 3..x * 3 + 3].copy_from_slice(&c);
            }
        });
    fb
}

/// Bilinear sample of `field` at normalized coordinates `(u, v) ∈ [0,1]²`,
/// cell-centered.
pub fn bilinear(field: &Grid, u: f64, v: f64) -> f64 {
    let nx = field.nx();
    let ny = field.ny();
    let fx = (u.clamp(0.0, 1.0) * nx as f64 - 0.5).clamp(0.0, (nx - 1) as f64);
    let fy = (v.clamp(0.0, 1.0) * ny as f64 - 0.5).clamp(0.0, (ny - 1) as f64);
    let x0 = fx.floor() as usize;
    let y0 = fy.floor() as usize;
    let x1 = (x0 + 1).min(nx - 1);
    let y1 = (y0 + 1).min(ny - 1);
    let tx = fx - x0 as f64;
    let ty = fy - y0 as f64;
    let a = field.at(x0, y0) * (1.0 - tx) + field.at(x1, y0) * tx;
    let b = field.at(x0, y1) * (1.0 - tx) + field.at(x1, y1) * tx;
    a * (1.0 - ty) + b * ty
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_heatsim::Grid;

    #[test]
    fn constant_field_renders_uniformly() {
        let g = Grid::filled(8, 8, 3.0);
        let opts = RenderOptions {
            width: 16,
            height: 16,
            colormap: Colormap::Gray,
            range: Some((0.0, 6.0)),
        };
        let fb = render_field(&g, &opts);
        let mid = Colormap::Gray.map(0.5);
        assert!(fb.as_bytes().chunks(3).all(|p| p == mid));
    }

    #[test]
    fn gradient_field_renders_a_gradient() {
        let g = Grid::from_fn(32, 32, |x, _| x);
        let fb = render_field(
            &g,
            &RenderOptions {
                width: 64,
                height: 8,
                colormap: Colormap::Gray,
                range: Some((0.0, 1.0)),
            },
        );
        // Left darker than right.
        let l = Colormap::luminance(fb.get(2, 4));
        let r = Colormap::luminance(fb.get(61, 4));
        assert!(l < r, "{l} !< {r}");
    }

    #[test]
    fn autoscale_uses_field_extrema() {
        let mut g = Grid::filled(8, 8, 5.0);
        g.set(0, 0, 1.0);
        g.set(7, 7, 9.0);
        let fb = render_field(
            &g,
            &RenderOptions {
                width: 8,
                height: 8,
                colormap: Colormap::Gray,
                range: None,
            },
        );
        assert_eq!(fb.get(0, 0), [0, 0, 0]);
        assert_eq!(fb.get(7, 7), [255, 255, 255]);
    }

    #[test]
    fn rendering_is_deterministic_and_parallel_safe() {
        let g = Grid::from_fn(64, 48, |x, y| (9.0 * x).sin() * (7.0 * y).cos());
        let opts = RenderOptions::default();
        let a = render_field(&g, &opts);
        let b = render_field(&g, &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn bilinear_interpolates_between_cells() {
        let g = Grid::from_fn(4, 4, |x, _| x);
        let left = bilinear(&g, 0.0, 0.5);
        let mid = bilinear(&g, 0.5, 0.5);
        let right = bilinear(&g, 1.0, 0.5);
        assert!(left < mid && mid < right);
        assert!((mid - 0.5).abs() < 0.01);
    }

    #[test]
    fn set_clips_out_of_bounds() {
        let mut fb = Framebuffer::new(4, 4);
        fb.set(100, 100, [255, 0, 0]); // must not panic
        assert_eq!(fb.get(3, 3), [0, 0, 0]);
    }

    #[test]
    fn line_drawing_touches_endpoints() {
        let mut fb = Framebuffer::new(16, 16);
        fb.draw_line(1.0, 1.0, 12.0, 9.0, [0, 255, 0]);
        assert_eq!(fb.get(1, 1), [0, 255, 0]);
        assert_eq!(fb.get(12, 9), [0, 255, 0]);
    }

    #[test]
    fn from_bytes_validates_length() {
        assert!(Framebuffer::from_bytes(2, 2, vec![0; 12]).is_some());
        assert!(Framebuffer::from_bytes(2, 2, vec![0; 11]).is_none());
        assert!(Framebuffer::from_bytes(0, 2, vec![]).is_none());
    }
}
