//! Marching-squares isocontour extraction.
//!
//! Produces line segments (in normalized `[0,1]²` coordinates) where the
//! field crosses a given iso-value, with linear interpolation along cell
//! edges — the standard 16-case marching-squares table, with the two
//! ambiguous saddle cases resolved by the cell-center average.

use greenness_heatsim::Grid;

use crate::colormap::Rgb;
use crate::raster::Framebuffer;

/// One contour line segment in normalized coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContourSegment {
    /// Segment start `(x, y)`.
    pub a: (f64, f64),
    /// Segment end `(x, y)`.
    pub b: (f64, f64),
}

/// Extract the iso-contour of `field` at `level` as line segments.
pub fn contour_lines(field: &Grid, level: f64) -> Vec<ContourSegment> {
    let nx = field.nx();
    let ny = field.ny();
    let mut segments = Vec::new();
    // Normalized position of sample (i, j) — cell centers.
    let px = |i: usize| (i as f64 + 0.5) / nx as f64;
    let py = |j: usize| (j as f64 + 0.5) / ny as f64;
    // Interpolate the crossing along an edge between two sample values.
    let t_of = |v0: f64, v1: f64| {
        if (v1 - v0).abs() < 1e-300 {
            0.5
        } else {
            ((level - v0) / (v1 - v0)).clamp(0.0, 1.0)
        }
    };

    for j in 0..ny.saturating_sub(1) {
        for i in 0..nx.saturating_sub(1) {
            // Corner values, counterclockwise from bottom-left.
            let v00 = field.at(i, j);
            let v10 = field.at(i + 1, j);
            let v11 = field.at(i + 1, j + 1);
            let v01 = field.at(i, j + 1);
            let mut case = 0u8;
            if v00 >= level {
                case |= 1;
            }
            if v10 >= level {
                case |= 2;
            }
            if v11 >= level {
                case |= 4;
            }
            if v01 >= level {
                case |= 8;
            }
            if case == 0 || case == 15 {
                continue;
            }
            // Edge crossing points.
            let bottom = (px(i) + t_of(v00, v10) * (px(i + 1) - px(i)), py(j));
            let top = (px(i) + t_of(v01, v11) * (px(i + 1) - px(i)), py(j + 1));
            let left = (px(i), py(j) + t_of(v00, v01) * (py(j + 1) - py(j)));
            let right = (px(i + 1), py(j) + t_of(v10, v11) * (py(j + 1) - py(j)));
            let mut emit = |a: (f64, f64), b: (f64, f64)| {
                segments.push(ContourSegment { a, b });
            };
            match case {
                1 => emit(left, bottom),
                2 => emit(bottom, right),
                3 => emit(left, right),
                4 => emit(right, top),
                5 => {
                    // Saddle: disambiguate by the center value.
                    let center = (v00 + v10 + v11 + v01) / 4.0;
                    if center >= level {
                        emit(left, top);
                        emit(bottom, right);
                    } else {
                        emit(left, bottom);
                        emit(right, top);
                    }
                }
                6 => emit(bottom, top),
                7 => emit(left, top),
                8 => emit(top, left),
                9 => emit(top, bottom),
                10 => {
                    let center = (v00 + v10 + v11 + v01) / 4.0;
                    if center >= level {
                        emit(top, right);
                        emit(left, bottom);
                    } else {
                        emit(top, left);
                        emit(bottom, right);
                    }
                }
                11 => emit(top, right),
                12 => emit(right, left),
                13 => emit(right, bottom),
                14 => emit(bottom, left),
                _ => unreachable!("cases 0 and 15 already skipped"),
            }
        }
    }
    segments
}

/// Rasterize contour segments onto an image.
pub fn draw_contours(fb: &mut Framebuffer, segments: &[ContourSegment], color: Rgb) {
    let w = fb.width() as f64;
    let h = fb.height() as f64;
    for s in segments {
        fb.draw_line(
            s.a.0 * (w - 1.0),
            s.a.1 * (h - 1.0),
            s.b.0 * (w - 1.0),
            s.b.1 * (h - 1.0),
            color,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_heatsim::Grid;

    #[test]
    fn constant_field_has_no_contours() {
        let g = Grid::filled(16, 16, 1.0);
        assert!(contour_lines(&g, 0.5).is_empty());
        assert!(contour_lines(&g, 1.5).is_empty());
    }

    #[test]
    fn vertical_gradient_gives_horizontal_contour() {
        let g = Grid::from_fn(16, 16, |_, y| y);
        let segs = contour_lines(&g, 0.5);
        assert!(!segs.is_empty());
        for s in &segs {
            assert!(
                (s.a.1 - 0.5).abs() < 0.05,
                "segment not on the mid-line: {s:?}"
            );
            assert!((s.b.1 - 0.5).abs() < 0.05);
        }
    }

    #[test]
    fn circle_contour_has_correct_radius() {
        let g = Grid::from_fn(64, 64, |x, y| {
            let dx = x - 0.5;
            let dy = y - 0.5;
            (dx * dx + dy * dy).sqrt()
        });
        let segs = contour_lines(&g, 0.25);
        assert!(segs.len() > 20);
        for s in &segs {
            for (x, y) in [s.a, s.b] {
                let r = ((x - 0.5).powi(2) + (y - 0.5).powi(2)).sqrt();
                assert!((r - 0.25).abs() < 0.02, "point ({x},{y}) at radius {r}");
            }
        }
    }

    #[test]
    fn crossing_count_matches_topology() {
        // A single peak: every iso-level below the peak and above the floor
        // yields a closed loop (segment count > 0 and each segment endpoint
        // shared-ish). We check non-emptiness at several levels.
        let g = Grid::from_fn(32, 32, |x, y| {
            (-((x - 0.5).powi(2) + (y - 0.5).powi(2)) * 30.0).exp()
        });
        for level in [0.2, 0.4, 0.6, 0.8] {
            assert!(
                !contour_lines(&g, level).is_empty(),
                "no contour at {level}"
            );
        }
    }

    #[test]
    fn saddle_cases_emit_two_segments() {
        // Checkerboard 2x2: high at two opposite corners.
        let mut g = Grid::zeros(3, 3);
        g.set(0, 0, 1.0);
        g.set(2, 2, 1.0);
        g.set(1, 1, 0.0);
        let segs = contour_lines(&g, 0.5);
        assert!(segs.len() >= 2);
    }

    #[test]
    fn drawing_contours_marks_pixels() {
        let g = Grid::from_fn(16, 16, |_, y| y);
        let segs = contour_lines(&g, 0.5);
        let mut fb = Framebuffer::new(32, 32);
        draw_contours(&mut fb, &segs, [255, 0, 0]);
        let reds = fb
            .as_bytes()
            .chunks(3)
            .filter(|p| p[0] == 255 && p[1] == 0)
            .count();
        assert!(reds >= 16, "contour line barely drawn: {reds} pixels");
    }
}
