//! Color lookup tables for scalar fields.

/// An RGB color, 8 bits per channel.
pub type Rgb = [u8; 3];

/// A named colormap: maps a normalized scalar in `[0, 1]` to RGB by linear
/// interpolation through fixed control points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Colormap {
    /// Dark blue → green → yellow, perceptually-ordered (viridis-like).
    Viridis,
    /// Black → red → yellow → white (classic "hot").
    Hot,
    /// Blue → white → red diverging map.
    CoolWarm,
    /// Plain grayscale.
    Gray,
}

impl Colormap {
    fn stops(self) -> &'static [Rgb] {
        match self {
            Colormap::Viridis => &[
                [68, 1, 84],
                [59, 82, 139],
                [33, 145, 140],
                [94, 201, 98],
                [253, 231, 37],
            ],
            Colormap::Hot => &[[0, 0, 0], [230, 0, 0], [255, 210, 0], [255, 255, 255]],
            Colormap::CoolWarm => &[[59, 76, 192], [221, 221, 221], [180, 4, 38]],
            Colormap::Gray => &[[0, 0, 0], [255, 255, 255]],
        }
    }

    /// Map normalized value `t` (clamped to `[0, 1]`) to a color.
    pub fn map(self, t: f64) -> Rgb {
        let stops = self.stops();
        let t = if t.is_nan() { 0.0 } else { t.clamp(0.0, 1.0) };
        let scaled = t * (stops.len() - 1) as f64;
        let lo = (scaled.floor() as usize).min(stops.len() - 2);
        let frac = scaled - lo as f64;
        let a = stops[lo];
        let b = stops[lo + 1];
        [
            lerp_u8(a[0], b[0], frac),
            lerp_u8(a[1], b[1], frac),
            lerp_u8(a[2], b[2], frac),
        ]
    }

    /// Approximate perceived luminance of a color (Rec. 601 weights).
    pub fn luminance(c: Rgb) -> f64 {
        0.299 * c[0] as f64 + 0.587 * c[1] as f64 + 0.114 * c[2] as f64
    }
}

fn lerp_u8(a: u8, b: u8, t: f64) -> u8 {
    (a as f64 + (b as f64 - a as f64) * t)
        .round()
        .clamp(0.0, 255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_hit_the_extreme_stops() {
        assert_eq!(Colormap::Gray.map(0.0), [0, 0, 0]);
        assert_eq!(Colormap::Gray.map(1.0), [255, 255, 255]);
        assert_eq!(Colormap::Viridis.map(0.0), [68, 1, 84]);
        assert_eq!(Colormap::Viridis.map(1.0), [253, 231, 37]);
    }

    #[test]
    fn out_of_range_and_nan_clamp() {
        assert_eq!(Colormap::Hot.map(-5.0), Colormap::Hot.map(0.0));
        assert_eq!(Colormap::Hot.map(7.0), Colormap::Hot.map(1.0));
        assert_eq!(Colormap::Hot.map(f64::NAN), Colormap::Hot.map(0.0));
    }

    #[test]
    fn midpoint_interpolates() {
        assert_eq!(Colormap::Gray.map(0.5), [128, 128, 128]);
    }

    #[test]
    fn sequential_maps_increase_in_luminance() {
        for cm in [Colormap::Viridis, Colormap::Hot, Colormap::Gray] {
            let mut prev = -1.0;
            for k in 0..=20 {
                let l = Colormap::luminance(cm.map(k as f64 / 20.0));
                assert!(
                    l >= prev - 3.0,
                    "{cm:?} not monotone-ish at {k}: {l} after {prev}"
                );
                prev = l;
            }
        }
    }

    #[test]
    fn diverging_map_is_light_in_the_middle() {
        let mid = Colormap::luminance(Colormap::CoolWarm.map(0.5));
        let lo = Colormap::luminance(Colormap::CoolWarm.map(0.0));
        let hi = Colormap::luminance(Colormap::CoolWarm.map(1.0));
        assert!(mid > lo && mid > hi);
    }
}
