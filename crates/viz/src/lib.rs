//! # greenness-viz
//!
//! The visualization stage shared by both pipelines: a small software
//! renderer that turns heat-field snapshots into images. In the
//! post-processing pipeline it consumes snapshots read back from disk; in the
//! in-situ pipeline it renders directly from the solver's memory — the only
//! difference the paper studies is *where the data comes from*, so the
//! renderer itself is deliberately identical in both (and the
//! `image_equivalence` integration test asserts the outputs are
//! byte-identical).
//!
//! Components: perceptual-ish [`colormap`]s, a scalar-field [`raster`]izer,
//! marching-squares [`contour`] extraction, a [`image`] (PPM) codec whose
//! output flows through the simulated filesystem, [`sample`] operators for
//! the data-sampling optimization the paper cites (refs [21]–[23]), and the
//! [`cost`] model that charges rendering work to the platform.

pub mod colormap;
pub mod contour;
pub mod cost;
pub mod image;
pub mod raster;
pub mod sample;

pub use colormap::Colormap;
pub use contour::contour_lines;
pub use cost::RenderCostModel;
pub use image::{decode_ppm, encode_ppm, ppm_size_bytes};
pub use raster::{render_field, Framebuffer, RenderOptions};
pub use sample::{stride_sample, threshold_sample};
