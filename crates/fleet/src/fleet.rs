//! The fleet itself: N in-process serve shards behind a consistent-hash
//! router, with hot-key replication and churn-driven rebalancing.
//!
//! Every routing decision is deterministic: the ring is a pure function of
//! its seed, hot-key spreading is a pure function of the router's per-key
//! access count, and churn fires from a seeded `FaultInjector` slot consumed
//! once per compute request — so a replay driven sequentially through
//! [`Fleet::handle_line`] produces the same response log and router metrics
//! on every run, for any `--jobs` value, and (in the fault-free,
//! eviction-free regime the CI artifacts pin) for any shard count.
//!
//! The router never drops a request toward the client: an injected
//! connection drop inside a shard is rerouted to the next replica candidate
//! (counted under `retries.fleet.reroute`) until the plan's retry budget is
//! exhausted, and only then surfaces as a structured `internal` error. A
//! rerouted request that lands on a cold replica recomputes — byte-identical
//! by the serve crate's cache discipline — so **no acked result is ever
//! lost** to churn: any response the fleet has acked can be asked for again
//! and comes back byte-for-byte the same.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use greenness_faults::{FaultInjector, FaultPlan, Site};
use greenness_serve::json::Json;
use greenness_serve::protocol::{self, ErrorCode, Request};
use greenness_serve::{Disposition, Service, ServiceConfig};
use greenness_trace::hash::blake2s256;
use greenness_trace::MetricsRegistry;

use crate::ring::{Ring, DEFAULT_VNODES};

/// Accesses to a key before the router starts spreading its reads over
/// replicas (and filling them). Three warm reads is the classic "this is a
/// dashboard, not a one-off" signal.
pub const DEFAULT_HOT_THRESHOLD: u64 = 3;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Fleet topology and tuning.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Shard instances (ids `0..shards`).
    pub shards: u32,
    /// Replication factor for hot keys (primary included). Clamped to the
    /// live shard count at routing time.
    pub replicas: usize,
    /// Seed for ring placement and (by convention) the workload generator.
    pub ring_seed: u64,
    /// Virtual nodes per shard.
    pub vnodes: usize,
    /// Worker threads inside each shard's `sweep` handler; never visible in
    /// any output byte.
    pub jobs: usize,
    /// Per-shard result-cache byte budget.
    pub cache_bytes: usize,
    /// Per-shard execution slots.
    pub slots: usize,
    /// Per-shard admission queue depth.
    pub queue_depth: usize,
    /// Accesses before a key counts as hot.
    pub hot_threshold: u64,
    /// Per-shard steering-session slots (`steer.*` ops).
    pub session_slots: usize,
    /// Fault schedule: drives shard churn at the router (`Site::FleetChurn`)
    /// and derives an independent per-shard plan for connection drops and
    /// slow handlers.
    pub faults: Option<FaultPlan>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            replicas: 2,
            ring_seed: 42,
            vnodes: DEFAULT_VNODES,
            jobs: 4,
            cache_bytes: 1 << 20,
            slots: 4,
            queue_depth: 16,
            hot_threshold: DEFAULT_HOT_THRESHOLD,
            session_slots: 8,
            faults: None,
        }
    }
}

/// A churn event the router applied while handling a request, in virtual
/// request order (the harness timestamps these at the request's scheduled
/// send time for the energy ledger).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A live shard was lost: ring arcs handed to its successors, cache
    /// gone.
    Lost(u32),
    /// A dead shard rejoined with a fresh cache and reclaimed exactly its
    /// old arcs; `moved` entries were copied in from the shards that had
    /// been covering for it.
    Joined {
        /// The rejoining shard.
        shard: u32,
        /// Cache entries rebalanced onto it.
        moved: u64,
    },
}

/// One request's trip through the fleet.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The response line (no trailing newline).
    pub line: String,
    /// The shard that produced the response (`None` for router-level
    /// replies: control ops, bad requests, no-shard errors).
    pub shard: Option<u32>,
    /// What happened, from the serving shard's point of view.
    pub disposition: Disposition,
    /// Simulated compute seconds (nonzero only on a miss).
    pub virtual_s: f64,
    /// Times the request was rerouted to another replica after an injected
    /// connection drop.
    pub reroutes: u32,
    /// `true` for a granted `shutdown` op — every live shard's gate is
    /// already closed when this returns.
    pub shutdown: bool,
    /// Churn applied while handling this request (at most one event).
    pub events: Vec<ChurnEvent>,
}

/// Where a steering session lives and how to rebuild it elsewhere.
struct SessionHome {
    /// Current home shard.
    shard: u32,
    /// The exact service instance holding the session state. Compared by
    /// pointer against the shard slot: a rejoined shard is a *fresh*
    /// instance, so a stale pointer means the session must be replayed even
    /// though the shard id is live again.
    service: Arc<Service>,
    /// Every acked `steer.*` request line, in order. Replaying this log
    /// into a fresh shard reconstructs the session bit-identically (the
    /// engine is deterministic and replays duplicate seqs from its own
    /// record).
    log: Vec<String>,
}

/// Mutable topology: which shards are live and who owns which arc.
struct FleetState {
    ring: Ring,
    /// Shard services by id. Replaced with a fresh instance on rejoin.
    services: Vec<Arc<Service>>,
    live: Vec<bool>,
    /// Router-side access counts by cache key — the hot-key signal.
    access: HashMap<[u8; 32], u64>,
    /// Steering sessions pinned to their home shard.
    sessions: HashMap<String, SessionHome>,
}

impl FleetState {
    fn live_count(&self) -> usize {
        self.live.iter().filter(|l| **l).count()
    }

    fn live_ids(&self) -> Vec<u32> {
        (0..self.live.len() as u32)
            .filter(|&i| self.live[i as usize])
            .collect()
    }
}

/// The fleet: shards, ring, router metrics, and the churn schedule.
pub struct Fleet {
    config: FleetConfig,
    state: Mutex<FleetState>,
    metrics: Mutex<MetricsRegistry>,
    churn: Option<Mutex<FaultInjector>>,
}

impl Fleet {
    /// Boot a fleet of `config.shards` fresh shards.
    pub fn new(config: FleetConfig) -> Fleet {
        let services = (0..config.shards)
            .map(|i| Arc::new(Service::new(shard_config(&config, i))))
            .collect();
        Fleet {
            state: Mutex::new(FleetState {
                ring: Ring::new(config.ring_seed, config.shards, config.vnodes),
                services,
                live: vec![true; config.shards as usize],
                access: HashMap::new(),
                sessions: HashMap::new(),
            }),
            metrics: Mutex::new(MetricsRegistry::default()),
            churn: config
                .faults
                .map(|plan| Mutex::new(plan.injector(Site::FleetChurn, 0))),
            config,
        }
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Live shard ids, ascending.
    pub fn live_shards(&self) -> Vec<u32> {
        lock(&self.state).live_ids()
    }

    /// Snapshot of the router's `fleet.*` registry.
    pub fn metrics_clone(&self) -> MetricsRegistry {
        lock(&self.metrics).clone()
    }

    /// Snapshots of every shard's own registry, labeled `shard/<id>`.
    /// Debug material: per-shard counters depend on the shard count by
    /// construction, so these never enter the byte-compared artifacts.
    pub fn shard_metrics(&self) -> Vec<(String, MetricsRegistry)> {
        let state = lock(&self.state);
        state
            .services
            .iter()
            .enumerate()
            .map(|(i, s)| (format!("shard/{i}"), s.metrics_clone()))
            .collect()
    }

    /// The shard service for `id` (fleet CLI debug listeners).
    pub fn shard_service(&self, id: u32) -> Option<Arc<Service>> {
        lock(&self.state).services.get(id as usize).map(Arc::clone)
    }

    /// Close every live shard's gate (drain).
    pub fn shutdown(&self) {
        let state = lock(&self.state);
        for (i, service) in state.services.iter().enumerate() {
            if state.live[i] {
                service.gate().shutdown();
            }
        }
    }

    fn count(&self, name: &'static str, by: u64) {
        lock(&self.metrics).incr(name, by);
    }

    /// Route one request line through the fleet and produce one response.
    pub fn handle_line(&self, line: &str) -> FleetOutcome {
        let req = match protocol::parse_request(line) {
            Ok(req) => req,
            Err((id, msg)) => {
                self.count("fleet.bad_request", 1);
                return router_reply(
                    protocol::error_line(&id, ErrorCode::BadRequest, &msg),
                    Disposition::Error,
                );
            }
        };
        match req.op.as_str() {
            "metrics" => {
                self.count("fleet.control", 1);
                let body = lock(&self.metrics).to_json();
                return router_reply(protocol::ok_line(&req.id, &body), Disposition::Control);
            }
            "shutdown" => {
                self.count("fleet.control", 1);
                self.shutdown();
                return FleetOutcome {
                    shutdown: true,
                    ..router_reply(
                        protocol::ok_line(&req.id, "{\"status\":\"draining\"}"),
                        Disposition::Control,
                    )
                };
            }
            _ => {}
        }

        // Steering sessions are stateful: they pin to a home shard instead
        // of routing by cache key, and they survive churn by log replay.
        if req.op.starts_with("steer.") {
            return self.handle_steer(&req, line);
        }

        // One churn slot per compute request, consumed *before* routing, so
        // the schedule is a pure function of the request index.
        let events = self.apply_churn();

        self.count("fleet.requests", 1);
        let (candidates, first, services) = {
            let mut state = lock(&self.state);
            let live = state.live_count();
            if live == 0 {
                drop(state);
                self.count("fleet.err", 1);
                return router_reply(
                    protocol::error_line(&req.id, ErrorCode::Internal, "no live shards"),
                    Disposition::Error,
                );
            }
            let k_eff = self.config.replicas.clamp(1, live);
            let candidates = state.ring.replicas(&req.cache_key, k_eff);
            let c = {
                let entry = state.access.entry(req.cache_key).or_insert(0);
                let c = *entry;
                *entry += 1;
                c
            };
            // Hot keys round-robin over the candidate list; cold keys stay
            // on the primary so the cache warms once, in one place.
            let first = if c >= self.config.hot_threshold {
                ((c - self.config.hot_threshold) % candidates.len() as u64) as usize
            } else {
                0
            };
            let services: Vec<Arc<Service>> = candidates
                .iter()
                .map(|&s| Arc::clone(&state.services[s as usize]))
                .collect();
            (candidates, first, services)
        };
        if first != 0 {
            self.count("fleet.replica.reads", 1);
        }

        // Serve, rerouting past injected connection drops.
        let budget = self.config.faults.map_or(0, |plan| plan.max_retries);
        let mut reroutes = 0u32;
        let mut at = first;
        let outcome = loop {
            let outcome = services[at].handle_line(line);
            if outcome.disposition != Disposition::Dropped {
                break Some((at, outcome));
            }
            if reroutes >= budget {
                break None;
            }
            reroutes += 1;
            self.count("retries.fleet.reroute", 1);
            at = (at + 1) % services.len();
        };
        let Some((served_at, outcome)) = outcome else {
            self.count("fleet.err", 1);
            return FleetOutcome {
                reroutes,
                ..router_reply(
                    protocol::error_line(
                        &req.id,
                        ErrorCode::Internal,
                        "connection dropped; retry budget exhausted",
                    ),
                    Disposition::Error,
                )
            };
        };
        let shard = candidates[served_at];

        match outcome.disposition {
            Disposition::Hit => {
                self.count("fleet.hits", 1);
                self.count("fleet.ok", 1);
            }
            Disposition::Miss => {
                self.count("fleet.misses", 1);
                self.count("fleet.ok", 1);
                if outcome.virtual_s > 0.0 {
                    lock(&self.metrics).observe("fleet.virtual_s", outcome.virtual_s);
                }
            }
            _ => self.count("fleet.err", 1),
        }

        // Replicate hot payloads: once a key crosses the threshold, every
        // candidate carries it, so spread reads hit warm caches.
        if matches!(outcome.disposition, Disposition::Hit | Disposition::Miss) {
            let c_after = {
                let state = lock(&self.state);
                state.access.get(&req.cache_key).copied().unwrap_or(0)
            };
            if c_after >= self.config.hot_threshold {
                if let Some(payload) = outcome.response.payload() {
                    let mut fills = 0u64;
                    for (i, service) in services.iter().enumerate() {
                        if i != served_at && service.cache_fill(req.cache_key, Arc::clone(payload))
                        {
                            fills += 1;
                        }
                    }
                    if fills > 0 {
                        self.count("fleet.replica.fills", fills);
                    }
                }
            }
        }

        FleetOutcome {
            line: outcome.line(),
            shard: Some(shard),
            disposition: outcome.disposition,
            virtual_s: outcome.virtual_s,
            reroutes,
            shutdown: false,
            events,
        }
    }

    /// Route one `steer.*` request. Sessions are pinned: every op for a
    /// session goes to its home shard (not the ring's replica set), so the
    /// live pipeline state is in exactly one place. Two failure modes are
    /// healed here:
    ///
    /// * **Connection drop inside the home shard** — the shard applies the
    ///   op *before* its drop fault fires, so the router simply retries the
    ///   same line on the same shard and the engine answers from its seq
    ///   replay log (`retries.fleet.session.resume`).
    /// * **Home shard churned away** — the session re-homes to the ring's
    ///   current owner for its key and the acked-op log is replayed into
    ///   the fresh shard, rebuilding the session bit-identically
    ///   (`fleet.session.rehomed` / `fleet.session.replayed`).
    fn handle_steer(&self, req: &Request, line: &str) -> FleetOutcome {
        let events = self.apply_churn();
        self.count("fleet.requests", 1);
        let session = req
            .params
            .get("session")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let key = blake2s256(format!("fleet.session/{session}").as_bytes());

        // Find (or re-establish) the home shard.
        let homed = {
            let state = lock(&self.state);
            if state.live_count() == 0 {
                drop(state);
                self.count("fleet.err", 1);
                return FleetOutcome {
                    events,
                    ..router_reply(
                        protocol::error_line(&req.id, ErrorCode::Internal, "no live shards"),
                        Disposition::Error,
                    )
                };
            }
            match state.sessions.get(&session) {
                Some(h)
                    if state.live[h.shard as usize]
                        && Arc::ptr_eq(&h.service, &state.services[h.shard as usize]) =>
                {
                    Ok((h.shard, Arc::clone(&h.service)))
                }
                Some(h) => Err(Some(h.log.clone())),
                None => Err(None),
            }
        };
        let (shard, service) = match homed {
            Ok(home) => home,
            Err(lost_log) => {
                // (Re-)home on the ring's current owner for the session key.
                let (shard, service) = {
                    let state = lock(&self.state);
                    let Some(shard) = state.ring.route(&key) else {
                        drop(state);
                        self.count("fleet.err", 1);
                        return FleetOutcome {
                            events,
                            ..router_reply(
                                protocol::error_line(
                                    &req.id,
                                    ErrorCode::Internal,
                                    "no live shards",
                                ),
                                Disposition::Error,
                            )
                        };
                    };
                    (shard, Arc::clone(&state.services[shard as usize]))
                };
                if let Some(log) = lost_log {
                    for acked in &log {
                        // Replay commits even when the shard's own fault
                        // schedule "drops" the reply: steer ops apply
                        // before their fault slot.
                        let _ = service.handle_line(acked);
                    }
                    self.count("fleet.session.rehomed", 1);
                    self.count("fleet.session.replayed", log.len() as u64);
                    let mut state = lock(&self.state);
                    if let Some(h) = state.sessions.get_mut(&session) {
                        h.shard = shard;
                        h.service = Arc::clone(&service);
                    }
                }
                (shard, service)
            }
        };

        // Serve on the pinned shard, resuming through injected drops.
        let budget = self.config.faults.map_or(0, |plan| plan.max_retries);
        let mut retries = 0u32;
        let outcome = loop {
            let outcome = service.handle_line(line);
            if outcome.disposition != Disposition::Dropped {
                break Some(outcome);
            }
            if retries >= budget {
                break None;
            }
            retries += 1;
            self.count("retries.fleet.session.resume", 1);
        };
        let Some(outcome) = outcome else {
            self.count("fleet.err", 1);
            return FleetOutcome {
                reroutes: retries,
                events,
                ..router_reply(
                    protocol::error_line(
                        &req.id,
                        ErrorCode::Internal,
                        "connection dropped; retry budget exhausted",
                    ),
                    Disposition::Error,
                )
            };
        };

        if outcome.disposition == Disposition::Session {
            self.count("fleet.ok", 1);
            // Record the acked line so a future re-home can replay it.
            let mut state = lock(&self.state);
            let entry = state
                .sessions
                .entry(session)
                .or_insert_with(|| SessionHome {
                    shard,
                    service: Arc::clone(&service),
                    log: Vec::new(),
                });
            entry.shard = shard;
            entry.service = Arc::clone(&service);
            entry.log.push(line.to_string());
        } else {
            self.count("fleet.err", 1);
        }

        FleetOutcome {
            line: outcome.line(),
            shard: Some(shard),
            disposition: outcome.disposition,
            virtual_s: outcome.virtual_s,
            reroutes: retries,
            shutdown: false,
            events,
        }
    }

    /// Consume one churn slot; apply at most one node loss or rejoin.
    fn apply_churn(&self) -> Vec<ChurnEvent> {
        let Some(churn) = &self.churn else {
            return Vec::new();
        };
        let Some(entropy) = lock(churn).next() else {
            return Vec::new();
        };
        let mut state = lock(&self.state);
        let pick = entropy >> 1;
        if entropy & 1 == 0 {
            // Kill — but never the last shard standing.
            let live = state.live_ids();
            if live.len() <= 1 {
                return Vec::new();
            }
            let victim = live[(pick % live.len() as u64) as usize];
            state.ring.remove(victim);
            state.live[victim as usize] = false;
            drop(state);
            self.count("fleet.shard.lost", 1);
            vec![ChurnEvent::Lost(victim)]
        } else {
            // Rejoin a dead shard with a fresh cache, then rebalance: copy
            // in every entry whose primary arc the joiner just reclaimed.
            let dead: Vec<u32> = (0..state.live.len() as u32)
                .filter(|&i| !state.live[i as usize])
                .collect();
            if dead.is_empty() {
                return Vec::new();
            }
            let joiner = dead[(pick % dead.len() as u64) as usize];
            let fresh = Arc::new(Service::new(shard_config(&self.config, joiner)));
            state.services[joiner as usize] = Arc::clone(&fresh);
            state.live[joiner as usize] = true;
            state.ring.add(joiner);
            let mut moved = 0u64;
            for donor in state.live_ids() {
                if donor == joiner {
                    continue;
                }
                let donor_svc = Arc::clone(&state.services[donor as usize]);
                for key in donor_svc.cache_keys() {
                    if state.ring.route(&key) == Some(joiner) {
                        if let Some(payload) = donor_svc.cache_share(&key) {
                            if fresh.cache_fill(key, payload) {
                                moved += 1;
                            }
                        }
                    }
                }
            }
            drop(state);
            self.count("fleet.shard.joined", 1);
            if moved > 0 {
                self.count("fleet.rebalance.moved", moved);
            }
            vec![ChurnEvent::Joined {
                shard: joiner,
                moved,
            }]
        }
    }
}

fn shard_config(config: &FleetConfig, shard: u32) -> ServiceConfig {
    ServiceConfig {
        jobs: config.jobs,
        cache_bytes: config.cache_bytes,
        slots: config.slots,
        queue_depth: config.queue_depth,
        session_slots: config.session_slots,
        // Each shard gets an independent schedule so killing one never
        // reshuffles another's faults.
        faults: config
            .faults
            .map(|plan| plan.derive(&format!("fleet.shard/{shard}"))),
    }
}

fn router_reply(line: String, disposition: Disposition) -> FleetOutcome {
    FleetOutcome {
        line,
        shard: None,
        disposition,
        virtual_s: 0.0,
        reroutes: 0,
        shutdown: false,
        events: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_serve::SCHEMA;

    fn line(op_and_params: &str) -> String {
        format!("{{\"schema\":\"{SCHEMA}\",{op_and_params}}}")
    }

    #[test]
    fn requests_route_and_answer_through_shards() {
        let fleet = Fleet::new(FleetConfig::default());
        let out = fleet.handle_line(&line(r#""id":1,"op":"advisor","params":{}"#));
        assert!(out.line.contains("\"ok\":true"), "{}", out.line);
        assert!(out.shard.is_some());
        assert_eq!(out.disposition, Disposition::Miss);
        let again = fleet.handle_line(&line(r#""id":1,"op":"advisor","params":{}"#));
        assert_eq!(again.disposition, Disposition::Hit);
        assert_eq!(again.shard, out.shard, "cold keys stay on their primary");
        assert_eq!(out.line, again.line, "hit must be byte-identical");
        let m = fleet.metrics_clone();
        assert_eq!(m.counter("fleet.requests"), 2);
        assert_eq!(m.counter("fleet.hits"), 1);
        assert_eq!(m.counter("fleet.misses"), 1);
        assert_eq!(m.counter("fleet.ok"), 2);
    }

    #[test]
    fn hot_keys_spread_over_filled_replicas() {
        let config = FleetConfig {
            hot_threshold: 2,
            ..FleetConfig::default()
        };
        let fleet = Fleet::new(config);
        let request = line(r#""id":5,"op":"advisor","params":{"passes":3}"#);
        let mut shards = Vec::new();
        for _ in 0..6 {
            let out = fleet.handle_line(&request);
            assert!(out.line.contains("\"ok\":true"));
            shards.push(out.shard.expect("served by a shard"));
        }
        let distinct: std::collections::BTreeSet<u32> = shards.iter().copied().collect();
        assert_eq!(distinct.len(), 2, "hot key must spread over k=2 replicas");
        let m = fleet.metrics_clone();
        assert!(m.counter("fleet.replica.reads") > 0);
        assert!(m.counter("fleet.replica.fills") > 0);
        // After the fill, replica reads are warm hits, not recomputes.
        assert_eq!(m.counter("fleet.misses"), 1);
        assert_eq!(m.counter("fleet.hits"), 5);
    }

    #[test]
    fn control_ops_answer_at_the_router() {
        let fleet = Fleet::new(FleetConfig::default());
        fleet.handle_line(&line(r#""id":1,"op":"advisor","params":{}"#));
        let m = fleet.handle_line(&line(r#""id":2,"op":"metrics""#));
        assert!(m.line.contains("fleet.requests"), "{}", m.line);
        assert_eq!(m.shard, None);
        let down = fleet.handle_line(&line(r#""id":3,"op":"shutdown""#));
        assert!(down.shutdown);
        // Gates are closed: a queued-path request is refused, a cached one
        // still answers (hits bypass admission).
        let shed = fleet.handle_line(&line(r#""id":4,"op":"whatif","params":{}"#));
        assert!(shed.line.contains("shutting_down"), "{}", shed.line);
        let warm = fleet.handle_line(&line(r#""id":1,"op":"advisor","params":{}"#));
        assert!(warm.line.contains("\"ok\":true"), "{}", warm.line);
    }

    #[test]
    fn steering_sessions_pin_to_one_shard_and_answer() {
        let fleet = Fleet::new(FleetConfig::default());
        let attach = fleet.handle_line(&line(
            r#""id":1,"op":"steer.attach","params":{"session":"pin","interval":2}"#,
        ));
        assert!(attach.line.contains("\"ok\":true"), "{}", attach.line);
        assert_eq!(attach.disposition, Disposition::Session);
        let home = attach.shard.expect("homed");
        for seq in 1..=3 {
            let out = fleet.handle_line(&line(&format!(
                r#""id":{},"op":"steer.render","params":{{"session":"pin","seq":{seq},"steps":2}}"#,
                seq + 1
            )));
            assert!(out.line.contains("\"ok\":true"), "{}", out.line);
            assert_eq!(out.shard, Some(home), "session must stay pinned");
        }
        assert_eq!(fleet.metrics_clone().counter("fleet.ok"), 4);
    }

    #[test]
    fn steering_sessions_survive_churn_by_replay() {
        // Unfaulted reference transcript.
        let script = |fleet: &Fleet| -> Vec<String> {
            let mut t = Vec::new();
            for (id, body) in [
                (1, r#""op":"steer.attach","params":{"session":"c","interval":2}"#.to_string()),
                (2, r#""op":"steer.render","params":{"session":"c","seq":1,"steps":3}"#.to_string()),
                (3, r#""op":"steer.adjust","params":{"session":"c","seq":2,"kind":"io_interval","io_interval":4}"#.to_string()),
                (4, r#""op":"steer.render","params":{"session":"c","seq":3,"steps":4}"#.to_string()),
                (5, r#""op":"steer.detach","params":{"session":"c","seq":4}"#.to_string()),
            ] {
                let out = fleet.handle_line(&line(&format!(r#""id":{id},{body}"#)));
                assert!(out.line.contains("\"ok\":true"), "{}", out.line);
                t.push(out.line);
            }
            t
        };
        let clean = script(&Fleet::new(FleetConfig::default()));
        // Now under heavy churn: the session must re-home and converge to
        // the same reply bytes.
        let faulted = Fleet::new(FleetConfig {
            faults: Some(FaultPlan {
                fleet_churn_rate: 0.6,
                ..FaultPlan::quiet(23)
            }),
            ..FleetConfig::default()
        });
        // Burn churn slots with unrelated traffic so shards die and rejoin
        // between steering ops.
        let interleaved: Vec<String> = script(&faulted);
        assert_eq!(clean, interleaved, "churned session diverged");
    }

    #[test]
    fn churn_kills_and_rejoins_deterministically() {
        let run = |seed: u64| {
            let fleet = Fleet::new(FleetConfig {
                faults: Some(FaultPlan {
                    fleet_churn_rate: 0.5,
                    ..FaultPlan::quiet(seed)
                }),
                ..FleetConfig::default()
            });
            let mut log = Vec::new();
            for i in 0..40 {
                let out = fleet.handle_line(&line(&format!(
                    r#""id":{i},"op":"advisor","params":{{"passes":{}}}"#,
                    i % 5
                )));
                assert!(out.line.contains("\"ok\":true"), "{}", out.line);
                log.extend(out.events);
            }
            (log, fleet.metrics_clone().to_json())
        };
        let (events_a, metrics_a) = run(11);
        let (events_b, metrics_b) = run(11);
        assert_eq!(events_a, events_b, "same seed, same churn history");
        assert_eq!(metrics_a, metrics_b);
        assert!(
            events_a.iter().any(|e| matches!(e, ChurnEvent::Lost(_))),
            "seed 11 at rate 0.5 must kill at least one shard: {events_a:?}"
        );
        let (events_c, _) = run(12);
        assert_ne!(events_a, events_c, "different seeds, different churn");
    }
}
