//! The consistent-hash ring: seeded virtual-node placement over a `u64`
//! keyspace.
//!
//! Every shard owns `vnodes` positions on the ring; a key routes to the
//! first live position clockwise from its hash point. Positions depend only
//! on `(ring seed, shard id, vnode index)` — never on insertion order or on
//! which other shards exist — which is what makes movement under churn
//! *provably minimal*: adding a shard can only claim the arcs immediately
//! counter-clockwise of its own positions, and removing it hands exactly
//! those arcs back. Keys mapped to any other shard do not move.
//!
//! The same stateless-hash discipline as `greenness-faults`: FNV-1a 64
//! folded through SplitMix64, so ring placement composes with the repo's
//! seed conventions and two rings built from the same seed are identical
//! regardless of add/remove history.

use greenness_faults::{fnv1a64, splitmix64};

/// Default virtual nodes per shard. 64 keeps the max/mean arc imbalance
/// under ~2× for small fleets — see the `fleet_ring` property tests.
pub const DEFAULT_VNODES: usize = 64;

/// The ring: sorted `(position, shard)` pairs plus the seed that places
/// them.
#[derive(Debug, Clone)]
pub struct Ring {
    seed: u64,
    vnodes: usize,
    /// Sorted by position. Positions collide with probability ~n²/2⁶⁴ —
    /// ties break by shard id for determinism.
    points: Vec<(u64, u32)>,
}

/// The base the per-shard vnode chain hangs off: decorrelates the ring from
/// other consumers of the same seed (fault schedules, workload ranks).
fn ring_base(seed: u64) -> u64 {
    splitmix64(seed ^ fnv1a64(b"fleet.ring"))
}

/// Where `shard`'s `v`-th virtual node sits for `seed`.
fn vnode_position(seed: u64, shard: u32, v: usize) -> u64 {
    splitmix64(splitmix64(ring_base(seed) ^ u64::from(shard)) ^ v as u64)
}

/// A key's point on the ring.
pub fn key_point(key: &[u8]) -> u64 {
    splitmix64(fnv1a64(key))
}

impl Ring {
    /// A ring of `shards` shards (ids `0..shards`), `vnodes` virtual nodes
    /// each, placed by `seed`.
    pub fn new(seed: u64, shards: u32, vnodes: usize) -> Ring {
        let mut ring = Ring {
            seed,
            vnodes: vnodes.max(1),
            points: Vec::with_capacity(shards as usize * vnodes.max(1)),
        };
        for shard in 0..shards {
            ring.add(shard);
        }
        ring
    }

    /// The placement seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Distinct shards currently on the ring, ascending.
    pub fn shards(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.points.iter().map(|&(_, s)| s).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Number of distinct shards on the ring.
    pub fn len(&self) -> usize {
        self.shards().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Whether `shard` is on the ring.
    pub fn contains(&self, shard: u32) -> bool {
        self.points.iter().any(|&(_, s)| s == shard)
    }

    /// Add `shard`'s virtual nodes. Idempotent. Positions are a pure
    /// function of `(seed, shard)`, so a shard that leaves and rejoins
    /// lands on exactly its old arcs.
    pub fn add(&mut self, shard: u32) {
        if self.contains(shard) {
            return;
        }
        for v in 0..self.vnodes {
            let pos = vnode_position(self.seed, shard, v);
            let at = self.points.partition_point(|&(p, s)| (p, s) < (pos, shard));
            self.points.insert(at, (pos, shard));
        }
    }

    /// Remove `shard`'s virtual nodes. Idempotent.
    pub fn remove(&mut self, shard: u32) {
        self.points.retain(|&(_, s)| s != shard);
    }

    /// The shard owning `key`: the first ring position clockwise from the
    /// key's point (wrapping past the top of the keyspace).
    pub fn route(&self, key: &[u8]) -> Option<u32> {
        self.successors(key_point(key)).next()
    }

    /// Up to `k` *distinct* shards for `key`, primary first: the owners of
    /// the next positions clockwise, skipping repeats. This is the
    /// replication candidate list — under churn it shrinks to however many
    /// shards remain.
    pub fn replicas(&self, key: &[u8], k: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(k);
        for shard in self.successors(key_point(key)) {
            if !out.contains(&shard) {
                out.push(shard);
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }

    /// Ring positions clockwise from `point`, wrapping, each visited once.
    fn successors(&self, point: u64) -> impl Iterator<Item = u32> + '_ {
        let start = self.points.partition_point(|&(p, _)| p < point);
        let n = self.points.len();
        (0..n).map(move |i| self.points[(start + i) % n].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> impl Iterator<Item = Vec<u8>> {
        (0..n).map(|i| format!("key/{i}").into_bytes())
    }

    #[test]
    fn same_seed_same_ring_regardless_of_history() {
        let fresh = Ring::new(42, 4, 16);
        let mut churned = Ring::new(42, 4, 16);
        churned.remove(2);
        churned.remove(0);
        churned.add(2);
        churned.add(0);
        for key in keys(500) {
            assert_eq!(fresh.route(&key), churned.route(&key));
        }
    }

    #[test]
    fn route_is_the_first_replica() {
        let ring = Ring::new(7, 5, 32);
        for key in keys(200) {
            let reps = ring.replicas(&key, 3);
            assert_eq!(reps.len(), 3);
            assert_eq!(ring.route(&key), Some(reps[0]));
            let mut dedup = reps.clone();
            dedup.dedup();
            assert_eq!(dedup, reps, "replicas must be distinct shards");
        }
    }

    #[test]
    fn replicas_degrade_gracefully_below_k() {
        let ring = Ring::new(1, 2, 8);
        let key = b"anything";
        assert_eq!(ring.replicas(key, 5).len(), 2, "only 2 shards exist");
        let empty = Ring::new(1, 0, 8);
        assert_eq!(empty.route(key), None);
        assert!(empty.replicas(key, 3).is_empty());
    }

    #[test]
    fn add_and_remove_are_idempotent() {
        let mut ring = Ring::new(3, 3, 8);
        let baseline = ring.points.clone();
        ring.add(1);
        assert_eq!(ring.points, baseline);
        ring.remove(1);
        ring.remove(1);
        assert_eq!(ring.len(), 2);
        ring.add(1);
        assert_eq!(ring.points, baseline, "rejoin reclaims the same arcs");
    }
}
