//! Seeded Zipfian popularity: rank draws over a finite key universe.
//!
//! Serving traffic is famously skewed — a handful of dashboards account for
//! most queries — and Zipf(s) is the standard model: rank `r` (1-based) is
//! drawn with probability proportional to `1/r^s`. The draw is **stateless**
//! (`rank(i)` depends only on `(seed, i)`), so a workload generated at
//! request index `i` is the same whether requests are generated in order,
//! in parallel, or resumed mid-stream — the same discipline as the fault
//! schedules.
//!
//! Implementation: precomputed CDF over the universe + binary search per
//! draw, O(log n). Exact for any `s ≥ 0` (s = 0 degenerates to uniform).

use greenness_faults::{fnv1a64, splitmix64};

/// A Zipfian rank generator over ranks `1..=universe`.
#[derive(Debug, Clone)]
pub struct Zipf {
    seed: u64,
    /// Cumulative probability up to and including rank `i + 1`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// A generator over `universe` ranks with exponent `s`, drawing from
    /// `seed`. `universe` is clamped to at least 1.
    pub fn new(universe: usize, s: f64, seed: u64) -> Zipf {
        let universe = universe.max(1);
        let mut cdf = Vec::with_capacity(universe);
        let mut total = 0.0f64;
        for r in 1..=universe {
            total += (r as f64).powf(-s);
            cdf.push(total);
        }
        // Normalize; pin the last entry so u < 1.0 can never fall off the
        // end through rounding.
        for c in cdf.iter_mut() {
            *c /= total;
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { seed, cdf }
    }

    /// Number of ranks.
    pub fn universe(&self) -> usize {
        self.cdf.len()
    }

    /// The rank (1-based, 1 = most popular) drawn at request index `i`.
    /// A pure function of `(seed, i)`.
    pub fn rank(&self, i: u64) -> u64 {
        let x = splitmix64(splitmix64(self.seed ^ fnv1a64(b"fleet.zipf")) ^ i);
        // Top 53 bits → uniform in [0, 1).
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        (self.cdf.partition_point(|&c| c < u) + 1).min(self.cdf.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_stateless_and_seeded() {
        let z = Zipf::new(100, 1.1, 9);
        let forward: Vec<u64> = (0..50).map(|i| z.rank(i)).collect();
        let backward: Vec<u64> = (0..50).rev().map(|i| z.rank(i)).rev().collect();
        assert_eq!(forward, backward, "rank(i) must not depend on call order");
        let other = Zipf::new(100, 1.1, 10);
        let differs = (0..50).any(|i| z.rank(i) != other.rank(i));
        assert!(differs, "different seeds must draw differently");
    }

    #[test]
    fn ranks_stay_in_universe_and_skew_toward_the_head() {
        let z = Zipf::new(64, 1.1, 3);
        let n = 20_000u64;
        let mut head = 0u64;
        for i in 0..n {
            let r = z.rank(i);
            assert!((1..=64).contains(&r), "rank {r} out of universe");
            if r <= 6 {
                head += 1;
            }
        }
        // Zipf(1.1) over 64 ranks puts ~60% of mass on the top 6; uniform
        // would put ~9%. Split the difference generously.
        assert!(
            head * 100 / n > 35,
            "head ranks got only {head}/{n} draws — not Zipfian"
        );
    }

    #[test]
    fn zero_exponent_degenerates_to_uniform() {
        let z = Zipf::new(8, 0.0, 1);
        let n = 16_000u64;
        let mut counts = [0u64; 8];
        for i in 0..n {
            counts[(z.rank(i) - 1) as usize] += 1;
        }
        for (r, &c) in counts.iter().enumerate() {
            let expected = n / 8;
            assert!(
                c > expected * 7 / 10 && c < expected * 13 / 10,
                "rank {} drew {c} of {n}; expected ~{expected}",
                r + 1
            );
        }
    }
}
