//! `greenness-fleet` — the query service at fleet scale.
//!
//! `greenness-serve` answers one process's worth of traffic; this crate
//! asks the question the paper's static-energy finding (~91% of total)
//! turns into at serving scale: **how few warm shards can hold the SLO
//! before idle watts swamp the work?** The pieces:
//!
//! * [`ring`] — a seeded consistent-hash ring with virtual nodes; placement
//!   is a pure function of `(seed, shard)`, so churn moves provably minimal
//!   key ranges and a rejoining shard reclaims exactly its old arcs;
//! * [`zipf`] — stateless seeded Zipfian popularity for the workload;
//! * [`fleet`] — N in-process serve shards behind a deterministic router:
//!   hot-key k-way replication, reroute-on-drop (never toward the client),
//!   and churn-driven rebalancing from `crates/faults`;
//! * [`harness`] — the open-loop virtual-time replay: millions of scheduled
//!   requests, coordinated-omission-free p50/p99/p999 per shard and
//!   fleet-wide, and the energy-per-million-requests ledger;
//! * [`server`] — the TCP router front end (`greenness fleet`).
//!
//! Determinism contract: the replay response log and the router's `fleet.*`
//! metrics are byte-identical across runs and `--jobs` values always, and
//! across shard counts in the fault-free, eviction-free regime the CI
//! artifacts pin. See EXPERIMENTS.md ("Fleet sizing and the static-energy
//! argument").

pub mod fleet;
pub mod harness;
pub mod ring;
pub mod server;
pub mod zipf;

pub use fleet::{ChurnEvent, Fleet, FleetConfig, FleetOutcome, DEFAULT_HOT_THRESHOLD};
pub use harness::{
    fleet_workload, run_fleet_replay, FleetReplayOutput, LatencyQuantiles, DEFAULT_RATE_RPS,
    DEFAULT_UNIVERSE, DEFAULT_ZIPF_S,
};
pub use ring::{key_point, Ring, DEFAULT_VNODES};
pub use server::FleetServer;
pub use zipf::Zipf;
