//! The fleet's TCP front end: one router listener, one thread per
//! connection, NDJSON both ways — the same wire discipline as
//! `greenness-serve`, but every line is answered by [`Fleet::handle_line`],
//! so clients see reroutes and rebalancing only in the counters, never as a
//! dropped connection. (Shard-level injected drops are absorbed by the
//! router's replica reroute; the router itself never hangs up mid-request.)

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::fleet::Fleet;

/// How long a connection thread blocks in `read` before re-checking the
/// stop flag.
const READ_TICK: Duration = Duration::from_millis(50);
/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_TICK: Duration = Duration::from_millis(5);

/// A running fleet router. Call [`FleetServer::shutdown`] (or send a
/// `shutdown` op) and then [`FleetServer::join`] to stop it.
pub struct FleetServer {
    addr: SocketAddr,
    fleet: Arc<Fleet>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FleetServer {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and route for `fleet` in background
    /// threads.
    pub fn start(addr: &str, fleet: Arc<Fleet>) -> std::io::Result<FleetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let fleet = Arc::clone(&fleet);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, fleet, stop))
        };
        Ok(FleetServer {
            addr,
            fleet,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The fleet behind the router.
    pub fn fleet(&self) -> &Arc<Fleet> {
        &self.fleet
    }

    /// Begin draining: close every live shard's gate, then raise the stop
    /// flag.
    pub fn shutdown(&self) {
        self.fleet.shutdown();
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Wait until the accept loop and every connection thread exit.
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Block until asked to stop, then drain (`greenness fleet`'s main).
    pub fn run_to_completion(self) {
        while !self.stop.load(Ordering::SeqCst) {
            std::thread::sleep(READ_TICK);
        }
        self.join();
    }
}

fn accept_loop(listener: TcpListener, fleet: Arc<Fleet>, stop: Arc<AtomicBool>) {
    let conns: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let fleet = Arc::clone(&fleet);
                let stop = Arc::clone(&stop);
                let handle = std::thread::spawn(move || connection_loop(stream, &fleet, &stop));
                conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_TICK),
            Err(_) => break,
        }
    }
    for handle in conns.into_inner().unwrap_or_else(PoisonError::into_inner) {
        let _ = handle.join();
    }
}

fn connection_loop(mut stream: TcpStream, fleet: &Fleet, stop: &AtomicBool) {
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = pending.drain(..=pos).collect();
                    let text = String::from_utf8_lossy(&line[..line.len() - 1]);
                    let trimmed = text.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    let outcome = fleet.handle_line(trimmed);
                    if stream
                        .write_all(outcome.line.as_bytes())
                        .and_then(|()| stream.write_all(b"\n"))
                        .is_err()
                    {
                        return;
                    }
                    if outcome.shutdown {
                        let _ = stream.flush();
                        stop.store(true, Ordering::SeqCst);
                        return;
                    }
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}
