//! The fleet replay harness: an open-loop, virtual-time load model over a
//! deterministic Zipfian workload.
//!
//! Requests are *scheduled* at a fixed rate on a virtual clock and driven
//! sequentially through the fleet; each shard is a single-server queue in
//! virtual time (a request starts at `max(shard free, scheduled)`), and
//! latency is measured from the **scheduled** send time — queueing delay is
//! charged to the fleet, never silently absorbed by a slow client, so the
//! percentiles are free of coordinated omission by construction. Because
//! the clock is virtual, a million-request run costs only as much wall time
//! as the cache misses it actually computes, and every number in the report
//! is byte-reproducible across runs, `--jobs` values, and machines.
//!
//! The energy ledger is the paper's static-energy argument at fleet scale:
//! every *live* shard burns the Table I static floor (~105 W) for every
//! virtual second of the run whether it serves or idles, while the dynamic
//! cost of actual compute rides on top at the Table II probe power (~10 W).
//! "Energy per million requests vs warm-shard count" falls straight out.

use greenness_platform::spec::HardwareSpec;
use greenness_trace::{fmt_f64, metrics_file_json, percentile_nearest_rank};

use crate::fleet::{ChurnEvent, Fleet, FleetConfig};
use crate::zipf::Zipf;

/// Router overhead per request, virtual seconds (hash + binary search).
pub const ROUTE_S: f64 = 2e-6;
/// Cache-hit service time: parse, probe, stream the payload.
pub const HIT_S: f64 = 20e-6;
/// Miss overhead on top of the op's own simulated compute seconds.
pub const MISS_OVERHEAD_S: f64 = 100e-6;
/// Service time of a structured error reply.
pub const ERR_S: f64 = 5e-6;
/// Cost of each reroute hop after an injected connection drop.
pub const REROUTE_S: f64 = 50e-6;
/// Dynamic power of active compute, watts — the paper's Table II I/O-probe
/// figure (~9% of the system total; the other ~91% is the static floor).
pub const DYNAMIC_W: f64 = 10.4;

/// Default key-universe size for the Zipfian workload. Small enough that
/// per-shard caches never evict at the default byte budget — the regime in
/// which the replay artifacts are byte-identical across shard counts.
pub const DEFAULT_UNIVERSE: usize = 256;
/// Default Zipf exponent (classic web-serving skew).
pub const DEFAULT_ZIPF_S: f64 = 1.1;
/// Default open-loop arrival rate, requests per virtual second.
pub const DEFAULT_RATE_RPS: f64 = 20_000.0;

/// The deterministic fleet workload: `n` request lines whose key popularity
/// is Zipf(`s`) over a `universe` of distinct parameter sets, drawn
/// statelessly from `seed`. Request ids are sequential; every other byte of
/// a request is a pure function of its drawn rank, so two requests with the
/// same rank share a cache key.
pub fn fleet_workload(n: usize, universe: usize, s: f64, seed: u64) -> Vec<String> {
    let zipf = Zipf::new(universe, s, seed);
    (0..n)
        .map(|i| {
            let rank = zipf.rank(i as u64);
            let body = match rank % 5 {
                0 => format!(
                    r#""op":"advisor","params":{{"pass_bytes":{},"passes":2,"pattern":"random"}}"#,
                    (rank + 1) * 1048576
                ),
                1 => format!(
                    r#""op":"advisor","params":{{"pattern":"sequential","passes":{},"min_keep_fraction":0.5}}"#,
                    rank % 20 + 1
                ),
                2 => format!(
                    r#""op":"whatif","params":{{"bytes":{}}}"#,
                    (rank + 1) * 1048576
                ),
                3 => format!(
                    r#""op":"run","params":{{"pipeline":"insitu","case":{}}}"#,
                    rank % 3 + 1
                ),
                _ => format!(r#""op":"compare","params":{{"case":{}}}"#, rank % 3 + 1),
            };
            format!(
                "{{\"schema\":\"{}\",\"id\":{i},{body}}}",
                greenness_serve::SCHEMA
            )
        })
        .collect()
}

/// Nearest-rank latency quantiles over raw samples, milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyQuantiles {
    /// Samples behind the quantiles.
    pub count: usize,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// 99.9th percentile, ms.
    pub p999_ms: f64,
}

impl LatencyQuantiles {
    fn over(samples: &mut [f64]) -> LatencyQuantiles {
        samples.sort_by(f64::total_cmp);
        LatencyQuantiles {
            count: samples.len(),
            p50_ms: percentile_nearest_rank(samples, 0.50) * 1e3,
            p99_ms: percentile_nearest_rank(samples, 0.99) * 1e3,
            p999_ms: percentile_nearest_rank(samples, 0.999) * 1e3,
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"count\":{},\"p50_ms\":{},\"p99_ms\":{},\"p999_ms\":{}}}",
            self.count,
            fmt_f64(self.p50_ms),
            fmt_f64(self.p99_ms),
            fmt_f64(self.p999_ms)
        )
    }
}

/// Everything one fleet replay run produced.
pub struct FleetReplayOutput {
    /// All response lines, newline-terminated, in request order. Compared
    /// byte-for-byte across `--jobs` and across shard counts.
    pub responses: String,
    /// The router's `fleet.*` registry as a `greenness-metrics/v1` file —
    /// the second byte-compared artifact.
    pub fleet_metrics: String,
    /// Every shard's own registry (`shard/<id>` sections) — debug material,
    /// shard-count-dependent by construction, never byte-compared.
    pub shard_metrics: String,
    /// The open-loop latency/energy report (`greenness-fleet/v1` JSON).
    pub report: String,
    /// Reroute hops the router took around injected drops.
    pub reroutes: u64,
}

/// Drive `requests` through a fresh fleet on the open-loop virtual clock at
/// `rate_rps` and account latency and energy. Sequential by construction;
/// `config.jobs` only parallelizes inside shard `sweep` handlers and leaves
/// every output byte unchanged.
pub fn run_fleet_replay(
    config: FleetConfig,
    requests: &[String],
    rate_rps: f64,
) -> FleetReplayOutput {
    let rate = rate_rps.max(1e-9);
    let fleet = Fleet::new(config);
    let shards = config.shards as usize;

    let mut responses = String::with_capacity(requests.len() * 64);
    let mut free_at = vec![0.0f64; shards];
    let mut fleet_lat: Vec<f64> = Vec::with_capacity(requests.len());
    let mut shard_lat: Vec<Vec<f64>> = vec![Vec::new(); shards];
    // Energy ledger: virtual seconds each shard spent live, plus total
    // simulated compute seconds.
    let mut live_since = vec![Some(0.0f64); shards];
    let mut live_s = vec![0.0f64; shards];
    let mut compute_s = 0.0f64;
    let mut reroutes = 0u64;
    let mut last_finish = 0.0f64;

    for (i, request) in requests.iter().enumerate() {
        let scheduled = i as f64 / rate;
        let out = fleet.handle_line(request);
        responses.push_str(&out.line);
        responses.push('\n');
        reroutes += u64::from(out.reroutes);
        for event in &out.events {
            match *event {
                ChurnEvent::Lost(s) => {
                    let s = s as usize;
                    if let Some(since) = live_since[s].take() {
                        live_s[s] += scheduled - since;
                    }
                    // A lost shard's queue dies with it.
                    free_at[s] = scheduled;
                }
                ChurnEvent::Joined { shard: s, .. } => {
                    let s = s as usize;
                    if live_since[s].is_none() {
                        live_since[s] = Some(scheduled);
                    }
                    free_at[s] = free_at[s].max(scheduled);
                }
            }
        }
        let service_s = ROUTE_S
            + f64::from(out.reroutes) * REROUTE_S
            + match out.disposition {
                greenness_serve::Disposition::Hit => HIT_S,
                greenness_serve::Disposition::Miss => MISS_OVERHEAD_S + out.virtual_s,
                _ => ERR_S,
            };
        compute_s += out.virtual_s;
        let finish = match out.shard {
            Some(s) => {
                let s = s as usize;
                let start = free_at[s].max(scheduled);
                free_at[s] = start + service_s;
                let latency = free_at[s] - scheduled;
                shard_lat[s].push(latency);
                fleet_lat.push(latency);
                free_at[s]
            }
            None => {
                // Router-level replies (control, bad request) don't queue on
                // a shard and don't enter the latency ledger.
                scheduled + service_s
            }
        };
        last_finish = last_finish.max(finish);
    }

    let makespan = last_finish.max(requests.len() as f64 / rate);
    for (s, since) in live_since.iter().enumerate() {
        if let Some(since) = since {
            live_s[s] += makespan - since;
        }
    }

    let static_w = HardwareSpec::table1().static_w();
    let live_total_s: f64 = live_s.iter().sum();
    let static_j = live_total_s * static_w;
    let dynamic_j = compute_s * DYNAMIC_W;
    let total_j = static_j + dynamic_j;
    let n = requests.len().max(1) as f64;

    let fleet_q = LatencyQuantiles::over(&mut fleet_lat);
    let shard_q: Vec<String> = shard_lat
        .iter_mut()
        .enumerate()
        .map(|(s, lat)| format!("\"shard/{s}\":{}", LatencyQuantiles::over(lat).to_json()))
        .collect();
    let report = format!(
        "{{\"schema\":\"greenness-fleet/v1\",\"requests\":{},\"shards\":{},\"replicas\":{},\"ring_seed\":{},\"rate_rps\":{},\"makespan_s\":{},\"latency\":{{\"fleet\":{},{}}},\"energy\":{{\"static_w_per_shard\":{},\"dynamic_w\":{},\"live_shard_s\":{},\"compute_s\":{},\"static_j\":{},\"dynamic_j\":{},\"total_j\":{},\"j_per_million_requests\":{}}}}}",
        requests.len(),
        config.shards,
        config.replicas,
        config.ring_seed,
        fmt_f64(rate),
        fmt_f64(makespan),
        fleet_q.to_json(),
        shard_q.join(","),
        fmt_f64(static_w),
        fmt_f64(DYNAMIC_W),
        fmt_f64(live_total_s),
        fmt_f64(compute_s),
        fmt_f64(static_j),
        fmt_f64(dynamic_j),
        fmt_f64(total_j),
        fmt_f64(total_j / n * 1e6),
    );

    FleetReplayOutput {
        responses,
        fleet_metrics: metrics_file_json(&[("fleet".to_string(), fleet.metrics_clone())]),
        shard_metrics: metrics_file_json(&fleet.shard_metrics()),
        report,
        reroutes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_stateless_and_zipf_skewed() {
        let a = fleet_workload(100, 64, 1.1, 9);
        let b = fleet_workload(100, 64, 1.1, 9);
        assert_eq!(a, b);
        // Strip schema and id: the remaining op body is the cache-key
        // pre-image, and the hottest one must repeat — that's the skew.
        let bodies: Vec<&str> = a
            .iter()
            .map(|l| l.split_once(',').unwrap().1.split_once(',').unwrap().1)
            .collect();
        let mut counts = std::collections::HashMap::new();
        for b in &bodies {
            *counts.entry(*b).or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max >= 10, "hottest body repeated only {max}/100 times");
        let seeded = fleet_workload(100, 64, 1.1, 10);
        assert_ne!(a, seeded, "seed must change the draw");
    }

    #[test]
    fn replay_is_byte_identical_across_jobs() {
        let requests = fleet_workload(60, 32, 1.1, 42);
        let base = FleetConfig {
            jobs: 1,
            ..FleetConfig::default()
        };
        let a = run_fleet_replay(base, &requests, DEFAULT_RATE_RPS);
        let b = run_fleet_replay(FleetConfig { jobs: 8, ..base }, &requests, DEFAULT_RATE_RPS);
        assert_eq!(a.responses, b.responses);
        assert_eq!(a.fleet_metrics, b.fleet_metrics);
        assert_eq!(a.report, b.report, "virtual-time report must not see jobs");
    }

    #[test]
    fn report_carries_co_free_percentiles_and_energy() {
        let requests = fleet_workload(80, 16, 1.1, 7);
        let out = run_fleet_replay(FleetConfig::default(), &requests, 1000.0);
        for field in [
            "\"p50_ms\"",
            "\"p99_ms\"",
            "\"p999_ms\"",
            "\"shard/0\"",
            "\"shard/3\"",
            "\"j_per_million_requests\"",
            "\"static_j\"",
        ] {
            assert!(
                out.report.contains(field),
                "missing {field}:\n{}",
                out.report
            );
        }
        assert_eq!(out.responses.lines().count(), 80);
        assert!(out.responses.lines().all(|l| l.contains("\"ok\":true")));
    }

    #[test]
    fn fewer_warm_shards_burn_less_static_energy() {
        // The paper's thesis at fleet scale: at fixed low load, energy per
        // request tracks the warm-shard count, because static watts
        // dominate compute. Cheap closed-form ops at a modest rate keep the
        // run schedule-dominated (makespan = n/rate for any shard count);
        // at saturation the ledger is work-conserving and this flattens.
        let requests: Vec<String> = (0..200)
            .map(|i| {
                format!(
                    "{{\"schema\":\"{}\",\"id\":{i},\"op\":\"advisor\",\"params\":{{\"passes\":{}}}}}",
                    greenness_serve::SCHEMA,
                    i % 16
                )
            })
            .collect();
        let j = |shards: u32| {
            let out = run_fleet_replay(
                FleetConfig {
                    shards,
                    ..FleetConfig::default()
                },
                &requests,
                DEFAULT_RATE_RPS,
            );
            let marker = "\"j_per_million_requests\":";
            let at = out.report.find(marker).expect("energy field") + marker.len();
            out.report[at..]
                .trim_end_matches(['}', '\n'])
                .parse::<f64>()
                .expect("parses")
        };
        let two = j(2);
        let eight = j(8);
        assert!(
            eight > two * 2.0,
            "8 warm shards ({eight} J/M) must cost far more than 2 ({two} J/M)"
        );
    }
}
