//! Property-based tests for the storage stack.

use greenness_platform::{HardwareSpec, Node, Phase};
use greenness_storage::{reorganize, AllocMode, FileSystem, FsConfig, MemBlockDevice, BLOCK_SIZE};
use proptest::prelude::*;

/// A scripted filesystem operation.
#[derive(Debug, Clone)]
enum Op {
    Write {
        file: u8,
        offset: u16,
        len: u16,
        fill: u8,
    },
    Fsync {
        file: u8,
    },
    Sync,
    DropCaches,
    Delete {
        file: u8,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u16..20_000, 1u16..8_000, any::<u8>()).prop_map(|(file, offset, len, fill)| {
            Op::Write {
                file,
                offset,
                len,
                fill,
            }
        }),
        (0u8..4).prop_map(|file| Op::Fsync { file }),
        Just(Op::Sync),
        Just(Op::DropCaches),
        (0u8..4).prop_map(|file| Op::Delete { file }),
    ]
}

/// A trivial in-memory reference model: file → bytes.
#[derive(Default)]
struct Model {
    files: std::collections::HashMap<u8, Vec<u8>>,
}

impl Model {
    fn write(&mut self, file: u8, offset: usize, len: usize, fill: u8) {
        let f = self.files.entry(file).or_default();
        if f.len() < offset + len {
            f.resize(offset + len, 0);
        }
        f[offset..offset + len].fill(fill);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The filesystem agrees with a byte-array reference model under any
    /// sequence of writes, syncs, cache drops, and deletes.
    #[test]
    fn fs_matches_reference_model(ops in prop::collection::vec(arb_op(), 1..40)) {
        let mut node = Node::new(HardwareSpec::table1());
        let mut fs = FileSystem::format(
            MemBlockDevice::with_capacity_bytes(32 * 1024 * 1024),
            FsConfig::default(),
        );
        let mut model = Model::default();
        for op in &ops {
            match *op {
                Op::Write { file, offset, len, fill } => {
                    let data = vec![fill; len as usize];
                    fs.write(&mut node, &format!("f{file}"), offset as u64, &data, Phase::Write)
                        .unwrap();
                    model.write(file, offset as usize, len as usize, fill);
                }
                Op::Fsync { file } => {
                    let name = format!("f{file}");
                    if fs.exists(&name) {
                        fs.fsync(&mut node, &name, Phase::Write).unwrap();
                    }
                }
                Op::Sync => fs.sync(&mut node, Phase::CacheControl),
                Op::DropCaches => {
                    fs.drop_caches();
                }
                Op::Delete { file } => {
                    let name = format!("f{file}");
                    if fs.exists(&name) {
                        fs.delete(&name).unwrap();
                        model.files.remove(&file);
                    }
                }
            }
        }
        // Final readback must match the model exactly.
        fs.sync(&mut node, Phase::CacheControl);
        fs.drop_caches();
        for (file, expect) in &model.files {
            let name = format!("f{file}");
            let got = fs
                .read(&mut node, &name, 0, expect.len() as u64, Phase::Read)
                .unwrap();
            prop_assert_eq!(&got, expect, "file {} diverged", file);
        }
    }

    /// Scattered allocation never loses data, and reorganization restores a
    /// near-contiguous layout while preserving every byte.
    #[test]
    fn reorg_preserves_bytes(
        len in (BLOCK_SIZE as usize)..(600 * BLOCK_SIZE as usize),
        seed in any::<u64>(),
    ) {
        let mut node = Node::new(HardwareSpec::table1());
        let mut fs = FileSystem::format(
            MemBlockDevice::with_capacity_bytes(64 * 1024 * 1024),
            FsConfig::default(),
        );
        fs.set_alloc_mode(AllocMode::Scattered { seed });
        let data: Vec<u8> = (0..len).map(|i| (i as u64).wrapping_mul(31).to_le_bytes()[0]).collect();
        fs.write(&mut node, "f", 0, &data, Phase::Write).unwrap();
        fs.sync(&mut node, Phase::CacheControl);
        fs.drop_caches();
        fs.set_alloc_mode(AllocMode::Contiguous);
        let report = reorganize(&mut node, &mut fs, "f", Phase::Other).unwrap();
        prop_assert!(report.runs_after <= report.runs_before);
        let back = fs.read(&mut node, "f", 0, len as u64, Phase::Read).unwrap();
        prop_assert_eq!(back, data);
    }

    /// Free-space accounting: allocate-then-delete always restores the free
    /// block count, regardless of allocation mode.
    #[test]
    fn space_accounting_balances(
        sizes in prop::collection::vec((BLOCK_SIZE as usize)..(100 * BLOCK_SIZE as usize), 1..6),
        scattered in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut node = Node::new(HardwareSpec::table1());
        let mut fs = FileSystem::format(
            MemBlockDevice::with_capacity_bytes(64 * 1024 * 1024),
            FsConfig::default(),
        );
        if scattered {
            fs.set_alloc_mode(AllocMode::Scattered { seed });
        }
        let before = fs.free_blocks();
        for (k, len) in sizes.iter().enumerate() {
            fs.write(&mut node, &format!("f{k}"), 0, &vec![1u8; *len], Phase::Write).unwrap();
        }
        for k in 0..sizes.len() {
            fs.delete(&format!("f{k}")).unwrap();
        }
        prop_assert_eq!(fs.free_blocks(), before);
    }

    /// Device virtual-time cost of an fs read is monotone: reading more bytes
    /// cold never takes less time.
    #[test]
    fn cold_read_cost_monotone(a in 1u64..400_000, b in 1u64..400_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let cost = |bytes: u64| {
            let mut node = Node::new(HardwareSpec::table1());
            let mut fs = FileSystem::format(
                MemBlockDevice::with_capacity_bytes(8 * 1024 * 1024),
                FsConfig::default(),
            );
            fs.write(&mut node, "f", 0, &vec![3u8; 400_000], Phase::Write).unwrap();
            fs.sync(&mut node, Phase::CacheControl);
            fs.drop_caches();
            let t0 = node.now();
            fs.read(&mut node, "f", 0, bytes, Phase::Read).unwrap();
            (node.now() - t0).as_secs_f64()
        };
        prop_assert!(cost(hi) >= cost(lo) - 1e-12);
    }
}
