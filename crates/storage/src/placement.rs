//! Pluggable block-placement policies for the [`crate::TieredStore`].
//!
//! A policy answers two questions, both as **pure functions** of its inputs:
//! where does a block touching the device for the first time land
//! ([`PlacementPolicy::place_new`]), and which blocks migrate between tiers
//! at an epoch boundary ([`PlacementPolicy::plan`])? Purity is what makes
//! the placement sweeps schedule-independent: the same `(epoch, access
//! stats, tier usage)` always yields the same move list, so journals are
//! byte-identical across `--jobs 1` and `--jobs 8`.
//!
//! Three policies ship, spanning the design space the paper's §V-D
//! reorganization argument opens:
//! - [`NoopPolicy`] — static pinning to the bottom tier; the single-device
//!   baseline that reproduces the Table III sequential-vs-random cliff.
//! - [`FreqRecencyPolicy`] — exponential-decay frequency/recency scoring;
//!   the hottest blocks fill the fastest tiers to a headroom fraction.
//! - [`EnergyGreedyPolicy`] — promotes a block only when the predicted
//!   per-access energy saving beats the migration cost by a hysteresis
//!   factor, using each tier's [`DiskModel`] as the price list.

use std::collections::BTreeMap;

use greenness_platform::disk::{DiskModel, IoDir};
use greenness_platform::AccessPattern;

use crate::block::BLOCK_SIZE;

/// One tier's occupancy, as seen by a policy.
#[derive(Debug, Clone)]
pub struct TierUsage {
    /// Tier name (e.g. `"dram"`, `"nvme"`, `"hdd"`), fastest first.
    pub name: String,
    /// The tier's device model — the policy's price list.
    pub model: DiskModel,
    /// Physical blocks in the tier.
    pub capacity_blocks: u64,
    /// Physical blocks currently mapped.
    pub used_blocks: u64,
}

/// One mapped logical block, as seen by a policy.
#[derive(Debug, Clone, Copy)]
pub struct BlockState {
    /// Tier currently holding the block.
    pub tier: usize,
    /// Decayed access score (see [`crate::TieredStore`]: at each epoch
    /// boundary `score = score * decay + hits_this_epoch`).
    pub score: f64,
}

/// A planned migration: move `logical` to tier `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// Logical block to move.
    pub logical: u64,
    /// Destination tier index.
    pub to: usize,
}

/// A block-placement policy. Implementations must be deterministic: no
/// wall-clock, no ambient randomness — the same inputs always produce the
/// same outputs (the policy-oracle suite asserts this directly).
pub trait PlacementPolicy: std::fmt::Debug + Send {
    /// Short stable name used in sweep keys and reports.
    fn label(&self) -> &'static str;

    /// Tier for a logical block touching the device for the first time.
    /// The store falls back to the nearest tier with free space if the
    /// chosen tier is full.
    fn place_new(&self, logical: u64, tiers: &[TierUsage]) -> usize;

    /// The migration plan for an epoch boundary. Demotions should precede
    /// promotions so capacity frees up before it is claimed; the store
    /// skips (never reorders) moves whose destination is full.
    fn plan(
        &self,
        epoch: u64,
        blocks: &BTreeMap<u64, BlockState>,
        tiers: &[TierUsage],
    ) -> Vec<Move>;
}

/// Static pinning: everything lands on the bottom (slowest) tier and never
/// moves. With an HDD bottom tier this is exactly the paper's single-device
/// testbed, which is what makes it the Table III regression baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopPolicy;

impl PlacementPolicy for NoopPolicy {
    fn label(&self) -> &'static str {
        "noop"
    }

    fn place_new(&self, _logical: u64, tiers: &[TierUsage]) -> usize {
        tiers.len() - 1
    }

    fn plan(
        &self,
        _epoch: u64,
        _blocks: &BTreeMap<u64, BlockState>,
        _tiers: &[TierUsage],
    ) -> Vec<Move> {
        Vec::new()
    }
}

/// Frequency/recency ranking with exponential decay: at every epoch the
/// hottest blocks (by decayed score) fill the fastest tiers up to a
/// `headroom` fraction of each tier's capacity; everything colder spills
/// down. Cold blocks (score below `promote_min_score`) are never promoted,
/// which keeps a one-shot scan from churning the fast tiers.
#[derive(Debug, Clone, Copy)]
pub struct FreqRecencyPolicy {
    /// Fraction of each fast tier's capacity the policy will fill.
    pub headroom: f64,
    /// Minimum decayed score required to move a block *up*.
    pub promote_min_score: f64,
    /// Upper bound on moves per epoch (demotions keep priority).
    pub max_moves: usize,
}

impl Default for FreqRecencyPolicy {
    fn default() -> Self {
        FreqRecencyPolicy {
            headroom: 0.9,
            promote_min_score: 1.0,
            max_moves: 4096,
        }
    }
}

/// Rank blocks hottest-first with a total, deterministic order.
fn ranked_blocks(blocks: &BTreeMap<u64, BlockState>) -> Vec<(u64, BlockState)> {
    let mut v: Vec<(u64, BlockState)> = blocks.iter().map(|(&lb, &st)| (lb, st)).collect();
    v.sort_by(|a, b| b.1.score.total_cmp(&a.1.score).then(a.0.cmp(&b.0)));
    v
}

/// Split `moves` into demotions-then-promotions (each sorted by logical
/// block) and cap the total, dropping promotions first.
fn order_and_cap(
    mut demotions: Vec<Move>,
    mut promotions: Vec<Move>,
    max_moves: usize,
) -> Vec<Move> {
    demotions.sort_by_key(|m| m.logical);
    promotions.sort_by_key(|m| m.logical);
    let mut moves = demotions;
    moves.extend(promotions);
    moves.truncate(max_moves);
    moves
}

impl PlacementPolicy for FreqRecencyPolicy {
    fn label(&self) -> &'static str {
        "freq-recency"
    }

    fn place_new(&self, _logical: u64, tiers: &[TierUsage]) -> usize {
        // New blocks are writes of unknown future temperature: land on the
        // bottom tier and earn promotion through the score.
        tiers.len() - 1
    }

    fn plan(
        &self,
        _epoch: u64,
        blocks: &BTreeMap<u64, BlockState>,
        tiers: &[TierUsage],
    ) -> Vec<Move> {
        let last = tiers.len() - 1;
        if last == 0 {
            return Vec::new();
        }
        let mut room: Vec<i64> = tiers
            .iter()
            .enumerate()
            .map(|(i, t)| {
                if i == last {
                    i64::MAX
                } else {
                    (t.capacity_blocks as f64 * self.headroom) as i64
                }
            })
            .collect();
        let mut demotions = Vec::new();
        let mut promotions = Vec::new();
        for (lb, st) in ranked_blocks(blocks) {
            let mut target = 0;
            while target < last && room[target] <= 0 {
                target += 1;
            }
            if target < st.tier && st.score < self.promote_min_score {
                // Too cold to justify a promotion; stay put.
                target = st.tier;
            }
            room[target] -= 1;
            match target.cmp(&st.tier) {
                std::cmp::Ordering::Greater => demotions.push(Move {
                    logical: lb,
                    to: target,
                }),
                std::cmp::Ordering::Less => promotions.push(Move {
                    logical: lb,
                    to: target,
                }),
                std::cmp::Ordering::Equal => {}
            }
        }
        order_and_cap(demotions, promotions, self.max_moves)
    }
}

/// Energy-greedy placement: promote a block only when the predicted
/// per-access energy saving over the next epoch (`score × Δenergy`) exceeds
/// the migration cost by `hysteresis`. Per-access and migration energies
/// come straight from each tier's [`DiskModel`] priced at one 4 KiB random
/// touch, so a slow-but-frugal tier can win over a fast-but-hungry one.
#[derive(Debug, Clone, Copy)]
pub struct EnergyGreedyPolicy {
    /// Fraction of each fast tier's capacity the policy will fill.
    pub headroom: f64,
    /// Required benefit-to-cost ratio before a promotion is worth it.
    pub hysteresis: f64,
    /// Upper bound on moves per epoch (demotions keep priority).
    pub max_moves: usize,
}

impl Default for EnergyGreedyPolicy {
    fn default() -> Self {
        EnergyGreedyPolicy {
            headroom: 0.9,
            hysteresis: 2.0,
            max_moves: 4096,
        }
    }
}

/// Energy of one 4 KiB random access on `model`, including the tier's own
/// idle draw for the op's duration, joules.
pub fn access_energy_j(model: &DiskModel) -> f64 {
    let c = model.transfer(
        BLOCK_SIZE,
        IoDir::Read,
        AccessPattern::Random {
            op_bytes: BLOCK_SIZE,
            queue_depth: 1,
        },
    );
    c.seconds * (model.idle_w + c.dyn_w)
}

/// Energy of migrating one block `from` → `to` (read + write), joules.
pub fn migration_energy_j(from: &DiskModel, to: &DiskModel) -> f64 {
    let r = from.transfer(
        BLOCK_SIZE,
        IoDir::Read,
        AccessPattern::Random {
            op_bytes: BLOCK_SIZE,
            queue_depth: 1,
        },
    );
    let w = to.transfer(
        BLOCK_SIZE,
        IoDir::Write,
        AccessPattern::Random {
            op_bytes: BLOCK_SIZE,
            queue_depth: 1,
        },
    );
    r.seconds * (from.idle_w + r.dyn_w) + w.seconds * (to.idle_w + w.dyn_w)
}

impl PlacementPolicy for EnergyGreedyPolicy {
    fn label(&self) -> &'static str {
        "energy-greedy"
    }

    fn place_new(&self, _logical: u64, tiers: &[TierUsage]) -> usize {
        tiers.len() - 1
    }

    fn plan(
        &self,
        _epoch: u64,
        blocks: &BTreeMap<u64, BlockState>,
        tiers: &[TierUsage],
    ) -> Vec<Move> {
        let last = tiers.len() - 1;
        if last == 0 {
            return Vec::new();
        }
        let energy: Vec<f64> = tiers.iter().map(|t| access_energy_j(&t.model)).collect();
        // Occupancy per tier from the block map (the authoritative view).
        let mut used = vec![0i64; tiers.len()];
        for st in blocks.values() {
            used[st.tier] += 1;
        }
        let cap: Vec<i64> = tiers
            .iter()
            .enumerate()
            .map(|(i, t)| {
                if i == last {
                    i64::MAX
                } else {
                    (t.capacity_blocks as f64 * self.headroom) as i64
                }
            })
            .collect();
        let mut demotions = Vec::new();
        let mut promotions = Vec::new();
        // Demote coldest-first out of over-headroom fast tiers.
        let ranked = ranked_blocks(blocks);
        for &(lb, st) in ranked.iter().rev() {
            if st.tier < last && used[st.tier] > cap[st.tier] {
                used[st.tier] -= 1;
                used[st.tier + 1] += 1;
                demotions.push(Move {
                    logical: lb,
                    to: st.tier + 1,
                });
            }
        }
        // Promote hottest-first wherever the energy ledger says it pays.
        for &(lb, st) in &ranked {
            if st.tier == 0 || st.score <= 0.0 {
                continue;
            }
            let mut best: Option<usize> = None;
            for t in 0..st.tier {
                if used[t] >= cap[t] {
                    continue;
                }
                let benefit = st.score * (energy[st.tier] - energy[t]);
                let cost =
                    migration_energy_j(&tiers[st.tier].model, &tiers[t].model) * self.hysteresis;
                if benefit > cost && best.map_or(true, |b| energy[t] < energy[b]) {
                    best = Some(t);
                }
            }
            if let Some(t) = best {
                used[st.tier] -= 1;
                used[t] += 1;
                promotions.push(Move { logical: lb, to: t });
            }
        }
        order_and_cap(demotions, promotions, self.max_moves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiers() -> Vec<TierUsage> {
        vec![
            TierUsage {
                name: "dram".into(),
                model: DiskModel::dram_tier_32gb(),
                capacity_blocks: 10,
                used_blocks: 0,
            },
            TierUsage {
                name: "hdd".into(),
                model: DiskModel::seagate_7200rpm_500gb(),
                capacity_blocks: 100,
                used_blocks: 0,
            },
        ]
    }

    fn states(hot: &[u64], cold: &[u64]) -> BTreeMap<u64, BlockState> {
        let mut m = BTreeMap::new();
        for &lb in hot {
            m.insert(
                lb,
                BlockState {
                    tier: 1,
                    score: 8.0,
                },
            );
        }
        for &lb in cold {
            m.insert(
                lb,
                BlockState {
                    tier: 1,
                    score: 0.0,
                },
            );
        }
        m
    }

    #[test]
    fn noop_never_moves() {
        let p = NoopPolicy;
        assert_eq!(p.place_new(3, &tiers()), 1);
        assert!(p.plan(5, &states(&[1, 2], &[3]), &tiers()).is_empty());
    }

    #[test]
    fn freq_recency_promotes_hot_not_cold() {
        let p = FreqRecencyPolicy::default();
        let plan = p.plan(1, &states(&[10, 11, 12], &[20, 21]), &tiers());
        let promoted: Vec<u64> = plan
            .iter()
            .filter(|m| m.to == 0)
            .map(|m| m.logical)
            .collect();
        assert_eq!(promoted, vec![10, 11, 12]);
        assert!(plan.iter().all(|m| m.to == 0), "no spurious demotions");
    }

    #[test]
    fn freq_recency_respects_headroom() {
        let p = FreqRecencyPolicy::default();
        let hot: Vec<u64> = (0..50).collect();
        let plan = p.plan(1, &states(&hot, &[]), &tiers());
        let promoted = plan.iter().filter(|m| m.to == 0).count();
        assert_eq!(promoted, 9, "headroom 0.9 of 10 blocks");
    }

    #[test]
    fn energy_greedy_pays_only_when_it_pays() {
        let p = EnergyGreedyPolicy::default();
        // Hot blocks on the HDD: promotion clearly pays.
        let plan = p.plan(1, &states(&[1, 2], &[3]), &tiers());
        assert!(plan.iter().any(|m| m.to == 0 && m.logical == 1));
        // Barely-warm blocks: migration cost dominates, no moves.
        let mut lukewarm = BTreeMap::new();
        lukewarm.insert(
            7,
            BlockState {
                tier: 1,
                score: 1e-6,
            },
        );
        assert!(p.plan(1, &lukewarm, &tiers()).is_empty());
    }

    #[test]
    fn plans_are_pure_functions_of_their_inputs() {
        let st = states(&[1, 5, 9], &[2, 6]);
        let t = tiers();
        for policy in [
            Box::new(FreqRecencyPolicy::default()) as Box<dyn PlacementPolicy>,
            Box::new(EnergyGreedyPolicy::default()),
            Box::new(NoopPolicy),
        ] {
            assert_eq!(
                policy.plan(3, &st, &t),
                policy.plan(3, &st, &t),
                "{} replanned differently on identical inputs",
                policy.label()
            );
        }
    }

    #[test]
    fn faster_tiers_cost_less_per_access() {
        let dram = access_energy_j(&DiskModel::dram_tier_32gb());
        let nvme = access_energy_j(&DiskModel::nvme_ssd_1tb());
        let hdd = access_energy_j(&DiskModel::seagate_7200rpm_500gb());
        assert!(dram < nvme && nvme < hdd, "{dram} {nvme} {hdd}");
    }
}
