//! A Linux-style page cache with dirty-page write-back.
//!
//! Reads allocate pages; writes dirty them; `sync` pushes dirty pages to the
//! device; `drop_caches` evicts *clean* pages (like `echo 3 >
//! /proc/sys/vm/drop_caches`, which skips dirty ones). The paper syncs and
//! drops caches between pipeline phases "to ensure the data does not get
//! cached in memory and is actually written to the disk" (§IV-C) — without
//! that discipline the post-processing read phase would be served from RAM
//! and the whole I/O cost the paper measures would vanish. The
//! `ablate_page_cache` bench demonstrates exactly that.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::block::{BlockDevice, BLOCK_SIZE};
use crate::error::StorageError;

/// Hit/miss/write-back counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Block lookups served from cache.
    pub hits: u64,
    /// Block lookups that went to the device.
    pub misses: u64,
    /// Dirty pages written back by sync.
    pub writebacks: u64,
    /// Pages evicted by `drop_caches` or invalidation.
    pub evictions: u64,
}

#[derive(Debug, Clone)]
struct Page {
    data: Box<[u8]>,
    dirty: bool,
}

/// The page cache. Indexed by device block; page size == block size.
#[derive(Debug, Clone, Default)]
pub struct PageCache {
    pages: HashMap<u64, Page>,
    stats: CacheStats,
}

impl PageCache {
    /// An empty cache.
    pub fn new() -> Self {
        PageCache::default()
    }

    /// Counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// True if block `idx` is resident.
    pub fn contains(&self, idx: u64) -> bool {
        self.pages.contains_key(&idx)
    }

    /// True if block `idx` is resident and dirty.
    pub fn is_dirty(&self, idx: u64) -> bool {
        self.pages.get(&idx).is_some_and(|p| p.dirty)
    }

    /// Read block `idx` through the cache. Returns `(data, was_miss)`; on a
    /// miss the page is fetched from `dev` and becomes resident.
    pub fn read_block(&mut self, dev: &impl BlockDevice, idx: u64) -> (&[u8], bool) {
        let miss = !self.pages.contains_key(&idx);
        if miss {
            let mut buf = vec![0u8; BLOCK_SIZE as usize];
            dev.read_block(idx, &mut buf);
            self.pages.insert(
                idx,
                Page {
                    data: buf.into_boxed_slice(),
                    dirty: false,
                },
            );
            self.stats.misses += 1;
        } else {
            self.stats.hits += 1;
        }
        (&self.pages[&idx].data, miss)
    }

    /// Write `data` into block `idx` at `offset` within the block, marking
    /// the page dirty. Partial writes to a non-resident page first fault it
    /// in (read-modify-write); returns whether that fault happened so the
    /// caller can charge a device read. A write that would run past the end
    /// of the block is rejected as [`StorageError::WriteExceedsBlock`].
    pub fn write_block(
        &mut self,
        dev: &impl BlockDevice,
        idx: u64,
        offset: usize,
        data: &[u8],
    ) -> Result<bool, StorageError> {
        if offset + data.len() > BLOCK_SIZE as usize {
            return Err(StorageError::WriteExceedsBlock {
                offset,
                len: data.len(),
            });
        }
        let mut faulted = false;
        let page = match self.pages.entry(idx) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                let full = offset == 0 && data.len() == BLOCK_SIZE as usize;
                let mut buf = vec![0u8; BLOCK_SIZE as usize];
                if !full {
                    // Read-modify-write: must fetch the rest of the block.
                    dev.read_block(idx, &mut buf);
                    self.stats.misses += 1;
                    faulted = true;
                }
                e.insert(Page {
                    data: buf.into_boxed_slice(),
                    dirty: false,
                })
            }
        };
        page.data[offset..offset + data.len()].copy_from_slice(data);
        page.dirty = true;
        Ok(faulted)
    }

    /// All dirty block indices, sorted (the order write-back visits them).
    pub fn dirty_blocks(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .pages
            .iter()
            .filter(|(_, p)| p.dirty)
            .map(|(&i, _)| i)
            .collect();
        v.sort_unstable();
        v
    }

    /// Dirty blocks among `candidates`, sorted.
    pub fn dirty_among(&self, candidates: &[u64]) -> Vec<u64> {
        let mut v: Vec<u64> = candidates
            .iter()
            .copied()
            .filter(|i| self.pages.get(i).is_some_and(|p| p.dirty))
            .collect();
        v.sort_unstable();
        v
    }

    /// Write the given dirty blocks to the device and mark them clean.
    /// Blocks that are not resident or not dirty are skipped.
    pub fn flush_blocks(&mut self, dev: &mut impl BlockDevice, blocks: &[u64]) {
        for &idx in blocks {
            if let Some(page) = self.pages.get_mut(&idx) {
                if page.dirty {
                    dev.write_block(idx, &page.data);
                    page.dirty = false;
                    self.stats.writebacks += 1;
                }
            }
        }
    }

    /// Write back *all* dirty pages (the `sync` syscall).
    pub fn sync(&mut self, dev: &mut impl BlockDevice) -> u64 {
        let dirty = self.dirty_blocks();
        let n = dirty.len() as u64;
        self.flush_blocks(dev, &dirty);
        n
    }

    /// Evict clean pages (`drop_caches`); dirty pages survive, as on Linux.
    /// Returns the number of pages evicted.
    pub fn drop_caches(&mut self) -> u64 {
        let before = self.pages.len();
        self.pages.retain(|_, p| p.dirty);
        let evicted = (before - self.pages.len()) as u64;
        self.stats.evictions += evicted;
        evicted
    }

    /// Discard every dirty page *without* writing it back — the crash
    /// simulation: whatever was not yet durable is gone, clean pages (which
    /// match the device) survive as if re-read after journal replay.
    /// Returns the number of dirty pages lost.
    pub fn discard_dirty(&mut self) -> u64 {
        let before = self.pages.len();
        self.pages.retain(|_, p| !p.dirty);
        let lost = (before - self.pages.len()) as u64;
        self.stats.evictions += lost;
        lost
    }

    /// Discard the given pages outright, dirty or not — the truncate/delete
    /// path, where the blocks no longer belong to any file and their
    /// contents must not leak into a future owner. Returns the number of
    /// pages discarded.
    pub fn invalidate(&mut self, blocks: &[u64]) -> u64 {
        let mut removed = 0;
        for idx in blocks {
            if self.pages.remove(idx).is_some() {
                removed += 1;
            }
        }
        self.stats.evictions += removed;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemBlockDevice;

    fn filled(b: u8) -> Vec<u8> {
        vec![b; BLOCK_SIZE as usize]
    }

    #[test]
    fn read_miss_then_hit() {
        let dev = MemBlockDevice::new(8);
        let mut c = PageCache::new();
        let (_, miss1) = c.read_block(&dev, 2);
        let (_, miss2) = c.read_block(&dev, 2);
        assert!(miss1);
        assert!(!miss2);
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                writebacks: 0,
                evictions: 0
            }
        );
    }

    #[test]
    fn writes_are_cached_until_sync() {
        let mut dev = MemBlockDevice::new(8);
        let mut c = PageCache::new();
        c.write_block(&dev, 1, 0, &filled(0x5a)).unwrap();
        // Device still sees zeros.
        let mut buf = filled(0);
        dev.read_block(1, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        assert!(c.is_dirty(1));
        // Sync pushes it through.
        assert_eq!(c.sync(&mut dev), 1);
        dev.read_block(1, &mut buf);
        assert!(buf.iter().all(|&b| b == 0x5a));
        assert!(!c.is_dirty(1));
    }

    #[test]
    fn partial_write_faults_the_block_in() {
        let mut dev = MemBlockDevice::new(8);
        dev.write_block(0, &filled(0x11));
        let mut c = PageCache::new();
        let faulted = c.write_block(&dev, 0, 100, &[0xff; 8]).unwrap();
        assert!(faulted, "partial write to cold page must read-modify-write");
        c.sync(&mut dev);
        let mut buf = filled(0);
        dev.read_block(0, &mut buf);
        assert_eq!(&buf[100..108], &[0xff; 8]);
        assert_eq!(buf[0], 0x11, "untouched bytes preserved");
    }

    #[test]
    fn full_block_write_does_not_fault() {
        let dev = MemBlockDevice::new(8);
        let mut c = PageCache::new();
        let faulted = c.write_block(&dev, 0, 0, &filled(1)).unwrap();
        assert!(!faulted);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn oversized_write_is_an_error_not_a_panic() {
        let dev = MemBlockDevice::new(8);
        let mut c = PageCache::new();
        let r = c.write_block(&dev, 0, 100, &filled(0x77));
        assert_eq!(
            r,
            Err(StorageError::WriteExceedsBlock {
                offset: 100,
                len: BLOCK_SIZE as usize,
            })
        );
        // The failed write must not have materialized or dirtied a page.
        assert!(!c.contains(0));
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn invalidate_counts_only_resident_pages() {
        let dev = MemBlockDevice::new(8);
        let mut c = PageCache::new();
        c.read_block(&dev, 1);
        c.write_block(&dev, 2, 0, &filled(9)).unwrap();
        assert_eq!(c.invalidate(&[1, 2, 6]), 2);
        assert_eq!(c.resident_pages(), 0);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn drop_caches_keeps_dirty_pages() {
        let mut dev = MemBlockDevice::new(8);
        let mut c = PageCache::new();
        c.read_block(&dev, 0);
        c.write_block(&dev, 1, 0, &filled(2)).unwrap();
        assert_eq!(c.drop_caches(), 1);
        assert!(!c.contains(0), "clean page must be evicted");
        assert!(c.contains(1), "dirty page must survive");
        // After sync + drop, everything is gone.
        c.sync(&mut dev);
        assert_eq!(c.drop_caches(), 1);
        assert_eq!(c.resident_pages(), 0);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn dirty_tracking_and_selective_flush() {
        let mut dev = MemBlockDevice::new(8);
        let mut c = PageCache::new();
        for i in [5u64, 1, 3] {
            c.write_block(&dev, i, 0, &filled(i as u8)).unwrap();
        }
        assert_eq!(c.dirty_blocks(), vec![1, 3, 5]);
        assert_eq!(c.dirty_among(&[3, 4, 5]), vec![3, 5]);
        c.flush_blocks(&mut dev, &[3]);
        assert_eq!(c.dirty_blocks(), vec![1, 5]);
        assert_eq!(c.stats().writebacks, 1);
    }
}
