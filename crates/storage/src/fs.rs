//! A small extent-based filesystem over a block device.
//!
//! Provides exactly what the paper's pipelines need from ext3-on-HDD:
//! named files, buffered reads/writes through the page cache, `fsync` with
//! journal-commit barriers, whole-filesystem `sync`, and `drop_caches`. The
//! extent allocator supports a deliberately *scattered* mode so experiments
//! can create fragmented files — the precondition of the §V-D data-
//! reorganization analysis (a fragmented file forces random device I/O; the
//! reorganization pass in [`crate::reorg`] restores sequential layout).
//!
//! Every device transfer is charged to the node with an access pattern
//! derived from the actual on-device layout of the touched blocks, so the
//! filesystem — not the caller — decides whether an operation is sequential,
//! chunked-cold, or random. Calibration (DESIGN.md §4): a cold 128 KiB chunk
//! read costs ≈84 ms (read-ahead window per rotation) and a 128 KiB chunk
//! write + fsync ≈90 ms (one stream + journal seeks), reproducing the paper's
//! Figure 4 time split.

use std::collections::{BTreeMap, HashMap};

use greenness_faults::FaultInjector;
use greenness_platform::disk::IoDir;
use greenness_platform::{AccessPattern, Activity, Node, Phase};
use greenness_trace::Value;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::block::{BlockDevice, MemBlockDevice, NullBlockDevice, BLOCK_SIZE};
use crate::cache::{CacheStats, PageCache};

/// Filesystem errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No file with that name.
    NotFound(String),
    /// The device has no free extent large enough.
    NoSpace,
    /// Read offset past end of file.
    BadOffset {
        /// Requested offset.
        offset: u64,
        /// Current file size.
        size: u64,
    },
    /// A transient device or journal error (injected by the fault layer).
    /// The operation may be retried: pages not yet durable are still dirty
    /// in the cache, so a successful retry commits the remainder.
    TransientIo {
        /// The operation that faulted (e.g. `"fsync"`).
        op: &'static str,
        /// Pages made durable before the fault hit (a *torn* writeback
        /// persisted a prefix; a clean transient error persisted none).
        flushed_pages: u64,
    },
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(n) => write!(f, "no such file: {n}"),
            FsError::NoSpace => write!(f, "device full"),
            FsError::BadOffset { offset, size } => {
                write!(f, "offset {offset} beyond end of file ({size})")
            }
            FsError::TransientIo { op, flushed_pages } => {
                write!(
                    f,
                    "transient I/O error during {op} ({flushed_pages} pages durable)"
                )
            }
        }
    }
}

impl std::error::Error for FsError {}

/// How the allocator places new blocks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AllocMode {
    /// First-fit contiguous extents (fresh-filesystem behavior).
    Contiguous,
    /// Deterministically scattered single-block extents — creates the
    /// fragmented layouts of the §V-D study.
    Scattered {
        /// RNG seed; same seed ⇒ same layout.
        seed: u64,
    },
}

/// Filesystem tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FsConfig {
    /// Read-ahead window for cold, small buffered reads, bytes.
    pub readahead_bytes: u64,
    /// Reads at least this large on a contiguous extent stream at full rate.
    pub sequential_threshold: u64,
    /// Positioning operations charged per fsync (data + inode + journal
    /// descriptor + commit + directory + superblock on ext3-like journals).
    pub journal_seeks_per_fsync: u32,
    /// Queue depth the kernel keeps against the device for scattered
    /// buffered reads. A single-threaded buffered reader drives the disk
    /// synchronously (depth 1); only explicit async engines (fio's libaio)
    /// sustain deep queues.
    pub queue_depth: u32,
    /// Block placement policy.
    pub alloc_mode: AllocMode,
}

impl Default for FsConfig {
    fn default() -> Self {
        FsConfig {
            readahead_bytes: 8 * 1024,
            sequential_threshold: 1024 * 1024,
            journal_seeks_per_fsync: 6,
            queue_depth: 1,
            alloc_mode: AllocMode::Contiguous,
        }
    }
}

/// A block device that also knows how to charge a [`Node`] for its own
/// transfers. The filesystem computes *which* blocks move and in what file
/// order; the device decides what that layout costs on its medium.
///
/// Flat single-medium devices ([`MemBlockDevice`], [`NullBlockDevice`])
/// charge the node's own `spec.disk` through [`Activity`], exactly as the
/// filesystem did before this trait existed — byte-identical timelines and
/// journals. A [`crate::TieredStore`] instead splits the transfer across its
/// tiers and prices each slice with that tier's [`DiskModel`]
/// (`greenness_platform::disk::DiskModel`).
pub trait CostedDevice: BlockDevice {
    /// Charge `node` for moving `blocks` (device block indices, file order)
    /// in direction `dir`. Called *before* the data actually moves through
    /// [`BlockDevice::read_block`]/[`BlockDevice::write_block`].
    fn charge_transfer(
        &mut self,
        node: &mut Node,
        blocks: &[u64],
        dir: IoDir,
        cfg: &FsConfig,
        phase: Phase,
    );

    /// Charge `node` for a journal-commit barrier of `seeks` positioning
    /// operations covering `blocks` (empty on a metadata-only commit).
    fn charge_barrier(&mut self, node: &mut Node, seeks: u32, blocks: &[u64], phase: Phase);
}

/// The layout-derived access pattern shared by every costed device: one run
/// is a stream (or a read-ahead-window chunk walk when small); multiple runs
/// degrade to chunked or random I/O by average run length. Reads keep the
/// historical single-run asymmetry (small single-run reads pay the
/// read-ahead window; single-run writes always stream).
pub(crate) fn layout_pattern(cfg: &FsConfig, runs: usize, bytes: u64, dir: IoDir) -> AccessPattern {
    if runs <= 1 {
        return match dir {
            IoDir::Read if bytes < cfg.sequential_threshold => AccessPattern::Chunked {
                op_bytes: cfg.readahead_bytes,
            },
            _ => AccessPattern::Sequential,
        };
    }
    let avg_run = bytes / runs as u64;
    if dir == IoDir::Read && avg_run >= cfg.sequential_threshold {
        AccessPattern::Sequential
    } else if avg_run > cfg.readahead_bytes {
        AccessPattern::Chunked { op_bytes: avg_run }
    } else {
        AccessPattern::Random {
            op_bytes: avg_run.max(BLOCK_SIZE),
            queue_depth: cfg.queue_depth,
        }
    }
}

/// The flat-device charge path: cost the transfer against the node's own
/// `spec.disk` via [`Activity`], preserving the pre-trait behavior bit for
/// bit (seek counter first, then one buffered disk activity).
pub(crate) fn flat_charge_transfer(
    node: &mut Node,
    blocks: &[u64],
    dir: IoDir,
    cfg: &FsConfig,
    phase: Phase,
) {
    if blocks.is_empty() {
        return;
    }
    let bytes = blocks.len() as u64 * BLOCK_SIZE;
    let runs = runs_of(blocks);
    // Each discontinuity between runs costs the head one repositioning.
    node.tracer()
        .count("disk.seeks", runs.len().saturating_sub(1) as u64);
    let pattern = layout_pattern(cfg, runs.len(), bytes, dir);
    let activity = match dir {
        IoDir::Read => Activity::DiskRead {
            bytes,
            pattern,
            buffered: true,
        },
        IoDir::Write => Activity::DiskWrite {
            bytes,
            pattern,
            buffered: true,
        },
    };
    node.execute(activity, phase);
}

impl CostedDevice for MemBlockDevice {
    fn charge_transfer(
        &mut self,
        node: &mut Node,
        blocks: &[u64],
        dir: IoDir,
        cfg: &FsConfig,
        phase: Phase,
    ) {
        flat_charge_transfer(node, blocks, dir, cfg, phase);
    }

    fn charge_barrier(&mut self, node: &mut Node, seeks: u32, _blocks: &[u64], phase: Phase) {
        node.execute(Activity::DiskBarrier { seeks }, phase);
    }
}

impl CostedDevice for NullBlockDevice {
    fn charge_transfer(
        &mut self,
        node: &mut Node,
        blocks: &[u64],
        dir: IoDir,
        cfg: &FsConfig,
        phase: Phase,
    ) {
        flat_charge_transfer(node, blocks, dir, cfg, phase);
    }

    fn charge_barrier(&mut self, node: &mut Node, seeks: u32, _blocks: &[u64], phase: Phase) {
        node.execute(Activity::DiskBarrier { seeks }, phase);
    }
}

/// A contiguous run of device blocks owned by one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Extent {
    /// First device block.
    pub start: u64,
    /// Number of blocks.
    pub len: u64,
}

#[derive(Debug, Clone, Default)]
struct Inode {
    extents: Vec<Extent>,
    size: u64,
}

impl Inode {
    fn blocks(&self) -> u64 {
        self.extents.iter().map(|e| e.len).sum()
    }

    /// Device block holding file block `fb`.
    fn map_block(&self, fb: u64) -> u64 {
        let mut remaining = fb;
        for e in &self.extents {
            if remaining < e.len {
                return e.start + remaining;
            }
            remaining -= e.len;
        }
        panic!(
            "file block {fb} beyond allocation ({} blocks)",
            self.blocks()
        );
    }

    /// All device blocks in file order.
    fn device_blocks(&self) -> Vec<u64> {
        let mut v = Vec::with_capacity(self.blocks() as usize);
        for e in &self.extents {
            v.extend(e.start..e.start + e.len);
        }
        v
    }
}

/// The filesystem: allocator + page cache + inode table over a device.
#[derive(Debug)]
pub struct FileSystem<D: CostedDevice> {
    dev: D,
    cache: PageCache,
    files: HashMap<String, Inode>,
    /// Free runs: start block → run length.
    free: BTreeMap<u64, u64>,
    config: FsConfig,
    rng: SmallRng,
    /// Cache counters already published to a tracer (see
    /// [`Self::publish_cache_counters`]).
    published: CacheStats,
    /// Seeded fsync fault schedule; `None` (the default) is the fault-free
    /// fast path and leaves every cost and output untouched.
    faults: Option<FaultInjector>,
}

impl<D: CostedDevice> FileSystem<D> {
    /// Format `dev` with an empty filesystem.
    pub fn format(dev: D, config: FsConfig) -> Self {
        let mut free = BTreeMap::new();
        if dev.block_count() > 0 {
            free.insert(0, dev.block_count());
        }
        let seed = match config.alloc_mode {
            AllocMode::Scattered { seed } => seed,
            AllocMode::Contiguous => 0,
        };
        FileSystem {
            dev,
            cache: PageCache::new(),
            files: HashMap::new(),
            free,
            config,
            rng: SmallRng::seed_from_u64(seed),
            published: CacheStats::default(),
            faults: None,
        }
    }

    /// Install (or clear) a seeded fsync fault schedule. Each
    /// [`Self::fsync`] consumes one slot of the schedule; a firing slot
    /// turns the commit into a transient error or a torn writeback.
    pub fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        self.faults = injector;
    }

    /// The configured retry budget (0 when no fault schedule is installed,
    /// where the first attempt always succeeds).
    pub fn fault_retry_budget(&self) -> u32 {
        self.faults.as_ref().map_or(0, |f| f.plan().max_retries)
    }

    /// The active configuration.
    pub fn config(&self) -> &FsConfig {
        &self.config
    }

    /// Switch allocation mode for subsequently written blocks.
    pub fn set_alloc_mode(&mut self, mode: AllocMode) {
        self.config.alloc_mode = mode;
        if let AllocMode::Scattered { seed } = mode {
            self.rng = SmallRng::seed_from_u64(seed);
        }
    }

    /// Page-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Push page-cache counter deltas since the last publish into `node`'s
    /// tracer (`cache.hits`, `cache.misses`, `cache.flushed_pages`,
    /// `cache.evictions`). Called by every charged filesystem operation;
    /// callers that evict without a node in hand (e.g. [`Self::drop_caches`])
    /// should call this afterwards so the eviction delta is not stranded.
    pub fn publish_cache_counters(&mut self, node: &Node) {
        let tracer = node.tracer();
        if !tracer.is_on() {
            return;
        }
        let now = self.cache.stats();
        tracer.count("cache.hits", now.hits - self.published.hits);
        tracer.count("cache.misses", now.misses - self.published.misses);
        tracer.count(
            "cache.flushed_pages",
            now.writebacks - self.published.writebacks,
        );
        tracer.count("cache.evictions", now.evictions - self.published.evictions);
        self.published = now;
    }

    /// True if `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Size of `name` in bytes.
    pub fn size(&self, name: &str) -> Result<u64, FsError> {
        self.files
            .get(name)
            .map(|i| i.size)
            .ok_or_else(|| FsError::NotFound(name.into()))
    }

    /// Number of contiguous device runs backing `name` (1 = perfectly
    /// sequential layout).
    pub fn fragmentation(&self, name: &str) -> Result<usize, FsError> {
        let inode = self
            .files
            .get(name)
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        Ok(runs_of(&inode.device_blocks()).len())
    }

    /// File names, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut v: Vec<String> = self.files.keys().cloned().collect();
        v.sort();
        v
    }

    /// Free blocks remaining.
    pub fn free_blocks(&self) -> u64 {
        self.free.values().sum()
    }

    fn alloc(&mut self, blocks: u64) -> Result<Vec<Extent>, FsError> {
        if blocks == 0 {
            return Ok(Vec::new());
        }
        if self.free_blocks() < blocks {
            return Err(FsError::NoSpace);
        }
        match self.config.alloc_mode {
            AllocMode::Contiguous => self.alloc_contiguous(blocks),
            AllocMode::Scattered { .. } => self.alloc_scattered(blocks),
        }
    }

    fn alloc_contiguous(&mut self, mut blocks: u64) -> Result<Vec<Extent>, FsError> {
        // First-fit over free runs; spill across runs if no single run fits.
        let mut got = Vec::new();
        while blocks > 0 {
            let (&start, &len) = self
                .free
                .iter()
                .find(|(_, &len)| len >= blocks)
                .or_else(|| self.free.iter().next())
                .ok_or(FsError::NoSpace)?;
            let take = len.min(blocks);
            self.free.remove(&start);
            if take < len {
                self.free.insert(start + take, len - take);
            }
            got.push(Extent { start, len: take });
            blocks -= take;
        }
        Ok(got)
    }

    fn alloc_scattered(&mut self, blocks: u64) -> Result<Vec<Extent>, FsError> {
        let mut got = Vec::with_capacity(blocks as usize);
        for _ in 0..blocks {
            let starts: Vec<u64> = self.free.keys().copied().collect();
            if starts.is_empty() {
                return Err(FsError::NoSpace);
            }
            let run_start = starts[self.rng.gen_range(0..starts.len())];
            let run_len = self.free.remove(&run_start).expect("key just listed");
            let pick = run_start + self.rng.gen_range(0..run_len);
            if pick > run_start {
                self.free.insert(run_start, pick - run_start);
            }
            if pick + 1 < run_start + run_len {
                self.free.insert(pick + 1, run_start + run_len - pick - 1);
            }
            got.push(Extent {
                start: pick,
                len: 1,
            });
        }
        Ok(got)
    }

    fn free_extents(&mut self, extents: &[Extent]) {
        for e in extents {
            self.free.insert(e.start, e.len);
        }
        // Coalesce adjacent free runs.
        let mut merged: BTreeMap<u64, u64> = BTreeMap::new();
        for (&start, &len) in &self.free {
            match merged.iter_mut().next_back() {
                Some((&last_start, last_len)) if last_start + *last_len >= start => {
                    *last_len = (*last_len).max(start + len - last_start);
                }
                _ => {
                    merged.insert(start, len);
                }
            }
        }
        self.free = merged;
    }

    /// Charge `node` for reading `miss_blocks` (device block indices, file
    /// order) from the device; the device prices the layout itself.
    fn charge_read(&mut self, node: &mut Node, miss_blocks: &[u64], phase: Phase) {
        self.dev
            .charge_transfer(node, miss_blocks, IoDir::Read, &self.config, phase);
    }

    /// Charge `node` for flushing `dirty_blocks` to the device.
    fn charge_writeback(&mut self, node: &mut Node, dirty_blocks: &[u64], phase: Phase) {
        self.dev
            .charge_transfer(node, dirty_blocks, IoDir::Write, &self.config, phase);
    }

    /// Write `data` at `offset` into `name` (creating or extending the file),
    /// buffered: data lands in the page cache and is charged as memory
    /// traffic; the device is touched only by read-modify-write faults here,
    /// and by [`Self::fsync`]/[`Self::sync`] later.
    pub fn write(
        &mut self,
        node: &mut Node,
        name: &str,
        offset: u64,
        data: &[u8],
        phase: Phase,
    ) -> Result<(), FsError> {
        if data.is_empty() {
            self.files.entry(name.to_string()).or_default();
            return Ok(());
        }
        let end = offset + data.len() as u64;
        let needed_blocks = end.div_ceil(BLOCK_SIZE);
        let have_blocks = self.files.get(name).map_or(0, Inode::blocks);
        if needed_blocks > have_blocks {
            let new = self.alloc(needed_blocks - have_blocks)?;
            // Newly allocated blocks may hold a previous owner's bytes on the
            // device; POSIX holes must read zero, so materialize them as
            // zeroed dirty pages (they reach the device at the next sync).
            let zeros = [0u8; BLOCK_SIZE as usize];
            for e in &new {
                for b in e.start..e.start + e.len {
                    self.cache
                        .write_block(&self.dev, b, 0, &zeros)
                        .expect("full-block zero fill cannot exceed the block");
                }
            }
            let inode = self.files.entry(name.to_string()).or_default();
            inode.extents.extend(new);
        }
        let inode = self.files.get_mut(name).expect("created above");
        inode.size = inode.size.max(end);
        // Copy into the cache block by block, collecting RMW faults.
        let inode = self.files.get(name).expect("exists");
        let mut faults = Vec::new();
        let mut cursor = 0usize;
        let mut pos = offset;
        while cursor < data.len() {
            let fb = pos / BLOCK_SIZE;
            let in_block = (pos % BLOCK_SIZE) as usize;
            let take = (BLOCK_SIZE as usize - in_block).min(data.len() - cursor);
            let dev_block = inode.map_block(fb);
            if self
                .cache
                .write_block(&self.dev, dev_block, in_block, &data[cursor..cursor + take])
                .expect("take is bounded by the block remainder")
            {
                faults.push(dev_block);
            }
            cursor += take;
            pos += take as u64;
        }
        self.charge_read(node, &faults, phase);
        node.execute(
            Activity::MemTraffic {
                bytes: data.len() as u64,
            },
            phase,
        );
        self.publish_cache_counters(node);
        Ok(())
    }

    /// Append `data` to `name`.
    pub fn append(
        &mut self,
        node: &mut Node,
        name: &str,
        data: &[u8],
        phase: Phase,
    ) -> Result<(), FsError> {
        let offset = self.files.get(name).map_or(0, |i| i.size);
        self.write(node, name, offset, data, phase)
    }

    /// Read `len` bytes at `offset` from `name`. Cold blocks are charged to
    /// the device with a layout-derived pattern; the returned bytes are the
    /// real stored data.
    pub fn read(
        &mut self,
        node: &mut Node,
        name: &str,
        offset: u64,
        len: u64,
        phase: Phase,
    ) -> Result<Vec<u8>, FsError> {
        let inode = self
            .files
            .get(name)
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        if offset > inode.size {
            return Err(FsError::BadOffset {
                offset,
                size: inode.size,
            });
        }
        let len = len.min(inode.size - offset);
        if len == 0 {
            return Ok(Vec::new());
        }
        let first_fb = offset / BLOCK_SIZE;
        let last_fb = (offset + len - 1) / BLOCK_SIZE;
        let dev_blocks: Vec<u64> = (first_fb..=last_fb).map(|fb| inode.map_block(fb)).collect();
        let misses: Vec<u64> = dev_blocks
            .iter()
            .copied()
            .filter(|b| !self.cache.contains(*b))
            .collect();
        self.charge_read(node, &misses, phase);
        // Assemble the bytes through the cache.
        let mut out = Vec::with_capacity(len as usize);
        let mut pos = offset;
        let mut remaining = len;
        while remaining > 0 {
            let fb = pos / BLOCK_SIZE;
            let in_block = (pos % BLOCK_SIZE) as usize;
            let take = ((BLOCK_SIZE as usize - in_block) as u64).min(remaining) as usize;
            let dev_block = dev_blocks[(fb - first_fb) as usize];
            let (page, _) = self.cache.read_block(&self.dev, dev_block);
            out.extend_from_slice(&page[in_block..in_block + take]);
            pos += take as u64;
            remaining -= take as u64;
        }
        node.execute(Activity::MemTraffic { bytes: len }, phase);
        self.publish_cache_counters(node);
        Ok(out)
    }

    /// Flush `name`'s dirty pages durably: write-back charged by layout plus
    /// the journal-commit barrier (the dominant cost for small chunks on a
    /// 7200 rpm disk).
    pub fn fsync(&mut self, node: &mut Node, name: &str, phase: Phase) -> Result<(), FsError> {
        let inode = self
            .files
            .get(name)
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let file_blocks = inode.device_blocks();
        let dirty = self.cache.dirty_among(&file_blocks);
        if let Some(entropy) = self.faults.as_mut().and_then(FaultInjector::next) {
            return Err(self.faulted_fsync(node, &dirty, entropy, phase));
        }
        self.charge_writeback(node, &dirty, phase);
        self.dev
            .charge_barrier(node, self.config.journal_seeks_per_fsync, &dirty, phase);
        self.cache.flush_blocks(&mut self.dev, &dirty);
        if node.tracer().is_on() {
            node.tracer().instant(
                node.now().as_nanos(),
                "cache.writeback",
                vec![("pages", Value::from(dirty.len()))],
            );
        }
        self.publish_cache_counters(node);
        Ok(())
    }

    /// An injected fsync fault: a *torn* writeback (entropy bit 0 set)
    /// persists a prefix of the dirty pages before the journal commit
    /// fails; a clean transient error persists none. Either way the
    /// non-durable pages stay dirty in the cache, so a retry commits the
    /// remainder — exactly the contract journal replay gives a real ext3.
    fn faulted_fsync(
        &mut self,
        node: &mut Node,
        dirty: &[u64],
        entropy: u64,
        phase: Phase,
    ) -> FsError {
        let torn = entropy & 1 == 1 && !dirty.is_empty();
        let prefix = if torn { dirty.len().div_ceil(2) } else { 0 };
        let flushed = &dirty[..prefix];
        // The failed commit still cost real work: the prefix writeback and
        // the journal seeks spent before the error surfaced.
        self.charge_writeback(node, flushed, phase);
        self.dev
            .charge_barrier(node, self.config.journal_seeks_per_fsync, flushed, phase);
        self.cache.flush_blocks(&mut self.dev, flushed);
        let tracer = node.tracer();
        tracer.count("faults.storage.fsync", 1);
        if tracer.is_on() {
            tracer.instant(
                node.now().as_nanos(),
                "fault.injected",
                vec![
                    ("site", Value::from("storage.fsync")),
                    ("mode", Value::from(if torn { "torn" } else { "transient" })),
                    ("flushed_pages", Value::from(prefix)),
                ],
            );
        }
        self.publish_cache_counters(node);
        FsError::TransientIo {
            op: "fsync",
            flushed_pages: prefix as u64,
        }
    }

    /// [`Self::fsync`] with bounded retry over transient faults: each failed
    /// attempt backs off exponentially (charged to `node` as real idle
    /// time — static energy), then retries the remaining dirty pages. Other
    /// errors and an exhausted budget are returned to the caller. With no
    /// fault schedule installed this is exactly one plain `fsync`.
    pub fn fsync_with_retry(
        &mut self,
        node: &mut Node,
        name: &str,
        phase: Phase,
    ) -> Result<(), FsError> {
        let plan = match &self.faults {
            Some(f) => *f.plan(),
            None => return self.fsync(node, name, phase),
        };
        let mut attempt = 0u32;
        loop {
            match self.fsync(node, name, phase) {
                Err(FsError::TransientIo { .. }) if attempt < plan.max_retries => {
                    let pause = plan.backoff_s(attempt);
                    node.execute(Activity::idle_secs(pause), phase);
                    let tracer = node.tracer();
                    tracer.count("retries.storage.fsync", 1);
                    if tracer.is_on() {
                        tracer.instant(
                            node.now().as_nanos(),
                            "fault.retry",
                            vec![
                                ("site", Value::from("storage.fsync")),
                                ("attempt", Value::from(attempt + 1)),
                                ("backoff_s", Value::from(pause)),
                            ],
                        );
                    }
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Simulate a crash followed by journal replay: every page not yet
    /// durably written is lost (discarded without writeback); metadata and
    /// the device contents — everything an acknowledged `fsync` covered —
    /// survive. Returns the number of dirty pages lost. The chaos suite
    /// re-reads files after this to verify no acknowledged write is lost.
    pub fn crash_and_recover(&mut self) -> u64 {
        self.cache.discard_dirty()
    }

    /// Whole-filesystem `sync`: flush every dirty page, one barrier.
    pub fn sync(&mut self, node: &mut Node, phase: Phase) {
        let dirty = self.cache.dirty_blocks();
        self.charge_writeback(node, &dirty, phase);
        self.dev
            .charge_barrier(node, self.config.journal_seeks_per_fsync, &dirty, phase);
        self.cache.flush_blocks(&mut self.dev, &dirty);
        if node.tracer().is_on() {
            node.tracer().instant(
                node.now().as_nanos(),
                "cache.writeback",
                vec![("pages", Value::from(dirty.len()))],
            );
        }
        self.publish_cache_counters(node);
    }

    /// Evict clean pages (`drop_caches`). Call after [`Self::sync`] to leave
    /// the cache empty, as the paper does between phases. Returns the number
    /// of pages evicted.
    pub fn drop_caches(&mut self) -> u64 {
        self.cache.drop_caches()
    }

    /// Delete `name`, returning its blocks to the allocator.
    pub fn delete(&mut self, name: &str) -> Result<(), FsError> {
        let inode = self
            .files
            .remove(name)
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        // Invalidate cached pages before the blocks can be reallocated —
        // stale dirty pages must not leak into a future owner of the blocks.
        self.cache.invalidate(&inode.device_blocks());
        self.free_extents(&inode.extents);
        Ok(())
    }

    /// Replace the extents of `name` (used by the reorganization pass).
    /// Returns the old extents; the caller is responsible for having copied
    /// the data.
    pub(crate) fn swap_extents(&mut self, name: &str, new: Vec<Extent>) -> Vec<Extent> {
        let inode = self
            .files
            .get_mut(name)
            .expect("swap_extents on missing file");
        std::mem::replace(&mut inode.extents, new)
    }

    /// Allocate raw extents (used by the reorganization pass).
    pub(crate) fn alloc_raw(&mut self, blocks: u64) -> Result<Vec<Extent>, FsError> {
        self.alloc(blocks)
    }

    /// Free raw extents (used by the reorganization pass).
    pub(crate) fn free_raw(&mut self, extents: &[Extent]) {
        let blocks: Vec<u64> = extents
            .iter()
            .flat_map(|e| e.start..e.start + e.len)
            .collect();
        self.cache.invalidate(&blocks);
        self.free_extents(extents);
    }

    /// Direct device + cache access (used by the reorganization pass).
    pub(crate) fn cache_and_dev(&mut self) -> (&mut PageCache, &mut D) {
        (&mut self.cache, &mut self.dev)
    }

    /// The underlying device.
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Mutable access to the underlying device — how placement runners reach
    /// a [`crate::TieredStore`]'s epoch boundary (`end_epoch`) and counters.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    /// Device blocks of `name` in file order (used by the reorganization
    /// pass and by layout assertions in tests).
    pub fn device_blocks(&self, name: &str) -> Result<Vec<u64>, FsError> {
        self.files
            .get(name)
            .map(Inode::device_blocks)
            .ok_or_else(|| FsError::NotFound(name.to_string()))
    }
}

/// Group sorted-or-not block lists into contiguous ascending runs
/// `(start, len)`.
pub(crate) fn runs_of(blocks: &[u64]) -> Vec<(u64, u64)> {
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for &b in blocks {
        match runs.last_mut() {
            Some((start, len)) if *start + *len == b => *len += 1,
            _ => runs.push((b, 1)),
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemBlockDevice;
    use greenness_platform::HardwareSpec;

    fn setup() -> (Node, FileSystem<MemBlockDevice>) {
        let node = Node::new(HardwareSpec::table1());
        let fs = FileSystem::format(
            MemBlockDevice::with_capacity_bytes(64 * 1024 * 1024),
            FsConfig::default(),
        );
        (node, fs)
    }

    #[test]
    fn write_read_round_trip() {
        let (mut node, mut fs) = setup();
        let data: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
        fs.write(&mut node, "snap", 0, &data, Phase::Write).unwrap();
        fs.fsync(&mut node, "snap", Phase::Write).unwrap();
        fs.sync(&mut node, Phase::CacheControl);
        fs.drop_caches();
        let back = fs
            .read(&mut node, "snap", 0, data.len() as u64, Phase::Read)
            .unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn data_survives_cache_drop_only_after_sync() {
        let (mut node, mut fs) = setup();
        fs.write(&mut node, "f", 0, b"hello world", Phase::Write)
            .unwrap();
        // Dirty pages survive a drop (Linux semantics), so the data is still
        // there even without sync.
        fs.drop_caches();
        let back = fs.read(&mut node, "f", 0, 11, Phase::Read).unwrap();
        assert_eq!(&back, b"hello world");
    }

    #[test]
    fn unaligned_offsets_and_partial_blocks() {
        let (mut node, mut fs) = setup();
        fs.write(&mut node, "f", 0, &[1u8; 5000], Phase::Write)
            .unwrap();
        fs.write(&mut node, "f", 4090, &[2u8; 20], Phase::Write)
            .unwrap();
        let back = fs.read(&mut node, "f", 4085, 30, Phase::Read).unwrap();
        assert_eq!(&back[..5], &[1u8; 5]);
        assert_eq!(&back[5..25], &[2u8; 20]);
        assert_eq!(fs.size("f").unwrap(), 5000);
    }

    #[test]
    fn read_past_eof_is_an_error_and_reads_clip() {
        let (mut node, mut fs) = setup();
        fs.write(&mut node, "f", 0, &[7u8; 100], Phase::Write)
            .unwrap();
        assert!(matches!(
            fs.read(&mut node, "f", 101, 1, Phase::Read),
            Err(FsError::BadOffset { .. })
        ));
        let tail = fs.read(&mut node, "f", 90, 1000, Phase::Read).unwrap();
        assert_eq!(tail.len(), 10);
        assert!(matches!(
            fs.read(&mut node, "nope", 0, 1, Phase::Read),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn contiguous_allocation_yields_single_run() {
        let (mut node, mut fs) = setup();
        fs.write(&mut node, "a", 0, &[0u8; 128 * 1024], Phase::Write)
            .unwrap();
        assert_eq!(fs.fragmentation("a").unwrap(), 1);
    }

    #[test]
    fn scattered_allocation_fragments() {
        let (mut node, mut fs) = setup();
        fs.set_alloc_mode(AllocMode::Scattered { seed: 7 });
        fs.write(&mut node, "a", 0, &[1u8; 256 * 1024], Phase::Write)
            .unwrap();
        let frag = fs.fragmentation("a").unwrap();
        assert!(frag > 16, "expected heavy fragmentation, got {frag} runs");
        // Content still round-trips.
        fs.sync(&mut node, Phase::CacheControl);
        fs.drop_caches();
        let back = fs.read(&mut node, "a", 0, 256 * 1024, Phase::Read).unwrap();
        assert!(back.iter().all(|&b| b == 1));
    }

    #[test]
    fn fragmented_reads_cost_more_than_sequential() {
        let (mut node_a, mut fs_a) = setup();
        fs_a.write(&mut node_a, "f", 0, &[1u8; 512 * 1024], Phase::Write)
            .unwrap();
        fs_a.sync(&mut node_a, Phase::CacheControl);
        fs_a.drop_caches();
        let t0 = node_a.now();
        fs_a.read(&mut node_a, "f", 0, 512 * 1024, Phase::Read)
            .unwrap();
        let seq_cost = (node_a.now() - t0).as_secs_f64();

        let (mut node_b, mut fs_b) = setup();
        fs_b.set_alloc_mode(AllocMode::Scattered { seed: 3 });
        fs_b.write(&mut node_b, "f", 0, &[1u8; 512 * 1024], Phase::Write)
            .unwrap();
        fs_b.sync(&mut node_b, Phase::CacheControl);
        fs_b.drop_caches();
        let t0 = node_b.now();
        fs_b.read(&mut node_b, "f", 0, 512 * 1024, Phase::Read)
            .unwrap();
        let rand_cost = (node_b.now() - t0).as_secs_f64();

        assert!(
            rand_cost > 2.0 * seq_cost,
            "fragmented read {rand_cost}s should dwarf sequential {seq_cost}s"
        );
    }

    #[test]
    fn cached_reads_are_nearly_free() {
        let (mut node, mut fs) = setup();
        fs.write(&mut node, "f", 0, &[1u8; 128 * 1024], Phase::Write)
            .unwrap();
        fs.fsync(&mut node, "f", Phase::Write).unwrap();
        // First (cold-after-drop) read pays the device.
        fs.drop_caches();
        let t0 = node.now();
        fs.read(&mut node, "f", 0, 128 * 1024, Phase::Read).unwrap();
        let cold = (node.now() - t0).as_secs_f64();
        // Second read is all hits.
        let t1 = node.now();
        fs.read(&mut node, "f", 0, 128 * 1024, Phase::Read).unwrap();
        let warm = (node.now() - t1).as_secs_f64();
        assert!(warm < cold / 100.0, "warm {warm}s vs cold {cold}s");
    }

    #[test]
    fn chunk_write_fsync_cost_matches_calibration() {
        // 128 KiB chunk + fsync ≈ 90 ms on the Table I disk (DESIGN.md §4).
        let (mut node, mut fs) = setup();
        let t0 = node.now();
        fs.write(&mut node, "chunk", 0, &[9u8; 128 * 1024], Phase::Write)
            .unwrap();
        fs.fsync(&mut node, "chunk", Phase::Write).unwrap();
        let cost = (node.now() - t0).as_secs_f64();
        assert!((cost - 0.090).abs() < 0.01, "got {cost}s");
    }

    #[test]
    fn cold_chunk_read_cost_matches_calibration() {
        // Cold 128 KiB chunk read ≈ 84 ms (read-ahead window per rotation).
        let (mut node, mut fs) = setup();
        fs.write(&mut node, "chunk", 0, &[9u8; 128 * 1024], Phase::Write)
            .unwrap();
        fs.sync(&mut node, Phase::CacheControl);
        fs.drop_caches();
        let t0 = node.now();
        fs.read(&mut node, "chunk", 0, 128 * 1024, Phase::Read)
            .unwrap();
        let cost = (node.now() - t0).as_secs_f64();
        assert!((cost - 0.084).abs() < 0.01, "got {cost}s");
    }

    #[test]
    fn delete_returns_space() {
        let (mut node, mut fs) = setup();
        let before = fs.free_blocks();
        fs.write(&mut node, "f", 0, &[0u8; 1024 * 1024], Phase::Write)
            .unwrap();
        assert!(fs.free_blocks() < before);
        fs.delete("f").unwrap();
        assert_eq!(fs.free_blocks(), before);
        assert!(!fs.exists("f"));
        assert!(fs.delete("f").is_err());
    }

    #[test]
    fn no_space_is_reported() {
        let mut node = Node::new(HardwareSpec::table1());
        let mut fs = FileSystem::format(
            MemBlockDevice::with_capacity_bytes(8 * BLOCK_SIZE),
            FsConfig::default(),
        );
        let r = fs.write(
            &mut node,
            "big",
            0,
            &vec![0u8; 9 * BLOCK_SIZE as usize],
            Phase::Write,
        );
        assert_eq!(r.unwrap_err(), FsError::NoSpace);
    }

    #[test]
    fn faulted_fsync_is_transient_and_retry_recovers() {
        use greenness_faults::{FaultPlan, Site};
        let (mut node, mut fs) = setup();
        // Rate 1.0: every attempt faults, so a bare fsync reports the
        // transient error to the caller.
        let always = FaultPlan {
            storage_fsync_rate: 1.0,
            ..FaultPlan::with_seed(3)
        };
        fs.set_fault_injector(Some(always.injector(Site::StorageFsync, 0)));
        fs.write(&mut node, "f", 0, &[5u8; 64 * 1024], Phase::Write)
            .unwrap();
        let r = fs.fsync(&mut node, "f", Phase::Write);
        assert!(matches!(r, Err(FsError::TransientIo { op: "fsync", .. })));
        // A moderate rate recovers within the budget.
        fs.set_fault_injector(Some(
            FaultPlan::with_seed(3).injector(Site::StorageFsync, 0),
        ));
        fs.fsync_with_retry(&mut node, "f", Phase::Write).unwrap();
        assert!(fs.cache_stats().writebacks >= 16, "pages reached the disk");
    }

    #[test]
    fn acknowledged_fsync_survives_crash_recovery() {
        use greenness_faults::{FaultPlan, Site};
        let (mut node, mut fs) = setup();
        let plan = FaultPlan {
            storage_fsync_rate: 0.5,
            ..FaultPlan::with_seed(11)
        };
        fs.set_fault_injector(Some(plan.injector(Site::StorageFsync, 0)));
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 241) as u8).collect();
        fs.write(&mut node, "ack", 0, &data, Phase::Write).unwrap();
        fs.fsync_with_retry(&mut node, "ack", Phase::Write).unwrap();
        // An unacknowledged sibling write is in flight when the node dies.
        fs.write(&mut node, "lost", 0, &[1u8; 4096], Phase::Write)
            .unwrap();
        fs.crash_and_recover();
        let back = fs
            .read(&mut node, "ack", 0, data.len() as u64, Phase::Read)
            .unwrap();
        assert_eq!(back, data, "acknowledged write lost in the crash");
    }

    #[test]
    fn fault_free_path_is_byte_and_cost_identical() {
        use greenness_faults::{FaultPlan, Site};
        // A quiet plan (rate 0) must not change costs or contents at all.
        let run = |inject: bool| {
            let (mut node, mut fs) = setup();
            if inject {
                let quiet = FaultPlan::quiet(9);
                fs.set_fault_injector(Some(quiet.injector(Site::StorageFsync, 0)));
            }
            fs.write(&mut node, "f", 0, &[7u8; 128 * 1024], Phase::Write)
                .unwrap();
            fs.fsync_with_retry(&mut node, "f", Phase::Write).unwrap();
            node.now().as_nanos()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn runs_grouping() {
        assert_eq!(runs_of(&[]), vec![]);
        assert_eq!(runs_of(&[5, 6, 7]), vec![(5, 3)]);
        assert_eq!(runs_of(&[1, 3, 4, 9]), vec![(1, 1), (3, 2), (9, 1)]);
    }

    #[test]
    fn free_run_coalescing() {
        let (mut node, mut fs) = setup();
        fs.write(&mut node, "a", 0, &[0u8; 4096 * 4], Phase::Write)
            .unwrap();
        fs.write(&mut node, "b", 0, &[0u8; 4096 * 4], Phase::Write)
            .unwrap();
        fs.write(&mut node, "c", 0, &[0u8; 4096 * 4], Phase::Write)
            .unwrap();
        fs.delete("a").unwrap();
        fs.delete("b").unwrap();
        // a and b were adjacent; their free runs must coalesce so a new
        // 8-block file allocates a single extent.
        fs.write(&mut node, "d", 0, &[0u8; 4096 * 8], Phase::Write)
            .unwrap();
        assert_eq!(fs.fragmentation("d").unwrap(), 1);
    }
}
