//! Software-directed data reorganization (§V-D; paper refs [30], [31]).
//!
//! The paper's closing argument: instead of abandoning post-processing (and
//! its exploratory-analysis capability) for in-situ, an application with
//! random I/O behavior could *reorganize its data layout* so reads become
//! sequential — paying a one-time reorganization cost and thereafter losing
//! only ≈7.3 kJ instead of ≈242 kJ per 4 GB pass. This module implements that
//! pass: copy a fragmented file into freshly-allocated contiguous extents,
//! charged honestly (one fragmented read + one sequential write).

use greenness_platform::{AccessPattern, Activity, Node, Phase};
use serde::{Deserialize, Serialize};

use crate::block::BLOCK_SIZE;
use crate::fs::{CostedDevice, FileSystem, FsError};

/// Outcome of one reorganization pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReorgReport {
    /// Contiguous device runs before the pass.
    pub runs_before: usize,
    /// Contiguous device runs after the pass (1 when space allows).
    pub runs_after: usize,
    /// Bytes relocated.
    pub bytes: u64,
    /// Virtual time the pass took, seconds.
    pub seconds: f64,
    /// Full-system energy the pass consumed, joules.
    pub energy_j: f64,
}

/// Rewrite `name` into contiguous extents. The file's content is preserved
/// byte-for-byte; the old blocks are freed. Charges `node` for the fragmented
/// read and the sequential rewrite.
pub fn reorganize<D: CostedDevice>(
    node: &mut Node,
    fs: &mut FileSystem<D>,
    name: &str,
    phase: Phase,
) -> Result<ReorgReport, FsError> {
    let runs_before = fs.fragmentation(name)?;
    let size = fs.size(name)?;
    let t0 = node.now();
    let e0 = node.timeline().total_energy_j();

    // Read the file's blocks in *device* order — a single elevator-style
    // sweep across the platter, far cheaper than reading a fragmented file
    // in logical order — and reassemble the bytes in file order.
    let file_blocks = fs.device_blocks(name)?;
    {
        let mut sweep = file_blocks.clone();
        sweep.sort_unstable();
        let runs = crate::fs::runs_of(&sweep);
        let bytes = sweep.len() as u64 * BLOCK_SIZE;
        let pattern = if runs.len() <= 1 {
            AccessPattern::Sequential
        } else {
            AccessPattern::Chunked {
                op_bytes: (bytes / runs.len() as u64).max(BLOCK_SIZE),
            }
        };
        node.execute(
            Activity::DiskRead {
                bytes,
                pattern,
                buffered: true,
            },
            phase,
        );
    }
    let mut data = vec![0u8; (file_blocks.len() as u64 * BLOCK_SIZE) as usize];
    {
        let (cache, dev) = fs.cache_and_dev();
        for (i, &b) in file_blocks.iter().enumerate() {
            let (page, _) = cache.read_block(dev, b);
            data[i * BLOCK_SIZE as usize..(i + 1) * BLOCK_SIZE as usize].copy_from_slice(page);
        }
    }
    data.truncate(size as usize);

    // Allocate a fresh contiguous region and copy the bytes in.
    let blocks = size.div_ceil(BLOCK_SIZE);
    let new_extents = fs.alloc_raw(blocks)?;
    {
        let dev_blocks: Vec<u64> = new_extents
            .iter()
            .flat_map(|e| e.start..e.start + e.len)
            .collect();
        let (cache, dev) = fs.cache_and_dev();
        for (i, &b) in dev_blocks.iter().enumerate() {
            let off = i * BLOCK_SIZE as usize;
            let end = (off + BLOCK_SIZE as usize).min(data.len());
            cache
                .write_block(dev, b, 0, &data[off..end])
                .expect("copy slice is bounded by the block size");
        }
        // Durable sequential write-back of the new region.
        cache.flush_blocks(dev, &dev_blocks);
    }
    node.execute(
        Activity::DiskWrite {
            bytes: blocks * BLOCK_SIZE,
            pattern: AccessPattern::Sequential,
            buffered: true,
        },
        phase,
    );
    node.execute(
        Activity::DiskBarrier {
            seeks: fs.config().journal_seeks_per_fsync,
        },
        phase,
    );

    let old = fs.swap_extents(name, new_extents);
    fs.free_raw(&old);
    fs.drop_caches();

    Ok(ReorgReport {
        runs_before,
        runs_after: fs.fragmentation(name)?,
        bytes: size,
        seconds: (node.now() - t0).as_secs_f64(),
        energy_j: node.timeline().total_energy_j() - e0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemBlockDevice;
    use crate::fs::{AllocMode, FsConfig};
    use greenness_platform::HardwareSpec;

    fn fragmented_setup(bytes: usize) -> (Node, FileSystem<MemBlockDevice>, Vec<u8>) {
        let mut node = Node::new(HardwareSpec::table1());
        let mut fs = FileSystem::format(
            MemBlockDevice::with_capacity_bytes(64 * 1024 * 1024),
            FsConfig::default(),
        );
        fs.set_alloc_mode(AllocMode::Scattered { seed: 11 });
        let data: Vec<u8> = (0..bytes).map(|i| (i % 253) as u8).collect();
        fs.write(&mut node, "field", 0, &data, Phase::Write)
            .unwrap();
        fs.sync(&mut node, Phase::CacheControl);
        fs.drop_caches();
        (node, fs, data)
    }

    #[test]
    fn reorganization_defragments_and_preserves_content() {
        let (mut node, mut fs, data) = fragmented_setup(512 * 1024);
        let before = fs.fragmentation("field").unwrap();
        assert!(before > 16);
        fs.set_alloc_mode(AllocMode::Contiguous);
        let report = reorganize(&mut node, &mut fs, "field", Phase::Other).unwrap();
        assert_eq!(report.runs_before, before);
        assert!(
            report.runs_after <= 2,
            "still fragmented: {} runs",
            report.runs_after
        );
        assert!(report.seconds > 0.0 && report.energy_j > 0.0);
        let back = fs
            .read(&mut node, "field", 0, data.len() as u64, Phase::Read)
            .unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn reorganized_reads_are_much_cheaper() {
        let (mut node, mut fs, data) = fragmented_setup(1024 * 1024);
        // Cost of a cold fragmented read.
        let t0 = node.now();
        fs.read(&mut node, "field", 0, data.len() as u64, Phase::Read)
            .unwrap();
        let fragmented_cost = (node.now() - t0).as_secs_f64();
        fs.drop_caches();

        fs.set_alloc_mode(AllocMode::Contiguous);
        reorganize(&mut node, &mut fs, "field", Phase::Other).unwrap();

        let t1 = node.now();
        fs.read(&mut node, "field", 0, data.len() as u64, Phase::Read)
            .unwrap();
        let sequential_cost = (node.now() - t1).as_secs_f64();
        assert!(
            sequential_cost < fragmented_cost / 3.0,
            "reorg did not pay off: {sequential_cost}s vs {fragmented_cost}s"
        );
    }

    #[test]
    fn reorganizing_a_contiguous_file_is_idempotent_on_layout() {
        let mut node = Node::new(HardwareSpec::table1());
        let mut fs = FileSystem::format(
            MemBlockDevice::with_capacity_bytes(16 * 1024 * 1024),
            FsConfig::default(),
        );
        let data = vec![5u8; 256 * 1024];
        fs.write(&mut node, "f", 0, &data, Phase::Write).unwrap();
        fs.sync(&mut node, Phase::CacheControl);
        fs.drop_caches();
        let report = reorganize(&mut node, &mut fs, "f", Phase::Other).unwrap();
        assert_eq!(report.runs_before, 1);
        assert_eq!(report.runs_after, 1);
        let back = fs
            .read(&mut node, "f", 0, data.len() as u64, Phase::Read)
            .unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn missing_file_is_an_error() {
        let mut node = Node::new(HardwareSpec::table1());
        let mut fs = FileSystem::format(
            MemBlockDevice::with_capacity_bytes(1024 * 1024),
            FsConfig::default(),
        );
        assert!(reorganize(&mut node, &mut fs, "ghost", Phase::Other).is_err());
    }
}
