//! # greenness-storage
//!
//! The simulated storage stack under the visualization pipelines: a block
//! device holding real bytes, a Linux-style page cache with dirty-page
//! write-back, a small extent-based filesystem, an `fio`-style benchmark
//! engine (the paper's Table III), and the software-directed data
//! reorganization pass of §V-D (paper refs [30], [31]).
//!
//! Layering mirrors the paper's testbed: application data flows through the
//! page cache onto the device as *real bytes* (snapshots read back are
//! byte-identical to what was written), while the *timing and power* of every
//! device access is charged to the node via the calibrated
//! [`DiskModel`](greenness_platform::DiskModel) — including the `sync` +
//! `drop_caches` discipline the paper applies between phases (§IV-C) and the
//! journal-commit seeks that make each fsync expensive on a 7200 rpm disk.

pub mod block;
pub mod burst;
pub mod cache;
pub mod error;
pub mod fio;
pub mod fs;
pub mod placement;
pub mod reorg;
pub mod tier;

pub use block::{BlockDevice, MemBlockDevice, NullBlockDevice, BLOCK_SIZE};
pub use burst::BurstBuffer;
pub use cache::{CacheStats, PageCache};
pub use error::StorageError;
pub use fio::{FioJob, FioKind, FioResult};
pub use fs::{AllocMode, CostedDevice, FileSystem, FsConfig, FsError};
pub use placement::{
    BlockState, EnergyGreedyPolicy, FreqRecencyPolicy, Move, NoopPolicy, PlacementPolicy, TierUsage,
};
pub use reorg::reorganize;
pub use tier::{TierCounters, TierSpec, TieredStore};
