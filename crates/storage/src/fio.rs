//! An `fio`-style disk benchmark engine — the workload generator behind the
//! paper's Table III.
//!
//! The paper reads and writes 4 GB "to sequential and random locations in the
//! disk" with the fio benchmark and reports execution time, full-system
//! power, disk dynamic power, and the two energies. Jobs here run *direct*
//! (no page cache, no CPU assist), as fio does with `direct=1`; the
//! sequential/random × read/write matrix exercises the disk model's streaming
//! rate, NCQ'd positioning, and write-cache elevator paths.
//!
//! With [`FioJob::verify`] set, the job moves real bytes through the device
//! and checks them — used by the test suite at moderate sizes. Capacity-scale
//! jobs (the 4 GiB Table III points) run against a
//! [`NullBlockDevice`](crate::block::NullBlockDevice), matching fio's
//! meaningless-content raw mode, while exercising the identical timing and
//! power paths.

use greenness_platform::{AccessPattern, Activity, Node, Phase};
use serde::{Deserialize, Serialize};

use crate::block::{BlockDevice, BLOCK_SIZE};
use crate::error::StorageError;

/// The four Table III job types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FioKind {
    /// Stream the region front to back.
    SequentialRead,
    /// Uniform random block reads.
    RandomRead,
    /// Stream writes front to back.
    SequentialWrite,
    /// Uniform random block writes.
    RandomWrite,
}

impl FioKind {
    /// All four kinds in Table III column order.
    pub const ALL: [FioKind; 4] = [
        FioKind::SequentialRead,
        FioKind::RandomRead,
        FioKind::SequentialWrite,
        FioKind::RandomWrite,
    ];

    /// Table III column header.
    pub fn label(self) -> &'static str {
        match self {
            FioKind::SequentialRead => "Sequential Read",
            FioKind::RandomRead => "Random Read",
            FioKind::SequentialWrite => "Sequential Write",
            FioKind::RandomWrite => "Random Write",
        }
    }

    fn is_read(self) -> bool {
        matches!(self, FioKind::SequentialRead | FioKind::RandomRead)
    }

    fn is_random(self) -> bool {
        matches!(self, FioKind::RandomRead | FioKind::RandomWrite)
    }
}

/// One benchmark job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FioJob {
    /// Job type.
    pub kind: FioKind,
    /// Total bytes to move (Table III: 4 GiB).
    pub total_bytes: u64,
    /// Request size for random jobs (fio default: 4 KiB).
    pub block_bytes: u64,
    /// Outstanding requests (NCQ depth; fio default for libaio jobs: 32).
    pub queue_depth: u32,
    /// Move and check real bytes through the device (test mode).
    pub verify: bool,
}

impl FioJob {
    /// The Table III job of the given kind: 4 GiB, 4 KiB random blocks,
    /// queue depth 32, no verification.
    pub fn table3(kind: FioKind) -> FioJob {
        FioJob {
            kind,
            total_bytes: 4 * 1024 * 1024 * 1024,
            block_bytes: 4 * 1024,
            queue_depth: 32,
            verify: false,
        }
    }
}

/// Table III row set for one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FioResult {
    /// The job type.
    pub kind: FioKind,
    /// Execution time, seconds.
    pub execution_time_s: f64,
    /// Average full-system power, watts.
    pub full_system_power_w: f64,
    /// Disk power above idle, watts.
    pub disk_dyn_power_w: f64,
    /// Disk dynamic energy, kilojoules.
    pub disk_dyn_energy_kj: f64,
    /// Full-system energy, kilojoules.
    pub full_system_energy_kj: f64,
}

/// Deterministic content for verified jobs.
fn pattern_byte(block: u64, i: usize) -> u8 {
    (block
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i as u64)
        .wrapping_mul(0x2545_f491_4f6c_dd1d)
        >> 32) as u8
}

/// Deterministic "random" block ordering: a permutation-ish stride walk.
fn random_block_order(blocks: u64) -> impl Iterator<Item = u64> {
    // A coprime stride visits every block exactly once when blocks is odd;
    // make it odd by construction and clamp to range.
    let stride = 2_654_435_761u64 | 1;
    (0..blocks).map(move |i| (i.wrapping_mul(stride)) % blocks)
}

/// Run `job` against `dev`, charging `node` for the device work. Returns the
/// Table III metrics, or a [`StorageError`] if the job is malformed or a
/// verified job reads back wrong data.
pub fn run(
    node: &mut Node,
    dev: &mut impl BlockDevice,
    job: &FioJob,
) -> Result<FioResult, StorageError> {
    if job.block_bytes == 0 || job.block_bytes % BLOCK_SIZE != 0 {
        return Err(StorageError::MisalignedBlockSize {
            block_bytes: job.block_bytes,
        });
    }
    if job.total_bytes < job.block_bytes {
        return Err(StorageError::JobSmallerThanBlock {
            total_bytes: job.total_bytes,
            block_bytes: job.block_bytes,
        });
    }
    let region_blocks = job.total_bytes / BLOCK_SIZE;
    if region_blocks > dev.block_count() {
        return Err(StorageError::JobExceedsDevice {
            job_blocks: region_blocks,
            device_blocks: dev.block_count(),
        });
    }

    // Data phase (verified jobs only): move real bytes, device-block-sized.
    if job.verify {
        let mut buf = vec![0u8; BLOCK_SIZE as usize];
        if job.kind.is_read() {
            // Pre-populate (fio's layout phase, not charged), then read back.
            for b in 0..region_blocks {
                for (i, v) in buf.iter_mut().enumerate() {
                    *v = pattern_byte(b, i);
                }
                dev.write_block(b, &buf);
            }
            let order: Box<dyn Iterator<Item = u64>> = if job.kind.is_random() {
                Box::new(random_block_order(region_blocks))
            } else {
                Box::new(0..region_blocks)
            };
            for b in order {
                dev.read_block(b, &mut buf);
                for (i, &v) in buf.iter().enumerate() {
                    if v != pattern_byte(b, i) {
                        return Err(StorageError::VerifyMismatch { block: b, byte: i });
                    }
                }
            }
        } else {
            let order: Box<dyn Iterator<Item = u64>> = if job.kind.is_random() {
                Box::new(random_block_order(region_blocks))
            } else {
                Box::new(0..region_blocks)
            };
            for b in order {
                for (i, v) in buf.iter_mut().enumerate() {
                    *v = pattern_byte(b, i);
                }
                dev.write_block(b, &buf);
            }
            for b in 0..region_blocks {
                dev.read_block(b, &mut buf);
                for (i, &v) in buf.iter().enumerate() {
                    if v != pattern_byte(b, i) {
                        return Err(StorageError::VerifyMismatch { block: b, byte: i });
                    }
                }
            }
        }
    }

    // Accounting phase: one aggregate direct-I/O activity.
    let pattern = if job.kind.is_random() {
        AccessPattern::Random {
            op_bytes: job.block_bytes,
            queue_depth: job.queue_depth,
        }
    } else {
        AccessPattern::Sequential
    };
    let activity = if job.kind.is_read() {
        Activity::DiskRead {
            bytes: job.total_bytes,
            pattern,
            buffered: false,
        }
    } else {
        Activity::DiskWrite {
            bytes: job.total_bytes,
            pattern,
            buffered: false,
        }
    };
    let e = node.execute(activity, Phase::IoBench);
    node.tracer().count("fio.jobs", 1);

    let secs = e.duration.as_secs_f64();
    let disk_dyn_w = e.disk_dyn_w(node.spec().disk.idle_w);
    Ok(FioResult {
        kind: job.kind,
        execution_time_s: secs,
        full_system_power_w: e.draw.system_w(),
        disk_dyn_power_w: disk_dyn_w,
        disk_dyn_energy_kj: disk_dyn_w * secs / 1000.0,
        full_system_energy_kj: e.draw.system_w() * secs / 1000.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{MemBlockDevice, NullBlockDevice};
    use greenness_platform::HardwareSpec;

    fn node() -> Node {
        Node::new(HardwareSpec::table1())
    }

    #[test]
    fn table3_sequential_read_row() {
        let mut n = node();
        let mut dev = NullBlockDevice::with_capacity_bytes(4 * 1024 * 1024 * 1024);
        let r = run(&mut n, &mut dev, &FioJob::table3(FioKind::SequentialRead)).unwrap();
        // Paper row: 35.9 s, 118 W, 13.5 W, 0.4 kJ, 4.2 kJ.
        assert!((r.execution_time_s - 35.9).abs() < 0.2, "{r:?}");
        assert!((r.full_system_power_w - 118.0).abs() < 0.6, "{r:?}");
        assert!((r.disk_dyn_power_w - 13.5).abs() < 0.2, "{r:?}");
        assert!((r.disk_dyn_energy_kj - 0.4).abs() < 0.1, "{r:?}");
        assert!((r.full_system_energy_kj - 4.2).abs() < 0.1, "{r:?}");
    }

    #[test]
    fn table3_random_read_row() {
        let mut n = node();
        let mut dev = NullBlockDevice::with_capacity_bytes(4 * 1024 * 1024 * 1024);
        let r = run(&mut n, &mut dev, &FioJob::table3(FioKind::RandomRead)).unwrap();
        // Paper row: 2230 s, 107 W, 2.5 W, 5.5 kJ, 238.6 kJ.
        assert!((r.execution_time_s - 2230.0).abs() < 60.0, "{r:?}");
        assert!((r.full_system_power_w - 107.0).abs() < 0.7, "{r:?}");
        assert!((r.disk_dyn_power_w - 2.5).abs() < 0.15, "{r:?}");
        assert!((r.disk_dyn_energy_kj - 5.5).abs() < 0.3, "{r:?}");
        assert!((r.full_system_energy_kj - 238.6).abs() < 8.0, "{r:?}");
    }

    #[test]
    fn table3_sequential_write_row() {
        let mut n = node();
        let mut dev = NullBlockDevice::with_capacity_bytes(4 * 1024 * 1024 * 1024);
        let r = run(&mut n, &mut dev, &FioJob::table3(FioKind::SequentialWrite)).unwrap();
        // Paper row: 27.0 s, 115.4 W, 10.9 W, (0.29 kJ — the printed 2.9 kJ
        // contradicts its own row, see EXPERIMENTS.md), 3.1 kJ.
        assert!((r.execution_time_s - 27.0).abs() < 0.2, "{r:?}");
        assert!((r.full_system_power_w - 115.4).abs() < 0.6, "{r:?}");
        assert!((r.disk_dyn_power_w - 10.9).abs() < 0.2, "{r:?}");
        assert!((r.disk_dyn_energy_kj - 0.29).abs() < 0.05, "{r:?}");
        assert!((r.full_system_energy_kj - 3.1).abs() < 0.1, "{r:?}");
    }

    #[test]
    fn table3_random_write_row() {
        let mut n = node();
        let mut dev = NullBlockDevice::with_capacity_bytes(4 * 1024 * 1024 * 1024);
        let r = run(&mut n, &mut dev, &FioJob::table3(FioKind::RandomWrite)).unwrap();
        // Paper row: 31.0 s, 117.9 W, 13.4 W, 0.4 kJ, 3.6 kJ.
        assert!((r.execution_time_s - 31.0).abs() < 0.3, "{r:?}");
        assert!((r.full_system_power_w - 117.9).abs() < 0.7, "{r:?}");
        assert!((r.disk_dyn_power_w - 13.4).abs() < 0.2, "{r:?}");
        assert!((r.disk_dyn_energy_kj - 0.4).abs() < 0.1, "{r:?}");
        assert!((r.full_system_energy_kj - 3.6).abs() < 0.2, "{r:?}");
    }

    #[test]
    fn verified_jobs_move_real_bytes() {
        let mut n = node();
        let mut dev = MemBlockDevice::with_capacity_bytes(16 * 1024 * 1024);
        for kind in FioKind::ALL {
            let job = FioJob {
                kind,
                total_bytes: 16 * 1024 * 1024,
                block_bytes: 4096,
                queue_depth: 32,
                verify: true,
            };
            let r = run(&mut n, &mut dev, &job).unwrap();
            assert!(r.execution_time_s > 0.0);
        }
        assert!(dev.materialized_blocks() > 0);
    }

    #[test]
    fn random_order_visits_every_block_once() {
        let mut seen: Vec<bool> = vec![false; 1024];
        for b in random_block_order(1024) {
            assert!(!seen[b as usize], "block {b} visited twice");
            seen[b as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // And it is not the identity order.
        let first: Vec<u64> = random_block_order(1024).take(4).collect();
        assert_ne!(first, vec![0, 1, 2, 3]);
    }

    #[test]
    fn malformed_jobs_are_errors_not_panics() {
        let mut n = node();
        let mut dev = NullBlockDevice::with_capacity_bytes(1024 * 1024);
        let job = FioJob {
            kind: FioKind::SequentialRead,
            total_bytes: 1024 * 1024,
            block_bytes: 1000,
            queue_depth: 1,
            verify: false,
        };
        assert_eq!(
            run(&mut n, &mut dev, &job),
            Err(StorageError::MisalignedBlockSize { block_bytes: 1000 })
        );
        let job = FioJob {
            total_bytes: 1024,
            block_bytes: BLOCK_SIZE,
            ..job
        };
        assert_eq!(
            run(&mut n, &mut dev, &job),
            Err(StorageError::JobSmallerThanBlock {
                total_bytes: 1024,
                block_bytes: BLOCK_SIZE,
            })
        );
        let job = FioJob {
            total_bytes: 2 * 1024 * 1024,
            block_bytes: BLOCK_SIZE,
            ..job
        };
        assert_eq!(
            run(&mut n, &mut dev, &job),
            Err(StorageError::JobExceedsDevice {
                job_blocks: 2 * 1024 * 1024 / BLOCK_SIZE,
                device_blocks: 1024 * 1024 / BLOCK_SIZE,
            })
        );
        // No charging happened for any rejected job.
        assert_eq!(n.now().as_nanos(), 0);
    }
}
