//! Storage-stack error type.
//!
//! Invalid cache writes and malformed fio jobs used to `panic!` deep inside
//! the library, taking the whole `repro`/`greenness` process down with a
//! backtrace instead of a diagnostic. [`StorageError`] carries those
//! conditions (plus filesystem errors) out to the caller as values, so the
//! binaries can print one line and exit nonzero.

use crate::fs::FsError;

/// Errors surfaced by the storage stack (page cache, fio engine, filesystem).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page-cache write would run past the end of its block.
    WriteExceedsBlock {
        /// Byte offset within the block.
        offset: usize,
        /// Length of the write.
        len: usize,
    },
    /// An fio job's request size is not a positive multiple of the device
    /// block size.
    MisalignedBlockSize {
        /// The offending request size, bytes.
        block_bytes: u64,
    },
    /// An fio job moves less than one request worth of data.
    JobSmallerThanBlock {
        /// Total bytes the job would move.
        total_bytes: u64,
        /// Request size, bytes.
        block_bytes: u64,
    },
    /// An fio job's region does not fit on the device.
    JobExceedsDevice {
        /// Blocks the job needs.
        job_blocks: u64,
        /// Blocks the device has.
        device_blocks: u64,
    },
    /// A verified fio job read back different bytes than it wrote.
    VerifyMismatch {
        /// Device block where the mismatch was found.
        block: u64,
        /// Byte offset within the block.
        byte: usize,
    },
    /// A filesystem error (missing file, full device, bad offset).
    Fs(FsError),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::WriteExceedsBlock { offset, len } => {
                write!(f, "write of {len} bytes at offset {offset} exceeds block")
            }
            StorageError::MisalignedBlockSize { block_bytes } => {
                write!(
                    f,
                    "fio block size {block_bytes} must be a positive multiple of {}",
                    crate::block::BLOCK_SIZE
                )
            }
            StorageError::JobSmallerThanBlock {
                total_bytes,
                block_bytes,
            } => {
                write!(
                    f,
                    "fio job of {total_bytes} bytes is smaller than one {block_bytes}-byte block"
                )
            }
            StorageError::JobExceedsDevice {
                job_blocks,
                device_blocks,
            } => {
                write!(
                    f,
                    "fio job needs {job_blocks} blocks but the device has {device_blocks}"
                )
            }
            StorageError::VerifyMismatch { block, byte } => {
                write!(f, "verify failed at block {block} byte {byte}")
            }
            StorageError::Fs(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Fs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FsError> for StorageError {
    fn from(e: FsError) -> Self {
        StorageError::Fs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_diagnostic() {
        let e = StorageError::MisalignedBlockSize { block_bytes: 1000 };
        assert!(e.to_string().contains("multiple"));
        let e = StorageError::VerifyMismatch { block: 7, byte: 42 };
        assert!(e.to_string().contains("block 7 byte 42"));
        let e = StorageError::from(FsError::NoSpace);
        assert_eq!(e.to_string(), FsError::NoSpace.to_string());
        assert!(std::error::Error::source(&e).is_some());
    }
}
